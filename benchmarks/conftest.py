"""Shared fixtures for the benchmark harness.

Each bench regenerates one of the paper's tables or figures.  The
expensive artifacts -- calibrated testbeds and closed-loop session runs
-- are session-scoped so Fig. 13/14/15 and Table 3 share them.
"""

import numpy as np
import pytest

from repro.link import link_25g
from repro.motion import HandheldProfile, LinearRail, RotationStage
from repro.simulate import PrototypeSession, Testbed

#: Stroke-speed grids for the Fig. 13/15 ramps.
LINEAR_SPEEDS_M_S = [0.15, 0.22, 0.30, 0.38, 0.46, 0.55]
ANGULAR_SPEEDS_DEG_S = [8.0, 12.0, 16.0, 20.0, 24.0, 28.0]


@pytest.fixture(scope="session")
def rig_10g():
    """Calibrated 10G prototype (bench geometry, 16 mm beam)."""
    testbed = Testbed(seed=3)
    outcome = testbed.calibrate()
    return testbed, PrototypeSession(testbed, outcome.system)


@pytest.fixture(scope="session")
def rig_25g():
    """Calibrated 25G prototype."""
    testbed = Testbed(design=link_25g(), seed=5)
    outcome = testbed.calibrate()
    return testbed, PrototypeSession(testbed, outcome.system)


def linear_profile(testbed, speeds):
    rail = LinearRail(axis=[1.0, 0.0, 0.0], length_m=0.3)
    return rail.stroke_profile(testbed.home_pose, speeds)


def angular_profile(testbed, speeds_deg):
    stage = RotationStage(axis=[0.0, 0.0, 1.0],
                          range_rad=np.radians(20.0))
    return stage.stroke_profile(testbed.home_pose,
                                [np.radians(s) for s in speeds_deg])


def handheld_profile(testbed, peak_linear, peak_angular_deg,
                     duration_s=40.0, seed=11):
    return HandheldProfile(base_pose=testbed.home_pose,
                           peak_linear_m_s=peak_linear,
                           peak_angular_rad_s=np.radians(
                               peak_angular_deg),
                           duration_s=duration_s, seed=seed)


@pytest.fixture(scope="session")
def linear_run_10g(rig_10g):
    testbed, session = rig_10g
    profile = linear_profile(testbed, LINEAR_SPEEDS_M_S)
    return profile, session.run(profile)


@pytest.fixture(scope="session")
def angular_run_10g(rig_10g):
    testbed, session = rig_10g
    profile = angular_profile(testbed, ANGULAR_SPEEDS_DEG_S)
    return profile, session.run(profile)


@pytest.fixture(scope="session")
def arbitrary_run_10g(rig_10g):
    testbed, session = rig_10g
    profile = handheld_profile(testbed, peak_linear=0.45,
                               peak_angular_deg=28.0)
    return profile, session.run(profile)


@pytest.fixture(scope="session")
def linear_run_25g(rig_25g):
    testbed, session = rig_25g
    profile = linear_profile(testbed, LINEAR_SPEEDS_M_S)
    return profile, session.run(profile)


@pytest.fixture(scope="session")
def angular_run_25g(rig_25g):
    testbed, session = rig_25g
    profile = angular_profile(testbed, ANGULAR_SPEEDS_DEG_S)
    return profile, session.run(profile)


@pytest.fixture(scope="session")
def arbitrary_run_25g(rig_25g):
    testbed, session = rig_25g
    # The ramp must end well past the 25G link's mixed tolerance
    # (~15-20 deg/s with ~15 cm/s) so the collapse is visible.
    profile = handheld_profile(testbed, peak_linear=0.40,
                               peak_angular_deg=50.0, seed=13)
    return profile, session.run(profile)
