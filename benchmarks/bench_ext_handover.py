"""Extension bench: multi-TX handover under occlusions (Section 3).

Not a paper figure -- the paper proposes but does not evaluate
handover.  The bench quantifies the proposal: uptime with one vs two
TXs under a fixed occlusion pattern.
"""

from repro.motion import StaticProfile
from repro.reporting import TextTable, fmt_float
from repro.simulate import HandoverController, MultiTxRig, OcclusionEvent

OCCLUSIONS = [OcclusionEvent(tx_index=0, start_s=0.8, end_s=1.8),
              OcclusionEvent(tx_index=1, start_s=2.6, end_s=3.2),
              OcclusionEvent(tx_index=0, start_s=3.8, end_s=4.6)]
DURATION_S = 5.0


def run_pair():
    rig = MultiTxRig(tx_count=2, seed=7)
    profile = StaticProfile(rig.testbed.home_pose,
                            duration_s=DURATION_S)
    with_handover = HandoverController(rig, use_handover=True).run(
        profile, OCCLUSIONS)
    rig2 = MultiTxRig(tx_count=2, seed=7)
    profile2 = StaticProfile(rig2.testbed.home_pose,
                             duration_s=DURATION_S)
    without = HandoverController(rig2, use_handover=False).run(
        profile2, OCCLUSIONS)
    return with_handover, without


def test_ext_handover(benchmark):
    with_handover, without = benchmark.pedantic(run_pair, rounds=1,
                                                iterations=1)
    table = TextTable(["configuration", "uptime (%)", "handovers"])
    table.add_row("two TXs + handover",
                  fmt_float(with_handover.uptime_fraction * 100, 1),
                  str(with_handover.handovers))
    table.add_row("no handover",
                  fmt_float(without.uptime_fraction * 100, 1),
                  str(without.handovers))
    print("\nExtension -- multi-TX handover under occlusions")
    print(table.render())

    # Occlusions cover 2.4 of 5 s on TX 0; without handover most of
    # that is dark, with handover nearly none of it is.
    assert with_handover.uptime_fraction > 0.9
    assert without.uptime_fraction < 0.75
    assert with_handover.handovers >= 2
