"""Validation bench: closed-form speed budgets vs the full simulator.

The Figs. 13/15 thresholds come out of a ~20 s closed-loop simulation;
``repro.analysis`` predicts them from a five-line budget.  Agreement
between the two is evidence the simulator's thresholds arise from the
paper's stated mechanism (staleness x speed vs tolerance - residual)
and nothing else.
"""

import numpy as np

from repro.analysis import (
    angular_speed_limit_rad_s,
    inputs_for,
    linear_speed_limit_m_s,
)
from repro.link import link_10g_diverging, link_25g
from repro.reporting import TextTable, fmt_float
from repro.simulate import surviving_speed_threshold


def predictions():
    out = {}
    for name, design in (("10G", link_10g_diverging()),
                         ("25G", link_25g())):
        inputs = inputs_for(design)
        out[name] = (linear_speed_limit_m_s(inputs),
                     angular_speed_limit_rad_s(inputs))
    return out


def test_analysis_vs_simulation(benchmark, rig_10g, rig_25g,
                                linear_run_10g, angular_run_10g,
                                linear_run_25g, angular_run_25g):
    predicted = benchmark(predictions)
    t10, _ = rig_10g
    t25, _ = rig_25g
    simulated = {
        "10G": (surviving_speed_threshold(
                    linear_run_10g[0].schedule, linear_run_10g[1].windows,
                    t10.design.sfp.optimal_throughput_gbps),
                surviving_speed_threshold(
                    angular_run_10g[0].schedule,
                    angular_run_10g[1].windows,
                    t10.design.sfp.optimal_throughput_gbps)),
        "25G": (surviving_speed_threshold(
                    linear_run_25g[0].schedule, linear_run_25g[1].windows,
                    t25.design.sfp.optimal_throughput_gbps),
                surviving_speed_threshold(
                    angular_run_25g[0].schedule,
                    angular_run_25g[1].windows,
                    t25.design.sfp.optimal_throughput_gbps)),
    }

    table = TextTable(["link", "metric", "closed form", "simulated"])
    for name in ("10G", "25G"):
        table.add_row(name, "linear (cm/s)",
                      fmt_float(predicted[name][0] * 100, 0),
                      fmt_float(simulated[name][0] * 100, 0))
        table.add_row(name, "angular (deg/s)",
                      fmt_float(np.degrees(predicted[name][1]), 0),
                      fmt_float(np.degrees(simulated[name][1]), 0))
    print("\nValidation -- closed-form budget vs full simulation")
    print(table.render())

    # The two must agree within the stroke grid's resolution-ish band.
    for name in ("10G", "25G"):
        lin_pred, ang_pred = predicted[name]
        lin_sim, ang_sim = simulated[name]
        assert abs(lin_pred - lin_sim) <= 0.45 * max(lin_pred, lin_sim)
        assert abs(ang_pred - ang_sim) <= 0.45 * max(ang_pred, ang_sim)
