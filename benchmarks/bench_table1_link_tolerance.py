"""Table 1: collimated vs diverging link tolerances and peak power.

Paper values (20 mm beam at RX, 10G link):

                        Collimated   Diverging
    TX angular tol       2.00 mrad   15.81 mrad
    RX angular tol       2.28 mrad    5.77 mrad
    Peak received power    15 dBm      -10 dBm
"""

import pytest

from repro import constants
from repro.link import evaluate, link_10g_collimated, link_10g_diverging
from repro.reporting import TextTable, fmt_float


def both_designs():
    return (evaluate(link_10g_collimated(20e-3)),
            evaluate(link_10g_diverging(20e-3)))


def test_table1(benchmark):
    collimated, diverging = benchmark(both_designs)

    table = TextTable(["metric", "collimated", "diverging",
                       "paper (col/div)"])
    table.add_row("TX angular tol (mrad)",
                  fmt_float(collimated.tx_angular_tolerance_rad * 1e3),
                  fmt_float(diverging.tx_angular_tolerance_rad * 1e3),
                  "2.00 / 15.81")
    table.add_row("RX angular tol (mrad)",
                  fmt_float(collimated.rx_angular_tolerance_rad * 1e3),
                  fmt_float(diverging.rx_angular_tolerance_rad * 1e3),
                  "2.28 / 5.77")
    table.add_row("peak power (dBm)",
                  fmt_float(collimated.peak_power_dbm),
                  fmt_float(diverging.peak_power_dbm),
                  "15 / -10")
    print("\nTable 1 -- link movement tolerance (20 mm beam at RX)")
    print(table.render())

    # Absolute anchors (these are calibration points, so they're tight).
    assert collimated.tx_angular_tolerance_rad * 1e3 == pytest.approx(
        constants.COLLIMATED_TX_TOLERANCE_MRAD, rel=0.1)
    assert collimated.rx_angular_tolerance_rad * 1e3 == pytest.approx(
        constants.COLLIMATED_RX_TOLERANCE_MRAD, rel=0.1)
    assert diverging.tx_angular_tolerance_rad * 1e3 == pytest.approx(
        constants.DIVERGING_20MM_TX_TOLERANCE_MRAD, rel=0.1)
    assert diverging.rx_angular_tolerance_rad * 1e3 == pytest.approx(
        constants.DIVERGING_20MM_RX_TOLERANCE_MRAD, rel=0.1)
    # The trade-off's shape: diverging wins tolerance by >2x on both
    # axes; collimated wins power by >20 dB.
    assert (diverging.tx_angular_tolerance_rad
            > 2 * collimated.tx_angular_tolerance_rad)
    assert (diverging.rx_angular_tolerance_rad
            > 2 * collimated.rx_angular_tolerance_rad)
    assert collimated.peak_power_dbm - diverging.peak_power_dbm > 20.0
