"""Section 5.2: tracking frequency, TP latency, and TP accuracy.

Paper observations regenerated here:

* VRH-T reports every 12-13 ms, 0.7 % of the time 14-15 ms;
* pointing computation takes microseconds; mirror rotation + DAC
  conversion ~1-2 ms;
* in 10/10 lock-and-realign trials the link reaches optimal
  throughput, with received power a few dB below the aligned peak.
"""

import time

import numpy as np

from repro import constants
from repro.core import point
from repro.reporting import TextTable, fmt_float


def realign_trials(testbed, system, count=10):
    """The paper's test: move randomly, lock, realign, measure."""
    outcomes = []
    for pose in testbed.evaluation_poses(count):
        command = point(system, testbed.tracker.report(pose))
        testbed.apply_command(command)
        state = testbed.channel.evaluate(pose)
        peak = testbed.design.peak_power_dbm(state.range_m)
        outcomes.append((state.connected,
                         state.received_power_dbm, peak,
                         command.iterations))
    return outcomes


def test_sec52_tp_accuracy(benchmark, rig_10g):
    testbed, session = rig_10g
    system = session.system

    # Tracking-period statistics.
    periods = np.array([testbed.tracker.next_period_s()
                        for _ in range(20000)])
    slow_fraction = float(np.mean(periods >= 0.014))

    # Pointing compute latency: the real-time cost of P.
    pose = testbed.evaluation_poses(1)[0]
    report = testbed.tracker.report(pose)
    result = benchmark(point, system, report)
    start = time.perf_counter()
    point(system, report)
    compute_s = time.perf_counter() - start

    trials = realign_trials(testbed, system)
    connected = sum(1 for ok, *_ in trials if ok)
    excesses = [peak - power for _, power, peak, _ in trials]
    iterations = [it for *_, it in trials]

    table = TextTable(["metric", "measured", "paper"])
    table.add_row("tracking period (ms)",
                  f"{periods.min() * 1e3:.1f}-{periods.max() * 1e3:.1f}",
                  "12-15")
    table.add_row("slow-report fraction",
                  fmt_float(slow_fraction * 100, 2) + " %", "0.7 %")
    table.add_row("pointing compute (ms)", fmt_float(compute_s * 1e3, 2),
                  "<< 1 (usec-scale on native code)")
    table.add_row("actuation latency (ms)",
                  fmt_float((constants.DAQ_LATENCY_S
                             + constants.CONTROL_CHANNEL_LATENCY_S) * 1e3,
                            1),
                  "1-2")
    table.add_row("realign trials at optimal", f"{connected}/10", "10/10")
    table.add_row("power below peak (dB)",
                  fmt_float(float(np.mean(excesses)), 1), "3-4")
    table.add_row("pointing iterations",
                  f"{min(iterations)}-{max(iterations)}", "2-5")
    print("\nSection 5.2 -- tracking and pointing performance")
    print(table.render())

    assert 0.012 <= periods.min() and periods.max() <= 0.015
    assert 0.002 <= slow_fraction <= 0.015
    assert connected == 10
    assert float(np.mean(excesses)) < 6.0
    assert max(iterations) <= 8
