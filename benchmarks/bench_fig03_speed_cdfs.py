"""Fig. 3: CDFs of VRH linear and angular speeds during normal use.

Paper: "during normal use, the angular and linear speeds of a VRH were
at most 19 deg/s and 14 cm/s respectively."  Regenerated from the
NORMAL_USE synthetic traces; the printed series are the CDF curves.
"""

import numpy as np

from repro import constants
from repro.motion import NORMAL_USE, cdf, generate_dataset, measure_trace
from repro.reporting import TextTable, fmt_float

PERCENTILES = (10, 25, 50, 75, 90, 95, 99, 100)


def speed_samples():
    traces = generate_dataset(viewers=15, videos=6, profile=NORMAL_USE)
    series = [measure_trace(t) for t in traces]
    linear = np.concatenate([s.linear_m_s for s in series])
    angular = np.concatenate([s.angular_deg_s for s in series])
    return linear, angular


def test_fig3_speed_cdfs(benchmark):
    linear, angular = speed_samples()
    lin_values, lin_fractions = benchmark(cdf, linear)
    ang_values, ang_fractions = cdf(angular)

    table = TextTable(["percentile", "linear cm/s", "angular deg/s"])
    for p in PERCENTILES:
        table.add_row(f"p{p}",
                      fmt_float(np.percentile(linear, p) * 100.0),
                      fmt_float(np.percentile(angular, p)))
    print("\nFig. 3 -- VRH speed CDFs during normal use "
          "(paper maxima: 14 cm/s, 19 deg/s)")
    print(table.render())

    # Shape assertions: the paper's "at most" bounds.
    assert lin_values[-1] <= constants.REQUIRED_LINEAR_SPEED_M_S * 1.25
    assert ang_values[-1] <= constants.REQUIRED_ANGULAR_SPEED_DEG_S * 1.15
    # The CDFs are proper CDFs.
    assert lin_fractions[-1] == 1.0
    assert np.all(np.diff(lin_values) >= 0)
    assert np.all(np.diff(ang_values) >= 0)
    # Most time is spent nearly still (the paper's curves rise fast).
    assert np.percentile(angular, 50) < 5.0
