"""Shared helpers for the Fig. 13/14/15 throughput-vs-speed benches."""

import numpy as np

from repro.motion import measure_profile
from repro.reporting import TextTable, fmt_float


def joined_series(profile, result, window_s=0.05):
    """Align per-window speeds with per-window throughput and power.

    Returns parallel arrays (times, linear m/s, angular rad/s,
    throughput Gbps, min power dBm per window).
    """
    speeds = measure_profile(profile, window_s=window_s,
                             duration_s=result.sample_times_s[-1])
    n = min(len(speeds.times_s), len(result.windows))
    throughput = np.array(
        [w.throughput_gbps for w in result.windows[:n]])
    power = np.empty(n)
    samples_per_window = max(
        int(round(window_s / (result.sample_times_s[1]
                              - result.sample_times_s[0]))), 1)
    for i in range(n):
        lo = i * samples_per_window
        hi = min(lo + samples_per_window, len(result.power_dbm))
        power[i] = result.power_dbm[lo:hi].min() if hi > lo else np.nan
    return (speeds.times_s[:n], speeds.linear_m_s[:n],
            speeds.angular_rad_s[:n], throughput, power)


def print_speed_bins(label, speed_values, throughput, power,
                     bins, unit, scale=1.0):
    """Summarize throughput/power by speed bin, like reading the
    figure's scatter off its axes."""
    table = TextTable([f"speed ({unit})", "windows",
                       "median tput (Gbps)", "min tput (Gbps)",
                       "min power (dBm)"])
    for lo, hi in zip(bins[:-1], bins[1:]):
        mask = (speed_values * scale >= lo) & (speed_values * scale < hi)
        if not np.any(mask):
            continue
        table.add_row(f"{lo:g}-{hi:g}",
                      str(int(mask.sum())),
                      fmt_float(float(np.median(throughput[mask])), 1),
                      fmt_float(float(throughput[mask].min()), 1),
                      fmt_float(float(np.nanmin(power[mask])), 1))
    print(f"\n{label}")
    print(table.render())
