"""Table 3: summary of requirements vs tolerated speeds.

Paper:

                  Reqs.   10G pure   10G mixed   25G pure   25G mixed
    Linear (cm/s)   14       33         30          25        15
    Angular (deg/s) 19     16-18        16          25       15-20
"""

import numpy as np

from repro import constants
from repro.simulate import surviving_speed_threshold
from repro.reporting import TextTable
from seriesutil import joined_series


def mixed_tolerated(profile, result, optimal):
    """Highest simultaneous speeds with optimal throughput.

    Reads the hand-held ramp: the largest linear/angular window speeds
    seen strictly before the first sub-optimal window.
    """
    times, linear, angular, throughput, _ = joined_series(profile,
                                                          result)
    below = np.flatnonzero(throughput < 0.9 * optimal)
    end = below[0] if below.size else len(throughput)
    if end == 0:
        return 0.0, 0.0
    return float(linear[:end].max()), float(angular[:end].max())


def test_table3_summary(benchmark, rig_10g, rig_25g, linear_run_10g,
                        angular_run_10g, arbitrary_run_10g,
                        linear_run_25g, angular_run_25g,
                        arbitrary_run_25g):
    t10, _ = rig_10g
    t25, _ = rig_25g
    opt10 = t10.design.sfp.optimal_throughput_gbps
    opt25 = t25.design.sfp.optimal_throughput_gbps

    lin10 = surviving_speed_threshold(
        linear_run_10g[0].schedule, linear_run_10g[1].windows, opt10)
    ang10 = surviving_speed_threshold(
        angular_run_10g[0].schedule, angular_run_10g[1].windows, opt10)
    lin25 = surviving_speed_threshold(
        linear_run_25g[0].schedule, linear_run_25g[1].windows, opt25)
    ang25 = surviving_speed_threshold(
        angular_run_25g[0].schedule, angular_run_25g[1].windows, opt25)
    mixed10 = benchmark.pedantic(
        mixed_tolerated, args=(arbitrary_run_10g[0],
                               arbitrary_run_10g[1], opt10),
        rounds=1, iterations=1)
    mixed25 = mixed_tolerated(arbitrary_run_25g[0],
                              arbitrary_run_25g[1], opt25)

    table = TextTable(["speed", "req.", "10G pure", "10G mixed",
                       "25G pure", "25G mixed", "paper 10G/25G pure"])
    table.add_row("linear (cm/s)", "14",
                  f"{lin10 * 100:.0f}", f"{mixed10[0] * 100:.0f}",
                  f"{lin25 * 100:.0f}", f"{mixed25[0] * 100:.0f}",
                  "33 / 25")
    table.add_row("angular (deg/s)", "19",
                  f"{np.degrees(ang10):.0f}",
                  f"{np.degrees(mixed10[1]):.0f}",
                  f"{np.degrees(ang25):.0f}",
                  f"{np.degrees(mixed25[1]):.0f}",
                  "16-18 / 25")
    print("\nTable 3 -- requirement vs tolerated speeds")
    print(table.render())

    # Shape assertions.
    # Every pure tolerated linear speed beats the 14 cm/s requirement.
    assert lin10 * 100 >= constants.REQUIRED_LINEAR_SPEED_M_S * 100
    assert lin25 * 100 >= constants.REQUIRED_LINEAR_SPEED_M_S * 100
    # Pure angular speeds land near the 19 deg/s requirement.
    assert np.degrees(ang10) >= 10.0
    assert np.degrees(ang25) >= 14.0
    # Mixed tolerances do not exceed pure ones (10G; the same motion
    # spends the same budget on two axes at once).
    assert mixed10[0] <= lin10 + 0.05
    # 25G vs 10G ordering as in the paper's summary.
    assert lin25 <= lin10
    assert ang25 >= ang10
