"""Fig. 13: 10G throughput and received power vs pure motions.

Paper: "the link throughput remains optimal at 9.4 Gbps for linear
speeds below 33 cm/sec (and for up to 39.15 cm/sec)" and "for angular
speeds below 16-18 deg/sec (and for up to 18.95 deg/sec)".  The bench
replays the same rail / rotation-stage stroke ramps through the full
closed loop and reads the thresholds off the throughput windows.
"""

import numpy as np

from repro.simulate import surviving_speed_threshold
from seriesutil import joined_series, print_speed_bins

LINEAR_BINS_CM_S = [0, 10, 20, 30, 40, 50, 60]
ANGULAR_BINS_DEG_S = [0, 6, 10, 14, 18, 22, 26, 30]


def test_fig13_linear(benchmark, rig_10g, linear_run_10g):
    testbed, _ = rig_10g
    profile, result = linear_run_10g
    times, linear, _, throughput, power = benchmark(
        joined_series, profile, result)
    print_speed_bins(
        "Fig. 13 (top) -- 10G throughput vs linear speed "
        "(paper: optimal below ~33-39 cm/s)",
        linear, throughput, power, LINEAR_BINS_CM_S, "cm/s", scale=100.0)

    optimal = testbed.design.sfp.optimal_throughput_gbps
    threshold = surviving_speed_threshold(profile.schedule,
                                          result.windows, optimal)
    print(f"tolerated linear speed: {threshold * 100:.0f} cm/s "
          f"(paper: 33-39)")
    # Shape: comfortably above the 14 cm/s requirement, below ~60 cm/s,
    # and slow strokes run at the full 9.4 Gbps.
    assert 0.22 <= threshold <= 0.60
    slow = linear < 0.15
    moving_slow = slow & (linear > 0.02)
    assert np.median(throughput[moving_slow]) > 0.95 * optimal


def test_fig13_angular(benchmark, rig_10g, angular_run_10g):
    testbed, _ = rig_10g
    profile, result = angular_run_10g
    _, _, angular, throughput, power = benchmark(
        joined_series, profile, result)
    print_speed_bins(
        "Fig. 13 (bottom) -- 10G throughput vs angular speed "
        "(paper: optimal below ~16-19 deg/s)",
        angular, throughput, power, ANGULAR_BINS_DEG_S, "deg/s",
        scale=float(np.degrees(1.0)))

    optimal = testbed.design.sfp.optimal_throughput_gbps
    threshold = np.degrees(surviving_speed_threshold(
        profile.schedule, result.windows, optimal))
    print(f"tolerated angular speed: {threshold:.0f} deg/s "
          f"(paper: 16-19)")
    # Shape: close to the 19 deg/s requirement, far below the GM's
    # mechanical limits; slow rotations keep optimal throughput.
    assert 10.0 <= threshold <= 26.0
    slow = np.degrees(angular) < 9.0
    moving_slow = slow & (np.degrees(angular) > 1.0)
    assert np.median(throughput[moving_slow]) > 0.95 * optimal


def test_fig13_power_degrades_gracefully(benchmark, angular_run_10g,
                                          rig_10g):
    # Paper: received power stays above the noise floor even at speeds
    # well past the throughput threshold.
    profile, result = angular_run_10g
    benchmark(lambda: float(result.power_dbm.min()))
    assert result.power_dbm.min() >= -42.0
    # And power is near peak when still.
    testbed, _ = rig_10g
    assert result.power_dbm.max() > testbed.design.peak_power_dbm(
        1.75) - 3.0
