"""Extension bench: VR streaming over the Cyclops link (Section 2.1).

Quantifies the paper's motivation end to end:

* which VR formats each link carries raw (the 24 Gbps / 200 Gbps /
  Tbps ladder of Section 2.1);
* motion-to-photon latency, raw vs compressed (why the paper wants
  bandwidth instead of codecs);
* frame-level impact of the Section 5.4 off-slots (the paper's
  user-experience argument about scattered vs clustered losses).
"""

from repro import constants
from repro.motion import generate_trace
from repro.reporting import TextTable, fmt_float
from repro.simulate import simulate_trace
from repro.stream import (
    CATALOGUE,
    UHD_8K_30,
    UHD_8K_30_YUV420,
    motion_to_photon_s,
    stream_over_link,
)

#: Raw video displays as slices arrive; codecs buffer whole frames.
#: 64 slices per frame is a typical scanline-group granularity.
SLICES_PER_FRAME = 64


def test_format_ladder(benchmark):
    links = {"WiFi-class (0.5 Gbps)": 0.5,
             "mmWave 802.11ad (7 Gbps)": 7.0,
             "Cyclops 10G (9.4 Gbps)": 9.4,
             "Cyclops 25G (23.5 Gbps)": 23.5,
             "SFP ceiling (400 Gbps)": 400.0}
    rates = benchmark(
        lambda: [fmt.raw_bitrate_gbps for fmt in CATALOGUE])
    table = TextTable(["format", "raw Gbps"] + list(links))
    for fmt in CATALOGUE:
        table.add_row(fmt.name.split(" (")[0],
                      fmt_float(fmt.raw_bitrate_gbps, 1),
                      *("yes" if fmt.fits_raw(rate) else "no"
                        for rate in links.values()))
    print("\nExtension -- which links carry which VR formats raw "
          "(Section 2.1's ladder)")
    print(table.render())

    # Shape: the ladder the paper's introduction climbs.
    assert not UHD_8K_30.fits_raw(7.0)          # mmWave cannot
    assert UHD_8K_30_YUV420.fits_raw(23.5)      # the 25G carries 4:2:0
    # Full-RGB 8K30 (~23.9 Gbps) just misses even 23.5 Gbps -- the
    # "tens to hundreds of Gbps" escalation is real.
    assert not UHD_8K_30.fits_raw(23.5)
    assert not CATALOGUE[-1].fits_raw(400)      # life-like needs more
    assert rates == sorted(rates)


def test_motion_to_photon(benchmark):
    # Raw streaming is slice-pipelined: photons can start as soon as
    # the first slices land.  A codec must buffer and decode whole
    # frames on the headset -- the paper's "decoding burden ... high
    # motion-to-photon latency, consequently motion sickness".
    raw_transmission = (UHD_8K_30.bits_per_frame / SLICES_PER_FRAME
                        / 23.5e9)
    raw = benchmark(motion_to_photon_s, 0.0125, 0.005,
                    raw_transmission)
    codec_transmission = UHD_8K_30.bits_per_frame / 50.0 / 23.5e9
    compressed = motion_to_photon_s(
        0.0125, 0.005, codec_transmission, codec_latency_s=0.035)
    print(f"\nmotion-to-photon, 8K30 over the 25G link: "
          f"raw {raw * 1e3:.1f} ms vs compressed "
          f"{compressed * 1e3:.1f} ms")
    assert raw < compressed
    assert raw < 0.040


def test_frame_impact_of_off_slots(benchmark):
    # Take a busy trace, run the Section 5.4 replay, and stream 8K30
    # over the resulting slot series.
    trace = generate_trace(viewer=7, video=3)
    result = simulate_trace(trace)
    # 8K 4:2:0 fits the 25G link with headroom (full-RGB 8K30 at
    # 23.9 Gbps slightly exceeds even the paper's own 23.5 Gbps).
    report = benchmark.pedantic(
        stream_over_link, args=(UHD_8K_30_YUV420, result.connected,
                                constants.TRACE_SLOT_S, 23.5),
        kwargs={"deadline_frames": 2.0}, rounds=1, iterations=1)

    table = TextTable(["metric", "value"])
    table.add_row("link availability (%)",
                  fmt_float(result.availability * 100, 2))
    table.add_row("frames", str(report.frames))
    table.add_row("late frames (%)",
                  fmt_float(report.late_fraction * 100, 2))
    table.add_row("p99 delivery latency (ms)",
                  fmt_float(report.latency_percentile_s(99) * 1e3, 1))
    table.add_row("longest stutter (frames)",
                  str(report.longest_late_burst()))
    print("\nExtension -- frame-level impact of Section 5.4 off-slots "
          "(8K 4:2:0 raw over 25G)")
    print(table.render())

    # Shape: scattered millisecond off-slots barely dent frame
    # delivery -- the paper's user-experience claim made concrete.
    assert report.late_fraction <= (1.0 - result.availability) * 4 + 0.02
    assert report.longest_late_burst() < 90
