"""Extension bench: VRH-T drift and mapping-only re-training
(Section 4's deployment story).

"In case of re-deployment or VRH-T drift, the only re-training
(calibration) that needs to be re-done is the mapping step."  The
bench injects a realistic tracker re-anchor, shows the stale system
fail, and times the two recovery options: the cheap mapping refit the
paper prescribes vs redoing the full pipeline.
"""

import time

import numpy as np

from repro.core import point, remap
from repro.reporting import TextTable, fmt_float
from repro.simulate import Testbed

DRIFT_TRANSLATION_M = (0.05, -0.03, 0.02)
DRIFT_YAW_RAD = np.radians(4.0)


def quality(testbed, system, trials=8):
    connected = 0
    excesses = []
    for pose in testbed.evaluation_poses(trials):
        command = point(system, testbed.tracker.report(pose))
        try:
            testbed.apply_command(command)
        except ValueError:
            excesses.append(60.0)
            continue
        state = testbed.channel.evaluate(pose)
        connected += state.connected
        excesses.append(testbed.design.peak_power_dbm(state.range_m)
                        - state.received_power_dbm)
    return connected / trials, float(np.mean(excesses))


def drift_and_recover():
    testbed = Testbed(seed=3)
    t0 = time.perf_counter()
    outcome = testbed.calibrate()
    full_calibration_s = time.perf_counter() - t0
    before = quality(testbed, outcome.system)
    testbed.apply_tracker_drift(DRIFT_TRANSLATION_M, DRIFT_YAW_RAD)
    stale = quality(testbed, outcome.system)
    t0 = time.perf_counter()
    fresh = testbed.collect_mapping_samples(12)
    recovered_system = remap(outcome.system, fresh)
    remap_s = time.perf_counter() - t0
    recovered = quality(testbed, recovered_system)
    return (before, stale, recovered, full_calibration_s, remap_s)


def test_ext_retraining(benchmark):
    before, stale, recovered, full_s, remap_s = benchmark.pedantic(
        drift_and_recover, rounds=1, iterations=1)
    table = TextTable(["state", "connected", "excess (dB)"])
    table.add_row("freshly calibrated", fmt_float(before[0], 2),
                  fmt_float(before[1], 1))
    table.add_row("after VRH-T drift", fmt_float(stale[0], 2),
                  fmt_float(stale[1], 1))
    table.add_row("after mapping-only refit", fmt_float(recovered[0], 2),
                  fmt_float(recovered[1], 1))
    print("\nExtension -- VRH-T drift and Section 4.2-only re-training")
    print(table.render())
    print(f"full pipeline: {full_s:.1f} s (compute) + 266x2 board "
          f"samples; mapping refit: {remap_s:.1f} s + 12 aligned "
          f"samples")

    # The deployment story, end to end.
    assert before[0] == 1.0
    assert stale[0] < 0.5
    assert recovered[0] == 1.0
    # And the refit is much cheaper than the full pipeline.
    assert remap_s < full_s
