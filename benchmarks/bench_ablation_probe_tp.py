"""Ablation: feedback (probe) TP vs Cyclops's learned TP (Section 3).

The paper's central design argument: "photodiode- or probe-based
tracking is challenging to adapt here ... the associated pointing
technique will incur prohibitively high latency due to the need to
jointly optimize the TX and RX steering parameters."  We give the
feedback approach its best shot -- adaptive coordinate dither at the
hardware's real probe latency -- and sweep rotation speed on both.
"""

import numpy as np

from repro.baselines import ProbeTracker
from repro.motion import RotationStage
from repro.reporting import TextTable, fmt_float
from repro.simulate import PrototypeSession, Testbed

SPEEDS_DEG_S = (4.0, 8.0, 12.0, 16.0)
RUN_S = 5.0


def uptime_sweep():
    """Per-speed uptime for both TP mechanisms."""
    stage = RotationStage(axis=[0.0, 0.0, 1.0],
                          range_rad=np.radians(14.0))
    probe_uptime = {}
    for speed in SPEEDS_DEG_S:
        bed = Testbed(seed=3)
        profile = stage.stroke_profile(bed.home_pose,
                                       [np.radians(speed)])
        result = ProbeTracker(bed).run(profile, duration_s=RUN_S)
        probe_uptime[speed] = result.uptime_fraction

    bed = Testbed(seed=3)
    outcome = bed.calibrate()
    session = PrototypeSession(bed, outcome.system)
    learned_uptime = {}
    for speed in SPEEDS_DEG_S:
        profile = stage.stroke_profile(bed.home_pose,
                                       [np.radians(speed)])
        result = session.run(profile, duration_s=RUN_S)
        learned_uptime[speed] = result.uptime_fraction
    return probe_uptime, learned_uptime


def test_ablation_probe_tp(benchmark):
    probe, learned = benchmark.pedantic(uptime_sweep, rounds=1,
                                        iterations=1)
    table = TextTable(["rotation (deg/s)", "probe-TP uptime (%)",
                       "Cyclops uptime (%)"])
    for speed in SPEEDS_DEG_S:
        table.add_row(fmt_float(speed, 0),
                      fmt_float(probe[speed] * 100, 1),
                      fmt_float(learned[speed] * 100, 1))
    print("\nAblation -- feedback (probe) TP vs learned TP")
    print(table.render())

    # Both track slow motion.
    assert probe[4.0] == 1.0
    assert learned[4.0] == 1.0
    # The learned pointer survives speeds the probe tracker cannot:
    # the paper's reason for building Cyclops's TP at all.
    assert learned[16.0] == 1.0
    assert probe[16.0] < 0.9
    assert probe[12.0] < learned[12.0] + 1e-9
