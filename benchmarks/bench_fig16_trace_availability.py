"""Fig. 16 + Section 5.4: trace-driven availability of the 25G link.

Paper: "our 25Gbps link prototype is operational in 98.6% of the
timeslots over all the 500 traces, with the operation percentage
varying from 99.98 to 95%", effective bandwidth ~23 Gbps, and most
(>60 %) off-slots occur in frames with fewer than 10 off-slots.
"""

from repro import constants
from repro.motion import generate_dataset
from repro.reporting import AsciiPlot, TextTable, fmt_float
from repro.simulate import analyze, report, simulate_dataset


def full_dataset_run():
    traces = generate_dataset(viewers=50, videos=10)
    results = simulate_dataset(traces)
    return results


def test_fig16_availability(benchmark):
    results = benchmark.pedantic(full_dataset_run, rounds=1,
                                 iterations=1)
    availability = report(results)
    clustering = analyze(results)

    disconnected, fractions = availability.disconnection_cdf()
    table = TextTable(["CDF fraction", "disconnected (%)"])
    for f in (0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.00):
        idx = min(int(f * len(disconnected)), len(disconnected) - 1)
        table.add_row(fmt_float(f, 2), fmt_float(disconnected[idx], 3))
    print("\nFig. 16 -- CDF of per-trace disconnection percentage "
          "(500 traces)")
    print(table.render())
    plot = AsciiPlot(width=56, height=10,
                     x_label="disconnected (%)", y_label="CDF")
    plot.add_series("traces", disconnected, fractions)
    print(plot.render())

    effective = availability.effective_bandwidth_gbps(
        constants.SFP_25G_OPTIMAL_THROUGHPUT_GBPS)
    scattered = clustering.fraction_in_frames_below(10)
    print(f"overall availability: "
          f"{availability.overall_availability * 100:.2f} % "
          f"(paper: 98.6)")
    print(f"range across traces: {availability.worst * 100:.2f} - "
          f"{availability.best * 100:.2f} % (paper: 95 - 99.98)")
    print(f"effective bandwidth: {effective:.1f} Gbps (paper: ~23)")
    print(f"off-slots in frames with <10 offs: {scattered * 100:.0f} % "
          f"(paper: >60)")

    assert len(results) == constants.TRACE_COUNT
    # Headline shape: high-90s overall availability.
    assert 0.97 <= availability.overall_availability <= 0.999
    # Wide spread across traces, with the best essentially perfect.
    assert availability.best >= 0.9995
    assert 0.90 <= availability.worst <= 0.99
    # Effective bandwidth near the optimal 23.5 Gbps.
    assert effective > 22.0
    # Off-slots are mostly scattered, not clustered.
    assert scattered > 0.45
