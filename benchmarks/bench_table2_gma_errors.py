"""Table 2: errors of the first and combined GMA-model stages.

Paper values:

                      Avg. error   Max. error
    First stage (TX)    1.24 mm      5.30 mm
    First stage (RX)    1.90 mm      5.41 mm
    Combined (TX)       2.18 mm      4.07 mm
    Combined (RX)       4.54 mm      6.50 mm
"""

import numpy as np
import pytest

from repro.core import (
    BoardRig,
    evaluate_fit,
    interior_grid_points,
    summarize,
)
from repro.core.errors import beam_error_m
from repro.reporting import TextTable, fmt_float

EVAL_RANGE_M = 1.75


def stage1_errors(testbed, calibration):
    """Held-out board-prediction errors for both fitted models."""
    centers = interior_grid_points()[:60] + np.array([0.0127, 0.0127])
    summaries = {}
    for name, hardware, model in (
            ("tx", testbed.tx_hardware, calibration.tx_kspace_model),
            ("rx", testbed.rx_hardware, calibration.rx_kspace_model)):
        rig = BoardRig(hardware, rng=np.random.default_rng(17))
        errors = evaluate_fit(model, rig, centers)
        summaries[name] = summarize(f"stage1-{name}", errors)
    return summaries


def combined_errors(testbed, calibration):
    """Learned VR-space beam predictions vs physical truth."""
    system = calibration.system
    vr = testbed.world_to_vr()
    errors = {"tx": [], "rx": []}
    for pose in testbed.evaluation_poses(12):
        report = testbed.tracker.report(pose)
        rx_model = system.rx_model_vr(report)
        for v1, v2 in [(-1.5, 0.5), (0.0, 0.0), (1.0, -1.0), (2.0, 1.5)]:
            testbed.tx_hardware.apply(v1, v2)
            truth = vr.compose(testbed.tx_kspace_to_world).apply_ray(
                testbed.tx_hardware.output_beam())
            errors["tx"].append(beam_error_m(
                system.tx_model_vr.beam(v1, v2), truth, EVAL_RANGE_M))
            testbed.rx_hardware.apply(v1, v2)
            truth = vr.compose(
                testbed.rx_assembly.kspace_to_world(pose)).apply_ray(
                    testbed.rx_hardware.output_beam())
            errors["rx"].append(beam_error_m(
                rx_model.beam(v1, v2), truth, EVAL_RANGE_M))
    return {name: summarize(f"combined-{name}", errs)
            for name, errs in errors.items()}


@pytest.fixture(scope="module")
def calibrated():
    from repro.simulate import Testbed
    testbed = Testbed(seed=3)
    return testbed, testbed.calibrate()


def test_table2(benchmark, calibrated):
    testbed, calibration = calibrated
    stage1 = benchmark.pedantic(stage1_errors, args=(testbed, calibration),
                                rounds=1, iterations=1)
    combined = combined_errors(testbed, calibration)

    table = TextTable(["stage", "avg (mm)", "max (mm)", "paper avg/max"])
    table.add_row("First Stage (TX)", fmt_float(stage1["tx"].average_mm),
                  fmt_float(stage1["tx"].maximum_mm), "1.24 / 5.30")
    table.add_row("First Stage (RX)", fmt_float(stage1["rx"].average_mm),
                  fmt_float(stage1["rx"].maximum_mm), "1.90 / 5.41")
    table.add_row("Combined (TX)", fmt_float(combined["tx"].average_mm),
                  fmt_float(combined["tx"].maximum_mm), "2.18 / 4.07")
    table.add_row("Combined (RX)", fmt_float(combined["rx"].average_mm),
                  fmt_float(combined["rx"].maximum_mm), "4.54 / 6.50")
    print("\nTable 2 -- GMA model estimation errors")
    print(table.render())

    # Shape: every error is millimetric (the regime that makes the link
    # tolerances workable).
    for summary in list(stage1.values()) + list(combined.values()):
        assert 0.1 <= summary.average_mm <= 8.0
        assert summary.maximum_mm <= 15.0
    # Combined error exceeds stage-1 error (stage 2 adds error), and the
    # RX side is the worse of the two, as in the paper.
    assert combined["tx"].average_mm >= 0.5 * stage1["tx"].average_mm
    assert combined["rx"].average_mm >= 0.8 * combined["tx"].average_mm
