"""Ablations: the alternatives the paper rules out (footnotes 3 and 5).

* Direct regression of G' -- works on the sampled surface, errs by
  centimeters off it ("even several hundred training samples yielded
  an error of a few cms").
* Lookup-table / directly-learned P -- the sample-count arithmetic
  behind "it would take many years to collect the training data".
* A static (no-TP) link -- why the TP mechanism exists at all.
"""

import numpy as np

from repro.baselines import (
    DirectInverseRegressor,
    LookupFeasibility,
    run_static,
)
from repro.core import GmaModel
from repro.galvo import canonical_gma
from repro.motion import LinearRail
from repro.reporting import TextTable, fmt_float


def direct_inverse_errors():
    """Miss distances of the regressed G' on and off the board."""
    model = GmaModel(canonical_gma(np.radians(1.0)))
    targets, voltages = [], []
    for v1 in np.linspace(-4, 4, 16):
        for v2 in np.linspace(-4, 4, 16):
            targets.append(model.beam(float(v1), float(v2)).point_at(1.5))
            voltages.append([v1, v2])
    regressor = DirectInverseRegressor(degree=3).fit(
        np.array(targets), np.array(voltages))

    def miss_at(depth):
        errors = []
        for v1, v2 in [(1.2, -0.6), (-2.3, 1.8), (0.4, 3.1), (3.3, 0.2)]:
            probe = model.beam(v1, v2).point_at(depth)
            v = regressor.predict([probe])[0]
            beam = model.beam(float(v[0]), float(v[1]))
            errors.append(beam.distance_to_point(probe))
        return float(np.mean(errors))

    return {depth: miss_at(depth) for depth in (1.5, 1.3, 1.0, 0.7)}


def test_ablation_direct_inverse(benchmark):
    errors = benchmark(direct_inverse_errors)
    table = TextTable(["target depth (m)", "avg miss (mm)"])
    for depth, miss in sorted(errors.items(), reverse=True):
        table.add_row(fmt_float(depth, 1), fmt_float(miss * 1e3, 2))
    print("\nAblation -- directly regressed G' "
          "(trained on the 1.5 m board only)")
    print(table.render())
    # On the training surface: interpolation is fine (sub-mm/mm).
    assert errors[1.5] < 2e-3
    # Off it: at least centimeter-scale, the paper's "few cms" (the
    # regressor has learned nothing about depth, so extrapolation is
    # wild rather than gracefully degrading).
    assert errors[1.3] > 5e-3
    assert errors[1.0] > 10e-3
    assert errors[0.7] > 10e-3


def test_ablation_lookup_feasibility(benchmark):
    feasibility = LookupFeasibility()
    benchmark(feasibility.table_entries)
    table = TextTable(["quantity", "value"])
    table.add_row("P domain size (mm accuracy, 1 m^3)",
                  f"{feasibility.table_entries():.1e}")
    table.add_row("years to tabulate",
                  f"{feasibility.collection_years():.1e}")
    table.add_row("years for a 10^6-sample direct fit",
                  fmt_float(feasibility.collection_years(1e6), 1))
    print("\nAblation -- lookup-table / direct-P feasibility "
          "(paper footnotes 3 and 5)")
    print(table.render())
    assert feasibility.table_entries() >= 1e17
    assert feasibility.collection_years(1e6) > 1.0


def test_ablation_static_link(benchmark, rig_10g):
    testbed, _ = rig_10g
    rail = LinearRail(axis=[1.0, 0.0, 0.0], length_m=0.3)
    profile = rail.stroke_profile(testbed.home_pose, [0.10])
    static = benchmark.pedantic(
        run_static, args=(testbed, profile),
        kwargs={"duration_s": 3.0}, rounds=1, iterations=1)
    print(f"\nAblation -- static (no-TP) link under a slow 10 cm/s "
          f"stroke: uptime {static.uptime_fraction * 100:.0f} % "
          f"(with TP: 100 %)")
    # Even the requirement-level motion kills a static link quickly.
    assert static.uptime_fraction < 0.5
