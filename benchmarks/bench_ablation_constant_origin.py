"""Ablation: constant-origin GMA model (footnote 6 / the distortion
effect).

"In simpler applications ... p may be assumed to be a constant, but
in reality it depends on the voltages -- this dependence results in
distortion and needs to be considered for high accuracy."
"""

import numpy as np

from repro.baselines import ConstantOriginModel
from repro.core import GmaModel
from repro.galvo import canonical_gma
from repro.geometry import Plane
from repro.reporting import TextTable, fmt_float

BOARD = Plane([0.0, 0.0, 1.5], [0.0, 0.0, 1.0])


def distortion_profile():
    model = GmaModel(canonical_gma(np.radians(1.0)))
    ablated = ConstantOriginModel(model)
    return {v: ablated.board_error_m(v, v, BOARD)
            for v in (0.0, 1.0, 2.0, 3.0, 4.0, 5.0)}


def test_ablation_constant_origin(benchmark):
    errors = benchmark(distortion_profile)
    table = TextTable(["voltage (V)", "steering (deg opt)",
                       "const-origin error (mm)"])
    for v, err in errors.items():
        table.add_row(fmt_float(v, 1), fmt_float(2 * v, 0),
                      fmt_float(err * 1e3, 3))
    print("\nAblation -- cost of assuming a constant beam origin "
          "(footnote 6)")
    print(table.render())

    values = list(errors.values())
    # Exact at rest, growing with steering angle.
    assert values[0] < 1e-12
    assert all(b >= a for a, b in zip(values, values[1:]))
    # At the cone edge the error is comparable to the paper's whole
    # accuracy budget (millimetres) -- which is why Cyclops models it.
    assert values[-1] > 0.5e-3
