"""Extension bench: 40G multi-wavelength feasibility (Section 6).

"For higher-bandwidth (40Gbps+) links, our designed TP mechanism
remains unchanged; however, the link would likely need customized
collimators that can efficiently capture a range of wavelengths."
The bench quantifies that sentence: how much movement tolerance (and
therefore tolerated head speed) the chromatic penalty of commodity
collimators costs a CWDM4 40G link, and at what chromatic coefficient
the outer lanes stop closing at all.
"""

import numpy as np

from repro.analysis import BudgetInputs, angular_speed_limit_rad_s
from repro.link import (
    MultiWavelengthDesign,
    link_25g,
    link_40g_commodity,
    link_40g_custom,
)
from repro.reporting import TextTable, fmt_float

CHROMA_DB_PER_NM = (0.015, 0.06, 0.12, 0.20, 0.30)


def tolerated_speed_deg_s(design: MultiWavelengthDesign) -> float:
    """Closed-form tolerated rotation speed for the worst lane."""
    base = design.base
    margin = design.worst_lane_margin_db()
    if margin <= 0:
        return 0.0
    inputs = BudgetInputs(
        margin_db=margin,
        lateral_width_m=base.lateral_width_m(base.design_range_m),
        angular_width_rad=base.angular_width_rad(base.design_range_m),
        curvature_radius_m=base.beam.curvature_radius_m(
            base.design_range_m),
        staleness_s=0.0145,
        residual_lateral_m=1.5e-3,
        residual_angular_rad=1.5e-3)
    return float(np.degrees(angular_speed_limit_rad_s(inputs)))


def chroma_sweep():
    rows = []
    for chroma in CHROMA_DB_PER_NM:
        design = MultiWavelengthDesign(
            name=f"40G @ {chroma} dB/nm", base=link_25g(),
            chromatic_db_per_nm=chroma)
        rows.append((chroma, design.worst_lane_margin_db(),
                     design.worst_lane_angular_tolerance_rad(),
                     tolerated_speed_deg_s(design)))
    return rows


def test_ext_40g(benchmark):
    rows = benchmark(chroma_sweep)
    table = TextTable(["chroma (dB/nm)", "worst-lane margin (dB)",
                       "RX tol (mrad)", "tolerated speed (deg/s)"])
    for chroma, margin, tol, speed in rows:
        table.add_row(fmt_float(chroma, 3), fmt_float(margin, 1),
                      fmt_float(tol * 1e3, 2), fmt_float(speed, 0))
    print("\nExtension -- 40G CWDM4 vs collimator chromatic quality "
          "(Section 6)")
    print(table.render())

    commodity = link_40g_commodity()
    custom = link_40g_custom()
    print(f"commodity: tolerated {tolerated_speed_deg_s(commodity):.0f}"
          f" deg/s; custom: {tolerated_speed_deg_s(custom):.0f} deg/s; "
          f"single-wavelength 25G baseline: "
          f"{tolerated_speed_deg_s(MultiWavelengthDesign(name='1x', base=link_25g(), chromatic_db_per_nm=0.0)):.0f} deg/s")

    # Shape 1: every step of chromatic loss costs margin, tolerance,
    # and tolerated speed, monotonically.
    margins = [r[1] for r in rows]
    speeds = [r[3] for r in rows]
    assert all(b < a for a, b in zip(margins, margins[1:]))
    assert all(b <= a for a, b in zip(speeds, speeds[1:]))
    # Shape 2: a bad-enough singlet kills the outer lanes entirely.
    assert margins[-1] < 0 or speeds[-1] == 0.0
    # Shape 3: the custom collimator nearly recovers the
    # single-wavelength design's tolerated speed (within ~10 %).
    single = MultiWavelengthDesign(name="1x", base=link_25g(),
                                   chromatic_db_per_nm=0.0)
    assert tolerated_speed_deg_s(custom) > \
        0.9 * tolerated_speed_deg_s(single)
    # Shape 4: commodity pays a double-digit-percent speed penalty.
    assert tolerated_speed_deg_s(commodity) < \
        0.9 * tolerated_speed_deg_s(single)
