"""Fig. 11: angular tolerance vs beam diameter at RX.

Paper: "RX angular tolerance peaks at 5.77 mrad at the 16 mm beam
diameter; we thus choose this."  The printed series is the figure's
two curves (TX and RX tolerance vs diameter).
"""

import numpy as np
import pytest

from repro.link import diameter_sweep, link_10g_diverging
from repro.reporting import AsciiPlot, TextTable, fmt_float

DIAMETERS_M = np.arange(8e-3, 33e-3, 2e-3)
RANGE_M = 1.75


def sweep():
    return diameter_sweep(link_10g_diverging, DIAMETERS_M, RANGE_M)


def test_fig11(benchmark):
    reports = benchmark(sweep)

    table = TextTable(["beam at RX (mm)", "TX tol (mrad)",
                       "RX tol (mrad)", "peak power (dBm)"])
    for report in reports:
        table.add_row(fmt_float(report.beam_diameter_at_rx_m * 1e3, 1),
                      fmt_float(report.tx_angular_tolerance_rad * 1e3),
                      fmt_float(report.rx_angular_tolerance_rad * 1e3),
                      fmt_float(report.peak_power_dbm, 1))
    print("\nFig. 11 -- angular tolerance vs beam diameter at RX "
          "(paper: RX peaks at 5.77 mrad @ 16 mm)")
    print(table.render())
    plot = AsciiPlot(width=56, height=10, x_label="beam at RX (mm)",
                     y_label="RX tolerance (mrad)")
    plot.add_series("RX tol",
                    [r.beam_diameter_at_rx_m * 1e3 for r in reports],
                    [r.rx_angular_tolerance_rad * 1e3 for r in reports])
    print(plot.render())

    rx = np.array([r.rx_angular_tolerance_rad for r in reports])
    tx = np.array([r.tx_angular_tolerance_rad for r in reports])
    peak_diameter = DIAMETERS_M[int(np.argmax(rx))]

    # Shape: RX tolerance peaks at ~16 mm with ~5.77 mrad.
    assert peak_diameter == pytest.approx(16e-3, abs=2.1e-3)
    assert rx.max() * 1e3 == pytest.approx(5.77, rel=0.05)
    # Rises to the peak, falls after it.
    assert rx[0] < rx.max()
    assert rx[-1] < rx.max()
    # TX tolerance grows monotonically with diameter (the figure's
    # other curve).
    assert np.all(np.diff(tx) > 0)
