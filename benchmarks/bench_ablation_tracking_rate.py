"""Ablation: tracking frequency sensitivity (Section 5.2's bold claim).

"As TP's latency is much lower (1-2 ms) than the frequency at which it
occurs (every 12-13 ms at VRH-T updates), a custom VRH-T with much
higher tracking frequency will improve Cyclops's performance
significantly."  We replay the *same* head motions through the Section
5.4 trace simulation at several report rates and watch availability
climb.
"""

from repro.motion import generate_trace, resample_trace
from repro.reporting import TextTable, fmt_float
from repro.simulate import TimeslotParams, report, simulate_trace

BASE_DT_S = 0.002
RESAMPLE_FACTORS = (10, 5, 2, 1)  # 20, 10, 4, 2 ms report periods


def availability_vs_rate():
    """Overall availability of the same traces per report period."""
    base_traces = [generate_trace(v, vid, dt_s=BASE_DT_S,
                                  duration_s=30.0)
                   for v in range(8) for vid in range(4)]
    outcomes = {}
    for factor in RESAMPLE_FACTORS:
        period_s = BASE_DT_S * factor
        slot_s = min(1e-3, period_s / 2)
        params = TimeslotParams(
            slot_s=slot_s,
            tp_latency_slots=max(int(1.5e-3 / slot_s), 1))
        results = [simulate_trace(resample_trace(t, factor), params)
                   for t in base_traces]
        outcomes[period_s * 1e3] = report(results).overall_availability
    return outcomes


def test_ablation_tracking_rate(benchmark):
    outcomes = benchmark.pedantic(availability_vs_rate, rounds=1,
                                  iterations=1)
    table = TextTable(["report period (ms)", "availability (%)"])
    for period_ms in sorted(outcomes, reverse=True):
        table.add_row(fmt_float(period_ms, 0),
                      fmt_float(outcomes[period_ms] * 100, 2))
    print("\nAblation -- availability vs VRH-T report period "
          "(paper: higher tracking frequency helps significantly)")
    print(table.render())

    ordered = [outcomes[p] for p in sorted(outcomes, reverse=True)]
    # Monotone: faster tracking, higher availability.
    assert all(b >= a - 1e-4 for a, b in zip(ordered, ordered[1:]))
    # And the gain is material between 20 ms and 2 ms reporting.
    assert ordered[-1] > ordered[0]
