"""Extension bench: vibration tolerance of the closed TP loop.

The authors' earlier FSO work ([33]) handled rack vibrations; a VR
deployment sees mount wobble and head-strap resonance.  The physics
this bench exposes: jitter *below* the ~80 Hz tracking rate is just
motion -- the TP loop tracks it -- while jitter near/above that rate
is invisible to the tracker and only the link's raw movement
tolerance absorbs it.  The amplitude boundary therefore collapses as
the frequency crosses the tracking rate.
"""

from repro.motion import StaticProfile, VibrationOverlay
from repro.reporting import TextTable, fmt_float
from repro.simulate import PrototypeSession, Testbed

FREQUENCIES_HZ = (5.0, 20.0, 60.0, 200.0)
AMPLITUDES_MRAD = (1.0, 2.0, 3.0)
RUN_S = 2.0


def uptime_grid():
    testbed = Testbed(seed=3)
    outcome = testbed.calibrate()
    session = PrototypeSession(testbed, outcome.system)
    grid = {}
    for freq in FREQUENCIES_HZ:
        for amp in AMPLITUDES_MRAD:
            profile = VibrationOverlay(
                StaticProfile(testbed.home_pose, RUN_S),
                frequency_hz=freq,
                angular_amplitude_rad=amp * 1e-3,
                linear_amplitude_m=0.5e-3)
            result = session.run(profile)
            grid[(freq, amp)] = result.uptime_fraction
    return grid


def test_ext_vibration(benchmark):
    grid = benchmark.pedantic(uptime_grid, rounds=1, iterations=1)
    table = TextTable(["frequency (Hz)"]
                      + [f"{a:.0f} mrad" for a in AMPLITUDES_MRAD])
    for freq in FREQUENCIES_HZ:
        table.add_row(fmt_float(freq, 0),
                      *(fmt_float(grid[(freq, a)] * 100, 1)
                        for a in AMPLITUDES_MRAD))
    print("\nExtension -- uptime (%) under angular vibration")
    print(table.render())

    # Low-frequency jitter is tracked even at 3 mrad.
    assert grid[(5.0, 3.0)] > 0.99
    # Past the tracking rate the same amplitude kills the link...
    assert grid[(60.0, 3.0)] < 0.5
    assert grid[(200.0, 3.0)] < 0.5
    # ...but small amplitudes are absorbed by the raw tolerance.
    assert grid[(200.0, 1.0)] > 0.99
    # Monotone in amplitude at every frequency.
    for freq in FREQUENCIES_HZ:
        uptimes = [grid[(freq, a)] for a in AMPLITUDES_MRAD]
        assert all(b <= a + 1e-9 for a, b in zip(uptimes, uptimes[1:]))
