"""Fig. 15: 25G prototype throughput under pure and mixed motions.

Paper: optimal (~23.5 Gbps) for pure linear speeds below 25 cm/s or
pure angular speeds below 25 deg/s; for mixed motion, optimal below
~15 cm/s with 15-20 deg/s.  Compared to 10G, tolerated linear speeds
are lower while tolerated angular speeds are slightly better.
"""

import numpy as np

from repro.simulate import surviving_speed_threshold
from seriesutil import joined_series, print_speed_bins


def test_fig15_linear(benchmark, rig_25g, linear_run_25g):
    testbed, _ = rig_25g
    profile, result = linear_run_25g
    _, linear, _, throughput, power = benchmark(
        joined_series, profile, result)
    print_speed_bins(
        "Fig. 15 -- 25G throughput vs pure linear speed "
        "(paper: optimal below ~25 cm/s)",
        linear, throughput, power, [0, 10, 20, 30, 40, 50, 60], "cm/s",
        scale=100.0)
    optimal = testbed.design.sfp.optimal_throughput_gbps
    threshold = surviving_speed_threshold(profile.schedule,
                                          result.windows, optimal)
    print(f"tolerated linear speed: {threshold * 100:.0f} cm/s "
          f"(paper: ~25)")
    assert 0.15 <= threshold <= 0.46
    slow = (linear > 0.02) & (linear < 0.16)
    assert np.median(throughput[slow]) > 0.95 * optimal


def test_fig15_angular(benchmark, rig_25g, angular_run_25g):
    testbed, _ = rig_25g
    profile, result = angular_run_25g
    _, _, angular, throughput, power = benchmark(
        joined_series, profile, result)
    print_speed_bins(
        "Fig. 15 -- 25G throughput vs pure angular speed "
        "(paper: optimal below ~25 deg/s)",
        angular, throughput, power, [0, 8, 12, 16, 20, 24, 28, 32],
        "deg/s", scale=float(np.degrees(1.0)))
    optimal = testbed.design.sfp.optimal_throughput_gbps
    threshold = np.degrees(surviving_speed_threshold(
        profile.schedule, result.windows, optimal))
    print(f"tolerated angular speed: {threshold:.0f} deg/s (paper: ~25)")
    assert 14.0 <= threshold <= 30.0


def test_fig15_mixed(benchmark, rig_25g, arbitrary_run_25g):
    testbed, _ = rig_25g
    profile, result = arbitrary_run_25g
    times, linear, angular, throughput, power = benchmark(
        joined_series, profile, result)
    angular_deg = np.degrees(angular)
    print_speed_bins(
        "Fig. 15 -- 25G under mixed motion, by angular speed "
        "(paper: optimal to ~15-20 deg/s with ~15 cm/s)",
        angular, throughput, power, [0, 5, 10, 15, 20, 25], "deg/s",
        scale=float(np.degrees(1.0)))
    optimal = testbed.design.sfp.optimal_throughput_gbps
    calm = (linear < 0.14) & (angular_deg < 13.0)
    assert np.median(throughput[calm]) > 0.9 * optimal
    # The ramp's fast tail disconnects.
    assert throughput.min() < 0.5 * optimal


def test_fig15_vs_10g_ordering(benchmark, rig_10g, rig_25g,
                               linear_run_10g, linear_run_25g,
                               angular_run_10g, angular_run_25g):
    """Table 3's cross-prototype shape: 25G tolerates lower linear
    speed but equal-or-better angular speed than 10G."""
    t10, _ = rig_10g
    benchmark(lambda: None)
    t25, _ = rig_25g
    lin10 = surviving_speed_threshold(
        linear_run_10g[0].schedule, linear_run_10g[1].windows,
        t10.design.sfp.optimal_throughput_gbps)
    lin25 = surviving_speed_threshold(
        linear_run_25g[0].schedule, linear_run_25g[1].windows,
        t25.design.sfp.optimal_throughput_gbps)
    ang10 = surviving_speed_threshold(
        angular_run_10g[0].schedule, angular_run_10g[1].windows,
        t10.design.sfp.optimal_throughput_gbps)
    ang25 = surviving_speed_threshold(
        angular_run_25g[0].schedule, angular_run_25g[1].windows,
        t25.design.sfp.optimal_throughput_gbps)
    print(f"\nlinear: 10G {lin10 * 100:.0f} cm/s vs 25G "
          f"{lin25 * 100:.0f} cm/s (paper: 33 vs 25)")
    print(f"angular: 10G {np.degrees(ang10):.0f} deg/s vs 25G "
          f"{np.degrees(ang25):.0f} deg/s (paper: 16-18 vs 25)")
    assert lin25 <= lin10
    assert ang25 >= ang10
