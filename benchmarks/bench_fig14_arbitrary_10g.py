"""Fig. 14: 10G throughput and power under arbitrary (hand-held) motion.

Paper: "the link maintains optimal throughput for motions undergoing
simultaneous linear and angular speeds of below 30 cm/sec and 16-18
degrees/sec respectively", and "received power remains above -40 dBm
for angular speeds of up to 100 deg/sec with linear speeds of 30
cm/sec".
"""

import numpy as np

from seriesutil import joined_series, print_speed_bins


def test_fig14_arbitrary_motion(benchmark, rig_10g, arbitrary_run_10g):
    testbed, _ = rig_10g
    profile, result = arbitrary_run_10g
    times, linear, angular, throughput, power = benchmark(
        joined_series, profile, result)
    angular_deg = np.degrees(angular)

    print_speed_bins(
        "Fig. 14 -- 10G under hand-held mixed motion, by angular speed",
        angular, throughput, power, [0, 5, 10, 15, 20, 25, 30], "deg/s",
        scale=float(np.degrees(1.0)))
    print_speed_bins(
        "Fig. 14 -- 10G under hand-held mixed motion, by linear speed",
        linear, throughput, power, [0, 10, 20, 30, 40, 50], "cm/s",
        scale=100.0)

    optimal = testbed.design.sfp.optimal_throughput_gbps

    # Shape 1: windows with simultaneous sub-threshold speeds run at
    # optimal throughput (the paper's 30 cm/s + 16 deg/s region) --
    # except windows trapped in a re-lock tail from an earlier drop.
    calm = (linear < 0.25) & (angular_deg < 13.0)
    calm_tput = throughput[calm]
    assert np.median(calm_tput) > 0.9 * optimal

    # Shape 2: the run's vigorous tail (approaching 28 deg/s peaks)
    # does break the link -- mixed tolerance is finite.
    assert throughput.min() < 0.5 * optimal

    # Shape 3: power never falls below the -40s dBm even at the fastest
    # motion (the paper's -40 dBm observation / detector floor).
    assert result.power_dbm.min() >= -42.0

    # Shape 4: early (slow) part of the ramp is fully connected.
    early = times < 8.0
    assert np.all(throughput[early] > 0.9 * optimal)
