"""Tests for drift detection and mapping-only re-training."""

import numpy as np
import pytest

from repro.core import DriftMonitor, point, remap
from repro.simulate import Testbed


class TestDriftMonitor:
    def test_learns_baseline_first(self):
        monitor = DriftMonitor(baseline_samples=5, window=3)
        for _ in range(4):
            assert monitor.observe(-10.0) is False
        assert monitor.baseline_dbm is None
        monitor.observe(-10.0)
        assert monitor.baseline_dbm == pytest.approx(-10.0)

    def test_no_flag_for_stable_power(self):
        monitor = DriftMonitor(baseline_samples=5, window=3)
        flags = [monitor.observe(-10.0 + 0.2 * (i % 3))
                 for i in range(30)]
        assert not any(flags)

    def test_flags_persistent_degradation(self):
        monitor = DriftMonitor(degradation_db=6.0, baseline_samples=5,
                               window=3)
        for _ in range(5):
            monitor.observe(-10.0)
        flagged = False
        for _ in range(5):
            flagged = monitor.observe(-20.0)
        assert flagged

    def test_single_outlier_does_not_flag(self):
        monitor = DriftMonitor(degradation_db=6.0, baseline_samples=5,
                               window=5)
        for _ in range(5):
            monitor.observe(-10.0)
        for _ in range(4):
            monitor.observe(-10.0)
        # One bad reading amid good ones: the median holds.
        assert monitor.observe(-40.0) is False

    def test_reset_relearns(self):
        monitor = DriftMonitor(baseline_samples=3, window=3)
        for _ in range(3):
            monitor.observe(-10.0)
        monitor.reset()
        assert monitor.baseline_dbm is None

    def test_validation(self):
        with pytest.raises(ValueError):
            DriftMonitor(degradation_db=0.0)
        with pytest.raises(ValueError):
            DriftMonitor(window=1)

    def test_recent_dbm_none_until_window_full(self):
        monitor = DriftMonitor(baseline_samples=3, window=3)
        for _ in range(3):
            monitor.observe(-10.0)
        assert monitor.recent_dbm is None
        for _ in range(3):
            monitor.observe(-12.0)
        assert monitor.recent_dbm == pytest.approx(-12.0)

    def test_deficit_zero_while_learning_then_tracks(self):
        monitor = DriftMonitor(degradation_db=6.0, baseline_samples=3,
                               window=3)
        assert monitor.deficit_db == 0.0
        for _ in range(3):
            monitor.observe(-10.0)
        for _ in range(3):
            monitor.observe(-14.0)
        assert monitor.deficit_db == pytest.approx(4.0)

    def test_deficit_clamps_improvement_to_zero(self):
        monitor = DriftMonitor(baseline_samples=3, window=3)
        for _ in range(3):
            monitor.observe(-10.0)
        for _ in range(3):
            monitor.observe(-8.0)
        assert monitor.deficit_db == 0.0


class TestRemap:
    @pytest.fixture(scope="class")
    def drifted_world(self):
        testbed = Testbed(seed=9)
        outcome = testbed.calibrate()
        testbed.apply_tracker_drift(translation_m=(0.04, -0.02, 0.01),
                                    yaw_rad=np.radians(3.0))
        return testbed, outcome.system

    def quality(self, testbed, system, n=5):
        connected = 0
        for pose in testbed.evaluation_poses(n):
            command = point(system, testbed.tracker.report(pose))
            try:
                testbed.apply_command(command)
            except ValueError:
                continue
            connected += testbed.channel.evaluate(pose).connected
        return connected / n

    def test_drift_breaks_the_stale_system(self, drifted_world):
        testbed, system = drifted_world
        assert self.quality(testbed, system) < 0.5

    def test_remap_recovers_without_board_calibration(self,
                                                      drifted_world):
        testbed, system = drifted_world
        fresh = testbed.collect_mapping_samples(10)
        recovered = remap(system, fresh)
        assert self.quality(testbed, recovered) == 1.0

    def test_remap_preserves_kspace_models(self, drifted_world):
        testbed, system = drifted_world
        fresh = testbed.collect_mapping_samples(6)
        recovered = remap(system, fresh)
        assert np.allclose(
            recovered.rx_model_kspace.params.to_vector(),
            system.rx_model_kspace.params.to_vector())
