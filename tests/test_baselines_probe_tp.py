"""Tests for the probe/feedback TP baseline."""

import numpy as np
import pytest

from repro.baselines import ProbeTracker
from repro.motion import RotationStage, StaticProfile
from repro.simulate import Testbed


@pytest.fixture(scope="module")
def probe_bed():
    return Testbed(seed=3)


class TestProbeTracker:
    def test_static_stays_connected(self, probe_bed):
        tracker = ProbeTracker(probe_bed)
        profile = StaticProfile(probe_bed.home_pose, duration_s=1.0)
        result = tracker.run(profile)
        assert result.uptime_fraction == 1.0

    def test_dither_costs_power_even_when_still(self, probe_bed):
        # The probing itself keeps the link a few dB off peak -- the
        # hidden tax of feedback-based TP.
        tracker = ProbeTracker(probe_bed)
        profile = StaticProfile(probe_bed.home_pose, duration_s=1.0)
        result = tracker.run(profile)
        peak = probe_bed.design.peak_power_dbm(1.75)
        assert result.power_dbm.min() < peak - 0.5

    def test_tracks_slow_rotation(self, probe_bed):
        stage = RotationStage(axis=[0, 0, 1], range_rad=np.radians(10))
        profile = stage.stroke_profile(probe_bed.home_pose,
                                       [np.radians(4.0)])
        result = ProbeTracker(probe_bed).run(profile,
                                             duration_s=4.0)
        assert result.uptime_fraction == 1.0

    def test_loses_fast_rotation_cyclops_survives(self, probe_bed,
                                                  learned_system,
                                                  testbed):
        # At 12 deg/s the probe tracker drops while the learned
        # pointer (tested elsewhere at 16 deg/s) is still optimal.
        stage = RotationStage(axis=[0, 0, 1], range_rad=np.radians(14))
        profile = stage.stroke_profile(probe_bed.home_pose,
                                       [np.radians(12.0)])
        result = ProbeTracker(probe_bed).run(profile, duration_s=5.0)
        assert result.uptime_fraction < 0.9

    def test_probe_counter(self, probe_bed):
        tracker = ProbeTracker(probe_bed)
        profile = StaticProfile(probe_bed.home_pose, duration_s=0.5)
        result = tracker.run(profile)
        # ~1 probe per 1.3 ms, plus restores.
        assert 300 <= result.probes <= 900
        assert len(result.sample_times_s) == result.probes

    def test_time_advances_with_probes(self, probe_bed):
        tracker = ProbeTracker(probe_bed)
        profile = StaticProfile(probe_bed.home_pose, duration_s=0.3)
        result = tracker.run(profile)
        deltas = np.diff(result.sample_times_s)
        assert np.all(deltas > 0)
        assert deltas.min() == pytest.approx(tracker.probe_latency_s)
