"""Unit tests for the Section 5.4 timeslot simulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.motion import HeadTrace, generate_trace
from repro.simulate import TimeslotParams, simulate_trace
from repro.simulate.timeslot import _simulate_trace_reference


def synthetic_trace(step_linear_m, step_angular_rad, dt_s=0.010):
    """A trace with prescribed per-step motion magnitudes."""
    n = len(step_linear_m) + 1
    positions = np.zeros((n, 3))
    positions[1:, 0] = np.cumsum(step_linear_m)
    eulers = np.zeros((n, 3))
    eulers[1:, 2] = np.cumsum(step_angular_rad)
    return HeadTrace(viewer=0, video=0, dt_s=dt_s, positions=positions,
                     eulers=eulers,
                     step_linear_m=np.asarray(step_linear_m, dtype=float),
                     step_angular_rad=np.asarray(step_angular_rad,
                                                 dtype=float))


class TestParams:
    def test_defaults_match_paper(self):
        params = TimeslotParams()
        assert params.slot_s == pytest.approx(1e-3)
        assert params.residual_lateral_m == pytest.approx(4.54e-3)
        assert params.residual_angular_rad == pytest.approx(4.54e-3 / 1.75)
        assert params.lateral_tolerance_m == pytest.approx(6e-3)
        assert params.angular_tolerance_rad == pytest.approx(8.73e-3)

    def test_rejects_tolerance_below_residual(self):
        with pytest.raises(ValueError):
            TimeslotParams(lateral_tolerance_m=1e-3)

    def test_rejects_bad_slot(self):
        with pytest.raises(ValueError):
            TimeslotParams(slot_s=0.0)


class TestSimulateTrace:
    def test_stationary_trace_fully_connected(self):
        trace = synthetic_trace(np.zeros(100), np.zeros(100))
        result = simulate_trace(trace)
        assert result.availability == 1.0

    def test_slow_motion_stays_connected(self):
        # 10 deg/s: 1.75 mrad per 10 ms report -- far within budget.
        step_ang = np.full(200, np.radians(10) * 0.01)
        result = simulate_trace(synthetic_trace(np.zeros(200), step_ang))
        assert result.availability == 1.0

    def test_fast_rotation_disconnects(self):
        # 60 deg/s: 10.5 mrad per report >> the 8.73 mrad tolerance.
        step_ang = np.full(200, np.radians(60) * 0.01)
        result = simulate_trace(synthetic_trace(np.zeros(200), step_ang))
        assert result.availability < 0.7

    def test_fast_translation_disconnects(self):
        # 0.5 m/s: 5 mm drift per report + 4.54 mm residual > 6 mm.
        step_lin = np.full(200, 0.5 * 0.01)
        result = simulate_trace(synthetic_trace(step_lin, np.zeros(200)))
        assert result.availability < 0.7

    def test_burst_only_affects_its_slots(self):
        steps = np.zeros(300)
        steps[100:110] = np.radians(80) * 0.01  # a 100 ms saccade
        result = simulate_trace(synthetic_trace(np.zeros(300), steps))
        assert 0.9 < result.availability < 1.0
        # Slots outside the burst neighbourhood stay connected.
        assert result.connected[:990].all()

    def test_slot_count(self):
        trace = synthetic_trace(np.zeros(50), np.zeros(50))
        result = simulate_trace(trace)
        assert result.slots == 500

    def test_higher_tolerance_more_availability(self):
        step_ang = np.full(200, np.radians(40) * 0.01)
        trace = synthetic_trace(np.zeros(200), step_ang)
        tight = simulate_trace(trace, TimeslotParams())
        loose = simulate_trace(trace, TimeslotParams(
            angular_tolerance_rad=20e-3))
        assert loose.availability >= tight.availability

    def test_latency_slots_delay_realignment(self):
        # With a huge TP latency the realignment never lands inside
        # the interval, so drift accumulates across reports.
        step_ang = np.full(100, np.radians(25) * 0.01)
        trace = synthetic_trace(np.zeros(100), step_ang)
        normal = simulate_trace(trace, TimeslotParams(tp_latency_slots=2))
        never = simulate_trace(trace, TimeslotParams(tp_latency_slots=99))
        assert never.availability < normal.availability

    def test_off_slots_property(self):
        trace = synthetic_trace(np.zeros(100),
                                np.full(100, np.radians(60) * 0.01))
        result = simulate_trace(trace)
        assert result.off_slots == result.slots - int(
            result.connected.sum())


def _assert_matches_reference(trace, params):
    vectorized = simulate_trace(trace, params)
    reference = _simulate_trace_reference(trace, params)
    np.testing.assert_array_equal(vectorized.connected,
                                  reference.connected)
    assert vectorized.viewer == reference.viewer
    assert vectorized.video == reference.video


@st.composite
def trace_and_params(draw):
    """A random trace plus random TimeslotParams.

    ``slots_per_report`` spans 1..12 and ``tp_latency_slots`` spans
    0..slots_per_report+3, deliberately crossing the never-realigns
    boundary (latency >= slots_per_report).
    """
    slots_per_report = draw(st.integers(1, 12))
    n_steps = draw(st.integers(0, 40))
    magnitude = st.floats(min_value=0.0, max_value=0.05,
                          allow_nan=False, allow_infinity=False)
    step_linear = draw(st.lists(magnitude, min_size=n_steps,
                                max_size=n_steps))
    step_angular = draw(st.lists(magnitude, min_size=n_steps,
                                 max_size=n_steps))
    latency = draw(st.integers(0, slots_per_report + 3))
    residual_lat = draw(st.floats(0.0, 5e-3, allow_nan=False))
    residual_ang = draw(st.floats(0.0, 5e-3, allow_nan=False))
    params = TimeslotParams(
        slot_s=1e-3,
        tp_latency_slots=latency,
        residual_lateral_m=residual_lat,
        residual_angular_rad=residual_ang,
        lateral_tolerance_m=residual_lat + draw(
            st.floats(1e-6, 8e-3, allow_nan=False)),
        angular_tolerance_rad=residual_ang + draw(
            st.floats(1e-6, 10e-3, allow_nan=False)),
    )
    trace = synthetic_trace(np.asarray(step_linear),
                            np.asarray(step_angular),
                            dt_s=slots_per_report * 1e-3)
    return trace, params


class TestVectorizedMatchesReference:
    """The tentpole invariant: vectorized == reference, element-wise."""

    @settings(max_examples=150, deadline=None)
    @given(trace_and_params())
    def test_property_equivalence(self, pair):
        trace, params = pair
        _assert_matches_reference(trace, params)

    @pytest.mark.parametrize("latency", [0, 1, 2, 9, 10, 11, 99])
    def test_latency_extremes_on_real_trace(self, latency):
        trace = generate_trace(viewer=2, video=3, seed=11,
                               duration_s=5.0)
        _assert_matches_reference(
            trace, TimeslotParams(tp_latency_slots=latency))

    def test_real_trace_default_params(self):
        trace = generate_trace(viewer=0, video=0, seed=2022,
                               duration_s=10.0)
        _assert_matches_reference(trace, TimeslotParams())

    def test_empty_trace(self):
        trace = synthetic_trace(np.zeros(0), np.zeros(0))
        result = simulate_trace(trace)
        assert result.slots == 0
        _assert_matches_reference(trace, TimeslotParams())

    def test_single_step_trace(self):
        trace = synthetic_trace([1e-4], [2e-4])
        _assert_matches_reference(trace, TimeslotParams())


class TestLatencyAtOrBeyondReportPeriod:
    """Regression: tp_latency_slots >= slots_per_report never realigns.

    The ``sub == tp_latency_slots`` branch of the reference loop can
    never fire, so the drift accumulates forever; this is the modelled
    "TP too slow" regime, documented on TimeslotParams rather than
    rejected.
    """

    def test_drift_accumulates_forever(self):
        # Slow motion that a realigning TP absorbs trivially, but which
        # disconnects permanently once drift is never reset.
        step_ang = np.full(300, np.radians(10) * 0.01)
        trace = synthetic_trace(np.zeros(300), step_ang)
        aligned = simulate_trace(trace, TimeslotParams(tp_latency_slots=2))
        drifting = simulate_trace(
            trace, TimeslotParams(tp_latency_slots=10))
        assert aligned.availability == 1.0
        assert drifting.availability < 1.0
        # Once disconnected, a monotone drift never reconnects.
        off = np.flatnonzero(~drifting.connected)
        assert off.size > 0
        assert not drifting.connected[off[0]:].any()

    def test_latency_equal_and_beyond_period_identical(self):
        step_ang = np.full(120, np.radians(25) * 0.01)
        trace = synthetic_trace(np.zeros(120), step_ang)
        at_period = simulate_trace(
            trace, TimeslotParams(tp_latency_slots=10))
        beyond = simulate_trace(
            trace, TimeslotParams(tp_latency_slots=17))
        np.testing.assert_array_equal(at_period.connected,
                                      beyond.connected)

    def test_matches_reference_in_never_realign_regime(self):
        step_ang = np.full(80, np.radians(25) * 0.01)
        step_lin = np.full(80, 0.002)
        trace = synthetic_trace(step_lin, step_ang)
        for latency in (10, 11, 50):
            _assert_matches_reference(
                trace, TimeslotParams(tp_latency_slots=latency))
