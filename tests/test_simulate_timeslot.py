"""Unit tests for the Section 5.4 timeslot simulation."""

import numpy as np
import pytest

from repro.motion import HeadTrace
from repro.simulate import TimeslotParams, simulate_trace


def synthetic_trace(step_linear_m, step_angular_rad, dt_s=0.010):
    """A trace with prescribed per-step motion magnitudes."""
    n = len(step_linear_m) + 1
    positions = np.zeros((n, 3))
    positions[1:, 0] = np.cumsum(step_linear_m)
    eulers = np.zeros((n, 3))
    eulers[1:, 2] = np.cumsum(step_angular_rad)
    return HeadTrace(viewer=0, video=0, dt_s=dt_s, positions=positions,
                     eulers=eulers,
                     step_linear_m=np.asarray(step_linear_m, dtype=float),
                     step_angular_rad=np.asarray(step_angular_rad,
                                                 dtype=float))


class TestParams:
    def test_defaults_match_paper(self):
        params = TimeslotParams()
        assert params.slot_s == pytest.approx(1e-3)
        assert params.residual_lateral_m == pytest.approx(4.54e-3)
        assert params.residual_angular_rad == pytest.approx(4.54e-3 / 1.75)
        assert params.lateral_tolerance_m == pytest.approx(6e-3)
        assert params.angular_tolerance_rad == pytest.approx(8.73e-3)

    def test_rejects_tolerance_below_residual(self):
        with pytest.raises(ValueError):
            TimeslotParams(lateral_tolerance_m=1e-3)

    def test_rejects_bad_slot(self):
        with pytest.raises(ValueError):
            TimeslotParams(slot_s=0.0)


class TestSimulateTrace:
    def test_stationary_trace_fully_connected(self):
        trace = synthetic_trace(np.zeros(100), np.zeros(100))
        result = simulate_trace(trace)
        assert result.availability == 1.0

    def test_slow_motion_stays_connected(self):
        # 10 deg/s: 1.75 mrad per 10 ms report -- far within budget.
        step_ang = np.full(200, np.radians(10) * 0.01)
        result = simulate_trace(synthetic_trace(np.zeros(200), step_ang))
        assert result.availability == 1.0

    def test_fast_rotation_disconnects(self):
        # 60 deg/s: 10.5 mrad per report >> the 8.73 mrad tolerance.
        step_ang = np.full(200, np.radians(60) * 0.01)
        result = simulate_trace(synthetic_trace(np.zeros(200), step_ang))
        assert result.availability < 0.7

    def test_fast_translation_disconnects(self):
        # 0.5 m/s: 5 mm drift per report + 4.54 mm residual > 6 mm.
        step_lin = np.full(200, 0.5 * 0.01)
        result = simulate_trace(synthetic_trace(step_lin, np.zeros(200)))
        assert result.availability < 0.7

    def test_burst_only_affects_its_slots(self):
        steps = np.zeros(300)
        steps[100:110] = np.radians(80) * 0.01  # a 100 ms saccade
        result = simulate_trace(synthetic_trace(np.zeros(300), steps))
        assert 0.9 < result.availability < 1.0
        # Slots outside the burst neighbourhood stay connected.
        assert result.connected[:990].all()

    def test_slot_count(self):
        trace = synthetic_trace(np.zeros(50), np.zeros(50))
        result = simulate_trace(trace)
        assert result.slots == 500

    def test_higher_tolerance_more_availability(self):
        step_ang = np.full(200, np.radians(40) * 0.01)
        trace = synthetic_trace(np.zeros(200), step_ang)
        tight = simulate_trace(trace, TimeslotParams())
        loose = simulate_trace(trace, TimeslotParams(
            angular_tolerance_rad=20e-3))
        assert loose.availability >= tight.availability

    def test_latency_slots_delay_realignment(self):
        # With a huge TP latency the realignment never lands inside
        # the interval, so drift accumulates across reports.
        step_ang = np.full(100, np.radians(25) * 0.01)
        trace = synthetic_trace(np.zeros(100), step_ang)
        normal = simulate_trace(trace, TimeslotParams(tp_latency_slots=2))
        never = simulate_trace(trace, TimeslotParams(tp_latency_slots=99))
        assert never.availability < normal.availability

    def test_off_slots_property(self):
        trace = synthetic_trace(np.zeros(100),
                                np.full(100, np.radians(60) * 0.01))
        result = simulate_trace(trace)
        assert result.off_slots == result.slots - int(
            result.connected.sum())
