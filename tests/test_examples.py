"""Smoke tests for the example scripts.

Every example must at least compile; the fast ones also run end to
end (the slow, session-driving ones are exercised by the benches that
share their code paths).
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))
FAST_EXAMPLES = ("link_designer.py", "room_deployment.py")


class TestExamples:
    def test_examples_exist(self):
        names = {path.name for path in ALL_EXAMPLES}
        assert "quickstart.py" in names
        assert len(names) >= 5  # the deliverable asks for >= 3

    @pytest.mark.parametrize("path", ALL_EXAMPLES,
                             ids=lambda p: p.name)
    def test_example_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    @pytest.mark.parametrize("name", FAST_EXAMPLES)
    def test_fast_example_runs(self, name):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / name)],
            capture_output=True, text=True, timeout=180)
        assert completed.returncode == 0, completed.stderr
        assert completed.stdout.strip()

    def test_every_example_has_usage_docstring(self):
        for path in ALL_EXAMPLES:
            source = path.read_text()
            assert source.lstrip().startswith('"""'), path.name
            assert f"python examples/{path.name}" in source, path.name
