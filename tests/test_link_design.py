"""Unit tests for repro.link.design: the calibrated link designs."""

import numpy as np
import pytest

from repro import constants
from repro.link import link_10g_collimated, link_10g_diverging, link_25g


class TestDesignConstruction:
    def test_10g_diverging_beam_diameter(self):
        design = link_10g_diverging(16e-3)
        assert design.beam_diameter_at(1.75) == pytest.approx(16e-3)

    def test_collimated_beam_stays_narrow(self):
        design = link_10g_collimated(20e-3)
        assert design.beam_diameter_at(1.75) == pytest.approx(20e-3,
                                                              rel=1e-3)

    def test_names_are_descriptive(self):
        assert "10G" in link_10g_diverging().name
        assert "25G" in link_25g().name
        assert "collimated" in link_10g_collimated().name


class TestPowerAccounting:
    def test_diverging_peak_matches_table1(self):
        # Table 1: -10 dBm peak for the 20 mm diverging beam.
        design = link_10g_diverging(20e-3)
        assert design.peak_power_dbm(1.75) == pytest.approx(-10.0, abs=0.3)

    def test_collimated_peak_matches_table1(self):
        # Table 1: ~+15 dBm peak for the collimated beam.
        design = link_10g_collimated()
        assert design.peak_power_dbm(1.75) == pytest.approx(15.0, abs=1.0)

    def test_peak_decreases_with_diameter(self):
        powers = [link_10g_diverging(d).peak_power_dbm(1.75)
                  for d in (10e-3, 16e-3, 22e-3, 28e-3)]
        assert powers == sorted(powers, reverse=True)

    def test_budget_breakdown_sums(self):
        design = link_10g_diverging()
        budget = design.budget(1.75)
        assert budget.received_power_dbm == pytest.approx(
            design.peak_power_dbm(1.75))

    def test_margin_positive_at_design_range(self):
        for design in (link_10g_diverging(), link_10g_collimated(),
                       link_25g()):
            assert design.margin_db(design.design_range_m) > 0


class TestCouplingWidths:
    def test_lateral_width_scales_with_diameter(self):
        a = link_10g_diverging(12e-3).lateral_width_m(1.75)
        b = link_10g_diverging(24e-3).lateral_width_m(1.75)
        assert b > a

    def test_angular_width_saturates(self):
        widths = [link_10g_diverging(d).angular_width_rad(1.75)
                  for d in (8e-3, 16e-3, 32e-3)]
        assert widths[1] > widths[0]
        # Growth slows: the second doubling gains less than the first.
        assert widths[2] - widths[1] < widths[1] - widths[0]

    def test_collimated_widths_fixed(self):
        design = link_10g_collimated()
        assert design.angular_width_rad(1.5) == pytest.approx(
            design.angular_width_rad(2.0))

    def test_coupling_model_consistent(self):
        design = link_10g_diverging()
        coupling = design.coupling(1.75)
        assert coupling.peak_power_dbm == pytest.approx(
            design.peak_power_dbm(1.75))
        assert coupling.lateral_width_m == pytest.approx(
            design.lateral_width_m(1.75))


class TestRangeDependence:
    def test_power_falls_with_range(self):
        design = link_10g_diverging()
        assert design.peak_power_dbm(1.5) > design.peak_power_dbm(2.0)

    def test_25g_uses_sfp28(self):
        design = link_25g()
        assert design.sfp.rx_sensitivity_dbm == pytest.approx(
            constants.SFP_25G_RX_SENSITIVITY_DBM)
        assert design.sfp.optimal_throughput_gbps == pytest.approx(23.5)
