"""Tests for the ASCII plotting helpers."""

import numpy as np
import pytest

from repro.reporting import AsciiPlot, sparkline


class TestAsciiPlot:
    def test_renders_requested_size(self):
        plot = AsciiPlot(width=40, height=10)
        plot.add_series("s", [0, 1, 2], [0, 1, 4])
        lines = plot.render().splitlines()
        # height rows + axis + x labels + footer.
        assert len(lines) == 10 + 3
        assert all("|" in line for line in lines[:10])

    def test_marks_extremes(self):
        plot = AsciiPlot(width=20, height=8)
        plot.add_series("s", [0, 1], [0, 1])
        text = plot.render()
        rows = text.splitlines()
        assert "*" in rows[0]       # max lands on the top row
        assert "*" in rows[7]       # min lands on the bottom row

    def test_two_series_two_markers(self):
        plot = AsciiPlot(width=20, height=8)
        plot.add_series("a", [0, 1], [0, 0.1])
        plot.add_series("b", [0, 1], [1, 0.9])
        text = plot.render()
        assert "*" in text
        assert "o" in text
        assert "a" in text and "b" in text  # legend

    def test_axis_labels_in_footer(self):
        plot = AsciiPlot(width=20, height=8, x_label="speed",
                         y_label="tput")
        plot.add_series("s", [0, 1], [0, 1])
        footer = plot.render().splitlines()[-1]
        assert "speed" in footer
        assert "tput" in footer

    def test_constant_series_safe(self):
        plot = AsciiPlot(width=20, height=8)
        plot.add_series("flat", [0, 1, 2], [5, 5, 5])
        assert "*" in plot.render()

    def test_explicit_ranges_clip(self):
        plot = AsciiPlot(width=20, height=8, y_range=(0.0, 1.0))
        plot.add_series("s", [0, 1], [0.5, 99.0])  # clipped to top
        rows = plot.render().splitlines()
        assert "*" in rows[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            AsciiPlot(width=2, height=2)
        plot = AsciiPlot(width=20, height=8)
        with pytest.raises(ValueError):
            plot.add_series("s", [0, 1], [0])
        with pytest.raises(ValueError):
            plot.add_series("s", [], [])
        with pytest.raises(ValueError):
            plot.render()


class TestSparkline:
    def test_length_bounded_by_width(self):
        line = sparkline(np.arange(1000), width=50)
        assert len(line) == 50

    def test_short_series_uses_own_length(self):
        assert len(sparkline([1, 2, 3], width=50)) == 3

    def test_monotone_series_monotone_levels(self):
        blocks = " .:-=+*#"
        line = sparkline(np.linspace(0, 1, 40), width=40)
        levels = [blocks.index(c) for c in line]
        assert levels == sorted(levels)

    def test_constant_series_safe(self):
        line = sparkline([3.0, 3.0, 3.0])
        assert len(line) == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            sparkline([])
