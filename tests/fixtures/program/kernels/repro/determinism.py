"""Fixture copy of the kernel registry decorator."""


def kernel(fn):
    return fn
