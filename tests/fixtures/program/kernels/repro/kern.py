"""Fixture kernels: K-series subset checks, TP and TN.

Registering a kernel also makes this module hot, so allocations (none
here) would need explicit dtypes too.
"""

import numpy as np

from repro.determinism import kernel

_WEIGHTS = [1.0, 2.0]


@kernel
def dict_kernel(x: np.ndarray) -> float:
    table = {"scale": 2.0}                 # K001: dict in kernel
    return float(x.sum() * table["scale"])


def _lookup(flag: int) -> float:
    marks = {1, 2, 3}                      # K001: set, reached from kernel
    return 1.0 if flag in marks else 0.0


@kernel
def indirect_kernel(x: np.ndarray, flag: int) -> float:
    return float(x.sum()) * _lookup(flag)


@kernel
def stateful_kernel(x: np.ndarray) -> float:
    return float(x.sum()) * _WEIGHTS[0]    # K002: mutable module state


@kernel
def closure_kernel(x: np.ndarray) -> float:
    def bump(v: float) -> float:           # K002: closure-captured def
        return v + 1.0
    return bump(float(x.sum()))


@kernel
def kwargs_kernel(x: np.ndarray, **opts) -> float:   # K003: **kwargs
    return float(x.sum())


def _scale(x: np.ndarray, factor: float) -> np.ndarray:
    return x * factor


@kernel
def clean_kernel(x: np.ndarray, out: np.ndarray) -> np.ndarray:
    out[:] = _scale(x, 2.0)                # exempt: subset-clean
    return out
