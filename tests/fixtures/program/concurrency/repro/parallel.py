"""Fixture stand-ins for the process-pool entry points."""


def parallel_map(fn, items, workers=None, chunk_size=None):
    return [fn(item) for item in items]


def parallel_map_arrays(fn, chunks, workers=None):
    return [fn(*chunk) for chunk in chunks]
