"""One of each C-series violation, with a safe twin beside each."""

from .parallel import parallel_map, parallel_map_arrays

CACHE = {}
LIMITS = {"max_rows": 4096}
TRACE = open("trace.bin", "rb")


# -- C001: worker mutates shared module state -------------------------------

def tally(item):
    CACHE[item] = True  # each forked worker mutates a private copy
    return item


def run_tally(jobs):
    # C001: the worker writes CACHE across the pool boundary.
    return parallel_map(tally, jobs)


def clamp(value):
    return min(value, LIMITS["max_rows"])  # read-only capture is fine


def run_clamp(values):
    return parallel_map(clamp, values)


# -- C002: absolute-index writes must be chunk-disjoint ---------------------

def fill_rows(out, items):
    for i, item in enumerate(items):
        out[i] = item * 2.0  # C002: index ignores the chunk start


def fill_rows_safe(out, start, items):
    for i, item in enumerate(items):
        out[start + i] = item * 2.0  # start-offset form: disjoint


def run_fill(chunks):
    return parallel_map_arrays(fill_rows, chunks)


def run_fill_safe(chunks):
    return parallel_map_arrays(fill_rows_safe, chunks)


# -- C003: parent-held resources must not reach the workers -----------------

def replay(offset):
    TRACE.seek(offset)  # forked copies share the file offset
    return TRACE.read(16)


def run_replay(offsets):
    # C003: the worker reaches the module-level open handle.
    return parallel_map(replay, offsets)


def replay_safe(spec):
    path, offset = spec
    with open(path, "rb") as fh:  # opened inside the worker: fine
        fh.seek(offset)
        return fh.read(16)


def run_replay_safe(specs):
    return parallel_map(replay_safe, specs)


# -- C004: pool items need a deterministic enumeration ----------------------

def scale(path):
    return len(path)


def run_scale(paths):
    # C004: set() order varies run to run, so the merge order does too.
    return parallel_map(scale, set(paths))


def run_scale_sorted(paths):
    return parallel_map(scale, sorted(set(paths)))
