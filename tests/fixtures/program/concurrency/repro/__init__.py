"""Concurrency fixture: a tiny repro-shaped tree with C-series races."""
