"""Fixture module: S-series shape/axis contracts, TP and TN.

Every allocation here declares its dtype (this module is hot too) so
only the S rules fire.
"""

import numpy as np


def blend(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Combines both params elementwise — the S001 contract source."""
    return left + right


def mismatched() -> np.ndarray:
    a = np.zeros((4, 3), dtype=np.float64)
    b = np.zeros((5,), dtype=np.float64)
    return blend(a, b)                    # S001: (4,3) x (5,)


def compatible() -> np.ndarray:
    a = np.zeros((4, 3), dtype=np.float64)
    b = np.zeros((3,), dtype=np.float64)
    return blend(a, b)                    # exempt: broadcastable


def consume(positions: np.ndarray) -> float:
    return float(positions.sum())


def sample_major() -> float:
    poses = np.zeros((8, 100, 3), dtype=np.float64)
    return consume(poses)                 # S002: (T, n, 3) crossing in


def axis_major() -> float:
    poses = np.zeros((8, 3, 100), dtype=np.float64)
    return consume(poses)                 # exempt: (T, 3, n)


def doubled_m(values_m: np.ndarray) -> np.ndarray:
    return np.stack([values_m, values_m])  # S003: new shape, _m suffix


def scaled_m(values_m: np.ndarray) -> np.ndarray:
    return values_m * 2.0                  # exempt: shape-preserving
