"""Fixture cold module: Y/P habits that are exempt off the hot path."""

import numpy as np


def implicit_everywhere(n):
    out = np.empty(n)                  # exempt: not a hot module
    for i in range(n):
        tmp = np.zeros(3)              # exempt: not a hot module
        out[i] = tmp.sum() + i
    return out
