"""Fixture hot module: Y (dtype) and P (hot-path) rules, TP and TN.

The module name ``repro.motion.batch`` puts every function here on
the analyzer's hot-module list, so the Y/P rules apply.
"""

import numpy as np


def implicit_alloc(n):
    return np.empty((n, 3))                      # Y002: no dtype=


def explicit_alloc(n):
    return np.empty((n, 3), dtype=np.float64)    # exempt: declared


def literal_ids(values):
    ids = np.array([v for v in values])          # Y002: literal, no dtype
    return ids


def promoted(n):
    small = np.zeros(n, dtype=np.float32)
    big = np.zeros(n, dtype=np.float64)
    return small * big                           # Y001: f32 -> f64


def stable(n):
    a = np.zeros(n, dtype=np.float32)
    b = np.zeros(n, dtype=np.float32)
    return a * b                                 # exempt: one dtype


def bool_arith(n):
    flags = np.zeros(n, dtype=np.bool_)
    other = np.ones(n, dtype=np.float64)
    return flags * other                         # Y003: bool upcast


def bool_logic(n):
    a = np.zeros(n, dtype=np.bool_)
    b = np.ones(n, dtype=np.bool_)
    return a & b                                 # exempt: logical op


def alloc_in_loop(chunks):
    total = 0.0
    for chunk in chunks:
        scratch = np.empty(16, dtype=np.float64)  # P001: per-iteration
        scratch[:] = chunk
        total += float(scratch.sum())
    return total


def grow_in_loop(rows):
    out = np.zeros(0, dtype=np.float64)
    for row in rows:
        out = np.concatenate([out, row])          # P001: quadratic grow
    return out


def hoisted(chunks):
    scratch = np.empty(16, dtype=np.float64)      # exempt: outside loop
    total = 0.0
    for chunk in chunks:
        scratch[:] = chunk
        total += float(scratch.sum())
    return total


def elementwise_loop(src: np.ndarray) -> np.ndarray:
    dst = np.empty_like(src)
    for i in range(len(src)):
        dst[i] = src[i] * 2.0                     # P002: vectorizable
    return dst


def scan_loop(src: np.ndarray) -> np.ndarray:
    out = np.empty_like(src)
    out[0] = src[0]
    for i in range(1, len(src)):
        out[i] = out[i - 1] * 0.5 + src[i]        # exempt: recurrence
    return out


def direct_iteration(values: np.ndarray) -> float:
    total = 0.0
    for value in values:                          # P002: Python loop
        total += float(value)
    return total
