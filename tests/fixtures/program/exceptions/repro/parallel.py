"""parallel_map stand-in (pool sites are matched by leaf name)."""


def parallel_map(fn, items, workers=4):
    return [fn(item) for item in items]
