"""Core layer of the fixture tree."""
