"""Core-layer API: failures must carry a taxonomy name."""


class FocusDivergedError(RuntimeError):
    """The focus search left the lens's travel range."""


def align_beam(offset_m, max_steps=10):
    # E003: a public core function escaping bare RuntimeError.
    for _ in range(max_steps):
        if offset_m < 1e-6:
            return offset_m
        offset_m = offset_m / 2.0
    raise RuntimeError("alignment did not converge")


def focus_beam(offset_m, max_steps=10):
    # Safe twin: the escape is a taxonomy type callers can catch.
    for _ in range(max_steps):
        if offset_m < 1e-6:
            return offset_m
        offset_m = offset_m / 2.0
    raise FocusDivergedError("focus did not converge")


def _nudge(offset_m):
    # Private helpers may fail with whatever is handy.
    raise RuntimeError("internal nudge failure")
