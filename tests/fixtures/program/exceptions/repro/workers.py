"""Pool workers: one bails out of the process, its twin raises."""

import sys

from .errors import StoreError
from .parallel import parallel_map


def fatal_worker(row):
    # E001: sys.exit inside a worker kills the child outside the
    # pool's infra-vs-fn failure classification.
    if row is None:
        sys.exit(2)
    return row * 2


def safe_worker(row):
    # Safe twin: a taxonomy exception the parent can classify.
    if row is None:
        raise StoreError("row missing from the spool")
    return row * 2


def run_pool(rows):
    bad = parallel_map(fatal_worker, rows)
    good = parallel_map(safe_worker, rows)
    return bad, good
