"""SignalGuard stand-in plus guarded regions."""

import sys


class SignalGuard:
    """Defers SIGINT/SIGTERM until the guarded region exits."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def check(self):
        return None


def bail_out(code):
    # A callee that exits the process directly.
    sys.exit(code)


def run_guarded(units):
    # R003: sys.exit inside the guard bypasses deferred delivery.
    done = []
    with SignalGuard() as guard:
        for unit in units:
            if unit is None:
                sys.exit(3)
            done.append(unit)
        guard.check()
    return done


def run_guarded_helper(units):
    # R003 (transitive): bail_out raises SystemExit inside the guard.
    with SignalGuard():
        if not units:
            bail_out(2)
    return len(units)


def run_guarded_safe(units):
    # Safe twin: the region computes a code; the exit happens after
    # the guard has released the deferred signals.
    code = 0
    with SignalGuard():
        for unit in units:
            if unit is None:
                code = 3
    if code:
        sys.exit(code)
    return code
