"""Taxonomy stand-in: the types the E/B/R rules reason about."""


class SweepError(RuntimeError):
    """Any sweep-level failure."""


class SweepConfigError(SweepError):
    """The sweep specification is unusable."""


class StoreError(RuntimeError):
    """On-disk column state is torn or corrupt."""
