"""Exception-flow fixture: a repro-shaped tree with E/B/R bugs.

Every true positive sits next to a safe twin exercising the same
shape (translated, logged, narrowest-first, `with`-scoped, exit code
returned out of the region) so the tests pin the finding counts
exactly.
"""
