"""Store helpers: swallow, dead-catch, retry, and cleanup cases."""

import json

from .errors import StoreError, SweepConfigError


def load_rows(args):
    # Callee for the safe CLI twin: a config escape main() maps.
    if not args:
        raise SweepConfigError("no sweep arguments")
    return list(args)


def read_group(args):
    # Callee for the E002 case: a store escape main() does not map.
    if not args:
        raise StoreError("group directory is torn")
    return list(args)


def flaky_load(path):
    # Retry callee: a transient OSError plus a taxonomy escape.
    if not path:
        raise StoreError("manifest checksum mismatch")
    if path == "-":
        raise OSError("transient read failure")
    return path


def parse_payload(payload):
    if not payload:
        raise ValueError("empty payload")
    return dict(payload)


def sweep_quietly(units):
    # B001: the broad handler erases the failure entirely.
    done = []
    for unit in units:
        try:
            done.append(read_group(unit))
        except Exception:
            pass
    return done


def sweep_recorded(units, log):
    # Safe twin: the caught exception is recorded before moving on.
    done = []
    for unit in units:
        try:
            done.append(read_group(unit))
        except Exception as exc:
            log.append(str(exc))
    return done


def sweep_translated(units):
    # Safe twin: the broad catch translates to a taxonomy type.
    done = []
    for unit in units:
        try:
            done.append(read_group(unit))
        except Exception as exc:
            raise StoreError("sweep unit failed") from exc
    return done


def guarded_parse(payload):
    # B002: parse_payload can only raise ValueError; the StoreError
    # catch is dead.
    try:
        return parse_payload(payload)
    except StoreError:
        return None


def guarded_read(path):
    # Safe twin: read_group really can raise StoreError.
    try:
        return read_group(path)
    except StoreError:
        return None


def classify_failure(path):
    # B003: the broad RuntimeError clause shadows the StoreError one.
    try:
        return read_group(path)
    except RuntimeError as exc:
        return ("runtime", str(exc))
    except StoreError as exc:
        return ("store", str(exc))


def classify_failure_ordered(path):
    # Safe twin: narrowest first.
    try:
        return read_group(path)
    except StoreError as exc:
        return ("store", str(exc))
    except RuntimeError as exc:
        return ("runtime", str(exc))


def retry_until_loaded(path, attempts=3):
    # R001: the retry loop only catches the transient OSError; the
    # StoreError escape aborts the whole ladder on attempt one.
    for _ in range(attempts):
        try:
            return flaky_load(path)
        except OSError:
            continue
    return None


def retry_with_taxonomy(path, attempts=3):
    # Safe twin: the callee's full escape set is caught.
    for _ in range(attempts):
        try:
            return flaky_load(path)
        except (OSError, StoreError):
            continue
    return None


def spool_rows(path, rows):
    # R002: the handle leaks if the empty-rows raise fires.
    fh = open(path, "w")
    if not rows:
        raise ValueError("no rows to spool")
    json.dump(rows, fh)
    fh.close()
    return len(rows)


def spool_rows_scoped(path, rows):
    # Safe twin: `with` closes the handle on the raise path too.
    with open(path, "w") as fh:
        if not rows:
            raise ValueError("no rows to spool")
        json.dump(rows, fh)
    return len(rows)


def open_spool(path):
    # Factory twin: returning the handle hands cleanup to the caller.
    fh = open(path, "w")
    return fh
