"""CLI stand-in: subcommand escapes must map to exit codes."""

from .errors import SweepConfigError, SweepError
from .store import load_rows, read_group


def _cmd_run(args):
    # Safe twin: main() maps SweepError, which covers the
    # SweepConfigError this can escape.
    rows = load_rows(args)
    return 0 if rows else 1


def _cmd_report(args):
    # E002: read_group can escape StoreError and main() has no exit
    # code for it.
    rows = read_group(args)
    return 0 if rows else 1


def _dispatch(args):
    if args and args[0] == "report":
        return _cmd_report(args)
    return _cmd_run(args)


def main(argv=None):
    args = argv or []
    try:
        return _dispatch(args)
    except SweepConfigError:
        return 2
    except SweepError:
        return 1
