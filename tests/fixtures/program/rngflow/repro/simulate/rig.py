"""One of each T-series violation."""

import numpy as np

from ..determinism import resolve_rng
from ..parallel import parallel_map


class Tracker:
    """A stochastic sink: its constructor resolves an RNG."""

    def __init__(self, rng=None, seed=None):
        self.rng = resolve_rng(rng=rng, seed=seed, owner="Tracker")


def minted():
    # T001: a generator minted outside repro.determinism.
    return np.random.default_rng(7)


def fan_out(rng, jobs):
    # T002: the callable captures a generator across the pool boundary.
    return parallel_map(lambda job: rng.normal() + job, jobs)


def build():
    # T003: a stochastic sink invoked with no rng/seed threaded.
    return Tracker()
