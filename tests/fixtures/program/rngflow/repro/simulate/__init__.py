"""Experiment layer of the rngflow fixture."""
