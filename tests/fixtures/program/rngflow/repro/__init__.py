"""RNG-flow fixture: a tiny repro-shaped tree with T-series bugs."""
