"""Fixture copy of the determinism contract (the sanctioned mint)."""

import numpy as np


def resolve_rng(rng=None, seed=None, deterministic=True,
                owner="component"):
    if rng is not None:
        return rng
    if seed is not None:
        return np.random.default_rng(seed)
    if deterministic:
        raise ValueError(owner)
    return np.random.default_rng()


def spawn(rng):
    return np.random.default_rng(rng.integers(2 ** 63))


def derive(*keys):
    return np.random.default_rng(np.random.SeedSequence(list(keys)))
