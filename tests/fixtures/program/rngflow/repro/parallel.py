"""Fixture stand-in for the process-pool map."""


def parallel_map(fn, items, workers=None, chunk_size=None):
    return [fn(item) for item in items]
