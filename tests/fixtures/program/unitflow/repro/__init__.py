"""Unit-flow fixture: a tiny repro-shaped tree with X-series bugs."""
