"""Link-layer consumer with one of each X-series violation."""

from ..optics.units import db_to_linear, linear_to_db, mw_to_dbm


def attenuate(power_mw, loss_db):
    return power_mw * 10.0 ** (-loss_db / 10.0)


def report(tx_dbm, loss_db):
    # X001: a dBm value flows into the mW-suffixed parameter.
    return attenuate(tx_dbm, loss_db)


def mixed_domains(power_mw, margin_db):
    # X002 (input): a power quantity fed into the ratio slot.
    bad_ratio = linear_to_db(power_mw)
    # X002 (output): a linear ratio bound to a dB-suffixed name.
    gain_db = db_to_linear(margin_db)
    return bad_ratio, gain_db


def silent_conversion(tx_mw):
    # X003: a _dbm-returning call bound to a _mw name.
    power_mw = mw_to_dbm(tx_mw)
    return power_mw
