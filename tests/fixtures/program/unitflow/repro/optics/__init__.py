from .units import db_to_linear, dbm_to_mw, linear_to_db, mw_to_dbm

__all__ = ["db_to_linear", "dbm_to_mw", "linear_to_db", "mw_to_dbm"]
