"""Fixture copies of the sanctioned unit converters."""


def dbm_to_mw(power_dbm):
    return 10.0 ** (power_dbm / 10.0)


def mw_to_dbm(power_mw):
    return 10.0 * _log10(power_mw)


def db_to_linear(gain_db):
    return 10.0 ** (gain_db / 10.0)


def linear_to_db(ratio):
    return 10.0 * _log10(ratio)


def _log10(value):
    return value  # stand-in; fixtures are parsed, never executed
