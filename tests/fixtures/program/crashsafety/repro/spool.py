"""One of each W-series violation, with the atomic recipe beside it."""

import json
import os


def _dump(path, payload):
    # Raw open(path, "w"): safe or not depending on what callers pass —
    # the analyzer resolves it at every call site.
    with open(path, "w") as fh:
        json.dump(payload, fh)


def publish_direct(state):
    # W001: a plain json.dump onto a published path tears under crash.
    with open("spool_summary.json", "w") as fh:
        json.dump(state, fh)


def publish_helper(state):
    # W001 (interprocedural): _dump's write resolves to a published
    # path at this call site.
    _dump("spool_counts.json", state)


def publish_unsynced(state):
    # W002: the rename publishes bytes that were never fsynced.
    tmp = "spool_index.json.tmp"
    _dump(tmp, state)
    os.replace(tmp, "spool_index.json")


def publish_atomic(state):
    # Clean: tmp sibling -> fsync -> rename, proven across _dump.
    tmp = "spool_totals.json.tmp"
    _dump(tmp, state)
    fd = os.open(tmp, os.O_RDONLY)
    os.fsync(fd)
    os.close(fd)
    os.replace(tmp, "spool_totals.json")


def log_done(record):
    # W003: a side-channel append to the journal bypasses the CRC path.
    with open("sweep_journal.ndjson", "a") as fh:
        fh.write(record + "\n")
