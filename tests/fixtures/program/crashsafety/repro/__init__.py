"""Crash-safety fixture: a tiny repro-shaped tree with W-series bugs."""
