"""Fixture copy of the store package (atomic sidecar writes)."""
