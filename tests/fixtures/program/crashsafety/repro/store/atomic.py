"""Fixture copy of the sanctioned raw-write plumbing module."""

import json
import os


def write_json_atomic(path, payload):
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(payload, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def rewrite_meta(payload):
    # A raw in-place write: sanctioned only because this module IS
    # repro.store.atomic — the same line anywhere else is a W001.
    with open("store_meta.json", "w") as fh:
        json.dump(payload, fh)
