"""Fixture copy of the orchestrator package (journal discipline)."""
