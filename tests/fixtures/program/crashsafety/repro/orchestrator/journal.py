"""Fixture copy of the checksummed journal (the sanctioned mutator)."""

import os


def append(record):
    # Sanctioned: the journal module owns its append path.
    with open("sweep_journal.ndjson", "a") as fh:
        fh.write(record + "\n")
        fh.flush()
        os.fsync(fh.fileno())
