"""Device-layer module reaching UP into the experiment layer: L001."""

from ..simulate import run


def transformed():
    return run()
