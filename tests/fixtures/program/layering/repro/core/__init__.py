"""Half of a same-layer module-level import cycle: L002."""

from ..link import design


def point():
    return design
