"""Layering fixture: a tiny repro-shaped tree with L-series bugs."""
