"""The other half of the core <-> link import cycle: L002."""

from ..core import point

design = 1


def budget():
    return point()
