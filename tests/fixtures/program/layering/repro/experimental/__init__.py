"""A subpackage nobody added to the LAYERS contract: L003."""

VALUE = 42
