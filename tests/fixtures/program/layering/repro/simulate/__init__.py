"""Experiment-layer module; a legitimate top-of-stack resident."""


def run():
    return 1
