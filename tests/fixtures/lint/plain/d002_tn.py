"""D002 true negative: same constructs outside the repro package."""
import random
import time


def jitter():
    return random.random() + time.time()
