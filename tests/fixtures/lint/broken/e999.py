def broken(:
