"""Suppression demo: one deliberate D001 with an inline waiver."""
import numpy as np

rng = np.random.default_rng()  # repro: noqa[D001]
