"""A001 true negatives: annotated public API, exempt private helper."""
from typing import List


def fit(samples: List[float], iterations: int = 10) -> List[float]:
    return samples


def _helper(samples):
    return samples
