"""D004 true positive: literal seed buried inside a function."""
import numpy as np


def sample_noise() -> float:
    rng = np.random.default_rng(1234)
    return float(rng.normal())
