"""D002 true positive: stdlib random and wall-clock in repro."""
import random
import time


def jitter():
    return random.random() + time.time()
