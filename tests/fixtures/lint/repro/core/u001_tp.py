"""U001 true positives: unannotated / cross-assigned unit params."""


def launch(power_dbm, loss_db: str) -> None:
    pass


def attenuate(power_dbm: float, loss_db: float) -> float:
    return power_dbm - loss_db


def misuse(power_dbm: float, loss_db: float) -> float:
    return attenuate(power_dbm=loss_db, loss_db=power_dbm)
