"""A001 true positive: public core function missing annotations."""


def fit(samples, iterations=10):
    return samples
