"""U001 true negatives: annotated units, straight-through passing."""
import numpy as np


def attenuate(power_dbm: float, loss_db: float) -> float:
    return power_dbm - loss_db


def forward(power_dbm: float, loss_db: float) -> float:
    return attenuate(power_dbm=power_dbm, loss_db=loss_db)


def norm(v: np.ndarray) -> float:
    return float(np.linalg.norm(v))
