"""N001 true negatives: None sentinel and immutable defaults."""
from typing import List, Optional, Tuple


def append_to(item: float, bucket: Optional[List[float]] = None) -> List[float]:
    out = [] if bucket is None else bucket
    out.append(item)
    return out


def scale(values: Tuple[float, ...] = (1.0, 2.0)) -> Tuple[float, ...]:
    return values
