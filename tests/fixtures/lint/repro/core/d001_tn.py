"""D001 true negative: explicit seeds everywhere."""
import numpy as np

rng = np.random.default_rng(42)
legacy = np.random.RandomState(7)
