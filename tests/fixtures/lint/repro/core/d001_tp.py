"""D001 true positive: unseeded generator construction."""
import numpy as np

rng = np.random.default_rng()
legacy = np.random.RandomState()
