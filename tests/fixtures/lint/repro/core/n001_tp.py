"""N001 true positives: mutable default arguments."""


def append_to(item: float, bucket=[]) -> list:
    bucket.append(item)
    return bucket


def tally(counts={}) -> dict:
    return counts
