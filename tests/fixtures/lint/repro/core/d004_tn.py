"""D004 true negatives: seed plumbing and child-generator spawning."""
import numpy as np


def build(seed: int = 7) -> np.random.Generator:
    return np.random.default_rng(seed)


def spawn_child(rng: np.random.Generator) -> np.random.Generator:
    return np.random.default_rng(rng.integers(2 ** 63))
