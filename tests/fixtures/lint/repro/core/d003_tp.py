"""D003 true positive: global numpy RNG state mutation."""
import numpy as np

np.random.seed(0)
sample = np.random.uniform(0.0, 1.0)
