"""D003 true negative: a local Generator instead of global state."""
import numpy as np

rng = np.random.default_rng(3)
sample = rng.uniform(0.0, 1.0)
