"""U002 true negative: explicit element selection before float()."""
import numpy as np


def first_sample(power_mw: np.ndarray) -> float:
    return float(power_mw[0])
