"""U002 true positive: float() truncation of an array parameter."""
import numpy as np


def collapse(power_mw: np.ndarray) -> float:
    return float(power_mw)
