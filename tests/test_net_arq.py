"""Tests for the packet-level ARQ layer."""

import numpy as np
import pytest

from repro.motion import generate_trace
from repro.net.arq import DEFAULT_PACKET_BITS, run_arq
from repro.simulate import simulate_trace


def slots(pattern, n):
    return np.tile(np.asarray(pattern, dtype=bool), n)


class TestRunArq:
    def test_clean_link_full_goodput(self):
        result = run_arq(slots([True], 1000), 1e-3, 23.5)
        assert result.goodput_gbps == pytest.approx(23.5, rel=0.01)
        assert result.retransmission_fraction == 0.0

    def test_dead_link_zero_goodput(self):
        result = run_arq(slots([False], 1000), 1e-3, 23.5)
        assert result.goodput_gbps == 0.0
        assert result.delivered_packets == 0

    def test_goodput_tracks_availability(self):
        # 10% off-slots -> ~90% of line rate, the Section 5.4 claim.
        pattern = [True] * 9 + [False]
        result = run_arq(slots(pattern, 200), 1e-3, 23.5)
        assert result.goodput_gbps == pytest.approx(23.5 * 0.9,
                                                    rel=0.02)

    def test_retransmissions_match_losses(self):
        pattern = [True] * 9 + [False]
        result = run_arq(slots(pattern, 200), 1e-3, 23.5)
        assert result.retransmission_fraction == pytest.approx(0.1,
                                                               abs=0.02)

    def test_feedback_delay_does_not_change_goodput(self):
        # Losses are eventually retransmitted either way; only the
        # delivery *latency* of those packets moves.
        pattern = [True] * 8 + [False] * 2
        fast = run_arq(slots(pattern, 100), 1e-3, 23.5,
                       feedback_delay_slots=1)
        slow = run_arq(slots(pattern, 100), 1e-3, 23.5,
                       feedback_delay_slots=20)
        assert fast.goodput_gbps == pytest.approx(slow.goodput_gbps,
                                                  rel=0.01)

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            run_arq(slots([True], 10), 0.0, 23.5)
        with pytest.raises(ValueError):
            run_arq(slots([True], 10), 1e-3, 0.0)
        with pytest.raises(ValueError):
            run_arq(slots([True], 10), 1e-3, 23.5,
                    feedback_delay_slots=-1)

    def test_slot_must_fit_a_packet(self):
        with pytest.raises(ValueError):
            run_arq(slots([True], 10), 1e-9, 1.0)

    def test_paper_claim_on_a_trace(self):
        # Section 5.4: "a network protocol would be able to provide an
        # effective bandwidth of about 23 Gbps (98.6% of 23.5)".
        trace = generate_trace(viewer=3, video=1)
        result = simulate_trace(trace)
        arq = run_arq(result.connected, 1e-3, 23.5)
        expected = 23.5 * result.availability
        assert arq.goodput_gbps == pytest.approx(expected, rel=0.02)
        assert arq.goodput_gbps > 21.0
