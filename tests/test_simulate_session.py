"""Integration tests for the live prototype session (Section 5.3)."""

import numpy as np
import pytest

from repro.motion import (
    LinearRail,
    RotationStage,
    StaticProfile,
    StrokeSchedule,
)
from repro.net import ThroughputWindow
from repro.simulate import PrototypeSession, surviving_speed_threshold


@pytest.fixture(scope="module")
def session(testbed, learned_system):
    return PrototypeSession(testbed, learned_system)


class TestStaticSession:
    def test_static_link_stays_up(self, session, testbed):
        profile = StaticProfile(testbed.home_pose, duration_s=2.0)
        result = session.run(profile)
        assert result.uptime_fraction == 1.0

    def test_static_throughput_optimal(self, session, testbed):
        profile = StaticProfile(testbed.home_pose, duration_s=2.0)
        result = session.run(profile)
        optimal = testbed.design.sfp.optimal_throughput_gbps
        assert np.all(result.throughputs_gbps()
                      >= 0.99 * optimal)

    def test_pointing_runs_at_tracker_rate(self, session, testbed):
        result = session.run(StaticProfile(testbed.home_pose, 2.0))
        # ~80 reports per second for 2 s.
        assert 130 <= result.pointing_calls <= 190

    def test_power_stays_near_peak(self, session, testbed):
        result = session.run(StaticProfile(testbed.home_pose, 1.0))
        assert result.power_dbm.min() > \
            testbed.design.sfp.rx_sensitivity_dbm


class TestSlowMotionSession:
    def test_slow_linear_motion_keeps_optimal(self, session, testbed):
        rail = LinearRail(axis=[1, 0, 0], length_m=0.2)
        profile = rail.stroke_profile(testbed.home_pose, [0.10])
        result = session.run(profile)
        assert result.uptime_fraction == 1.0

    def test_slow_angular_motion_keeps_optimal(self, session, testbed):
        stage = RotationStage(axis=[0, 0, 1],
                              range_rad=np.radians(12))
        profile = stage.stroke_profile(testbed.home_pose,
                                       [np.radians(6)])
        result = session.run(profile)
        assert result.uptime_fraction == 1.0


class TestFastMotionSession:
    def test_very_fast_rotation_drops_link(self, session, testbed):
        stage = RotationStage(axis=[0, 0, 1],
                              range_rad=np.radians(16))
        profile = stage.stroke_profile(testbed.home_pose,
                                       [np.radians(60)])
        result = session.run(profile)
        assert result.uptime_fraction < 1.0

    def test_relock_outage_visible(self, session, testbed):
        # After a drop, the SFP re-lock keeps the link down for
        # seconds even though motion stopped.
        stage = RotationStage(axis=[0, 0, 1],
                              range_rad=np.radians(16))
        profile = stage.stroke_profile(testbed.home_pose,
                                       [np.radians(80)], rest_s=1.5)
        result = session.run(profile)
        down = ~result.link_up
        if down.any():
            # Longest outage should span at least the relock delay.
            changes = np.flatnonzero(np.diff(down.astype(int)))
            spans = np.diff(np.concatenate([[0], changes,
                                            [len(down)]]))
            assert spans.max() >= int(
                testbed.design.sfp.relock_delay_s / 1e-3 * 0.8)


class TestThresholdReadout:
    def test_threshold_zero_if_slowest_fails(self):
        schedule = StrokeSchedule(extent=0.3, speeds=[0.1, 0.2])
        windows = [ThroughputWindow(center_s=0.5, throughput_gbps=0.0,
                                    uptime_fraction=0.0)]
        assert surviving_speed_threshold(schedule, windows, 9.4) == 0.0

    def test_threshold_top_speed_if_all_pass(self):
        schedule = StrokeSchedule(extent=0.3, speeds=[0.1, 0.2])
        windows = [ThroughputWindow(center_s=t, throughput_gbps=9.4,
                                    uptime_fraction=1.0)
                   for t in np.arange(0.025, schedule.duration_s, 0.05)]
        assert surviving_speed_threshold(schedule, windows, 9.4) == 0.2

    def test_threshold_stops_at_first_failure(self):
        schedule = StrokeSchedule(extent=0.3, speeds=[0.1, 0.2, 0.3],
                                  rest_s=0.25)
        # Fail only windows during the 0.3 m/s strokes (which start
        # after the first four strokes + rests).
        fail_after = 2 * (0.3 / 0.1 + 0.25) + 2 * (0.3 / 0.2 + 0.25)
        windows = [ThroughputWindow(
            center_s=t,
            throughput_gbps=0.0 if t > fail_after else 9.4,
            uptime_fraction=1.0)
            for t in np.arange(0.025, schedule.duration_s, 0.05)]
        assert surviving_speed_threshold(schedule, windows, 9.4) == 0.2

    def test_requires_windows(self):
        schedule = StrokeSchedule(extent=0.3, speeds=[0.1])
        with pytest.raises(ValueError):
            surviving_speed_threshold(schedule, [], 9.4)
