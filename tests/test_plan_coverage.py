"""Tests for the ceiling-coverage planner."""

import math

import numpy as np
import pytest

from repro.plan import (
    CoverageConstraints,
    CoveragePlan,
    Room,
    plan_greedy,
    service_radius_m,
    tx_covers,
)


def small_room():
    return Room(width_m=3.0, depth_m=3.0, ceiling_height_m=2.6,
                head_height_m=1.5)


class TestRoom:
    def test_vertical_gap(self):
        assert small_room().vertical_gap_m == pytest.approx(1.1)

    def test_rejects_low_ceiling(self):
        with pytest.raises(ValueError):
            Room(3.0, 3.0, ceiling_height_m=1.4, head_height_m=1.5)

    def test_grid_covers_floor(self):
        grid = small_room().grid(resolution_m=0.5)
        assert grid[:, 0].max() < 3.0
        assert grid[:, 1].max() < 3.0
        assert len(grid) == 36


class TestTxCovers:
    def test_directly_below_is_covered(self):
        room = small_room()
        assert tx_covers([1.5, 1.5], [1.5, 1.5], room,
                         CoverageConstraints())

    def test_outside_cone_not_covered(self):
        room = small_room()
        constraints = CoverageConstraints()
        # Lateral distance putting the steering angle past the cone.
        too_far = room.vertical_gap_m * math.tan(
            constraints.cone_half_angle_rad) * 1.3
        assert not tx_covers([1.5, 1.5], [1.5 + too_far, 1.5], room,
                             constraints)

    def test_range_limit_binds(self):
        room = Room(6.0, 6.0, ceiling_height_m=4.0, head_height_m=1.5)
        constraints = CoverageConstraints(max_range_m=2.0)
        # Vertical gap alone is 2.5 m > max range: nothing is covered.
        assert not tx_covers([3.0, 3.0], [3.0, 3.0], room, constraints)


class TestServiceRadius:
    def test_cone_bound(self):
        room = small_room()
        constraints = CoverageConstraints(max_range_m=100.0)
        expected = 1.1 * math.tan(math.radians(20.0))
        assert service_radius_m(room, constraints) == pytest.approx(
            expected)

    def test_range_bound(self):
        room = small_room()
        constraints = CoverageConstraints(
            cone_half_angle_rad=math.radians(89.0), max_range_m=1.2)
        expected = math.sqrt(1.2 ** 2 - 1.1 ** 2)
        assert service_radius_m(room, constraints) == pytest.approx(
            expected)

    def test_zero_when_range_too_short(self):
        room = small_room()
        constraints = CoverageConstraints(max_range_m=1.0)  # < gap
        assert service_radius_m(room, constraints) == 0.0


class TestGreedyPlanner:
    def test_small_room_needs_several_txs(self):
        # Service radius ~0.4 m -> a 3x3 m room needs a grid of them.
        plan = plan_greedy(small_room(), target_fraction=0.9)
        assert 5 <= len(plan.tx_positions) <= 40
        assert plan.coverage_fraction(0.15) >= 0.88

    def test_bigger_room_needs_more_txs(self):
        small = plan_greedy(small_room(), target_fraction=0.9,
                            resolution_m=0.25)
        big = plan_greedy(Room(5.0, 5.0), target_fraction=0.9,
                          resolution_m=0.25)
        assert len(big.tx_positions) > len(small.tx_positions)

    def test_wider_cone_needs_fewer_txs(self):
        narrow = plan_greedy(small_room(), CoverageConstraints(),
                             target_fraction=0.9, resolution_m=0.25)
        wide = plan_greedy(
            small_room(),
            CoverageConstraints(cone_half_angle_rad=math.radians(40.0)),
            target_fraction=0.9, resolution_m=0.25)
        assert len(wide.tx_positions) < len(narrow.tx_positions)

    def test_redundancy_grows_with_extra_txs(self):
        plan = plan_greedy(small_room(), target_fraction=0.9,
                           resolution_m=0.25)
        base = plan.redundancy_fraction(0.25)
        # Duplicate every TX: redundancy saturates to the coverage.
        doubled = CoveragePlan(plan.room, plan.constraints,
                               plan.tx_positions * 2)
        assert doubled.redundancy_fraction(0.25) >= base
        assert doubled.redundancy_fraction(0.25) == pytest.approx(
            doubled.coverage_fraction(0.25))

    def test_target_fraction_validated(self):
        with pytest.raises(ValueError):
            plan_greedy(small_room(), target_fraction=0.0)

    def test_empty_plan_covers_nothing(self):
        plan = CoveragePlan(small_room(), CoverageConstraints())
        assert plan.coverage_fraction(0.5) == 0.0
