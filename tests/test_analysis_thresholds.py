"""Tests for the closed-form tolerated-speed model."""

import math

import numpy as np
import pytest

from repro.analysis import (
    BudgetInputs,
    angular_speed_limit_rad_s,
    default_staleness_s,
    inputs_for,
    linear_speed_limit_m_s,
    mixed_speed_feasible,
)
from repro.link import link_10g_diverging, link_25g


class TestDefaults:
    def test_staleness_is_tracking_plus_actuation(self):
        # ~13 ms period + ~1.5 ms control/DAC.
        assert 0.013 <= default_staleness_s() <= 0.016

    def test_inputs_for_populates(self):
        inputs = inputs_for(link_10g_diverging())
        assert inputs.margin_db > 0
        assert inputs.lateral_width_m > 0
        assert inputs.angular_width_rad > 0
        assert math.isfinite(inputs.curvature_radius_m)


class TestAngularLimit:
    def test_10g_limit_near_paper(self):
        # Paper: 16-18 deg/s tolerated by the 10G link.
        limit = angular_speed_limit_rad_s(inputs_for(link_10g_diverging()))
        assert 10.0 <= np.degrees(limit) <= 26.0

    def test_25g_limit_near_paper(self):
        # Paper: ~25 deg/s.
        limit = angular_speed_limit_rad_s(inputs_for(link_25g()))
        assert 18.0 <= np.degrees(limit) <= 34.0

    def test_zero_when_residual_eats_budget(self):
        inputs = inputs_for(link_10g_diverging(),
                            residual_angular_rad=0.1)
        assert angular_speed_limit_rad_s(inputs) == 0.0

    def test_limit_shrinks_with_staleness(self):
        fast = inputs_for(link_10g_diverging(), staleness_s=0.005)
        slow = inputs_for(link_10g_diverging(), staleness_s=0.030)
        assert angular_speed_limit_rad_s(fast) > \
            angular_speed_limit_rad_s(slow)

    def test_limit_grows_with_margin(self):
        base = inputs_for(link_10g_diverging())
        richer = BudgetInputs(
            margin_db=base.margin_db + 6.0,
            lateral_width_m=base.lateral_width_m,
            angular_width_rad=base.angular_width_rad,
            curvature_radius_m=base.curvature_radius_m,
            staleness_s=base.staleness_s,
            residual_lateral_m=base.residual_lateral_m,
            residual_angular_rad=base.residual_angular_rad)
        assert angular_speed_limit_rad_s(richer) > \
            angular_speed_limit_rad_s(base)


class TestLinearLimit:
    def test_10g_limit_near_simulated(self):
        # The simulator tolerates ~46 cm/s; the paper 33-39.
        limit = linear_speed_limit_m_s(inputs_for(link_10g_diverging()))
        assert 0.25 <= limit <= 0.65

    def test_25g_below_10g(self):
        # Table 3's ordering.
        lin10 = linear_speed_limit_m_s(inputs_for(link_10g_diverging()))
        lin25 = linear_speed_limit_m_s(inputs_for(link_25g()))
        assert lin25 < lin10

    def test_curvature_drives_linear_limit(self):
        # Without the wavefront-rotation effect (collimated-like
        # infinite curvature) the linear tolerance becomes much larger.
        base = inputs_for(link_10g_diverging())
        flat = BudgetInputs(
            margin_db=base.margin_db,
            lateral_width_m=base.lateral_width_m,
            angular_width_rad=base.angular_width_rad,
            curvature_radius_m=math.inf,
            staleness_s=base.staleness_s,
            residual_lateral_m=base.residual_lateral_m,
            residual_angular_rad=base.residual_angular_rad)
        assert linear_speed_limit_m_s(flat) > \
            1.5 * linear_speed_limit_m_s(base)

    def test_zero_when_residual_eats_budget(self):
        inputs = inputs_for(link_10g_diverging(),
                            residual_lateral_m=0.1)
        assert linear_speed_limit_m_s(inputs) == 0.0


class TestMixedFeasibility:
    def test_requirement_speeds_feasible(self):
        # The Section 2.2 requirement: 14 cm/s + 19 deg/s... with the
        # 25G link (whose mixed tolerance the paper matches to it).
        inputs = inputs_for(link_25g())
        assert mixed_speed_feasible(inputs, 0.14, np.radians(15.0))

    def test_extreme_speeds_infeasible(self):
        inputs = inputs_for(link_10g_diverging())
        assert not mixed_speed_feasible(inputs, 1.0, np.radians(100.0))

    def test_mixed_tighter_than_pure(self):
        inputs = inputs_for(link_10g_diverging())
        pure_ang = angular_speed_limit_rad_s(inputs)
        # At the pure angular limit, adding linear speed breaks it.
        assert not mixed_speed_feasible(inputs, 0.2, pure_ang * 0.99)

    def test_boundary_consistency_with_pure_limits(self):
        inputs = inputs_for(link_10g_diverging())
        pure_lin = linear_speed_limit_m_s(inputs)
        assert mixed_speed_feasible(inputs, pure_lin * 0.95, 0.0)
        assert not mixed_speed_feasible(inputs, pure_lin * 1.05, 0.0)
