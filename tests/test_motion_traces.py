"""Unit tests for the synthetic head-trace dataset."""

import numpy as np
import pytest

from repro import constants
from repro.motion import (
    NORMAL_USE,
    VIDEO_360,
    generate_dataset,
    generate_trace,
    measure_trace,
)


@pytest.fixture(scope="module")
def video_trace():
    return generate_trace(viewer=0, video=0, profile=VIDEO_360)


class TestTraceFormat:
    def test_sample_rate(self, video_trace):
        assert video_trace.dt_s == pytest.approx(0.010)

    def test_duration_one_minute(self, video_trace):
        assert video_trace.duration_s == pytest.approx(60.0)

    def test_array_lengths_consistent(self, video_trace):
        n = video_trace.samples
        assert video_trace.positions.shape == (n, 3)
        assert video_trace.eulers.shape == (n, 3)
        assert len(video_trace.step_linear_m) == n - 1

    def test_starts_at_origin(self, video_trace):
        assert np.allclose(video_trace.positions[0], 0.0)

    def test_steps_match_positions(self, video_trace):
        deltas = np.linalg.norm(np.diff(video_trace.positions, axis=0),
                                axis=1)
        assert np.allclose(deltas, video_trace.step_linear_m)


class TestDeterminism:
    def test_same_ids_same_trace(self):
        a = generate_trace(3, 7, seed=42)
        b = generate_trace(3, 7, seed=42)
        assert np.allclose(a.positions, b.positions)
        assert np.allclose(a.step_angular_rad, b.step_angular_rad)

    def test_different_viewer_different_trace(self):
        a = generate_trace(3, 7, seed=42)
        b = generate_trace(4, 7, seed=42)
        assert not np.allclose(a.positions, b.positions)

    def test_dataset_dimensions(self):
        dataset = generate_dataset(viewers=3, videos=4, duration_s=5.0)
        assert len(dataset) == 12
        assert {(t.viewer, t.video) for t in dataset} == {
            (v, w) for v in range(3) for w in range(4)}


class TestStatistics:
    def test_normal_use_respects_fig3_bounds(self):
        # Fig. 3: at most ~19 deg/s angular and ~14 cm/s linear.
        traces = [generate_trace(v, 0, profile=NORMAL_USE)
                  for v in range(8)]
        ang = np.concatenate(
            [measure_trace(t).angular_deg_s for t in traces])
        lin = np.concatenate(
            [measure_trace(t).linear_m_s for t in traces])
        assert ang.max() <= constants.REQUIRED_ANGULAR_SPEED_DEG_S * 1.15
        assert lin.max() <= constants.REQUIRED_LINEAR_SPEED_M_S * 1.25

    def test_video_360_has_fast_turns(self):
        traces = [generate_trace(v, vid, profile=VIDEO_360)
                  for v in range(4) for vid in range(3)]
        ang = np.concatenate(
            [measure_trace(t).angular_deg_s for t in traces])
        assert ang.max() > constants.REQUIRED_ANGULAR_SPEED_DEG_S

    def test_video_360_is_mostly_calm(self):
        trace = generate_trace(1, 1, profile=VIDEO_360)
        ang = measure_trace(trace).angular_deg_s
        assert np.median(ang) < 20.0

    def test_traces_vary_in_activity(self):
        maxima = []
        for v in range(6):
            trace = generate_trace(v, 0, profile=VIDEO_360)
            maxima.append(measure_trace(trace).angular_deg_s.max())
        assert max(maxima) > 2 * min(maxima)


class TestPoseAt:
    def test_endpoints(self, video_trace):
        start = video_trace.pose_at(0.0)
        assert np.allclose(start.position, video_trace.positions[0])

    def test_interpolates_between_samples(self, video_trace):
        mid = video_trace.pose_at(0.005)
        expected = (video_trace.positions[0]
                    + video_trace.positions[1]) / 2.0
        assert np.allclose(mid.position, expected)

    def test_clamps_beyond_end(self, video_trace):
        last = video_trace.pose_at(1e6)
        assert np.allclose(last.position, video_trace.positions[-1])

    def test_speeds_helpers(self, video_trace):
        assert len(video_trace.linear_speeds_m_s()) == \
            video_trace.samples - 1
        assert np.all(video_trace.angular_speeds_rad_s() >= 0)
