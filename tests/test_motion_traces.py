"""Unit tests for the synthetic head-trace dataset."""

import numpy as np
import pytest

from repro import constants
from repro.motion import (
    NORMAL_USE,
    VIDEO_360,
    generate_dataset,
    generate_trace,
    measure_trace,
    resample_trace,
)
from repro.motion.traces import _ou_series, _ou_series_reference


@pytest.fixture(scope="module")
def video_trace():
    return generate_trace(viewer=0, video=0, profile=VIDEO_360)


class TestTraceFormat:
    def test_sample_rate(self, video_trace):
        assert video_trace.dt_s == pytest.approx(0.010)

    def test_duration_one_minute(self, video_trace):
        assert video_trace.duration_s == pytest.approx(60.0)

    def test_array_lengths_consistent(self, video_trace):
        n = video_trace.samples
        assert video_trace.positions.shape == (n, 3)
        assert video_trace.eulers.shape == (n, 3)
        assert len(video_trace.step_linear_m) == n - 1

    def test_starts_at_origin(self, video_trace):
        assert np.allclose(video_trace.positions[0], 0.0)

    def test_steps_match_positions(self, video_trace):
        deltas = np.linalg.norm(np.diff(video_trace.positions, axis=0),
                                axis=1)
        assert np.allclose(deltas, video_trace.step_linear_m)


class TestDeterminism:
    def test_same_ids_same_trace(self):
        a = generate_trace(3, 7, seed=42)
        b = generate_trace(3, 7, seed=42)
        assert np.allclose(a.positions, b.positions)
        assert np.allclose(a.step_angular_rad, b.step_angular_rad)

    def test_different_viewer_different_trace(self):
        a = generate_trace(3, 7, seed=42)
        b = generate_trace(4, 7, seed=42)
        assert not np.allclose(a.positions, b.positions)

    def test_dataset_dimensions(self):
        dataset = generate_dataset(viewers=3, videos=4, duration_s=5.0)
        assert len(dataset) == 12
        assert {(t.viewer, t.video) for t in dataset} == {
            (v, w) for v in range(3) for w in range(4)}


class TestStatistics:
    def test_normal_use_respects_fig3_bounds(self):
        # Fig. 3: at most ~19 deg/s angular and ~14 cm/s linear.
        traces = [generate_trace(v, 0, profile=NORMAL_USE)
                  for v in range(8)]
        ang = np.concatenate(
            [measure_trace(t).angular_deg_s for t in traces])
        lin = np.concatenate(
            [measure_trace(t).linear_m_s for t in traces])
        assert ang.max() <= constants.REQUIRED_ANGULAR_SPEED_DEG_S * 1.15
        assert lin.max() <= constants.REQUIRED_LINEAR_SPEED_M_S * 1.25

    def test_video_360_has_fast_turns(self):
        traces = [generate_trace(v, vid, profile=VIDEO_360)
                  for v in range(4) for vid in range(3)]
        ang = np.concatenate(
            [measure_trace(t).angular_deg_s for t in traces])
        assert ang.max() > constants.REQUIRED_ANGULAR_SPEED_DEG_S

    def test_video_360_is_mostly_calm(self):
        trace = generate_trace(1, 1, profile=VIDEO_360)
        ang = measure_trace(trace).angular_deg_s
        assert np.median(ang) < 20.0

    def test_traces_vary_in_activity(self):
        maxima = []
        for v in range(6):
            trace = generate_trace(v, 0, profile=VIDEO_360)
            maxima.append(measure_trace(trace).angular_deg_s.max())
        assert max(maxima) > 2 * min(maxima)


class TestPoseAt:
    def test_endpoints(self, video_trace):
        start = video_trace.pose_at(0.0)
        assert np.allclose(start.position, video_trace.positions[0])

    def test_interpolates_between_samples(self, video_trace):
        mid = video_trace.pose_at(0.005)
        expected = (video_trace.positions[0]
                    + video_trace.positions[1]) / 2.0
        assert np.allclose(mid.position, expected)

    def test_clamps_beyond_end(self, video_trace):
        last = video_trace.pose_at(1e6)
        assert np.allclose(last.position, video_trace.positions[-1])

    def test_clamps_negative_time(self, video_trace):
        before = video_trace.pose_at(-5.0)
        assert np.allclose(before.position, video_trace.positions[0])
        assert np.allclose(before.position,
                           video_trace.pose_at(0.0).position)

    def test_exact_last_sample(self, video_trace):
        end = video_trace.pose_at(video_trace.duration_s)
        assert np.allclose(end.position, video_trace.positions[-1])

    def test_just_past_duration_equals_last(self, video_trace):
        duration = video_trace.duration_s
        past = video_trace.pose_at(duration + 0.5 * video_trace.dt_s)
        assert np.allclose(past.position, video_trace.positions[-1])

    def test_exact_interior_sample(self, video_trace):
        t = 7 * video_trace.dt_s
        assert np.allclose(video_trace.pose_at(t).position,
                           video_trace.positions[7])

    def test_speeds_helpers(self, video_trace):
        assert len(video_trace.linear_speeds_m_s()) == \
            video_trace.samples - 1
        assert np.all(video_trace.angular_speeds_rad_s() >= 0)


class TestResample:
    @pytest.fixture(scope="class")
    def short_trace(self):
        return generate_trace(viewer=1, video=2, seed=5, duration_s=2.0)

    def test_identity_factor(self, short_trace):
        assert resample_trace(short_trace, 1) is short_trace

    def test_rejects_factor_below_one(self, short_trace):
        with pytest.raises(ValueError):
            resample_trace(short_trace, 0)

    def test_rejects_factor_beyond_trace(self, short_trace):
        steps = len(short_trace.step_linear_m)
        with pytest.raises(ValueError):
            resample_trace(short_trace, steps + 1)

    def test_exact_division(self, short_trace):
        steps = len(short_trace.step_linear_m)  # 200 steps
        factor = 4
        assert steps % factor == 0
        coarse = resample_trace(short_trace, factor)
        assert len(coarse.step_linear_m) == steps // factor
        assert coarse.samples == steps // factor + 1
        assert coarse.dt_s == pytest.approx(short_trace.dt_s * factor)

    def test_remainder_steps_dropped(self, short_trace):
        steps = len(short_trace.step_linear_m)  # 200 steps
        factor = 7                              # 200 = 28*7 + 4
        groups = steps // factor
        coarse = resample_trace(short_trace, factor)
        assert len(coarse.step_linear_m) == groups
        assert coarse.samples == groups + 1
        # Only the first groups*factor fine steps contribute; the
        # 4-step remainder is discarded.
        used = groups * factor
        np.testing.assert_allclose(
            coarse.step_linear_m,
            short_trace.step_linear_m[:used].reshape(
                groups, factor).sum(axis=1))
        np.testing.assert_allclose(
            coarse.step_angular_rad,
            short_trace.step_angular_rad[:used].reshape(
                groups, factor).sum(axis=1))

    def test_positions_subsampled_at_group_boundaries(self, short_trace):
        factor = 7
        coarse = resample_trace(short_trace, factor)
        groups = len(short_trace.step_linear_m) // factor
        indices = np.arange(0, groups * factor + 1, factor)
        np.testing.assert_allclose(coarse.positions,
                                   short_trace.positions[indices])
        np.testing.assert_allclose(coarse.eulers,
                                   short_trace.eulers[indices])

    def test_motion_is_conserved_per_group(self, short_trace):
        # Summed step magnitudes are identical physical motion seen by
        # a slower tracker, so totals over the used region agree.
        factor = 3
        coarse = resample_trace(short_trace, factor)
        used = (len(short_trace.step_linear_m) // factor) * factor
        assert coarse.step_angular_rad.sum() == pytest.approx(
            short_trace.step_angular_rad[:used].sum())


class TestOuVectorization:
    """The vectorized AR(1) path is bit-identical to the recursion."""

    @pytest.mark.parametrize("n,tau,sigma", [
        (1, 0.8, 0.1),
        (2, 0.8, 0.1),
        (977, 0.8, 0.14),
        (6001, 1.2, 0.04),
        (50, 1e-3, 2.0),     # decay ~ 0, innovation ~ sigma
        (50, 1e6, 0.5),      # decay ~ 1, tiny innovation
    ])
    def test_bitwise_equal_to_reference(self, n, tau, sigma):
        fast = _ou_series(n, 0.01, tau, sigma,
                          np.random.default_rng(99))
        slow = _ou_series_reference(n, 0.01, tau, sigma,
                                    np.random.default_rng(99))
        np.testing.assert_array_equal(fast, slow)

    def test_consumes_identical_rng_stream(self):
        # After generating, both leave the generator in the same state
        # so downstream draws (saccades, sway) are unchanged.
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        _ou_series(500, 0.01, 0.8, 0.2, rng_a)
        _ou_series_reference(500, 0.01, 0.8, 0.2, rng_b)
        assert rng_a.integers(1 << 30) == rng_b.integers(1 << 30)

    def test_empty_series(self):
        assert _ou_series(0, 0.01, 0.8, 0.1,
                          np.random.default_rng(0)).size == 0


class TestDatasetWorkers:
    def test_workers_do_not_change_dataset(self):
        serial = generate_dataset(viewers=2, videos=2, duration_s=2.0,
                                  workers=1)
        fanned = generate_dataset(viewers=2, videos=2, duration_s=2.0,
                                  workers=2)
        assert len(serial) == len(fanned)
        for a, b in zip(serial, fanned):
            assert (a.viewer, a.video) == (b.viewer, b.video)
            np.testing.assert_array_equal(a.positions, b.positions)
            np.testing.assert_array_equal(a.eulers, b.eulers)
            np.testing.assert_array_equal(a.step_linear_m,
                                          b.step_linear_m)
            np.testing.assert_array_equal(a.step_angular_rad,
                                          b.step_angular_rad)
