"""Unit tests for repro.optics.gaussian."""

import math

import pytest

from repro.optics import GaussianBeam, divergence_for_diameter


class TestGaussianBeam:
    def test_diameter_at_zero_is_waist(self):
        beam = GaussianBeam(2e-3, 4e-3)
        assert beam.diameter_at(0.0) == pytest.approx(2e-3)

    def test_far_field_linear_growth(self):
        beam = GaussianBeam(2e-3, 4e-3)
        # At long range the diameter approaches 2 * theta * z.
        assert beam.diameter_at(100.0) == pytest.approx(0.8, rel=1e-3)

    def test_diameter_monotone_in_range(self):
        beam = GaussianBeam(2e-3, 4e-3)
        diameters = [beam.diameter_at(z) for z in (0.5, 1.0, 1.5, 2.0)]
        assert diameters == sorted(diameters)

    def test_rejects_negative_range(self):
        with pytest.raises(ValueError):
            GaussianBeam(2e-3, 1e-3).diameter_at(-1.0)

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            GaussianBeam(0.0, 1e-3)
        with pytest.raises(ValueError):
            GaussianBeam(1e-3, -1.0)
        with pytest.raises(ValueError):
            GaussianBeam(1e-3, 1e-3, wavelength_m=0.0)

    def test_diffraction_limit(self):
        beam = GaussianBeam(10e-3, 0.0, wavelength_m=1550e-9)
        expected = 1550e-9 / (math.pi * 5e-3)
        assert beam.diffraction_limited_divergence_rad == pytest.approx(
            expected)


class TestCurvature:
    def test_collimated_beam_has_infinite_curvature(self):
        beam = GaussianBeam(20e-3, 0.0)
        assert math.isinf(beam.curvature_radius_m(1.75))

    def test_diverging_beam_curvature_near_range(self):
        # A strongly diverging beam looks like rays from the launch
        # point: R(z) ~ z.
        div = divergence_for_diameter(16e-3, 1.75, 2e-3)
        beam = GaussianBeam(2e-3, div)
        r = beam.curvature_radius_m(1.75)
        assert 1.75 <= r <= 1.85

    def test_curvature_rejects_nonpositive_range(self):
        with pytest.raises(ValueError):
            GaussianBeam(2e-3, 1e-3).curvature_radius_m(0.0)


class TestApertureFraction:
    def test_large_aperture_captures_everything(self):
        beam = GaussianBeam(16e-3, 0.0)
        assert beam.intensity_fraction_within(1.0, 1.75) == pytest.approx(
            1.0, abs=1e-9)

    def test_zero_aperture_captures_nothing(self):
        beam = GaussianBeam(16e-3, 0.0)
        assert beam.intensity_fraction_within(0.0, 1.75) == 0.0

    def test_equal_aperture_known_fraction(self):
        # Aperture diameter == 1/e^2 diameter captures 1 - e^-2.
        beam = GaussianBeam(16e-3, 0.0)
        assert beam.intensity_fraction_within(16e-3, 0.0) == pytest.approx(
            1.0 - math.exp(-2.0))

    def test_monotone_in_aperture(self):
        beam = GaussianBeam(16e-3, 2e-3)
        fractions = [beam.intensity_fraction_within(d, 1.75)
                     for d in (5e-3, 10e-3, 21e-3, 40e-3)]
        assert fractions == sorted(fractions)


class TestDivergenceForDiameter:
    def test_round_trip(self):
        div = divergence_for_diameter(16e-3, 1.75, 2e-3)
        beam = GaussianBeam(2e-3, div)
        assert beam.diameter_at(1.75) == pytest.approx(16e-3)

    def test_rejects_shrinking_target(self):
        with pytest.raises(ValueError):
            divergence_for_diameter(1e-3, 1.75, 2e-3)

    def test_rejects_nonpositive_range(self):
        with pytest.raises(ValueError):
            divergence_for_diameter(16e-3, 0.0, 2e-3)

    def test_wider_target_needs_more_divergence(self):
        d1 = divergence_for_diameter(10e-3, 1.75, 2e-3)
        d2 = divergence_for_diameter(20e-3, 1.75, 2e-3)
        assert d2 > d1
