"""Fixture-backed tests for every repro.devtools lint rule.

Each rule has a true-positive fixture (must fire) and a true-negative
fixture (must stay silent) under ``tests/fixtures/lint/``.  The fixture
tree deliberately contains a ``repro/`` directory so path-scoped rules
(D002, D004, U001, U002, A001) see the files as package members.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools import (
    all_rules,
    get_rule,
    lint_paths,
    resolve_selection,
)
from repro.devtools.context import package_parts, parse_noqa

FIXTURES = Path(__file__).parent / "fixtures" / "lint"

RULE_FIXTURES = [
    ("D001", FIXTURES / "repro/core/d001_tp.py",
     FIXTURES / "repro/core/d001_tn.py"),
    ("D002", FIXTURES / "repro/core/d002_tp.py",
     FIXTURES / "plain/d002_tn.py"),
    ("D003", FIXTURES / "repro/core/d003_tp.py",
     FIXTURES / "repro/core/d003_tn.py"),
    ("D004", FIXTURES / "repro/core/d004_tp.py",
     FIXTURES / "repro/core/d004_tn.py"),
    ("U001", FIXTURES / "repro/core/u001_tp.py",
     FIXTURES / "repro/core/u001_tn.py"),
    ("U002", FIXTURES / "repro/optics/u002_tp.py",
     FIXTURES / "repro/optics/u002_tn.py"),
    ("N001", FIXTURES / "repro/core/n001_tp.py",
     FIXTURES / "repro/core/n001_tn.py"),
    ("A001", FIXTURES / "repro/core/a001_tp.py",
     FIXTURES / "repro/core/a001_tn.py"),
]


@pytest.mark.parametrize("rule_id,tp,tn", RULE_FIXTURES,
                         ids=[r[0] for r in RULE_FIXTURES])
def test_rule_fires_on_tp_and_not_on_tn(rule_id, tp, tn):
    tp_result = lint_paths([tp], select=[rule_id])
    assert any(f.rule_id == rule_id for f in tp_result.findings), \
        f"{rule_id} should fire on {tp.name}"
    tn_result = lint_paths([tn], select=[rule_id])
    assert not tn_result.findings, \
        f"{rule_id} fired spuriously on {tn.name}: {tn_result.findings}"


def test_every_registered_rule_has_a_fixture():
    covered = {r[0] for r in RULE_FIXTURES}
    registered = {rule.rule_id for rule in all_rules()}
    assert registered == covered


def test_findings_carry_position_and_message():
    result = lint_paths([FIXTURES / "repro/core/d001_tp.py"],
                        select=["D001"])
    assert result.findings
    for finding in result.findings:
        assert finding.line >= 1
        assert finding.column >= 1
        assert finding.rule_id == "D001"
        assert finding.message
        assert ":" in finding.render()


def test_noqa_suppresses_and_is_counted():
    result = lint_paths([FIXTURES / "repro/core/noqa_demo.py"],
                        select=["D001"])
    assert result.clean
    assert result.suppressed >= 1


def test_noqa_for_other_rule_does_not_suppress():
    noqa = parse_noqa("x = 1  # repro: noqa[U001]\n")
    assert noqa[1] == frozenset({"U001"})
    bare = parse_noqa("x = 1  # repro: noqa\n")
    assert bare[1] == frozenset()


def test_syntax_error_becomes_e999_finding():
    result = lint_paths([FIXTURES / "broken/e999.py"])
    assert any(f.rule_id == "E999" for f in result.findings)


def test_package_parts_roots_at_last_repro_component():
    parts = package_parts(str(FIXTURES / "repro/core/d001_tp.py"))
    assert parts == ("repro", "core", "d001_tp.py")


def test_selection_prefix_resolution():
    determinism = {r.rule_id for r in resolve_selection(select=["D"],
                                                        ignore=None)}
    assert determinism == {"D001", "D002", "D003", "D004"}
    without = {r.rule_id for r in resolve_selection(select=None,
                                                    ignore=["D001"])}
    assert "D001" not in without
    assert "U001" in without
    with pytest.raises(ValueError):
        resolve_selection(select=["Z9"], ignore=None)


def test_get_rule_and_summaries():
    for rule in all_rules():
        assert get_rule(rule.rule_id) is rule
        assert rule.summary


def test_cross_assignment_is_flagged_with_both_units():
    result = lint_paths([FIXTURES / "repro/core/u001_tp.py"],
                        select=["U001"])
    messages = " ".join(f.message for f in result.findings)
    assert "_dbm" in messages and "_db" in messages
