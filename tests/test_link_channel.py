"""Unit tests for the FSO channel physics (uses the shared testbed)."""

import numpy as np
import pytest

from repro.core import point
from repro.geometry import rotation_matrix
from repro.link import NOISE_FLOOR_DBM
from repro.vrh import Pose


def align_perfectly(testbed, pose):
    """Noise-free oracle alignment at a pose."""
    report = Pose.from_transform(
        testbed.tracker.true_report_transform(pose))
    command = point(testbed.oracle_system(), report)
    testbed.apply_command(command)
    return command


class TestEvaluate:
    def test_aligned_power_near_peak(self, testbed):
        pose = testbed.home_pose
        align_perfectly(testbed, pose)
        state = testbed.channel.evaluate(pose)
        peak = testbed.design.peak_power_dbm(state.range_m)
        # Oracle alignment through real (imperfect) hardware loses a
        # few dB at most.
        assert state.received_power_dbm > peak - 6.0
        assert state.connected

    def test_range_near_link_length(self, testbed):
        pose = testbed.home_pose
        align_perfectly(testbed, pose)
        state = testbed.channel.evaluate(pose)
        assert 1.4 <= state.range_m <= 2.1

    def test_misaligned_rx_loses_power(self, testbed):
        pose = testbed.home_pose
        align_perfectly(testbed, pose)
        aligned_power = testbed.channel.evaluate(pose).received_power_dbm
        turned = Pose(pose.position,
                      rotation_matrix([0, 0, 1], 0.02) @ pose.orientation)
        assert testbed.channel.evaluate(
            turned).received_power_dbm < aligned_power - 5.0

    def test_small_rotation_changes_incidence_linearly(self, testbed):
        pose = testbed.home_pose
        align_perfectly(testbed, pose)
        base = testbed.channel.evaluate(pose).incidence_angle_rad
        for angle in (2e-3, 4e-3):
            turned = Pose(pose.position, rotation_matrix(
                [0, 0, 1], angle) @ pose.orientation)
            inc = testbed.channel.evaluate(turned).incidence_angle_rad
            assert inc == pytest.approx(base + angle, abs=1.2e-3)

    def test_translation_changes_incidence_for_diverging_beam(self,
                                                              testbed):
        # The wavefront-curvature effect: translating across the cone
        # rotates the arrival direction by ~delta / range.
        pose = testbed.home_pose
        align_perfectly(testbed, pose)
        base = testbed.channel.evaluate(pose).incidence_angle_rad
        shifted = Pose(pose.position + np.array([6e-3, 0, 0]),
                       pose.orientation)
        state = testbed.channel.evaluate(shifted)
        expected_rotation = 6e-3 / state.range_m
        assert state.incidence_angle_rad == pytest.approx(
            base + expected_rotation, abs=1.5e-3)

    def test_translation_changes_axis_offset(self, testbed):
        pose = testbed.home_pose
        align_perfectly(testbed, pose)
        shifted = Pose(pose.position + np.array([5e-3, 0, 0]),
                       pose.orientation)
        state = testbed.channel.evaluate(shifted)
        assert state.axis_offset_m == pytest.approx(5e-3, abs=1.5e-3)

    def test_power_floored_at_noise_floor(self, testbed):
        pose = testbed.home_pose
        align_perfectly(testbed, pose)
        far = Pose(pose.position + np.array([0.5, 0, 0]),
                   pose.orientation)
        state = testbed.channel.evaluate(far)
        assert state.received_power_dbm == NOISE_FLOOR_DBM
        assert not state.connected


class TestLemmaPoints:
    def test_aligned_points_coincide(self, testbed):
        pose = testbed.home_pose
        align_perfectly(testbed, pose)
        points = testbed.channel.lemma_points(pose)
        # Oracle alignment through imperfect hardware: coincidence to
        # within a few millimeters.
        assert points.error < 8e-3

    def test_misalignment_grows_error(self, testbed):
        pose = testbed.home_pose
        align_perfectly(testbed, pose)
        base = testbed.channel.lemma_points(pose).error
        turned = Pose(pose.position,
                      rotation_matrix([1, 0, 0], 0.01) @ pose.orientation)
        assert testbed.channel.lemma_points(turned).error > base
