"""Faulted sessions: reproducibility, supervision, chaos sweep.

These are the acceptance tests for the robustness layer:

* a faulted run's event log is byte-identical per seed;
* the supervised arm strictly beats the bare arm under drift;
* the chaos sweep is byte-identical for any ``workers=`` setting.
"""

import json

import numpy as np
import pytest

from repro.faults import NullInjector, TrackerDrift, TrackerDropout
from repro.faults.chaos import (
    CHAOS_SCENARIOS,
    ChaosScenario,
    get_scenarios,
    run_chaos,
    run_scenario,
    sweep_payload,
)
from repro.galvo import CoverageError
from repro.motion import StaticProfile
from repro.simulate import PrototypeSession, Supervisor, Testbed

FAULTS = [TrackerDropout(rate_hz=2.0, mean_duration_s=0.05),
          TrackerDrift(onset_s=0.5, rate_m_per_s=0.01, max_m=0.01)]

#: The drift scenario the supervision acceptance test runs: fast
#: drift that saturates early, so one good remap is permanent.
DRIFT = TrackerDrift(onset_s=1.0, rate_m_per_s=0.03, max_m=0.015)
DRIFT_SUPERVISOR = dict(drift_degradation_db=4.0,
                        drift_baseline_samples=25,
                        drift_window=12, max_remaps=3)


def faulted_run(seed=11, duration_s=2.0, faults=FAULTS, fault_seed=3,
                supervisor=None):
    """A fresh testbed + oracle system + one faulted run."""
    testbed = Testbed(seed=seed)
    session = PrototypeSession(testbed, testbed.oracle_system())
    profile = StaticProfile(testbed.home_pose, duration_s=duration_s)
    return session.run(profile, faults=list(faults),
                       fault_seed=fault_seed, supervisor=supervisor)


class TestEventLogReproducibility:
    def test_same_seed_byte_identical(self):
        a = faulted_run()
        b = faulted_run()
        assert a.event_log_text() == b.event_log_text()
        assert a.event_log_text()  # non-empty: arms at least
        assert a.uptime_fraction == b.uptime_fraction

    def test_different_fault_seed_differs(self):
        a = faulted_run(fault_seed=3)
        b = faulted_run(fault_seed=4)
        assert a.event_log_text() != b.event_log_text()

    def test_supervised_log_reproducible_too(self):
        a = faulted_run(supervisor=Supervisor())
        b = faulted_run(supervisor=Supervisor())
        assert a.event_log_text() == b.event_log_text()


class TestSupervisedRecovery:
    @pytest.fixture(scope="class")
    def arms(self):
        bare = faulted_run(duration_s=10.0, faults=[DRIFT])
        supervised = faulted_run(duration_s=10.0, faults=[DRIFT],
                                 supervisor=Supervisor(**DRIFT_SUPERVISOR))
        return bare, supervised

    def test_supervised_strictly_beats_bare(self, arms):
        bare, supervised = arms
        assert supervised.uptime_fraction > bare.uptime_fraction

    def test_escalation_reached_remap(self, arms):
        _, supervised = arms
        kinds = [e.kind for e in supervised.events]
        assert "escalate" in kinds
        assert "remap" in kinds

    def test_remap_restores_post_drift_power(self, arms):
        """Satellite: drift trips the monitor, remap restores power.

        After the (saturated) drift is remapped away, received power
        in the final second must be back above RX sensitivity -- i.e.
        at pre-drift link quality, not merely less degraded.
        """
        bare, supervised = arms
        testbed = Testbed(seed=11)
        sensitivity = testbed.design.sfp.rx_sensitivity_dbm
        tail = supervised.sample_times_s > 9.0
        assert supervised.power_dbm[tail].mean() > sensitivity
        assert bare.power_dbm[tail].mean() < sensitivity

    def test_metrics_reflect_the_gap(self, arms):
        bare, supervised = arms
        m_bare = bare.fault_metrics()
        m_sup = supervised.fault_metrics()
        assert m_sup.availability > m_bare.availability
        assert m_sup.recovery_actions > 0
        assert m_bare.recovery_actions == 0
        assert m_sup.faults_injected == m_bare.faults_injected


class _CoverageTripwire(NullInjector):
    """Raises CoverageError on the first applied command only."""

    def __init__(self):
        super().__init__()
        self.tripped = False

    def apply_command(self, t_s, testbed, command):
        if not self.tripped:
            self.tripped = True
            raise CoverageError("injected out-of-cone command")
        return testbed.apply_command(command)


class TestCoverageFailureAccounting:
    def test_counted_separately_and_survived(self):
        testbed = Testbed(seed=3)
        session = PrototypeSession(testbed, testbed.oracle_system())
        profile = StaticProfile(testbed.home_pose, duration_s=0.5)
        result = session.run(profile, faults=_CoverageTripwire())
        assert result.coverage_failures == 1
        # The run carried on: the loop must catch exactly the typed
        # error, not swallow it as a generic pointing failure.
        assert result.uptime_fraction > 0.9


class TestChaosSweep:
    SMALL = ChaosScenario(
        name="smoke",
        description="tiny sweep for worker-determinism checks",
        faults=(TrackerDropout(rate_hz=2.0, mean_duration_s=0.05),),
        duration_s=1.5,
    )

    def test_registry_names_unique(self):
        names = [s.name for s in CHAOS_SCENARIOS]
        assert len(names) == len(set(names))

    def test_get_scenarios_rejects_unknown(self):
        with pytest.raises(KeyError):
            get_scenarios(["no-such-scenario"])

    def test_record_shape(self):
        record = run_scenario(self.SMALL)
        assert record["name"] == "smoke"
        assert 0.0 <= record["supervised"]["availability"] <= 1.0
        assert record["events"][0].startswith("00000.000000 fault")

    def test_workers_do_not_change_bytes(self):
        serial = run_chaos([self.SMALL, self.SMALL], workers=1)
        parallel = run_chaos([self.SMALL, self.SMALL], workers=2)
        assert json.dumps(sweep_payload(serial), indent=2) == \
            json.dumps(sweep_payload(parallel), indent=2)


@pytest.mark.chaos
class TestFullChaosRegistry:
    """The long sweep: every default scenario, both arms."""

    def test_supervision_never_loses_and_wins_under_drift(self):
        records = run_chaos(get_scenarios(), workers=2)
        by_name = {r["name"]: r for r in records}
        for record in records:
            assert record["uptime_gain"] >= 0.0, record["name"]
        assert by_name["drift-remap"]["uptime_gain"] > 0.3
        assert by_name["tracker-chaos"]["uptime_gain"] > 0.3
        payload = sweep_payload(records)
        assert payload["mean_uptime_gain"] > 0.0
