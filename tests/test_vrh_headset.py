"""Unit tests for the TX/RX assemblies (rigid optics mounting)."""

import numpy as np
import pytest

from repro.galvo import GalvoHardware, GalvoSpec, canonical_gma
from repro.geometry import RigidTransform, rotation_matrix
from repro.vrh import Pose, RxAssembly, TxAssembly


def quiet_hardware():
    spec = GalvoSpec(name="quiet", volts_per_optical_degree=0.5,
                     voltage_range_v=10.0, angular_accuracy_rad=0.0,
                     small_angle_latency_s=300e-6,
                     max_beam_diameter_m=10e-3)
    return GalvoHardware(canonical_gma(np.radians(1.0)), spec=spec,
                         rng=np.random.default_rng(0))


class TestTxAssembly:
    def test_world_beam_is_transformed_kspace_beam(self):
        hw = quiet_hardware()
        placement = RigidTransform(rotation_matrix([1, 0, 0], 0.3),
                                   np.array([0.0, 0.0, 2.5]))
        tx = TxAssembly(hw, placement)
        hw.apply(0.5, -0.5)
        expected = placement.apply_ray(hw.output_beam())
        beam = tx.world_beam()
        assert np.allclose(beam.origin, expected.origin)
        assert np.allclose(beam.direction, expected.direction)

    def test_mirror_plane_contains_beam_origin(self):
        hw = quiet_hardware()
        tx = TxAssembly(hw, RigidTransform.identity())
        hw.apply(1.0, 1.0)
        plane = tx.world_second_mirror_plane()
        assert plane.contains(tx.world_beam().origin, tol=1e-9)


class TestRxAssembly:
    def test_beam_rides_with_headset(self):
        hw = quiet_hardware()
        rx = RxAssembly(hw, RigidTransform.identity())
        hw.apply(0.0, 0.0)
        home = Pose.identity()
        moved = Pose([0.1, 0.2, 0.3], np.eye(3))
        beam_home = rx.world_beam(home)
        beam_moved = rx.world_beam(moved)
        assert np.allclose(beam_moved.origin - beam_home.origin,
                           [0.1, 0.2, 0.3])
        assert np.allclose(beam_moved.direction, beam_home.direction)

    def test_beam_rotates_with_headset(self):
        hw = quiet_hardware()
        rx = RxAssembly(hw, RigidTransform.identity())
        hw.apply(0.0, 0.0)
        turned = Pose([0, 0, 0], rotation_matrix([1, 0, 0], 0.2))
        beam = rx.world_beam(turned)
        expected_dir = rotation_matrix([1, 0, 0], 0.2) @ \
            rx.world_beam(Pose.identity()).direction
        assert np.allclose(beam.direction, expected_dir)

    def test_kspace_to_world_composition(self):
        hw = quiet_hardware()
        mount = RigidTransform(rotation_matrix([0, 1, 0], 0.5),
                               np.array([0.05, 0.03, 0.10]))
        rx = RxAssembly(hw, mount)
        pose = Pose.from_euler([1, 2, 3], 0.1, 0.2, 0.3)
        combined = rx.kspace_to_world(pose)
        expected = pose.as_transform().compose(mount)
        assert combined.almost_equal(expected, tol=1e-12)

    def test_mirror_plane_moves_with_pose(self):
        hw = quiet_hardware()
        rx = RxAssembly(hw, RigidTransform.identity())
        hw.apply(0.3, 0.3)
        a = rx.world_second_mirror_plane(Pose.identity())
        b = rx.world_second_mirror_plane(Pose([1, 0, 0], np.eye(3)))
        assert np.allclose(b.point - a.point, [1, 0, 0])
        assert np.allclose(a.normal, b.normal)
