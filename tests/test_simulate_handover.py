"""Tests for the multi-TX handover extension (Section 3)."""

import numpy as np
import pytest

from repro.motion import StaticProfile
from repro.simulate import (
    HandoverController,
    MultiTxRig,
    OcclusionEvent,
)


@pytest.fixture(scope="module")
def rig():
    return MultiTxRig(tx_count=2, seed=7)


class TestOcclusionEvent:
    def test_active_interval(self):
        event = OcclusionEvent(tx_index=0, start_s=1.0, end_s=2.0)
        assert not event.active_at(0.9)
        assert event.active_at(1.0)
        assert event.active_at(1.99)
        assert not event.active_at(2.0)


class TestMultiTxRig:
    def test_tx_count(self, rig):
        assert rig.tx_count == 2
        assert len(rig.channels) == 2
        assert len(rig.oracles) == 2

    def test_rejects_zero_txs(self):
        with pytest.raises(ValueError):
            MultiTxRig(tx_count=0)

    def test_both_txs_can_close_the_link(self, rig):
        pose = rig.testbed.home_pose
        report = rig.testbed.tracker.report(pose)
        sensitivity = rig.testbed.design.sfp.rx_sensitivity_dbm
        for k in range(rig.tx_count):
            voltages = rig.point_at(k, report)
            assert voltages is not None
            rig.apply(k, voltages)
            assert rig.power_dbm(k, pose, occluded=False) >= sensitivity

    def test_occlusion_kills_power(self, rig):
        pose = rig.testbed.home_pose
        report = rig.testbed.tracker.report(pose)
        voltages = rig.point_at(0, report)
        rig.apply(0, voltages)
        assert rig.power_dbm(0, pose, occluded=True) < \
            rig.testbed.design.sfp.rx_sensitivity_dbm

    def test_txs_are_physically_separate(self, rig):
        a = rig.tx_assemblies[0].world_beam().origin
        b = rig.tx_assemblies[1].world_beam().origin
        assert np.linalg.norm(a - b) > 0.2


class TestHandoverController:
    def test_handover_survives_occlusion(self, rig):
        profile = StaticProfile(rig.testbed.home_pose, duration_s=3.0)
        occlusions = [OcclusionEvent(0, start_s=1.0, end_s=2.0)]
        result = HandoverController(rig, use_handover=True).run(
            profile, occlusions)
        assert result.handovers >= 1
        assert result.uptime_fraction > 0.9

    def test_no_handover_suffers_the_occlusion(self):
        rig = MultiTxRig(tx_count=2, seed=7)
        profile = StaticProfile(rig.testbed.home_pose, duration_s=3.0)
        occlusions = [OcclusionEvent(0, start_s=1.0, end_s=2.0)]
        result = HandoverController(rig, use_handover=False).run(
            profile, occlusions)
        # Roughly the occluded third of the run is dark.
        assert 0.55 <= result.uptime_fraction <= 0.75
        assert result.handovers == 0

    def test_active_tx_switches(self, rig):
        profile = StaticProfile(rig.testbed.home_pose, duration_s=3.0)
        occlusions = [OcclusionEvent(0, start_s=1.0, end_s=2.5)]
        result = HandoverController(rig, use_handover=True).run(
            profile, occlusions)
        assert set(np.unique(result.active_tx)) == {0, 1}

    def test_no_occlusion_no_handover(self, rig):
        profile = StaticProfile(rig.testbed.home_pose, duration_s=1.0)
        result = HandoverController(rig, use_handover=True).run(
            profile, occlusions=[])
        assert result.handovers == 0
        assert result.uptime_fraction == 1.0

    def test_single_tx_cannot_hand_over(self):
        rig = MultiTxRig(tx_count=1, seed=7)
        profile = StaticProfile(rig.testbed.home_pose, duration_s=2.0)
        occlusions = [OcclusionEvent(0, start_s=0.5, end_s=1.5)]
        result = HandoverController(rig, use_handover=True).run(
            profile, occlusions)
        assert result.handovers == 0
        assert result.uptime_fraction < 0.8
