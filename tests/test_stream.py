"""Tests for the VR streaming substrate."""

import numpy as np
import pytest

from repro.stream import (
    CATALOGUE,
    HD_1080P_60,
    LIFE_LIKE_1800FPS,
    UHD_8K_30,
    UHD_8K_RGBAD_60,
    VideoFormat,
    motion_to_photon_s,
    stream_over_link,
)


class TestVideoFormat:
    def test_8k_matches_papers_24gbps(self):
        # "even a 2D uncompressed 8K RGB video at 30 fps requires
        # ~24 Gbps".
        assert UHD_8K_30.raw_bitrate_gbps == pytest.approx(23.9, abs=0.5)

    def test_rgbad_in_the_hundreds_class(self):
        assert UHD_8K_RGBAD_60.raw_bitrate_gbps > 90.0

    def test_life_like_in_tbps(self):
        # Paper [31]: 2.7-27 Tbps for life-like VR.
        assert 2.7e3 <= LIFE_LIKE_1800FPS.raw_bitrate_gbps <= 27e3

    def test_catalogue_ordered_by_demand(self):
        rates = [f.raw_bitrate_gbps for f in CATALOGUE]
        assert rates == sorted(rates)

    def test_compression_scales_rate(self):
        assert UHD_8K_30.compressed_bitrate_gbps(50.0) == pytest.approx(
            UHD_8K_30.raw_bitrate_gbps / 50.0)

    def test_compression_ratio_validated(self):
        with pytest.raises(ValueError):
            UHD_8K_30.compressed_bitrate_gbps(0.5)

    def test_fits_raw(self):
        assert HD_1080P_60.fits_raw(9.4)
        assert not UHD_8K_30.fits_raw(9.4)
        assert UHD_8K_30.fits_raw(25.0)

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            VideoFormat("bad", 0, 1080, 60.0, 24)
        with pytest.raises(ValueError):
            VideoFormat("bad", 1920, 1080, 0.0, 24)


class TestStreamOverLink:
    def always_up(self, seconds, slot_s=1e-3):
        return np.ones(int(seconds / slot_s), dtype=bool)

    def test_clean_link_delivers_everything(self):
        link = self.always_up(1.0)
        report = stream_over_link(HD_1080P_60, link, 1e-3,
                                  capacity_gbps=9.4)
        assert report.frames >= 55
        assert report.late_fraction == 0.0

    def test_latency_reflects_frame_size(self):
        # A 1080p60 frame is ~50 Mbit; at 9.4 Gbps that's ~5.3 ms.
        link = self.always_up(1.0)
        report = stream_over_link(HD_1080P_60, link, 1e-3, 9.4)
        p50 = report.latency_percentile_s(50)
        assert 0.004 <= p50 <= 0.009

    def test_undersized_link_backs_up(self):
        # 8K30 needs 24 Gbps; a 9.4 Gbps link must fall behind.
        link = self.always_up(1.0)
        report = stream_over_link(UHD_8K_30, link, 1e-3, 9.4)
        assert report.late_fraction > 0.5

    def test_compression_rescues_undersized_link(self):
        link = self.always_up(1.0)
        report = stream_over_link(UHD_8K_30, link, 1e-3, 9.4,
                                  compression_ratio=10.0,
                                  codec_latency_s=0.02,
                                  deadline_frames=2.0)
        assert report.late_fraction < 0.1

    def test_outage_makes_frames_late(self):
        link = self.always_up(1.0)
        link[300:500] = False  # a 200 ms outage
        report = stream_over_link(HD_1080P_60, link, 1e-3, 9.4)
        assert report.late_frames >= 10
        assert report.longest_late_burst() >= 10

    def test_outage_burst_bounded_by_duration(self):
        link = self.always_up(1.0)
        link[300:400] = False  # 100 ms ~ 6 frames at 60 fps
        report = stream_over_link(HD_1080P_60, link, 1e-3, 9.4)
        assert report.longest_late_burst() <= 10

    def test_undelivered_frames_counted_late(self):
        link = np.zeros(200, dtype=bool)  # link never up
        report = stream_over_link(HD_1080P_60, link, 1e-3, 9.4)
        assert report.frames > 0
        assert report.late_fraction == 1.0
        assert report.latency_percentile_s(50) == float("inf")

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            stream_over_link(HD_1080P_60, np.ones(10, dtype=bool),
                             0.0, 9.4)
        with pytest.raises(ValueError):
            stream_over_link(HD_1080P_60, np.ones(10, dtype=bool),
                             1e-3, 0.0)


class TestMotionToPhoton:
    def test_sums_components(self):
        mtp = motion_to_photon_s(0.013, 0.005, 0.002)
        assert mtp == pytest.approx(0.013 + 0.005 + 0.002 + 0.011)

    def test_codec_latency_hurts(self):
        raw = motion_to_photon_s(0.013, 0.005, 0.002)
        compressed = motion_to_photon_s(0.013, 0.005, 0.002,
                                        codec_latency_s=0.030)
        assert compressed - raw == pytest.approx(0.030)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            motion_to_photon_s(-0.001, 0.0, 0.0)
