"""Unit tests for the GMA model wrapper and its vectorized trace."""

import numpy as np
import pytest

from repro.core import GmaModel, board_hits, trace_batch
from repro.core.kspace import BOARD_PLANE
from repro.galvo import canonical_gma, trace
from repro.geometry import RigidTransform, rotation_matrix


@pytest.fixture()
def model():
    return GmaModel(canonical_gma(np.radians(1.0)))


class TestGmaModel:
    def test_beam_matches_scalar_trace(self, model):
        beam = model.beam(0.7, -0.4)
        reference = trace(model.params, 0.7, -0.4)
        assert np.allclose(beam.origin, reference.origin)
        assert np.allclose(beam.direction, reference.direction)

    def test_second_mirror_plane_holds_origin(self, model):
        plane = model.second_mirror_plane(1.1, 0.6)
        beam = model.beam(1.1, 0.6)
        assert plane.contains(beam.origin, tol=1e-9)

    def test_transformed_model(self, model):
        t = RigidTransform(rotation_matrix([0, 0, 1], 0.3),
                           np.array([1.0, 0.0, 0.0]))
        moved = model.transformed(t)
        expected = t.apply_ray(model.beam(0.5, 0.5))
        beam = moved.beam(0.5, 0.5)
        assert np.allclose(beam.origin, expected.origin, atol=1e-12)
        assert np.allclose(beam.direction, expected.direction, atol=1e-12)


class TestTraceBatch:
    def test_matches_scalar_trace(self, model):
        v1 = np.array([-2.0, 0.0, 1.5, 3.3])
        v2 = np.array([1.0, 0.0, -0.5, 2.2])
        origins, directions = trace_batch(model.params.to_vector(), v1, v2)
        for i in range(len(v1)):
            ref = trace(model.params, float(v1[i]), float(v2[i]))
            assert np.allclose(origins[i], ref.origin, atol=1e-12)
            assert np.allclose(directions[i], ref.direction, atol=1e-12)

    def test_handles_single_sample(self, model):
        origins, directions = trace_batch(
            model.params.to_vector(), np.array([0.5]), np.array([0.5]))
        assert origins.shape == (1, 3)
        assert directions.shape == (1, 3)

    def test_large_batch_shape(self, model):
        n = 500
        v = np.linspace(-4, 4, n)
        origins, directions = trace_batch(model.params.to_vector(), v, -v)
        assert origins.shape == (n, 3)
        assert np.all(np.isfinite(origins))


class TestBoardHits:
    def test_matches_plane_intersection(self, model):
        # Hardware placed facing a board (like the K-space rig).
        flip = RigidTransform(rotation_matrix([1, 0, 0], np.pi),
                              np.array([0.0, 0.0, 1.5]))
        placed = model.transformed(flip)
        v1 = np.array([0.3, -1.2])
        v2 = np.array([-0.8, 0.9])
        hits = board_hits(placed.params.to_vector(), v1, v2, BOARD_PLANE)
        for i in range(2):
            beam = placed.beam(float(v1[i]), float(v2[i]))
            expected = BOARD_PLANE.intersect_ray(beam)
            assert np.allclose(hits[i], expected, atol=1e-10)

    def test_parallel_beam_yields_nonfinite(self, model):
        # The canonical rest beam travels +z; a plane with normal +y is
        # parallel to it and can never be hit.
        from repro.geometry import Plane
        sideways = Plane([10.0, 0.0, 0.0], [0.0, 1.0, 0.0])
        hits = board_hits(model.params.to_vector(),
                          np.array([0.0]), np.array([0.0]), sideways)
        assert not np.all(np.isfinite(hits))
