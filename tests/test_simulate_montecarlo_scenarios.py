"""Tests for the seed sweeps and the scenario registry."""

import numpy as np
import pytest

from repro.simulate import (
    MetricSummary,
    SCENARIOS,
    calibration_quality,
    get_scenario,
    list_scenarios,
    sweep_seeds,
)


class TestSweepSeeds:
    def test_aggregates_metrics(self):
        def fake_metric(seed):
            return {"value": float(seed), "constant": 1.0}

        summary = sweep_seeds(fake_metric, seeds=[1, 2, 3])
        assert summary["value"].mean == pytest.approx(2.0)
        assert summary["value"].worst == 1.0
        assert summary["value"].best == 3.0
        assert summary["constant"].std == 0.0

    def test_single_seed_std_zero(self):
        summary = sweep_seeds(lambda s: {"v": 5.0}, seeds=[7])
        assert summary["v"].std == 0.0

    def test_rejects_no_seeds(self):
        with pytest.raises(ValueError):
            sweep_seeds(lambda s: {}, seeds=[])

    def test_metric_summary_fields(self):
        summary = MetricSummary("m", np.array([1.0, 3.0]))
        assert summary.mean == 2.0
        assert summary.std == pytest.approx(np.sqrt(2.0))


def linear_metric(seed):
    """Module-level so the checkpointed path can ship it to workers."""
    return {"value": float(seed), "twice": 2.0 * seed}


class TestCheckpointedSweepSeeds:
    def test_matches_plain_path(self, tmp_path):
        plain = sweep_seeds(linear_metric, seeds=[4, 5, 6])
        routed = sweep_seeds(linear_metric, seeds=[4, 5, 6],
                             checkpoint_dir=tmp_path / "ck")
        assert sorted(routed) == sorted(plain)
        for name in plain:
            assert np.array_equal(routed[name].values,
                                  plain[name].values)

    def test_store_group_layout_is_unchanged(self, tmp_path):
        from repro.store import ColumnStore
        store_a = ColumnStore(tmp_path / "plain")
        store_b = ColumnStore(tmp_path / "routed")
        sweep_seeds(linear_metric, seeds=[1, 2], store=store_a)
        sweep_seeds(linear_metric, seeds=[1, 2], store=store_b,
                    checkpoint_dir=tmp_path / "ck")
        group_a = store_a.read_group("sweep")
        group_b = store_b.read_group("sweep")
        assert group_a.column_names == group_b.column_names
        assert group_a.attrs == group_b.attrs
        for name in group_a.column_names:
            assert np.array_equal(group_a[name], group_b[name])

    def test_resume_skips_finished_units(self, tmp_path):
        first = sweep_seeds(linear_metric, seeds=[8, 9],
                            checkpoint_dir=tmp_path / "ck")
        again = sweep_seeds(linear_metric, seeds=[8, 9],
                            checkpoint_dir=tmp_path / "ck",
                            resume=True)
        for name in first:
            assert np.array_equal(first[name].values,
                                  again[name].values)


class TestCalibrationQuality:
    def test_seed3_is_ten_for_ten(self):
        metrics = calibration_quality(seed=3, trials=6)
        assert metrics["connected_fraction"] == 1.0
        assert metrics["excess_db_mean"] < 6.0
        assert metrics["excess_db_max"] >= metrics["excess_db_mean"]


class TestScenarioRegistry:
    def test_registry_nonempty(self):
        assert len(SCENARIOS) >= 6

    def test_list_is_sorted(self):
        ids = [s.scenario_id for s in list_scenarios()]
        assert ids == sorted(ids)

    def test_get_unknown_raises_with_suggestions(self):
        with pytest.raises(KeyError) as excinfo:
            get_scenario("fig99")
        assert "table1" in str(excinfo.value)

    def test_every_scenario_names_a_bench(self):
        import os
        for scenario in list_scenarios():
            assert os.path.exists(scenario.bench), scenario.bench

    def test_cheap_scenarios_run(self):
        for scenario_id in ("table1", "fig11", "thresholds"):
            metrics = get_scenario(scenario_id).run_quick()
            assert metrics
            assert all(np.isfinite(v) for v in metrics.values())

    def test_fig11_quick_matches_bench_headline(self):
        metrics = get_scenario("fig11").run_quick()
        assert metrics["peak_diameter_mm"] == pytest.approx(16.0,
                                                            abs=2.1)
        assert metrics["peak_rx_tol_mrad"] == pytest.approx(5.77,
                                                            rel=0.05)

    def test_fig16_quick_in_band(self):
        metrics = get_scenario("fig16").run_quick()
        assert 0.96 <= metrics["overall_availability"] <= 1.0
