"""The columnar dataset store: atomic groups, lazy reads, streaming."""

import numpy as np
import pytest

from repro.store import ColumnStore, StoreError


@pytest.fixture()
def store(tmp_path):
    return ColumnStore(tmp_path / "store")


def demo_columns(rows=5):
    return {
        "values": np.arange(rows, dtype=float),
        "flags": np.arange(rows) % 2 == 0,
        "poses": np.arange(rows * 6, dtype=float).reshape(rows, 3, 2),
    }


class TestWriteRead:
    def test_roundtrip_bytes_and_attrs(self, store):
        columns = demo_columns()
        group = store.write_group("traces", columns,
                                  attrs={"seed": 7, "note": "demo"})
        assert group.rows == 5
        assert group.column_names == sorted(columns)
        for name, array in columns.items():
            assert np.array_equal(group[name], array)
        assert group.attrs == {"seed": 7, "note": "demo"}

    def test_reads_are_lazy_memmaps(self, store):
        store.write_group("traces", demo_columns())
        group = store.read_group("traces")
        assert isinstance(group["values"], np.memmap)
        # A full in-RAM copy is available on request, and mutable.
        copy = group.load("values")
        copy[0] = 99.0
        assert group["values"][0] == 0.0

    def test_overwrite_replaces_group(self, store):
        store.write_group("g", {"a": np.arange(3)})
        store.write_group("g", {"b": np.arange(4)})
        group = store.read_group("g")
        assert group.column_names == ["b"]
        assert group.rows == 4

    def test_missing_group_and_column(self, store):
        with pytest.raises(KeyError):
            store.read_group("nope")
        store.write_group("g", {"a": np.arange(3)})
        with pytest.raises(KeyError):
            store.read_group("g")["b"]

    def test_catalogue(self, store):
        assert store.groups() == []
        store.write_group("b", {"x": np.arange(2)})
        store.write_group("a", {"x": np.arange(2)})
        assert store.groups() == ["a", "b"]
        assert store.has_group("a")
        store.delete_group("a")
        assert not store.has_group("a")
        assert store.groups() == ["b"]


class TestValidation:
    def test_rejects_bad_names(self, store):
        with pytest.raises(ValueError):
            store.write_group("../escape", {"a": np.arange(2)})
        with pytest.raises(ValueError):
            store.write_group("g", {"dotted.name": np.arange(2)})
        with pytest.raises(ValueError):
            store.read_group(".hidden")

    def test_rejects_row_mismatch(self, store):
        with pytest.raises(ValueError):
            store.write_group("g", {"a": np.arange(3),
                                    "b": np.arange(4)})

    def test_rejects_empty_group(self, store):
        with pytest.raises(ValueError):
            store.write_group("g", {})

    def test_rejects_scalar_columns(self, store):
        with pytest.raises(ValueError):
            store.write_group("g", {"a": np.float64(3.0)})


class TestGroupWriter:
    def test_streaming_write_publishes_atomically(self, store):
        writer = store.open_writer(
            "sweep", {"vals": ((2,), np.float64)}, rows=4,
            attrs={"kind": "demo"})
        for row in range(4):
            writer.columns["vals"][row] = [row, row + 0.5]
        # Invisible until finalize: a crashed run leaves no half-group.
        assert not store.has_group("sweep")
        group = writer.finalize(extra_attrs={"done": True})
        assert store.has_group("sweep")
        assert np.array_equal(group["vals"],
                              [[0, 0.5], [1, 1.5], [2, 2.5], [3, 3.5]])
        assert group.attrs == {"kind": "demo", "done": True}

    def test_finalize_twice_rejected(self, store):
        writer = store.open_writer("g", {"a": ((), np.int64)}, rows=1)
        writer.columns["a"][0] = 1
        writer.finalize()
        with pytest.raises(RuntimeError):
            writer.finalize()

    def test_abort_drops_everything(self, store):
        writer = store.open_writer("g", {"a": ((), np.int64)}, rows=1)
        writer.abort()
        writer.abort()  # idempotent
        assert not store.has_group("g")
        assert store.groups() == []


class TestInterchange:
    def test_npz_roundtrip(self, store, tmp_path):
        columns = demo_columns()
        store.write_group("traces", columns, attrs={"seed": 3})
        archive = store.export_npz("traces", tmp_path / "traces.npz")
        other = ColumnStore(tmp_path / "other")
        group = other.import_npz("traces", archive)
        for name, array in columns.items():
            assert np.array_equal(group[name], array)
        assert group.attrs == {"seed": 3}


class TestCorruptionSurfacesStoreError:
    """Torn or mangled on-disk state must raise StoreError, never
    numpy garbage or a bare ValueError (satellite of the crash-safe
    sweep work: resume verification leans on these)."""

    def test_truncated_column_file(self, store):
        store.write_group("traces", demo_columns())
        column = store.root / "traces" / "values.npy"
        column.write_bytes(column.read_bytes()[:12])
        group = store.read_group("traces")
        with pytest.raises(StoreError, match="truncated or corrupt"):
            group["values"]

    def test_missing_column_file(self, store):
        store.write_group("traces", demo_columns())
        (store.root / "traces" / "flags.npy").unlink()
        group = store.read_group("traces")
        with pytest.raises(StoreError, match="missing"):
            group["flags"]

    def test_wrong_shape_on_disk(self, store):
        store.write_group("traces", demo_columns())
        # Swap in a valid .npy with the wrong shape: a torn write that
        # happens to parse must still be rejected against the meta.
        np.save(store.root / "traces" / "values.npy", np.zeros(2))
        group = store.read_group("traces")
        with pytest.raises(StoreError, match="torn or mismatched"):
            group["values"]

    def test_mangled_meta_json(self, store):
        from repro.faults import mangle_json
        store.write_group("traces", demo_columns())
        mangle_json(store.root / "traces" / "meta.json")
        with pytest.raises(StoreError, match="meta.json"):
            store.read_group("traces")

    def test_meta_with_wrong_schema(self, store):
        store.write_group("traces", demo_columns())
        (store.root / "traces" / "meta.json").write_text(
            '{"columns": 7}')
        with pytest.raises(StoreError):
            store.read_group("traces")

    def test_absent_group_still_keyerror(self, store):
        # Genuinely-missing groups are a programming error, not
        # corruption; the exception type must not change.
        with pytest.raises(KeyError):
            store.read_group("never-written")

    def test_unpublishable_group_raises_store_error(self, store):
        # A stray *file* squatting where the group directory belongs
        # makes the atomic publish fail partway through; the OSError
        # must surface as StoreError (the type resume logic catches)
        # and the staging dir must not leak.
        (store.root / "traces").write_bytes(b"not a directory")
        with pytest.raises(StoreError, match="could not publish"):
            store.write_group("traces", demo_columns())
        assert not (store.root / ".traces.tmp").exists()

    def test_bad_column_name_still_valueerror(self, store):
        # Name validation happens before any disk work, so the
        # pre-publish contract (plain ValueError) is unchanged.
        with pytest.raises(ValueError):
            store.write_group("traces", {"bad name": demo_columns()["values"]})


class TestVacuum:
    def test_reaps_orphaned_tmp_dirs(self, store):
        store.write_group("keep", demo_columns())
        orphan = store.root / ".crashed.tmp"
        orphan.mkdir()
        (orphan / "values.npy").write_bytes(b"partial")
        removed = store.vacuum()
        assert removed == [".crashed.tmp"]
        assert not orphan.exists()
        assert store.has_group("keep")

    def test_noop_on_clean_store(self, store):
        store.write_group("keep", demo_columns())
        assert store.vacuum() == []
