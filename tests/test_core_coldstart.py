"""Cold-start seeding of the pointing solve.

Regression for the old behaviour of seeding the very first solve with
the all-zeros command ``(0, 0, 0, 0)``: a geometry-derived seed (aim
each GMA at the other side's rest originating point) starts inside the
fixed-point iteration's basin, so it converges in strictly fewer
iterations and survives iteration caps that make the zero seed
diverge.
"""

import pytest

from repro.core import (
    InverseDivergedError,
    PointingDivergedError,
    cold_start_seed,
    point,
)
from repro.simulate import Testbed

ZERO = (0.0, 0.0, 0.0, 0.0)


@pytest.fixture(scope="module")
def testbed():
    """A private rig: these tests consume tracker RNG draws, which
    must not perturb the session-scoped calibration fixture."""
    return Testbed(seed=3)


@pytest.fixture(scope="module")
def oracle(testbed):
    return testbed.oracle_system()


def attempt(system, report, seed, max_iterations):
    try:
        return point(system, report, initial=seed,
                     max_iterations=max_iterations)
    except (PointingDivergedError, InverseDivergedError):
        return None


class TestColdStartSeed:
    def test_seed_is_four_voltages(self, oracle, testbed):
        report = testbed.tracker.report(testbed.home_pose)
        seed = cold_start_seed(oracle, report)
        assert len(seed) == 4
        assert all(isinstance(v, float) for v in seed)

    def test_strictly_fewer_iterations_than_zero_seed(self, oracle,
                                                      testbed):
        total_zero = total_cold = 0
        for pose in testbed.evaluation_poses(10):
            report = testbed.tracker.report(pose)
            from_zero = point(oracle, report, initial=ZERO)
            from_cold = point(oracle, report,
                              initial=cold_start_seed(oracle, report))
            total_zero += from_zero.iterations
            total_cold += from_cold.iterations
            # Same converged answer, whatever the seed.
            assert from_cold.v_tx1 == pytest.approx(from_zero.v_tx1,
                                                    abs=1e-6)
        assert total_cold < total_zero

    def test_fewer_cold_start_divergences_under_tight_cap(self, oracle,
                                                          testbed):
        """With the iteration budget squeezed to 2, the zero seed
        diverges where the geometry-derived seed still lands."""
        zero_failures = cold_failures = 0
        for pose in testbed.evaluation_poses(10):
            report = testbed.tracker.report(pose)
            if attempt(oracle, report, ZERO, max_iterations=2) is None:
                zero_failures += 1
            seed = cold_start_seed(oracle, report)
            if attempt(oracle, report, seed, max_iterations=2) is None:
                cold_failures += 1
        assert cold_failures < zero_failures
        # Most poses land in 2 iterations from the derived seed; the
        # zero seed needs 3+ essentially everywhere.
        assert cold_failures <= 2
