"""Unit tests for the hand-held motion generator."""

import numpy as np
import pytest

from repro.motion import HandheldProfile, measure_profile
from repro.vrh import Pose


def profile(**kwargs):
    defaults = dict(base_pose=Pose([0, 0, 1], np.eye(3)),
                    peak_linear_m_s=0.3,
                    peak_angular_rad_s=np.radians(20),
                    duration_s=20.0, seed=4)
    defaults.update(kwargs)
    return HandheldProfile(**defaults)


class TestHandheldProfile:
    def test_starts_near_base(self):
        p = profile()
        start = p.pose_at(0.0)
        assert np.linalg.norm(start.position - [0, 0, 1]) < 0.2

    def test_deterministic_for_seed(self):
        a = profile(seed=9)
        b = profile(seed=9)
        for t in (0.0, 3.3, 17.1):
            assert a.pose_at(t).almost_equal(b.pose_at(t))

    def test_different_seeds_differ(self):
        a = profile(seed=1).pose_at(5.0)
        b = profile(seed=2).pose_at(5.0)
        assert not a.almost_equal(b)

    def test_is_smooth(self):
        p = profile()
        dt = 1e-3
        prev = p.pose_at(10.0)
        cur = p.pose_at(10.0 + dt)
        # At most peak speeds times dt (plus slack).
        assert prev.linear_distance_to(cur) < 2 * 0.3 * dt + 1e-9
        assert prev.angular_distance_to(cur) < 2 * np.radians(20) * dt \
            + 1e-9

    def test_speed_ramps_up(self):
        p = profile(ramp_start_fraction=0.1)
        early = measure_profile(p, window_s=0.05, duration_s=3.0)
        # Sample a late window by shifting: measure whole run, compare
        # first and last quarters.
        full = measure_profile(p, window_s=0.05)
        n = len(full.linear_m_s)
        early_mean = full.linear_m_s[: n // 4].mean()
        late_mean = full.linear_m_s[-n // 4:].mean()
        assert late_mean > early_mean

    def test_speeds_bounded_by_peaks(self):
        p = profile()
        series = measure_profile(p, window_s=0.05)
        assert series.linear_m_s.max() <= 0.3 * 1.05
        assert series.angular_rad_s.max() <= np.radians(20) * 1.05

    def test_mixed_motion_present(self):
        # Both linear and angular components move simultaneously.
        p = profile()
        series = measure_profile(p, window_s=0.05)
        both = (series.linear_m_s > 0.02) & (
            series.angular_rad_s > np.radians(2))
        assert both.mean() > 0.3

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            profile(peak_linear_m_s=-1.0)
        with pytest.raises(ValueError):
            profile(ramp_start_fraction=1.5)
