"""The batched trace engine against its per-trace equality oracle.

``generate_trace`` is the reference implementation; ``generate_batch``
must reproduce it *bit for bit* for every (viewer, video) — same
derived streams, same draw order, same float arithmetic.  These tests
assert exact array equality (``np.array_equal``, never ``allclose``)
across engines, worker counts and chunk sizes.
"""

import warnings

import numpy as np
import pytest

from repro.motion import NORMAL_USE, TraceBatch, generate_batch, generate_dataset
from repro.motion.traces import generate_trace
from repro.parallel import ParallelFallbackWarning
from repro.store import ColumnStore

SEED = 2022
DUR = 5.0


def _reference(viewers, videos, duration_s):
    return [generate_trace(viewer, video, duration_s=duration_s,
                           seed=SEED)
            for viewer in range(viewers) for video in range(videos)]


class TestBitIdentity:
    def test_matches_generate_trace_bitwise(self):
        batch = generate_batch(viewers=3, videos=2, duration_s=DUR,
                               seed=SEED)
        oracle = _reference(3, 2, DUR)
        assert len(batch) == len(oracle)
        for got, want in zip(batch.traces(), oracle):
            assert got.viewer == want.viewer
            assert got.video == want.video
            assert got.dt_s == want.dt_s
            assert np.array_equal(got.positions, want.positions)
            assert np.array_equal(got.eulers, want.eulers)
            assert np.array_equal(got.step_linear_m, want.step_linear_m)
            assert np.array_equal(got.step_angular_rad,
                                  want.step_angular_rad)

    def test_normal_use_profile_bitwise(self):
        # NORMAL_USE has a different saccade/activity mix; the stream
        # consumption order must survive the profile change.
        batch = generate_batch(viewers=2, videos=2, profile=NORMAL_USE,
                               duration_s=DUR, seed=SEED)
        for got, want in zip(
                batch.traces(),
                [generate_trace(v, w, NORMAL_USE, duration_s=DUR,
                                seed=SEED)
                 for v in range(2) for w in range(2)]):
            assert np.array_equal(got.positions, want.positions)
            assert np.array_equal(got.eulers, want.eulers)

    def test_chunk_size_does_not_change_bytes(self):
        whole = generate_batch(viewers=3, videos=3, duration_s=DUR,
                               seed=SEED, chunk_size=None)
        chopped = generate_batch(viewers=3, videos=3, duration_s=DUR,
                                 seed=SEED, chunk_size=2)
        assert np.array_equal(whole.positions, chopped.positions)
        assert np.array_equal(whole.eulers, chopped.eulers)
        assert np.array_equal(whole.step_linear_m, chopped.step_linear_m)
        assert np.array_equal(whole.step_angular_rad,
                              chopped.step_angular_rad)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_workers_do_not_change_bytes(self, workers):
        serial = generate_batch(viewers=2, videos=3, duration_s=DUR,
                                seed=SEED, workers=1)
        with warnings.catch_warnings():
            # A sandbox without process pools degrades serially; the
            # bytes must match either way.
            warnings.simplefilter("ignore", ParallelFallbackWarning)
            pooled = generate_batch(viewers=2, videos=3, duration_s=DUR,
                                    seed=SEED, workers=workers,
                                    chunk_size=2)
        assert np.array_equal(serial.positions, pooled.positions)
        assert np.array_equal(serial.eulers, pooled.eulers)
        assert np.array_equal(serial.step_linear_m,
                              pooled.step_linear_m)
        assert np.array_equal(serial.step_angular_rad,
                              pooled.step_angular_rad)

    def test_dataset_engine_parity(self):
        loop = generate_dataset(viewers=2, videos=2, duration_s=DUR,
                                engine="loop")
        batch = generate_dataset(viewers=2, videos=2, duration_s=DUR,
                                 engine="batch")
        for got, want in zip(batch, loop):
            assert (got.viewer, got.video) == (want.viewer, want.video)
            assert np.array_equal(got.positions, want.positions)
            assert np.array_equal(got.eulers, want.eulers)
            assert np.array_equal(got.step_linear_m, want.step_linear_m)
            assert np.array_equal(got.step_angular_rad,
                                  want.step_angular_rad)


class TestShapesAndModes:
    def test_steps_only_skips_pose(self):
        full = generate_batch(viewers=2, videos=2, duration_s=DUR,
                              seed=SEED)
        steps = generate_batch(viewers=2, videos=2, duration_s=DUR,
                               seed=SEED, columns="steps")
        assert not steps.has_pose
        assert steps.positions is None and steps.eulers is None
        assert np.array_equal(steps.step_linear_m, full.step_linear_m)
        assert np.array_equal(steps.step_angular_rad,
                              full.step_angular_rad)

    def test_steps_only_refuses_trace_views(self):
        steps = generate_batch(viewers=1, videos=1, duration_s=DUR,
                               columns="steps")
        with pytest.raises(ValueError):
            steps.trace(0)

    def test_rejects_unknown_columns(self):
        with pytest.raises(ValueError):
            generate_batch(viewers=1, videos=1, duration_s=DUR,
                           columns="everything")

    def test_empty_corpus(self):
        batch = generate_batch(viewers=0, videos=10, duration_s=DUR)
        assert len(batch) == 0
        assert batch.traces() == []
        assert batch.step_linear_m.shape[0] == 0

    def test_single_trace(self):
        batch = generate_batch(viewers=1, videos=1, duration_s=DUR,
                               seed=SEED)
        assert len(batch) == 1
        want = generate_trace(0, 0, duration_s=DUR, seed=SEED)
        assert np.array_equal(batch.trace(0).positions, want.positions)

    def test_trace_views_are_zero_copy(self):
        batch = generate_batch(viewers=1, videos=1, duration_s=DUR)
        view = batch.trace(0)
        assert np.shares_memory(view.positions, batch.positions)
        assert np.shares_memory(view.step_linear_m, batch.step_linear_m)


class TestFromTraces:
    def test_roundtrip(self):
        traces = generate_dataset(viewers=2, videos=2, duration_s=DUR,
                                  engine="loop")
        batch = TraceBatch.from_traces(traces)
        for got, want in zip(batch.traces(), traces):
            assert np.array_equal(got.positions, want.positions)
            assert np.array_equal(got.eulers, want.eulers)
            assert np.array_equal(got.step_linear_m, want.step_linear_m)

    def test_steps_mode(self):
        traces = generate_dataset(viewers=1, videos=2, duration_s=DUR,
                                  engine="loop")
        batch = TraceBatch.from_traces(traces, columns="steps")
        assert not batch.has_pose

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TraceBatch.from_traces([])

    def test_rejects_ragged_corpus(self):
        traces = [generate_trace(0, 0, duration_s=DUR, seed=SEED),
                  generate_trace(0, 1, duration_s=2 * DUR, seed=SEED)]
        with pytest.raises(ValueError):
            TraceBatch.from_traces(traces)


class TestStoreIntegration:
    def test_save_load_roundtrip(self, tmp_path):
        store = ColumnStore(tmp_path)
        batch = generate_batch(viewers=2, videos=2, duration_s=DUR,
                               seed=SEED, store=store)
        loaded = TraceBatch.load(store)
        assert loaded.dt_s == batch.dt_s
        assert np.array_equal(loaded.viewer_ids, batch.viewer_ids)
        assert np.array_equal(loaded.positions, batch.positions)
        assert np.array_equal(loaded.step_linear_m, batch.step_linear_m)
        attrs = store.read_group("traces").attrs
        assert attrs["seed"] == SEED
        assert attrs["viewers"] == 2

    def test_loaded_columns_are_memmapped(self, tmp_path):
        store = ColumnStore(tmp_path)
        generate_batch(viewers=1, videos=2, duration_s=DUR, store=store)
        loaded = TraceBatch.load(store)
        assert isinstance(loaded.step_linear_m, np.memmap)

    def test_steps_only_group_loads_without_pose(self, tmp_path):
        store = ColumnStore(tmp_path)
        generate_batch(viewers=1, videos=2, duration_s=DUR,
                       columns="steps", store=store)
        loaded = TraceBatch.load(store)
        assert not loaded.has_pose
