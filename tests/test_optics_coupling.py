"""Unit tests for repro.optics.coupling."""

import math

import pytest

from repro.optics import EXCESS_DB_AT_WIDTH, CouplingModel, MIN_POWER_DBM


def model():
    return CouplingModel(peak_power_dbm=-10.0, lateral_width_m=10e-3,
                         angular_width_rad=2.5e-3)


class TestExcessLoss:
    def test_zero_at_alignment(self):
        assert model().excess_loss_db(0.0, 0.0) == 0.0

    def test_three_db_at_one_width(self):
        m = model()
        assert m.excess_loss_db(10e-3, 0.0) == pytest.approx(
            EXCESS_DB_AT_WIDTH)
        assert m.excess_loss_db(0.0, 2.5e-3) == pytest.approx(
            EXCESS_DB_AT_WIDTH)

    def test_quadratic_scaling(self):
        m = model()
        assert m.excess_loss_db(20e-3, 0.0) == pytest.approx(
            4 * EXCESS_DB_AT_WIDTH)

    def test_axes_add(self):
        m = model()
        combined = m.excess_loss_db(10e-3, 2.5e-3)
        assert combined == pytest.approx(2 * EXCESS_DB_AT_WIDTH)


class TestReceivedPower:
    def test_peak_at_alignment(self):
        assert model().received_power_dbm(0.0, 0.0) == pytest.approx(-10.0)

    def test_sign_of_misalignment_irrelevant(self):
        m = model()
        assert m.received_power_dbm(-5e-3, 0.0) == pytest.approx(
            m.received_power_dbm(5e-3, 0.0))

    def test_floored_far_out(self):
        assert model().received_power_dbm(10.0, 1.0) == MIN_POWER_DBM

    def test_monotone_decrease(self):
        m = model()
        powers = [m.received_power_dbm(d, 0.0)
                  for d in (0.0, 2e-3, 5e-3, 9e-3, 15e-3)]
        assert powers == sorted(powers, reverse=True)


class TestTolerances:
    def test_margin(self):
        assert model().margin_db(-25.0) == pytest.approx(15.0)

    def test_angular_tolerance_formula(self):
        m = model()
        expected = 2.5e-3 * math.sqrt(15.0 / EXCESS_DB_AT_WIDTH)
        assert m.angular_tolerance_rad(-25.0) == pytest.approx(expected)

    def test_lateral_tolerance_formula(self):
        m = model()
        expected = 10e-3 * math.sqrt(15.0 / EXCESS_DB_AT_WIDTH)
        assert m.lateral_tolerance_m(-25.0) == pytest.approx(expected)

    def test_power_at_tolerance_equals_sensitivity(self):
        m = model()
        tol = m.angular_tolerance_rad(-25.0)
        assert m.received_power_dbm(0.0, tol) == pytest.approx(-25.0)

    def test_no_margin_no_tolerance(self):
        assert model().angular_tolerance_rad(-5.0) == 0.0
        assert model().lateral_tolerance_m(-10.0) == 0.0

    def test_is_connected(self):
        m = model()
        assert m.is_connected(0.0, 0.0, -25.0)
        assert not m.is_connected(50e-3, 0.0, -25.0)

    def test_rejects_nonpositive_widths(self):
        with pytest.raises(ValueError):
            CouplingModel(-10.0, 0.0, 1e-3)
        with pytest.raises(ValueError):
            CouplingModel(-10.0, 1e-3, -1.0)
