"""Unit tests for the Table 2 error metrics."""

import numpy as np
import pytest

from repro.core import beam_error_m, summarize
from repro.geometry import Ray


class TestBeamError:
    def test_identical_beams_zero_error(self):
        beam = Ray([0, 0, 0], [0, 0, 1])
        assert beam_error_m(beam, beam, 1.75) == pytest.approx(0.0)

    def test_pure_angular_error_scales_with_range(self):
        truth = Ray([0, 0, 0], [0, 0, 1])
        tilted = Ray([0, 0, 0], [1e-3, 0, 1])
        near = beam_error_m(tilted, truth, 1.0)
        far = beam_error_m(tilted, truth, 2.0)
        assert far == pytest.approx(2 * near, rel=1e-5)
        assert near == pytest.approx(1e-3, rel=1e-3)

    def test_pure_lateral_error_is_offset(self):
        truth = Ray([0, 0, 0], [0, 0, 1])
        shifted = Ray([2e-3, 0, 0], [0, 0, 1])
        assert beam_error_m(shifted, truth, 1.75) == pytest.approx(2e-3)

    def test_origin_slide_along_beam_is_free(self):
        # Gauge freedom: an origin moved along the beam line is the
        # same physical beam; the metric must not punish it.
        truth = Ray([0, 0, 0], [0, 0, 1])
        slid = Ray([0, 0, 0.3], [0, 0, 1])
        assert beam_error_m(slid, truth, 1.75) == pytest.approx(0.0,
                                                                abs=1e-12)

    def test_rejects_nonpositive_range(self):
        beam = Ray([0, 0, 0], [0, 0, 1])
        with pytest.raises(ValueError):
            beam_error_m(beam, beam, 0.0)


class TestSummarize:
    def test_average_and_max(self):
        summary = summarize("s", [1e-3, 2e-3, 3e-3])
        assert summary.average_mm == pytest.approx(2.0)
        assert summary.maximum_mm == pytest.approx(3.0)
        assert summary.count == 3

    def test_accepts_generators(self):
        summary = summarize("s", (x * 1e-3 for x in range(1, 4)))
        assert summary.count == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize("s", [])

    def test_label_preserved(self):
        assert summarize("combined-rx", [1e-3]).label == "combined-rx"
