"""Unit tests for the windowed throughput meter."""

import pytest

from repro.net import ThroughputMeter


class TestThroughputMeter:
    def test_full_uptime_gives_optimal(self):
        meter = ThroughputMeter(9.4, window_s=0.05)
        for i in range(1, 101):
            meter.record(i * 0.001, True, 0.001)
        windows = meter.finish()
        assert all(w.throughput_gbps == pytest.approx(9.4)
                   for w in windows)

    def test_downtime_gives_zero(self):
        meter = ThroughputMeter(9.4, window_s=0.05)
        for i in range(1, 101):
            meter.record(i * 0.001, False, 0.001)
        assert all(w.throughput_gbps == 0.0 for w in meter.finish())

    def test_partial_uptime_scales(self):
        meter = ThroughputMeter(10.0, window_s=0.1)
        for i in range(1, 101):
            meter.record(i * 0.001, i % 2 == 0, 0.001)
        window = meter.finish()[0]
        assert window.throughput_gbps == pytest.approx(5.0, rel=0.05)

    def test_window_count(self):
        meter = ThroughputMeter(9.4, window_s=0.05)
        for i in range(1, 501):
            meter.record(i * 0.001, True, 0.001)
        # 500 ms of samples -> 10 windows (the last closed by finish).
        assert len(meter.finish()) == 10

    def test_window_centers(self):
        meter = ThroughputMeter(9.4, window_s=0.05)
        for i in range(1, 101):
            meter.record(i * 0.001, True, 0.001)
        windows = meter.finish()
        assert windows[0].center_s == pytest.approx(0.025)
        assert windows[1].center_s == pytest.approx(0.075)

    def test_empty_windows_skipped_through(self):
        meter = ThroughputMeter(9.4, window_s=0.05)
        meter.record(0.001, True, 0.001)
        meter.record(0.26, True, 0.001)  # jump over several windows
        windows = meter.finish()
        assert len(windows) == 6
        # Intermediate windows saw no samples: zero throughput.
        assert all(w.throughput_gbps == 0.0 for w in windows[1:5])

    def test_uptime_fraction_capped(self):
        meter = ThroughputMeter(9.4, window_s=0.05)
        meter.record(0.01, True, 0.001)
        window = meter.finish()[0]
        assert window.uptime_fraction == 1.0

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            ThroughputMeter(0.0)
        with pytest.raises(ValueError):
            ThroughputMeter(9.4, window_s=0.0)

    def test_rejects_bad_dt(self):
        meter = ThroughputMeter(9.4)
        with pytest.raises(ValueError):
            meter.record(0.0, True, 0.0)
