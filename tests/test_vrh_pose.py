"""Unit tests for repro.vrh.pose."""

import numpy as np
import pytest

from repro.geometry import RigidTransform, rotation_matrix
from repro.vrh import Pose, speeds_between


class TestConstruction:
    def test_identity(self):
        pose = Pose.identity()
        assert np.allclose(pose.position, 0.0)
        assert np.allclose(pose.orientation, np.eye(3))

    def test_rejects_non_rotation(self):
        with pytest.raises(ValueError):
            Pose([0, 0, 0], np.diag([1.0, 1.0, -1.0]))

    def test_from_euler_round_trip(self):
        pose = Pose.from_euler([1, 2, 3], 0.1, -0.2, 0.3)
        assert np.allclose(pose.euler_angles(), [0.1, -0.2, 0.3])

    def test_transform_round_trip(self):
        pose = Pose.from_euler([0.5, -0.1, 1.2], 0.2, 0.1, -0.4)
        rebuilt = Pose.from_transform(pose.as_transform())
        assert pose.almost_equal(rebuilt)


class TestDistances:
    def test_linear_distance(self):
        a = Pose([0, 0, 0], np.eye(3))
        b = Pose([3, 4, 0], np.eye(3))
        assert a.linear_distance_to(b) == pytest.approx(5.0)

    def test_angular_distance(self):
        a = Pose.identity()
        b = Pose([0, 0, 0], rotation_matrix([0, 0, 1], 0.3))
        assert a.angular_distance_to(b) == pytest.approx(0.3)

    def test_distances_are_symmetric(self):
        a = Pose.from_euler([1, 0, 0], 0.1, 0.0, 0.2)
        b = Pose.from_euler([0, 1, 0], -0.3, 0.2, 0.0)
        assert a.linear_distance_to(b) == pytest.approx(
            b.linear_distance_to(a))
        assert a.angular_distance_to(b) == pytest.approx(
            b.angular_distance_to(a))


class TestInterpolation:
    def test_endpoints(self):
        a = Pose.from_euler([0, 0, 0], 0, 0, 0)
        b = Pose.from_euler([1, 2, 3], 0, 0, 0.8)
        assert a.interpolate(b, 0.0).almost_equal(a)
        assert a.interpolate(b, 1.0).almost_equal(b, tol=1e-9)

    def test_midpoint_position(self):
        a = Pose([0, 0, 0], np.eye(3))
        b = Pose([2, 0, 0], np.eye(3))
        mid = a.interpolate(b, 0.5)
        assert np.allclose(mid.position, [1, 0, 0])

    def test_midpoint_rotation_is_half_angle(self):
        a = Pose.identity()
        b = Pose([0, 0, 0], rotation_matrix([0, 1, 0], 1.0))
        mid = a.interpolate(b, 0.5)
        assert a.angular_distance_to(mid) == pytest.approx(0.5)

    def test_constant_rate(self):
        # Equal fractions advance equal angular distance -- the drift
        # model of Section 5.4 depends on this.
        a = Pose.identity()
        b = Pose([0.3, 0, 0], rotation_matrix([0, 0, 1], 0.6))
        quarter = a.interpolate(b, 0.25)
        half = a.interpolate(b, 0.5)
        assert a.angular_distance_to(quarter) == pytest.approx(
            quarter.angular_distance_to(half), abs=1e-12)


class TestMoved:
    def test_translation(self):
        pose = Pose.identity().moved(translation=[1, 0, 0])
        assert np.allclose(pose.position, [1, 0, 0])

    def test_rotation_composes_in_world(self):
        pose = Pose.identity().moved(
            rotation=rotation_matrix([0, 0, 1], 0.5))
        assert Pose.identity().angular_distance_to(pose) == pytest.approx(
            0.5)


class TestSpeedsBetween:
    def test_values(self):
        a = Pose.identity()
        b = Pose([0.1, 0, 0], rotation_matrix([0, 0, 1], 0.02))
        lin, ang = speeds_between(a, b, 0.1)
        assert lin == pytest.approx(1.0)
        assert ang == pytest.approx(0.2)

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError):
            speeds_between(Pose.identity(), Pose.identity(), 0.0)
