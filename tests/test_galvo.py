"""Unit tests for the galvo hardware substrate."""

import numpy as np
import pytest

from repro.galvo import (
    Daq,
    GVS102,
    GalvoHardware,
    GalvoSpec,
    GmaParams,
    canonical_gma,
    mirror_planes,
    trace,
)
from repro.geometry import RigidTransform, angle_between, rotation_matrix


def quiet_hardware(**kwargs):
    """Hardware with jitter disabled for exact-geometry tests."""
    spec = GalvoSpec(name="quiet", volts_per_optical_degree=0.5,
                     voltage_range_v=10.0, angular_accuracy_rad=0.0,
                     small_angle_latency_s=300e-6,
                     max_beam_diameter_m=10e-3)
    params = kwargs.pop("params", canonical_gma(np.radians(1.0)))
    return GalvoHardware(params, spec=spec,
                         rng=np.random.default_rng(0), **kwargs)


class TestSpecs:
    def test_gvs102_mechanical_scale(self):
        # 0.5 V per optical degree -> 1 mech degree per volt.
        assert GVS102.mech_rad_per_volt == pytest.approx(np.radians(1.0))

    def test_max_mech_angle(self):
        assert GVS102.max_mech_angle_rad == pytest.approx(np.radians(10.0))

    def test_settle_time_small_step(self):
        assert GVS102.settle_time_s(np.radians(0.1)) == pytest.approx(
            300e-6)

    def test_settle_time_grows_with_step(self):
        small = GVS102.settle_time_s(np.radians(0.2))
        large = GVS102.settle_time_s(np.radians(3.2))
        assert large == pytest.approx(small * 4.0)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            GalvoSpec("bad", 0.0, 10.0, 1e-5, 3e-4, 1e-2)


class TestDaq:
    def test_voltage_step_16_bit(self):
        daq = Daq()
        assert daq.voltage_step_v == pytest.approx(20.0 / 65536)

    def test_quantize_rounds_to_grid(self):
        daq = Daq()
        v = daq.quantize(1.23456789)
        assert abs(v - 1.23456789) <= daq.voltage_step_v / 2

    def test_quantize_clamps(self):
        daq = Daq()
        assert daq.quantize(15.0) == pytest.approx(10.0)
        assert daq.quantize(-15.0) == pytest.approx(-10.0)

    def test_in_range(self):
        daq = Daq()
        assert daq.in_range(9.99)
        assert not daq.in_range(10.01)

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            Daq(bits=0)
        with pytest.raises(ValueError):
            Daq(voltage_range_v=0.0)


class TestGmaParams:
    def test_vector_round_trip(self):
        params = canonical_gma(np.radians(1.0))
        rebuilt = GmaParams.from_vector(params.to_vector())
        assert np.allclose(rebuilt.to_vector(), params.to_vector())

    def test_from_vector_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            GmaParams.from_vector(np.zeros(24))

    def test_rejects_nonpositive_theta(self):
        params = canonical_gma(np.radians(1.0))
        vector = params.to_vector()
        vector[24] = 0.0
        with pytest.raises(ValueError):
            GmaParams.from_vector(vector)

    def test_transformed_moves_points_and_rotates_directions(self):
        params = canonical_gma(np.radians(1.0))
        shift = RigidTransform(np.eye(3), np.array([1.0, 2.0, 3.0]))
        moved = params.transformed(shift)
        assert np.allclose(moved.q2, params.q2 + [1, 2, 3])
        assert np.allclose(moved.x0, params.x0)  # translation only

    def test_transform_commutes_with_trace(self):
        # Tracing then transforming == transforming then tracing.
        params = canonical_gma(np.radians(1.0))
        t = RigidTransform(rotation_matrix([0, 1, 0], 0.4),
                           np.array([0.3, -0.2, 1.0]))
        beam_then = t.apply_ray(trace(params, 1.2, -0.7))
        then_beam = trace(params.transformed(t), 1.2, -0.7)
        assert np.allclose(beam_then.origin, then_beam.origin, atol=1e-12)
        assert np.allclose(beam_then.direction, then_beam.direction,
                           atol=1e-12)


class TestTrace:
    def test_rest_beam_exits_up(self):
        beam = trace(canonical_gma(np.radians(1.0)), 0.0, 0.0)
        assert np.allclose(beam.direction, [0, 0, 1], atol=1e-9)

    def test_one_volt_deflects_two_optical_degrees(self):
        params = canonical_gma(np.radians(1.0))
        rest = trace(params, 0.0, 0.0)
        steered = trace(params, 0.0, 1.0)
        deflection = angle_between(rest.direction, steered.direction)
        assert deflection == pytest.approx(np.radians(2.0), rel=1e-3)

    def test_first_mirror_voltage_also_steers(self):
        params = canonical_gma(np.radians(1.0))
        rest = trace(params, 0.0, 0.0)
        steered = trace(params, 1.0, 0.0)
        assert angle_between(rest.direction, steered.direction) > 1e-3

    def test_origin_moves_with_voltage(self):
        # The distortion effect (footnote 6): p depends on voltages.
        params = canonical_gma(np.radians(1.0))
        rest = trace(params, 0.0, 0.0)
        steered = trace(params, 4.0, 0.0)
        assert np.linalg.norm(steered.origin - rest.origin) > 1e-4

    def test_mirror_planes_pivot_fixed(self):
        params = canonical_gma(np.radians(1.0))
        a = mirror_planes(params, 0.0, 0.0)
        b = mirror_planes(params, 0.1, -0.1)
        assert np.allclose(a[0].point, b[0].point)
        assert np.allclose(a[1].point, b[1].point)
        assert not np.allclose(a[0].normal, b[0].normal)


class TestGalvoHardware:
    def test_voltages_quantized(self):
        hw = quiet_hardware()
        hw.apply(1.000001, -2.000001)
        v1, v2 = hw.voltages
        step = hw.daq.voltage_step_v
        assert abs(v1 / step - round(v1 / step)) < 1e-6

    def test_rejects_out_of_range(self):
        hw = quiet_hardware()
        with pytest.raises(ValueError):
            hw.apply(10.5, 0.0)

    def test_out_of_range_raises_typed_coverage_error(self):
        from repro.galvo import CoverageError
        hw = quiet_hardware()
        with pytest.raises(CoverageError):
            hw.apply(0.0, -10.5)

    def test_coverage_error_is_a_value_error(self):
        # Backward compatibility: callers catching ValueError still work.
        from repro.galvo import CoverageError
        assert issubclass(CoverageError, ValueError)

    def test_coverage_error_importable_from_core(self):
        from repro.core import CoverageError as FromCore
        from repro.galvo import CoverageError as FromGalvo
        assert FromCore is FromGalvo

    def test_settle_time_positive_on_move(self):
        hw = quiet_hardware()
        assert hw.apply(2.0, 0.0) > 0.0

    def test_quiet_hardware_matches_model(self):
        hw = quiet_hardware()
        hw.apply(1.5, -0.5)
        model_beam = trace(hw.params, *hw.voltages)
        hw_beam = hw.output_beam()
        assert np.allclose(hw_beam.origin, model_beam.origin, atol=1e-12)
        assert np.allclose(hw_beam.direction, model_beam.direction,
                           atol=1e-12)

    def test_nonlinearity_bends_response(self):
        hw = quiet_hardware(nonlinearity=1e-3)
        hw.apply(5.0, 0.0)
        bent = hw.output_beam()
        linear = trace(hw.params, 5.0, 0.0)
        assert angle_between(bent.direction, linear.direction) > 1e-4

    def test_jitter_draws_once_per_apply(self):
        params = canonical_gma(np.radians(1.0))
        hw = GalvoHardware(params, rng=np.random.default_rng(7))
        hw.apply(1.0, 1.0)
        a = hw.output_beam()
        b = hw.output_beam()
        assert np.allclose(a.direction, b.direction)

    def test_second_mirror_plane_consistent_with_beam(self):
        hw = quiet_hardware()
        hw.apply(0.8, -1.3)
        plane = hw.second_mirror_plane()
        beam = hw.output_beam()
        # The output beam originates on the second mirror plane.
        assert plane.contains(beam.origin, tol=1e-9)

    def test_beam_for_is_apply_plus_output(self):
        hw = quiet_hardware()
        beam = hw.beam_for(0.3, 0.4)
        assert np.allclose(beam.origin, hw.output_beam().origin)
