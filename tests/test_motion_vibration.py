"""Tests for the vibration overlay."""

import numpy as np
import pytest

from repro.motion import StaticProfile, VibrationOverlay
from repro.vrh import Pose


def overlay(**kwargs):
    defaults = dict(base=StaticProfile(Pose.identity(), 10.0),
                    frequency_hz=10.0,
                    linear_amplitude_m=1e-3,
                    angular_amplitude_rad=2e-3,
                    seed=1)
    defaults.update(kwargs)
    return VibrationOverlay(**defaults)


class TestVibrationOverlay:
    def test_preserves_duration(self):
        assert overlay().duration_s == 10.0

    def test_jitter_bounded_by_amplitude(self):
        o = overlay()
        for t in np.linspace(0, 1, 101):
            pose = o.pose_at(float(t))
            assert np.all(np.abs(pose.position) <= 1e-3 + 1e-12)
            tilt = Pose.identity().angular_distance_to(
                Pose(np.zeros(3), pose.orientation))
            assert tilt <= np.sqrt(3) * 2e-3 + 1e-9

    def test_zero_amplitude_is_identity(self):
        o = overlay(linear_amplitude_m=0.0, angular_amplitude_rad=0.0)
        assert o.pose_at(0.37).almost_equal(Pose.identity())

    def test_periodicity(self):
        o = overlay(frequency_hz=10.0)
        a = o.pose_at(0.123)
        b = o.pose_at(0.123 + 0.1)  # one full period later
        assert a.almost_equal(b, tol=1e-9)

    def test_deterministic_per_seed(self):
        assert overlay(seed=5).pose_at(0.2).almost_equal(
            overlay(seed=5).pose_at(0.2))
        assert not overlay(seed=5).pose_at(0.2).almost_equal(
            overlay(seed=6).pose_at(0.2))

    def test_rides_on_base_motion(self):
        base = StaticProfile(Pose([1.0, 2.0, 3.0], np.eye(3)), 10.0)
        o = overlay(base=base)
        assert np.linalg.norm(o.pose_at(0.0).position
                              - [1.0, 2.0, 3.0]) < 2e-3

    def test_peak_speeds(self):
        o = overlay(frequency_hz=50.0, angular_amplitude_rad=1e-3,
                    linear_amplitude_m=1e-3)
        assert o.peak_angular_speed_rad_s() == pytest.approx(
            2 * np.pi * 50 * 1e-3 * np.sqrt(3))
        assert o.peak_linear_speed_m_s() == pytest.approx(
            2 * np.pi * 50 * 1e-3 * np.sqrt(3))

    def test_validation(self):
        with pytest.raises(ValueError):
            overlay(frequency_hz=0.0)
        with pytest.raises(ValueError):
            overlay(linear_amplitude_m=-1.0)
