"""Unit tests for the K-space calibration machinery."""

import numpy as np
import pytest

from repro import constants
from repro.core import BoardRig, fit_gma, interior_grid_points
from repro.core.kspace import BOARD_PLANE, BoardSample, _prior_sigmas
from repro.galvo import GalvoHardware, canonical_gma
from repro.geometry import euler_to_matrix, RigidTransform


def board_hardware(seed=0, nonlinearity=0.0):
    """Hardware placed facing the board, K-space style."""
    params = canonical_gma(np.radians(1.0))
    flip = RigidTransform(euler_to_matrix(np.pi, 0.0, 0.0),
                          np.zeros(3))
    placed = params.transformed(flip)
    shift = RigidTransform(
        np.eye(3),
        np.array([0.0, 0.0, constants.KSPACE_BOARD_DISTANCE_M])
        - placed.q2 * 0 + np.array([0, 0, 0]))
    # Land the second mirror at z = 1.5 m.
    target = np.array([0.0, 0.0, constants.KSPACE_BOARD_DISTANCE_M])
    translation = target - placed.q2
    placed = placed.transformed(RigidTransform(np.eye(3), translation))
    return GalvoHardware(placed, nonlinearity=nonlinearity,
                         rng=np.random.default_rng(seed))


class TestInteriorGrid:
    def test_paper_sample_count(self):
        grid = interior_grid_points()
        assert len(grid) == constants.KSPACE_INTERIOR_SAMPLES  # 266

    def test_centered_on_board(self):
        grid = interior_grid_points()
        center = grid.mean(axis=0)
        assert np.allclose(center, [0.0, 0.0], atol=1e-9)

    def test_one_inch_spacing(self):
        grid = interior_grid_points()
        xs = np.unique(grid[:, 0])
        assert np.allclose(np.diff(xs), constants.KSPACE_CELL_SIZE_M)

    def test_custom_dimensions(self):
        grid = interior_grid_points(columns=5, rows=4, cell_m=0.01)
        assert len(grid) == 4 * 3


class TestBoardRig:
    def test_beam_hits_board(self):
        rig = BoardRig(board_hardware(), rng=np.random.default_rng(1))
        rig.hardware.apply(0.0, 0.0)
        hit = rig.beam_board_hit()
        assert abs(hit[2]) < 1e-9  # on the z=0 plane
        assert np.linalg.norm(hit[:2]) < 0.1  # near board center

    def test_warp_bias_is_systematic(self):
        rig = BoardRig(board_hardware(), rng=np.random.default_rng(1))
        a = rig.warp_bias([0.1, 0.05])
        b = rig.warp_bias([0.1, 0.05])
        assert np.allclose(a, b)  # same point, same bias

    def test_warp_bias_bounded(self):
        rig = BoardRig(board_hardware(), rng=np.random.default_rng(1))
        for point in interior_grid_points()[:30]:
            assert np.linalg.norm(rig.warp_bias(point)) <= \
                np.sqrt(2) * rig.warp_bias_m + 1e-12

    def test_voltages_hitting_converges(self):
        rig = BoardRig(board_hardware(), rng=np.random.default_rng(1),
                       warp_bias_m=0.0)
        v1, v2 = rig.voltages_hitting([0.1, -0.05])
        rig.hardware.apply(v1, v2)
        hit = rig.beam_board_hit()[:2]
        assert np.linalg.norm(hit - [0.1, -0.05]) < 1e-4

    def test_collect_samples_count_and_targets(self):
        rig = BoardRig(board_hardware(), rng=np.random.default_rng(2))
        grid = interior_grid_points()[:10]
        samples = rig.collect_samples(grid)
        assert len(samples) == 10
        for sample, target in zip(samples, grid):
            assert sample.x == pytest.approx(target[0])
            assert sample.y == pytest.approx(target[1])

    def test_unreachable_target_raises(self):
        rig = BoardRig(board_hardware(), rng=np.random.default_rng(1))
        with pytest.raises(RuntimeError):
            rig.voltages_hitting([5.0, 5.0])  # far outside the cone


class TestFitGma:
    def test_rejects_empty_samples(self):
        with pytest.raises(ValueError):
            fit_gma([], canonical_gma(np.radians(1.0)))

    def test_perfect_hardware_fits_tightly(self):
        # Zero noise, zero warp, zero nonlinearity: the fit should
        # predict held-out board hits to within the DAC/jitter floor.
        hardware = board_hardware(seed=3)
        rig = BoardRig(hardware, rng=np.random.default_rng(3),
                       eye_noise_m=0.0, warp_bias_m=0.0)
        grid = interior_grid_points()[::6]
        samples = rig.collect_samples(grid)
        model = fit_gma(samples, hardware.params)
        holdout = interior_grid_points()[3::12]
        for target in holdout:
            v1, v2 = rig.voltages_hitting(target)
            predicted = BOARD_PLANE.intersect_ray(
                model.beam(v1, v2))[:2]
            assert np.linalg.norm(predicted - target) < 0.4e-3

    def test_prior_sigmas_structure(self):
        initial = canonical_gma(np.radians(1.0)).to_vector()
        sigmas = _prior_sigmas(initial)
        assert sigmas.shape == (25,)
        assert np.all(sigmas > 0)
        # theta prior scales with theta itself.
        assert sigmas[24] == pytest.approx(0.02 * initial[24])


class TestBoardSample:
    def test_is_value_object(self):
        a = BoardSample(x=0.1, y=0.2, v1=1.0, v2=-1.0)
        b = BoardSample(x=0.1, y=0.2, v1=1.0, v2=-1.0)
        assert a == b
