"""Unit tests for repro.geometry.vec."""

import numpy as np
import pytest

from repro.geometry import (
    angle_between,
    as_vec3,
    cross,
    distance,
    dot,
    is_unit,
    norm,
    normalize,
    perpendicular_to,
)


class TestAsVec3:
    def test_accepts_list(self):
        v = as_vec3([1, 2, 3])
        assert v.shape == (3,)
        assert v.dtype == np.float64

    def test_accepts_tuple_and_array(self):
        assert np.allclose(as_vec3((1.0, 0.0, 0.0)), [1, 0, 0])
        assert np.allclose(as_vec3(np.array([0, 1, 0])), [0, 1, 0])

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            as_vec3([1.0, 2.0])

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            as_vec3(np.eye(3))


class TestNormNormalize:
    def test_norm_of_unit_axes(self):
        assert norm([1, 0, 0]) == pytest.approx(1.0)
        assert norm([0, 3, 4]) == pytest.approx(5.0)

    def test_normalize_returns_unit(self):
        v = normalize([3.0, 4.0, 12.0])
        assert norm(v) == pytest.approx(1.0)

    def test_normalize_preserves_direction(self):
        v = normalize([0.0, 0.0, 7.5])
        assert np.allclose(v, [0, 0, 1])

    def test_normalize_rejects_zero(self):
        with pytest.raises(ValueError):
            normalize([0.0, 0.0, 0.0])

    def test_normalize_rejects_near_zero(self):
        with pytest.raises(ValueError):
            normalize([1e-15, 0.0, 0.0])


class TestDistanceDotCross:
    def test_distance(self):
        assert distance([0, 0, 0], [1, 2, 2]) == pytest.approx(3.0)

    def test_distance_symmetric(self):
        a, b = [1.0, -2.0, 0.5], [0.0, 4.0, 1.0]
        assert distance(a, b) == pytest.approx(distance(b, a))

    def test_dot_orthogonal(self):
        assert dot([1, 0, 0], [0, 1, 0]) == pytest.approx(0.0)

    def test_dot_is_float(self):
        assert isinstance(dot([1, 2, 3], [4, 5, 6]), float)

    def test_cross_right_handed(self):
        assert np.allclose(cross([1, 0, 0], [0, 1, 0]), [0, 0, 1])


class TestAngleBetween:
    def test_parallel_is_zero(self):
        assert angle_between([1, 1, 0], [2, 2, 0]) == pytest.approx(
            0.0, abs=1e-7)

    def test_orthogonal_is_half_pi(self):
        assert angle_between([1, 0, 0], [0, 0, 5]) == pytest.approx(
            np.pi / 2)

    def test_antiparallel_is_pi(self):
        assert angle_between([1, 0, 0], [-3, 0, 0]) == pytest.approx(np.pi)

    def test_small_angle_accuracy(self):
        # The channel relies on mrad-level angle computations.
        theta = 1e-3
        v = [np.cos(theta), np.sin(theta), 0.0]
        assert angle_between([1, 0, 0], v) == pytest.approx(theta, rel=1e-6)


class TestHelpers:
    def test_is_unit(self):
        assert is_unit([0, 1, 0])
        assert not is_unit([0, 2, 0])

    def test_perpendicular_to_is_perpendicular(self):
        for v in ([1, 0, 0], [0.3, -0.4, 0.86], [0, 0, -2]):
            p = perpendicular_to(v)
            assert abs(dot(p, v)) < 1e-9
            assert is_unit(p)
