"""Unit tests for the text-table reporter."""

import pytest

from repro.reporting import TextTable, fmt_float


class TestTextTable:
    def test_renders_headers_and_rows(self):
        table = TextTable(["design", "tolerance"])
        table.add_row("collimated", "2.00")
        table.add_row("diverging", "15.81")
        text = table.render()
        assert "design" in text
        assert "15.81" in text
        assert len(text.splitlines()) == 4  # header, rule, two rows

    def test_columns_align(self):
        table = TextTable(["a", "b"])
        table.add_row("x", "1")
        table.add_row("longer", "22")
        lines = table.render().splitlines()
        widths = {len(line) for line in lines if line.strip()}
        assert len(widths) == 1  # every line the same width

    def test_rejects_wrong_cell_count(self):
        with pytest.raises(ValueError):
            TextTable(["a", "b"]).add_row("only-one")

    def test_indent(self):
        table = TextTable(["a"]).add_row("x")
        assert all(line.startswith("  ")
                   for line in table.render(indent="  ").splitlines())

    def test_chaining(self):
        table = TextTable(["a"]).add_row("1").add_row("2")
        assert len(table.rows) == 2


class TestFmtFloat:
    def test_digits(self):
        assert fmt_float(3.14159, 2) == "3.14"
        assert fmt_float(3.14159, 4) == "3.1416"
