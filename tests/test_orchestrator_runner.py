"""The supervised sweep runner: spooling, supervision, resume.

The unit functions here are module-level so they survive the trip to
worker processes regardless of start method.
"""

import time
from pathlib import Path

import numpy as np
import pytest

from repro.faults import ProcessChaos, SimulatedCrash, kill_plan
from repro.orchestrator import (
    SweepConfigError,
    SweepError,
    SweepInterrupted,
    SweepRunner,
    SweepSpec,
    UnitFailedError,
)
from repro.parallel import ParallelFallbackWarning


def unit_ok(params):
    index = int(params["index"])
    return {"index": index, "value": index * 2.0 + 0.5}


def unit_ok_slow(params):
    # Same bytes as unit_ok, but slow enough that a chaos SIGKILL
    # lands before the result is sent (a too-fast unit wins the race:
    # a fully-sent result survives the kill by design).
    time.sleep(0.3)
    return unit_ok(params)


def unit_always_raises(params):
    raise RuntimeError(f"unit {params['index']} is broken")


def unit_needs_retry_seed(params):
    if "retry_seed" not in params:
        raise RuntimeError("first attempt always fails")
    return {"index": int(params["index"]),
            "value": float(int(params["retry_seed"]) % 1000)}


def unit_slow_until_flagged(params):
    flag = Path(params["flag_dir"]) / f"attempted-{params['index']}"
    if not flag.exists():
        flag.touch()
        time.sleep(60.0)
    return {"index": int(params["index"])}


def spec_ok(n=5, retry_seed_param=None, fn=unit_ok):
    return SweepSpec(
        name="runner-test",
        unit_fn=fn,
        unit_params=tuple({"index": i} for i in range(n)),
        common={"flavour": "test"},
        retry_seed_param=retry_seed_param)


def complete(spec, checkpoint, **kwargs):
    """Run a sweep start-to-finish; returns (result, payload)."""
    runner = SweepRunner(spec, checkpoint, **kwargs)
    runner.prepare()
    result = runner.run()
    _, payload = runner.finalize()
    return result, payload


@pytest.fixture()
def reference_sha(tmp_path):
    """The corpus hash of an uninterrupted serial run."""
    _, payload = complete(spec_ok(), tmp_path / "reference")
    return payload["corpus_sha256"]


class TestHappyPath:
    def test_pooled_equals_serial(self, tmp_path, reference_sha):
        result, payload = complete(spec_ok(), tmp_path / "pooled",
                                   workers=3)
        assert result.ran == 5 and not result.failed
        assert payload["corpus_sha256"] == reference_sha

    def test_corpus_rows_in_manifest_order(self, tmp_path):
        runner = SweepRunner(spec_ok(), tmp_path / "ck", workers=2)
        runner.prepare()
        runner.run()
        group, payload = runner.finalize()
        assert np.array_equal(np.asarray(group["index"]).ravel(),
                              np.arange(5))
        assert payload["units"] == 5
        assert payload["summary"]["value"]["min"] == 0.5

    def test_payload_has_no_run_dependent_fields(self, tmp_path):
        _, serial = complete(spec_ok(), tmp_path / "a")
        _, pooled = complete(spec_ok(), tmp_path / "b", workers=4)
        assert serial == pooled

    def test_resume_of_finished_sweep_skips_everything(self, tmp_path):
        _, first = complete(spec_ok(), tmp_path / "ck")
        runner = SweepRunner(spec_ok(), tmp_path / "ck")
        status = runner.prepare(resume=True)
        assert status.done == 5 and status.pending == 0
        result = runner.run()
        assert result.skipped == 5 and result.ran == 0
        _, again = runner.finalize()
        assert again == first


class TestPrepareGuards:
    def test_existing_checkpoint_needs_resume(self, tmp_path):
        complete(spec_ok(), tmp_path / "ck")
        runner = SweepRunner(spec_ok(), tmp_path / "ck")
        with pytest.raises(SweepConfigError, match="resume"):
            runner.prepare()

    def test_checkpoint_of_different_sweep_rejected(self, tmp_path):
        complete(spec_ok(), tmp_path / "ck")
        other = spec_ok(n=7)
        runner = SweepRunner(other, tmp_path / "ck")
        with pytest.raises(SweepConfigError, match="different sweep"):
            runner.prepare(resume=True)

    def test_finalize_requires_completion(self, tmp_path):
        runner = SweepRunner(spec_ok(), tmp_path / "ck")
        runner.prepare()
        with pytest.raises(SweepError, match="incomplete"):
            runner.finalize()

    def test_run_requires_prepare(self, tmp_path):
        runner = SweepRunner(spec_ok(), tmp_path / "ck")
        with pytest.raises(SweepError, match="prepare"):
            runner.run()


class TestKillAtEveryBoundary:
    def test_interrupt_resume_chain_is_byte_identical(
            self, tmp_path, reference_sha):
        """Stop at checkpoint boundary k for every k, resuming each
        time; the final corpus must match an uninterrupted run."""
        checkpoint = tmp_path / "chain"
        for boundary in range(1, 6):
            runner = SweepRunner(spec_ok(), checkpoint, workers=2,
                                 stop_after_units=boundary)
            status = runner.prepare(resume=(boundary > 1))
            assert status.done == boundary - 1
            with pytest.raises(SweepInterrupted) as info:
                runner.run()
            assert info.value.exit_code == 143
        final = SweepRunner(spec_ok(), checkpoint)
        assert final.prepare(resume=True).pending == 0
        final.run()
        _, payload = final.finalize()
        assert payload["corpus_sha256"] == reference_sha


class TestWorkerSupervision:
    def test_sigkilled_workers_are_retried(self, tmp_path,
                                           reference_sha):
        plan = kill_plan(seed=5, n_units=5, kills=2)
        chaos = ProcessChaos(kill_units=plan)
        runner = SweepRunner(spec_ok(fn=unit_ok_slow), tmp_path / "ck",
                             workers=2, chaos=chaos)
        runner.prepare()
        result = runner.run()
        assert result.infra_retries == 2
        assert sum(chaos.kills_delivered.values()) == 2
        _, payload = runner.finalize()
        assert payload["corpus_sha256"] == reference_sha

    def test_poisoned_unit_escalates_to_serial(self, tmp_path,
                                               reference_sha):
        # Unit 3's worker dies on every attempt; past the retry budget
        # the runner runs it in-parent, where nothing shoots it.
        chaos = ProcessChaos(kill_units={3: 99})
        runner = SweepRunner(spec_ok(fn=unit_ok_slow), tmp_path / "ck",
                             workers=2, retries=1, chaos=chaos)
        runner.prepare()
        result = runner.run()
        assert result.escalations == 1
        assert result.infra_retries == 1
        _, payload = runner.finalize()
        assert payload["corpus_sha256"] == reference_sha

    def test_hung_unit_is_killed_and_retried(self, tmp_path):
        flags = tmp_path / "flags"
        flags.mkdir()
        spec = SweepSpec(
            name="hang-test",
            unit_fn=unit_slow_until_flagged,
            unit_params=({"index": 0, "flag_dir": str(flags)},),
            common={})
        runner = SweepRunner(spec, tmp_path / "ck", workers=1,
                             timeout_s=0.8, retries=2)
        runner.prepare()
        result = runner.run()
        assert result.infra_retries == 1
        assert result.ran == 1

    def test_fn_failures_get_derived_retry_seeds(self, tmp_path):
        spec = spec_ok(fn=unit_needs_retry_seed,
                       retry_seed_param="retry_seed")
        result_a, payload_a = complete(spec, tmp_path / "a", workers=2)
        assert result_a.fn_retries == 5
        # The derived seeds are a pure function of the unit keys, so a
        # rerun (any worker count) lands on identical bytes.
        _, payload_b = complete(spec, tmp_path / "b")
        assert payload_a == payload_b

    def test_units_failing_serially_raise_after_the_rest(
            self, tmp_path):
        spec = spec_ok(fn=unit_always_raises)
        runner = SweepRunner(spec, tmp_path / "ck", workers=2,
                             retries=0)
        runner.prepare()
        with pytest.raises(UnitFailedError, match="5 unit"):
            runner.run()
        # Nothing bogus was journaled: a resume still owes five units.
        again = SweepRunner(spec_ok(), tmp_path / "ck")
        assert again.prepare(resume=True).pending == 5

    def test_fallback_runs_inline_when_processes_unavailable(
            self, tmp_path, reference_sha, monkeypatch):
        def no_processes(fn, arg):
            raise OSError("no processes allowed here")

        monkeypatch.setattr("repro.orchestrator.runner.PendingCall",
                            no_processes)
        runner = SweepRunner(spec_ok(), tmp_path / "ck", workers=4)
        runner.prepare()
        with pytest.warns(ParallelFallbackWarning):
            result = runner.run()
        assert result.ran == 5
        _, payload = runner.finalize()
        assert payload["corpus_sha256"] == reference_sha


class TestTornWindows:
    def test_crash_between_publish_and_journal(self, tmp_path,
                                               reference_sha):
        chaos = ProcessChaos(crash_on_publish_of=2)
        runner = SweepRunner(spec_ok(), tmp_path / "ck", workers=1,
                             chaos=chaos)
        runner.prepare()
        with pytest.raises(SimulatedCrash):
            runner.run()
        # The group landed but was never journaled: indistinguishable
        # from "not done", so resume re-runs it and bytes still match.
        resumed = SweepRunner(spec_ok(), tmp_path / "ck", workers=2)
        status = resumed.prepare(resume=True)
        assert status.pending >= 1
        resumed.run()
        _, payload = resumed.finalize()
        assert payload["corpus_sha256"] == reference_sha

    def test_crash_at_checkpoint_boundary(self, tmp_path,
                                          reference_sha):
        chaos = ProcessChaos(crash_after_units=3)
        runner = SweepRunner(spec_ok(), tmp_path / "ck", workers=1,
                             chaos=chaos)
        runner.prepare()
        with pytest.raises(SimulatedCrash):
            runner.run()
        resumed = SweepRunner(spec_ok(), tmp_path / "ck")
        status = resumed.prepare(resume=True)
        assert status.done == 3
        resumed.run()
        _, payload = resumed.finalize()
        assert payload["corpus_sha256"] == reference_sha

    def test_corrupt_spooled_group_is_rerun(self, tmp_path,
                                            reference_sha):
        first = SweepRunner(spec_ok(), tmp_path / "ck")
        first.prepare()
        first.run()
        # Truncate one spooled unit's column file behind the journal's
        # back; the payload-sha check must catch it on resume.
        unit = first.manifest.units[1]
        column = (tmp_path / "ck" / "store" / unit.group /
                  "value.npy")
        column.write_bytes(column.read_bytes()[:16])
        resumed = SweepRunner(spec_ok(), tmp_path / "ck")
        status = resumed.prepare(resume=True)
        assert status.done == 4 and status.pending == 1
        resumed.run()
        _, payload = resumed.finalize()
        assert payload["corpus_sha256"] == reference_sha
