"""Unit tests for speed measurement and CDFs."""

import numpy as np
import pytest

from repro.motion import (
    LinearRail,
    cdf,
    generate_trace,
    measure_profile,
    measure_trace,
    percentile,
)
from repro.vrh import Pose


class TestMeasureProfile:
    def test_constant_speed_stroke(self):
        rail = LinearRail(axis=[1, 0, 0], length_m=0.4)
        profile = rail.stroke_profile(Pose.identity(), [0.2])
        series = measure_profile(profile, window_s=0.05)
        moving = series.linear_m_s[series.linear_m_s > 0.01]
        assert np.median(moving) == pytest.approx(0.2, rel=0.05)

    def test_angular_zero_for_pure_linear(self):
        rail = LinearRail(axis=[1, 0, 0])
        profile = rail.stroke_profile(Pose.identity(), [0.2])
        series = measure_profile(profile, window_s=0.05)
        assert series.angular_rad_s.max() == pytest.approx(0.0, abs=1e-9)

    def test_window_validation(self):
        rail = LinearRail(axis=[1, 0, 0])
        profile = rail.stroke_profile(Pose.identity(), [0.2])
        with pytest.raises(ValueError):
            measure_profile(profile, window_s=0.0)
        with pytest.raises(ValueError):
            measure_profile(profile, window_s=10.0, duration_s=1.0)

    def test_times_are_window_centers(self):
        rail = LinearRail(axis=[1, 0, 0])
        profile = rail.stroke_profile(Pose.identity(), [0.4])
        series = measure_profile(profile, window_s=0.1, duration_s=1.0)
        assert series.times_s[0] == pytest.approx(0.05)


class TestMeasureTrace:
    def test_window_aggregation(self):
        trace = generate_trace(0, 0, duration_s=10.0)
        series = measure_trace(trace, window_s=0.05)
        # 10 s / 50 ms = 200 windows.
        assert len(series.linear_m_s) == 200

    def test_deg_conversion(self):
        trace = generate_trace(0, 0, duration_s=5.0)
        series = measure_trace(trace)
        assert np.allclose(series.angular_deg_s,
                           np.degrees(series.angular_rad_s))

    def test_too_short_trace_rejected(self):
        trace = generate_trace(0, 0, duration_s=0.02)
        with pytest.raises(ValueError):
            measure_trace(trace, window_s=1.0)


class TestCdf:
    def test_sorted_output(self):
        values, fractions = cdf([3.0, 1.0, 2.0])
        assert list(values) == [1.0, 2.0, 3.0]
        assert fractions[-1] == pytest.approx(1.0)

    def test_fractions_monotone(self):
        _, fractions = cdf(np.random.default_rng(0).normal(size=100))
        assert np.all(np.diff(fractions) > 0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf([])

    def test_percentile(self):
        assert percentile(range(101), 95) == pytest.approx(95.0)
