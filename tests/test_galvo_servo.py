"""Tests for the second-order galvo servo model."""

import math

import numpy as np
import pytest

from repro import constants
from repro.galvo import GVS102
from repro.galvo.servo import SMALL_STEP_RAD, ServoModel


@pytest.fixture()
def servo():
    return ServoModel.calibrated()


class TestCalibration:
    def test_small_step_settles_in_datasheet_time(self, servo):
        t = servo.settle_time_s(SMALL_STEP_RAD)
        assert t == pytest.approx(constants.GM_SMALL_ANGLE_LATENCY_S,
                                  rel=1e-3)

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            ServoModel(natural_frequency_rad_s=0.0)
        with pytest.raises(ValueError):
            ServoModel(natural_frequency_rad_s=1e4, accuracy_rad=0.0)


class TestStepResponse:
    def test_starts_at_start(self, servo):
        assert servo.angle_at(0.0, 0.1, 0.2) == pytest.approx(0.1)

    def test_converges_to_target(self, servo):
        assert servo.angle_at(5e-3, 0.1, 0.2) == pytest.approx(0.2,
                                                               abs=1e-9)

    def test_no_overshoot(self, servo):
        # Critically damped: the trajectory is monotone.
        times = np.linspace(0, 2e-3, 200)
        angles = [servo.angle_at(float(t), 0.0, 0.01) for t in times]
        assert all(b >= a - 1e-15 for a, b in zip(angles, angles[1:]))
        assert max(angles) <= 0.01 + 1e-12

    def test_downward_step_symmetric(self, servo):
        up = servo.angle_at(1e-4, 0.0, 0.01)
        down = servo.angle_at(1e-4, 0.01, 0.0)
        assert up == pytest.approx(0.01 - down)

    def test_rejects_negative_time(self, servo):
        with pytest.raises(ValueError):
            servo.angle_at(-1.0, 0.0, 0.1)


class TestSettleTime:
    def test_zero_for_subresolution_step(self, servo):
        assert servo.settle_time_s(1e-6) == 0.0

    def test_grows_with_step(self, servo):
        small = servo.settle_time_s(math.radians(0.2))
        large = servo.settle_time_s(math.radians(5.0))
        assert large > small

    def test_growth_is_logarithmic_not_linear(self, servo):
        # A 25x bigger step costs far less than 25x the time.
        small = servo.settle_time_s(math.radians(0.2))
        large = servo.settle_time_s(math.radians(5.0))
        assert large < 3 * small

    def test_consistent_with_error_at(self, servo):
        step = math.radians(2.0)
        t = servo.settle_time_s(step)
        assert servo.error_at(t, step) == pytest.approx(
            servo.accuracy_rad, rel=1e-3)
        assert servo.error_at(t * 0.5, step) > servo.accuracy_rad

    def test_same_ballpark_as_spec_scaling(self, servo):
        # The coarse spec-level model and the servo model agree within
        # a small factor over the working range.
        for deg in (0.2, 0.5, 1.0, 3.0):
            step = math.radians(deg)
            coarse = GVS102.settle_time_s(step)
            fine = servo.settle_time_s(step)
            assert fine == pytest.approx(coarse, rel=1.5)


class TestErrorAt:
    def test_initial_error_is_step(self, servo):
        assert servo.error_at(0.0, 0.01) == pytest.approx(0.01)

    def test_decays_monotonically(self, servo):
        errors = [servo.error_at(t, 0.01)
                  for t in np.linspace(0, 1e-3, 50)]
        assert all(b <= a for a, b in zip(errors, errors[1:]))
