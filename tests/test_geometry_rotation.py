"""Unit tests for repro.geometry.rotation."""

import numpy as np
import pytest

from repro.geometry import (
    euler_to_matrix,
    is_rotation_matrix,
    matrix_to_axis_angle,
    matrix_to_euler,
    rotate,
    rotation_angle,
    rotation_between,
    rotation_matrix,
)


class TestRotationMatrix:
    def test_identity_at_zero_angle(self):
        assert np.allclose(rotation_matrix([0, 0, 1], 0.0), np.eye(3))

    def test_quarter_turn_about_z(self):
        r = rotation_matrix([0, 0, 1], np.pi / 2)
        assert np.allclose(r @ [1, 0, 0], [0, 1, 0], atol=1e-12)

    def test_is_proper_rotation(self):
        r = rotation_matrix([1, 2, 3], 0.7)
        assert is_rotation_matrix(r)

    def test_axis_is_invariant(self):
        axis = np.array([1.0, -1.0, 0.5])
        r = rotation_matrix(axis, 1.1)
        unit = axis / np.linalg.norm(axis)
        assert np.allclose(r @ unit, unit)

    def test_composition_adds_angles(self):
        axis = [0.0, 1.0, 0.0]
        combined = rotation_matrix(axis, 0.3) @ rotation_matrix(axis, 0.4)
        assert np.allclose(combined, rotation_matrix(axis, 0.7))

    def test_normalizes_axis(self):
        assert np.allclose(rotation_matrix([0, 0, 10], 0.5),
                           rotation_matrix([0, 0, 1], 0.5))

    def test_rotate_helper(self):
        assert np.allclose(rotate([1, 0, 0], np.pi, [0, 1, 0]),
                           [0, -1, 0], atol=1e-12)


class TestEuler:
    def test_zero_angles_give_identity(self):
        assert np.allclose(euler_to_matrix(0, 0, 0), np.eye(3))

    def test_round_trip(self):
        for angles in [(0.1, -0.2, 0.3), (1.0, 0.5, -2.0),
                       (-0.7, 1.2, 0.05)]:
            m = euler_to_matrix(*angles)
            recovered = matrix_to_euler(m)
            assert np.allclose(recovered, angles, atol=1e-10)

    def test_pure_yaw(self):
        m = euler_to_matrix(0, 0, np.pi / 2)
        assert np.allclose(m @ [1, 0, 0], [0, 1, 0], atol=1e-12)

    def test_matrix_to_euler_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            matrix_to_euler(np.eye(4))

    def test_gimbal_lock_still_reconstructs(self):
        m = euler_to_matrix(0.4, np.pi / 2, 0.2)
        roll, pitch, yaw = matrix_to_euler(m)
        rebuilt = euler_to_matrix(roll, pitch, yaw)
        assert np.allclose(rebuilt, m, atol=1e-6)


class TestRotationAngle:
    def test_identity_is_zero(self):
        assert rotation_angle(np.eye(3)) == pytest.approx(0.0)

    def test_known_angle(self):
        r = rotation_matrix([0, 1, 0], 0.42)
        assert rotation_angle(r) == pytest.approx(0.42)

    def test_angle_is_axis_independent(self):
        a = rotation_angle(rotation_matrix([1, 0, 0], 0.9))
        b = rotation_angle(rotation_matrix([0.5, 0.5, 0.7], 0.9))
        assert a == pytest.approx(b)


class TestAxisAngle:
    def test_round_trip(self):
        axis = np.array([0.0, 0.6, 0.8])
        m = rotation_matrix(axis, 0.77)
        recovered_axis, angle = matrix_to_axis_angle(m)
        assert angle == pytest.approx(0.77)
        assert np.allclose(recovered_axis, axis, atol=1e-9)

    def test_identity_case(self):
        _, angle = matrix_to_axis_angle(np.eye(3))
        assert angle == 0.0

    def test_near_pi(self):
        axis = np.array([1.0, 0.0, 0.0])
        m = rotation_matrix(axis, np.pi - 1e-8)
        recovered_axis, angle = matrix_to_axis_angle(m)
        assert angle == pytest.approx(np.pi, abs=1e-6)
        assert abs(abs(recovered_axis[0]) - 1.0) < 1e-5


class TestRotationBetween:
    def test_maps_from_to(self):
        r = rotation_between([1, 0, 0], [0, 0, 1])
        assert np.allclose(r @ [1, 0, 0], [0, 0, 1], atol=1e-12)

    def test_parallel_gives_identity(self):
        assert np.allclose(rotation_between([0, 2, 0], [0, 5, 0]),
                           np.eye(3))

    def test_antiparallel_still_maps(self):
        r = rotation_between([0, 0, 1], [0, 0, -1])
        assert np.allclose(r @ [0, 0, 1], [0, 0, -1], atol=1e-9)
        assert is_rotation_matrix(r)

    def test_arbitrary_pairs(self, rng):
        for _ in range(10):
            a = rng.normal(size=3)
            b = rng.normal(size=3)
            r = rotation_between(a, b)
            assert is_rotation_matrix(r)
            mapped = r @ (a / np.linalg.norm(a))
            assert np.allclose(mapped, b / np.linalg.norm(b), atol=1e-9)


class TestIsRotationMatrix:
    def test_accepts_rotations(self):
        assert is_rotation_matrix(rotation_matrix([1, 1, 1], 2.0))

    def test_rejects_reflection(self):
        reflection = np.diag([1.0, 1.0, -1.0])
        assert not is_rotation_matrix(reflection)

    def test_rejects_scaled(self):
        assert not is_rotation_matrix(2.0 * np.eye(3))

    def test_rejects_non_square(self):
        assert not is_rotation_matrix(np.ones((2, 3)))
