"""Integration tests for the learning pipeline (Sections 4.1-4.3).

These run against the session-scoped calibrated testbed and verify the
paper's headline algorithmic claims: calibration accuracy in the
Table 2 regime, pointing convergence in 2-5 iterations, and TP accuracy
good enough to keep the link at optimal power (Section 5.2).
"""

import numpy as np
import pytest

from repro import constants
from repro.core import (
    BoardRig,
    evaluate_fit,
    interior_grid_points,
    mean_coincidence_error_m,
    point,
)
from repro.core.errors import beam_error_m, summarize
from repro.vrh import Pose


class TestKspaceCalibration:
    """Stage 1 (Section 4.1 / Table 2 rows 1-2)."""

    @pytest.fixture(scope="class")
    def holdout_errors(self, testbed, calibration):
        errors = {}
        centers = interior_grid_points()[:60] + np.array([0.0127, 0.0127])
        for name, hardware, model in (
                ("tx", testbed.tx_hardware, calibration.tx_kspace_model),
                ("rx", testbed.rx_hardware, calibration.rx_kspace_model)):
            rig = BoardRig(hardware, rng=np.random.default_rng(99))
            errors[name] = evaluate_fit(model, rig, centers)
        return errors

    def test_tx_stage1_error_in_table2_regime(self, holdout_errors):
        avg_mm = holdout_errors["tx"].mean() * 1e3
        assert 0.3 <= avg_mm <= 2.5  # paper: 1.24 mm

    def test_rx_stage1_error_in_table2_regime(self, holdout_errors):
        avg_mm = holdout_errors["rx"].mean() * 1e3
        assert 0.3 <= avg_mm <= 3.0  # paper: 1.90 mm

    def test_max_errors_bounded(self, holdout_errors):
        for errors in holdout_errors.values():
            assert errors.max() * 1e3 <= 6.0  # paper maxima: 5.3-5.4 mm

    def test_fit_beats_initial_cad_guess(self, testbed, calibration):
        # The fitted model must predict far better than the raw truth
        # evaluated with the linear voltage model... i.e. better than a
        # couple of millimeters on held-out points (checked above); and
        # its parameters must differ from the truth (it absorbed the
        # nonlinearity and warp into them).
        fitted = calibration.tx_kspace_model.params.to_vector()
        truth = testbed.tx_hardware.params.to_vector()
        assert not np.allclose(fitted, truth, atol=1e-12)


class TestMappingFit:
    """Stage 2 (Section 4.2)."""

    def test_training_residual_is_millimetric(self, calibration):
        residual = mean_coincidence_error_m(
            calibration.system, calibration.mapping_samples)
        # Sum of two point-pair distances; paper's combined errors are
        # 2.18 + 4.54 mm, so the residual should sit below ~12 mm.
        assert residual < 12e-3

    def test_generalizes_to_fresh_alignments(self, testbed, calibration):
        fresh = testbed.collect_mapping_samples(6)
        residual = mean_coincidence_error_m(calibration.system, fresh)
        assert residual < 15e-3

    def test_sample_count_matches_paper(self, calibration):
        assert len(calibration.mapping_samples) == \
            constants.MAPPING_TRAINING_SAMPLES


class TestCombinedErrors:
    """Table 2 rows 3-4: learned VR-space beams vs physical truth."""

    @pytest.fixture(scope="class")
    def combined(self, testbed, calibration):
        system = calibration.system
        vr = testbed.world_to_vr()
        tx_errors, rx_errors = [], []
        for pose in testbed.evaluation_poses(12):
            report = testbed.tracker.report(pose)
            rx_model = system.rx_model_vr(report)
            for v1, v2 in [(-1.0, 0.5), (0.8, -0.3), (2.0, 1.0)]:
                testbed.tx_hardware.apply(v1, v2)
                truth = vr.compose(testbed.tx_kspace_to_world).apply_ray(
                    testbed.tx_hardware.output_beam())
                predicted = system.tx_model_vr.beam(v1, v2)
                tx_errors.append(beam_error_m(predicted, truth, 1.75))

                testbed.rx_hardware.apply(v1, v2)
                rx_truth = vr.compose(
                    testbed.rx_assembly.kspace_to_world(pose)).apply_ray(
                        testbed.rx_hardware.output_beam())
                rx_pred = rx_model.beam(v1, v2)
                rx_errors.append(beam_error_m(rx_pred, rx_truth, 1.75))
        return (summarize("tx", tx_errors), summarize("rx", rx_errors))

    def test_tx_combined_millimetric(self, combined):
        tx, _ = combined
        assert 0.2 <= tx.average_mm <= 5.0  # paper: 2.18 mm

    def test_rx_combined_millimetric(self, combined):
        _, rx = combined
        assert 0.2 <= rx.average_mm <= 8.0  # paper: 4.54 mm

    def test_rx_error_exceeds_tx_error(self, combined):
        # The paper attributes the larger RX error to its pose-relative
        # placement; in our model the tracker noise plays that role.
        tx, rx = combined
        assert rx.average_mm > 0.8 * tx.average_mm


class TestPointing:
    """Section 4.3's pointing mechanism P."""

    def test_converges_in_paper_iterations(self, testbed, learned_system):
        for pose in testbed.evaluation_poses(6):
            command = point(learned_system, testbed.tracker.report(pose))
            assert 1 <= command.iterations <= 8  # paper: 2-5

    def test_keeps_link_connected(self, testbed, learned_system):
        connected = 0
        poses = testbed.evaluation_poses(10)
        for pose in poses:
            command = point(learned_system, testbed.tracker.report(pose))
            testbed.apply_command(command)
            if testbed.channel.evaluate(pose).connected:
                connected += 1
        assert connected == len(poses)  # paper: 10/10 optimal

    def test_power_within_few_db_of_peak(self, testbed, learned_system):
        # Section 5.2: received -13..-14 dBm vs -10 dBm peak.
        excesses = []
        for pose in testbed.evaluation_poses(10):
            command = point(learned_system, testbed.tracker.report(pose))
            testbed.apply_command(command)
            state = testbed.channel.evaluate(pose)
            peak = testbed.design.peak_power_dbm(state.range_m)
            excesses.append(peak - state.received_power_dbm)
        assert float(np.mean(excesses)) < 6.0

    def test_warm_seed_speeds_convergence(self, testbed, learned_system):
        pose = testbed.evaluation_poses(1)[0]
        report = testbed.tracker.report(pose)
        cold = point(learned_system, report)
        warm = point(learned_system, report,
                     initial=(cold.v_tx1, cold.v_tx2,
                              cold.v_rx1, cold.v_rx2))
        assert warm.iterations <= cold.iterations

    def test_command_voltages_in_range(self, testbed, learned_system):
        for pose in testbed.evaluation_poses(5):
            command = point(learned_system, testbed.tracker.report(pose))
            for v in (command.v_tx1, command.v_tx2,
                      command.v_rx1, command.v_rx2):
                assert abs(v) <= constants.GM_VOLTAGE_RANGE_V
