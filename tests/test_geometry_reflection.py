"""Unit tests for repro.geometry.reflection."""

import numpy as np
import pytest

from repro.geometry import (
    NoIntersectionError,
    Plane,
    Ray,
    angle_between,
    reflect_beam,
    reflect_direction,
    reflect_ray,
)


class TestReflectDirection:
    def test_normal_incidence_reverses(self):
        out = reflect_direction([0, 0, -1], [0, 0, 1])
        assert np.allclose(out, [0, 0, 1])

    def test_45_degree_turn(self):
        # The galvo geometry: beam along +x off a mirror at 45 degrees
        # turns to +y.
        out = reflect_direction([1, 0, 0], [-1, 1, 0])
        assert np.allclose(out, [0, 1, 0], atol=1e-12)

    def test_normal_sign_does_not_matter(self):
        a = reflect_direction([1, 0, 0], [-1, 1, 0])
        b = reflect_direction([1, 0, 0], [1, -1, 0])
        assert np.allclose(a, b)

    def test_preserves_length(self):
        out = reflect_direction([0.3, -0.5, 0.81], [0.2, 0.9, -0.1])
        assert np.linalg.norm(out) == pytest.approx(1.0)

    def test_grazing_incidence_nearly_unchanged(self):
        out = reflect_direction([1, 0, 1e-6], [0, 0, 1])
        assert np.allclose(out, [1, 0, -1e-6], atol=1e-9)

    def test_angle_of_incidence_equals_reflection(self, rng):
        normal = np.array([0.0, 0.0, 1.0])
        for _ in range(5):
            d = rng.normal(size=3)
            d[2] = -abs(d[2]) - 0.1  # heading into the mirror
            out = reflect_direction(d, normal)
            incoming = angle_between(-np.asarray(d), normal)
            outgoing = angle_between(out, normal)
            assert incoming == pytest.approx(outgoing, abs=1e-9)


class TestReflectRay:
    def test_origin_is_strike_point(self):
        mirror = Plane([0, 0, 1], [0, 0, 1])
        ray = Ray([0, 0, 0], [0, 0, 1])
        out = reflect_ray(ray, mirror)
        assert np.allclose(out.origin, [0, 0, 1])

    def test_misses_raise(self):
        mirror = Plane([0, 0, -1], [0, 0, 1])
        ray = Ray([0, 0, 0], [0, 0, 1])
        with pytest.raises(NoIntersectionError):
            reflect_ray(ray, mirror)

    def test_backwards_allowed_with_flag(self):
        mirror = Plane([0, 0, -1], [0, 0, 1])
        ray = Ray([0, 0, 0], [0, 0, 1])
        out = reflect_ray(ray, mirror, forward_only=False)
        assert np.allclose(out.origin, [0, 0, -1])

    def test_double_reflection_recovers_direction(self):
        # Two parallel mirrors: the beam exits parallel to how it came.
        m1 = Plane([0, 0, 1], [0, 1, 1])
        m2 = Plane([0, 5, 1], [0, 1, 1])
        ray = Ray([0, 0, 0], [0, 0, 1])
        once = reflect_ray(ray, m1)
        twice = reflect_ray(once, m2, forward_only=False)
        assert np.allclose(np.abs(twice.direction), [0, 0, 1], atol=1e-12)


class TestReflectBeam:
    def test_matches_reflect_ray(self):
        p, x = reflect_beam([0, 0, 0], [0, 0, 1], [0, 0.3, 1], [0, 0, 2])
        out = reflect_ray(Ray([0, 0, 0], [0, 0, 1]),
                          Plane([0, 0, 2], [0, 0.3, 1]))
        assert np.allclose(p, out.origin)
        assert np.allclose(x, out.direction)
