"""The sweep catalogue: specs are well-formed, demo runs end to end."""

import numpy as np
import pytest

from repro.orchestrator import SweepRunner, build_sweep, list_kinds
from repro.orchestrator.sweeps import _demo_unit


class TestCatalogue:
    def test_kinds_listed(self):
        assert list_kinds() == ["demo", "calibration", "chaos"]

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError, match="available"):
            build_sweep("frobnicate", seed=1)

    def test_demo_spec_shape(self):
        spec = build_sweep("demo", seed=9, units=3, work=100)
        assert spec.name == "demo"
        assert len(spec.unit_params) == 3
        assert spec.unit_params[1] == {"seed": 9, "index": 1,
                                      "work": 100, "sleep_s": 0.0}

    def test_calibration_spec_enumerates_worlds(self):
        spec = build_sweep("calibration", seed=20, units=4, trials=6)
        seeds = [p["seed"] for p in spec.unit_params]
        assert seeds == [20, 21, 22, 23]
        assert all(p["trials"] == 6 for p in spec.unit_params)

    def test_chaos_spec_covers_named_scenarios(self):
        spec = build_sweep("chaos", seed=0,
                           scenarios=["blockage", "drift-remap"])
        assert [p["scenario"] for p in spec.unit_params] == \
            ["blockage", "drift-remap"]
        with pytest.raises(KeyError):
            build_sweep("chaos", seed=0, scenarios=["nope"])

    def test_units_must_be_positive(self):
        with pytest.raises(ValueError):
            build_sweep("demo", seed=1, units=0)


class TestDemoUnits:
    def test_unit_is_deterministic_in_params(self):
        params = {"seed": 5, "index": 2, "work": 256}
        assert _demo_unit(params) == _demo_unit(dict(params))

    def test_distinct_units_draw_distinct_streams(self):
        rows = [_demo_unit({"seed": 5, "index": i, "work": 256})
                for i in range(3)]
        assert len({row["mean"] for row in rows}) == 3

    def test_demo_sweep_end_to_end(self, tmp_path):
        spec = build_sweep("demo", seed=3, units=4, work=64)
        runner = SweepRunner(spec, tmp_path / "ck", workers=2)
        runner.prepare()
        runner.run()
        group, payload = runner.finalize()
        assert np.array_equal(np.asarray(group["index"]).ravel(),
                              np.arange(4))
        assert payload["sweep"] == "demo"
        assert set(payload["columns"]) == {"index", "mean", "rms"}
