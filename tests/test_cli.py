"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.width == 3.0
        assert args.coverage == 0.95

    def test_calibrate_options(self):
        args = build_parser().parse_args(
            ["calibrate", "--seed", "11", "--trials", "5"])
        assert args.seed == 11
        assert args.trials == 5

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.viewers == 10
        assert args.workers == 0  # 0 = auto (max(2, default_workers()))
        assert not args.quick
        assert args.require_batch_speedup is None
        assert args.output == "BENCH_trace_pipeline.json"

    def test_bench_options(self):
        args = build_parser().parse_args(
            ["bench", "--workers", "4", "--duration", "5.0",
             "--output", "/tmp/b.json"])
        assert args.workers == 4
        assert args.duration == 5.0
        assert args.output == "/tmp/b.json"

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.scenarios is None
        assert args.workers == 1
        assert args.output == "BENCH_chaos.json"

    def test_chaos_options(self):
        args = build_parser().parse_args(
            ["chaos", "--scenarios", "drift-remap,blockage",
             "--workers", "2", "--output", "/tmp/c.json"])
        assert args.scenarios == "drift-remap,blockage"
        assert args.workers == 2


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "collimated" in out
        assert "diverging" in out

    def test_fig11(self, capsys):
        assert main(["fig11"]) == 0
        out = capsys.readouterr().out
        assert "beam at RX" in out
        assert "16" in out

    def test_formats(self, capsys):
        assert main(["formats"]) == 0
        out = capsys.readouterr().out
        assert "life-like" in out
        assert "fits 25G" in out

    def test_safety(self, capsys):
        assert main(["safety"]) == 0
        out = capsys.readouterr().out
        assert "hazard" in out

    def test_plan(self, capsys):
        assert main(["plan", "--width", "1.5", "--depth", "1.5",
                     "--coverage", "0.8"]) == 0
        out = capsys.readouterr().out
        assert "TXs" in out
        assert "TX 0" in out

    def test_traces_small(self, capsys):
        assert main(["traces", "--viewers", "2", "--videos", "2"]) == 0
        out = capsys.readouterr().out
        assert "availability" in out

    def test_calibrate_small(self, capsys):
        assert main(["calibrate", "--seed", "3", "--trials", "3"]) == 0
        out = capsys.readouterr().out
        assert "realign trials at optimal: 3/3" in out

    def test_bench_small(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_trace_pipeline.json"
        assert main(["bench", "--viewers", "1", "--videos", "1",
                     "--duration", "2.0", "--ref-traces", "1",
                     "--output", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert out_path.exists()


class TestScenarioCommands:
    def test_scenarios_listing(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "fig16" in out

    def test_scenario_quick_run(self, capsys):
        assert main(["scenario", "thresholds"]) == 0
        out = capsys.readouterr().out
        assert "linear_limit_cm_s" in out
        assert "pytest" in out  # points at the full bench

    def test_scenario_unknown_id(self, capsys):
        assert main(["scenario", "fig99"]) == 2
        out = capsys.readouterr().out
        assert "available" in out

    def test_chaos_unknown_scenario(self, capsys):
        assert main(["chaos", "--scenarios", "no-such"]) == 2
        out = capsys.readouterr().out
        assert "available" in out


class TestSweepParser:
    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "--checkpoint", "ck"])
        assert args.kind == "demo"
        assert args.resume is False
        assert args.workers == 1
        assert args.timeout_s is None
        assert args.retries == 2
        assert args.group == "corpus"
        assert args.output is None

    def test_sweep_options(self):
        args = build_parser().parse_args(
            ["sweep", "--checkpoint", "ck", "--kind", "chaos",
             "--resume", "--workers", "4", "--timeout-s", "30",
             "--scenarios", "blockage", "--output", "out.json"])
        assert args.kind == "chaos"
        assert args.resume is True
        assert args.timeout_s == 30.0
        assert args.scenarios == "blockage"

    def test_sweep_requires_checkpoint(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])


class TestSweepCommand:
    def sweep_args(self, tmp_path, extra=()):
        return ["sweep", "--kind", "demo", "--units", "3",
                "--work", "64", "--checkpoint",
                str(tmp_path / "ck"), "--output",
                str(tmp_path / "out.json")] + list(extra)

    def test_sweep_end_to_end(self, capsys, tmp_path):
        assert main(self.sweep_args(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "3 units" in out
        assert "corpus" in out
        assert (tmp_path / "out.json").exists()
        # Atomic publication: no stray tmp siblings survive.
        assert list(tmp_path.glob("*.tmp")) == []

    def test_sweep_unknown_kind_exits_2(self, capsys, tmp_path):
        assert main(["sweep", "--kind", "nope", "--checkpoint",
                     str(tmp_path / "ck")]) == 2
        assert "available kinds" in capsys.readouterr().out

    def test_sweep_refuses_checkpoint_reuse_without_resume(
            self, capsys, tmp_path):
        assert main(self.sweep_args(tmp_path)) == 0
        assert main(self.sweep_args(tmp_path)) == 2
        assert "resume" in capsys.readouterr().out

    def test_sweep_resume_reruns_nothing(self, capsys, tmp_path):
        assert main(self.sweep_args(tmp_path)) == 0
        first = (tmp_path / "out.json").read_bytes()
        assert main(self.sweep_args(tmp_path, ["--resume"])) == 0
        out = capsys.readouterr().out
        assert "3 already checkpointed" in out
        assert (tmp_path / "out.json").read_bytes() == first


class TestSignalGuard:
    def test_first_signal_defers_to_check(self):
        import os
        import signal as signal_module

        from repro.orchestrator import SignalGuard, SweepInterrupted
        with SignalGuard() as guard:
            os.kill(os.getpid(), signal_module.SIGINT)
            assert guard.triggered == signal_module.SIGINT
            assert guard.exit_code == 130
            with pytest.raises(SweepInterrupted) as info:
                guard.check()
            assert info.value.exit_code == 130

    def test_second_signal_escalates(self):
        import os
        import signal as signal_module

        from repro.orchestrator import SignalGuard
        with SignalGuard() as guard:
            os.kill(os.getpid(), signal_module.SIGINT)
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal_module.SIGINT)
        assert guard.triggered == signal_module.SIGINT

    def test_handlers_restored_on_exit(self):
        import signal as signal_module

        from repro.orchestrator import SignalGuard
        before = signal_module.getsignal(signal_module.SIGTERM)
        with SignalGuard():
            assert signal_module.getsignal(
                signal_module.SIGTERM) != before
        assert signal_module.getsignal(signal_module.SIGTERM) is before


class TestExitCodeContract:
    """main()'s exception→exit-code backstop, per subcommand.

    The documented contract: 0 ok, 1 failed work (units, store,
    coverage), 2 bad configuration or usage, 128+signum when
    interrupted (130 SIGINT, 143 SIGTERM).  Each subcommand's handler
    is stubbed to escape one taxonomy exception; the ladder in
    ``main()`` must map it, never surface a traceback.
    """

    COMMANDS = [
        ("_cmd_table1", ["table1"]),
        ("_cmd_fig11", ["fig11"]),
        ("_cmd_calibrate", ["calibrate"]),
        ("_cmd_traces", ["traces"]),
        ("_cmd_safety", ["safety"]),
        ("_cmd_plan", ["plan"]),
        ("_cmd_formats", ["formats"]),
        ("_cmd_bench", ["bench"]),
        ("_cmd_chaos", ["chaos"]),
        ("_cmd_sweep", ["sweep", "--checkpoint", "ck"]),
        ("_cmd_lint", ["lint"]),
        ("_cmd_analyze", ["analyze"]),
        ("_cmd_scenarios", ["scenarios"]),
        ("_cmd_scenario", ["scenario", "s1"]),
    ]

    def escapes():
        import signal as signal_module

        from repro.galvo import CoverageError
        from repro.orchestrator import (
            ManifestError,
            SweepConfigError,
            SweepError,
            SweepInterrupted,
            UnitFailedError,
            WorkUnit,
        )
        from repro.store import StoreError
        unit = WorkUnit(index=0, key="deadbeef" * 8, params={})
        return [
            (SweepConfigError("bad spec"), 2),
            (ManifestError("manifest mismatch"), 2),
            (UnitFailedError([(unit, "unit died")]), 1),
            (SweepError("sweep broke"), 1),
            (StoreError("group torn"), 1),
            (CoverageError("cone not covered"), 1),
            (SweepInterrupted(signal_module.SIGINT), 130),
            (SweepInterrupted(signal_module.SIGTERM), 143),
            (KeyboardInterrupt(), 130),
        ]

    @pytest.mark.parametrize("handler,argv", COMMANDS)
    @pytest.mark.parametrize(
        "exc,expected",
        escapes(),
        ids=lambda case: getattr(type(case), "__name__", str(case)))
    def test_escape_maps_to_documented_code(self, monkeypatch, capsys,
                                            handler, argv, exc,
                                            expected):
        import repro.cli as cli

        def boom(args):
            raise exc

        monkeypatch.setattr(cli, handler, boom)
        assert main(argv) == expected
        capsys.readouterr()  # the message, not a traceback


class TestSweepExitCodes:
    """The sweep paths behind the documented 1 and 2 codes."""

    def sweep_args(self, tmp_path):
        return ["sweep", "--kind", "demo", "--units", "2",
                "--work", "64", "--checkpoint", str(tmp_path / "ck"),
                "--output", str(tmp_path / "out.json")]

    def test_unit_failures_exit_1(self, monkeypatch, capsys,
                                  tmp_path):
        from repro.orchestrator import UnitFailedError, WorkUnit
        from repro.orchestrator.runner import SweepRunner

        def failing_run(self):
            unit = WorkUnit(index=0, key="deadbeef" * 8, params={})
            raise UnitFailedError([(unit, "worker crashed")])

        monkeypatch.setattr(SweepRunner, "run", failing_run)
        assert main(self.sweep_args(tmp_path)) == 1
        assert "failed" in capsys.readouterr().out

    def test_config_errors_exit_2(self, monkeypatch, capsys,
                                  tmp_path):
        from repro.orchestrator import SweepConfigError
        from repro.orchestrator.runner import SweepRunner

        def bad_prepare(self, resume=False):
            raise SweepConfigError("checkpoint spec mismatch")

        monkeypatch.setattr(SweepRunner, "prepare", bad_prepare)
        assert main(self.sweep_args(tmp_path)) == 2
        assert "mismatch" in capsys.readouterr().out
