"""Unit tests for the SFP link-state machine (re-lock behaviour)."""

import pytest

from repro.link import LinkStateMachine
from repro.optics import SFP_10G_ZR

GOOD = -10.0   # comfortably above the -25 dBm sensitivity
BAD = -40.0    # below sensitivity


def machine(initially_up=True):
    return LinkStateMachine(SFP_10G_ZR, initially_up=initially_up)


class TestBasicTransitions:
    def test_starts_up(self):
        assert machine().link_up

    def test_starts_down_when_asked(self):
        assert not machine(initially_up=False).link_up

    def test_stays_up_with_signal(self):
        m = machine()
        for t in range(10):
            assert m.observe(t * 0.001, GOOD)

    def test_drops_immediately_on_loss(self):
        m = machine()
        assert not m.observe(0.001, BAD)

    def test_throughput_follows_state(self):
        m = machine()
        m.observe(0.0, GOOD)
        assert m.throughput_gbps() == pytest.approx(9.4)
        m.observe(0.001, BAD)
        assert m.throughput_gbps() == 0.0


class TestRelock:
    def test_no_instant_recovery(self):
        m = machine()
        m.observe(0.0, BAD)
        assert not m.observe(0.001, GOOD)

    def test_recovers_after_relock_delay(self):
        m = machine()
        m.observe(0.0, BAD)
        m.observe(0.001, GOOD)
        relock = SFP_10G_ZR.relock_delay_s
        assert not m.observe(0.001 + relock * 0.9, GOOD)
        assert m.observe(0.001 + relock * 1.1, GOOD)

    def test_flapping_signal_restarts_relock(self):
        m = machine()
        m.observe(0.0, BAD)
        m.observe(0.5, GOOD)
        m.observe(1.0, BAD)       # lost again mid-relock
        m.observe(1.5, GOOD)
        relock = SFP_10G_ZR.relock_delay_s
        # Only continuous presence since t=1.5 counts.
        assert not m.observe(1.5 + relock * 0.9, GOOD)
        assert m.observe(1.5 + relock * 1.1, GOOD)

    def test_initially_down_needs_relock_too(self):
        m = machine(initially_up=False)
        m.observe(0.0, GOOD)
        relock = SFP_10G_ZR.relock_delay_s
        assert not m.observe(relock * 0.5, GOOD)
        assert m.observe(relock * 1.5, GOOD)


class TestOrdering:
    def test_rejects_time_travel(self):
        m = machine()
        m.observe(1.0, GOOD)
        with pytest.raises(ValueError):
            m.observe(0.5, GOOD)

    def test_equal_times_allowed(self):
        m = machine()
        m.observe(1.0, GOOD)
        assert m.observe(1.0, GOOD)
