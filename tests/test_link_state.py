"""Unit tests for the SFP link-state machine (re-lock behaviour)."""

import pytest

from repro.link import LinkStateMachine
from repro.optics import SFP_10G_ZR

GOOD = -10.0   # comfortably above the -25 dBm sensitivity
BAD = -40.0    # below sensitivity


def machine(initially_up=True):
    return LinkStateMachine(SFP_10G_ZR, initially_up=initially_up)


class TestBasicTransitions:
    def test_starts_up(self):
        assert machine().link_up

    def test_starts_down_when_asked(self):
        assert not machine(initially_up=False).link_up

    def test_stays_up_with_signal(self):
        m = machine()
        for t in range(10):
            assert m.observe(t * 0.001, GOOD)

    def test_drops_immediately_on_loss(self):
        m = machine()
        assert not m.observe(0.001, BAD)

    def test_throughput_follows_state(self):
        m = machine()
        m.observe(0.0, GOOD)
        assert m.throughput_gbps() == pytest.approx(9.4)
        m.observe(0.001, BAD)
        assert m.throughput_gbps() == 0.0


class TestRelock:
    def test_no_instant_recovery(self):
        m = machine()
        m.observe(0.0, BAD)
        assert not m.observe(0.001, GOOD)

    def test_recovers_after_relock_delay(self):
        m = machine()
        m.observe(0.0, BAD)
        m.observe(0.001, GOOD)
        relock = SFP_10G_ZR.relock_delay_s
        assert not m.observe(0.001 + relock * 0.9, GOOD)
        assert m.observe(0.001 + relock * 1.1, GOOD)

    def test_flapping_signal_restarts_relock(self):
        m = machine()
        m.observe(0.0, BAD)
        m.observe(0.5, GOOD)
        m.observe(1.0, BAD)       # lost again mid-relock
        m.observe(1.5, GOOD)
        relock = SFP_10G_ZR.relock_delay_s
        # Only continuous presence since t=1.5 counts.
        assert not m.observe(1.5 + relock * 0.9, GOOD)
        assert m.observe(1.5 + relock * 1.1, GOOD)

    def test_initially_down_needs_relock_too(self):
        m = machine(initially_up=False)
        m.observe(0.0, GOOD)
        relock = SFP_10G_ZR.relock_delay_s
        assert not m.observe(relock * 0.5, GOOD)
        assert m.observe(relock * 1.5, GOOD)


class TestRapidFlapping:
    """Sub-re-lock blips: every blip restarts the timer from zero."""

    def test_each_blip_restarts_the_relock_clock(self):
        m = machine()
        relock = SFP_10G_ZR.relock_delay_s
        m.observe(0.0, BAD)
        t = 0.0
        # Signal blips out every relock/2 before the timer can run
        # out: the link must never come back up in between.
        for i in range(1, 9):
            t = i * relock / 2
            power = BAD if i % 2 == 0 else GOOD
            assert not m.observe(t, power)
        # Continuous presence for a full delay finally relocks.
        assert not m.observe(t + 0.1, GOOD)
        assert m.observe(t + 0.1 + relock, GOOD)

    def test_relock_remaining_tracks_the_blips(self):
        m = machine()
        relock = SFP_10G_ZR.relock_delay_s
        m.observe(0.0, BAD)
        assert m.relock_remaining_s(0.0) == pytest.approx(relock)
        m.observe(1.0, GOOD)
        assert m.relock_remaining_s(1.0 + relock / 2) == \
            pytest.approx(relock / 2)
        m.observe(2.0, BAD)   # blip: back to the full delay
        assert m.relock_remaining_s(2.0) == pytest.approx(relock)
        m.observe(2.5, GOOD)
        assert m.relock_remaining_s(2.5) == pytest.approx(relock)
        assert m.relock_remaining_s(2.5 + relock) == 0.0

    def test_signal_present_vs_link_up(self):
        m = machine()
        m.observe(0.0, BAD)
        assert not m.signal_present
        m.observe(0.001, GOOD)
        assert m.signal_present and not m.link_up

    def test_relock_remaining_zero_when_up(self):
        m = machine()
        m.observe(0.0, GOOD)
        assert m.relock_remaining_s(0.5) == 0.0


class TestUptimeAccounting:
    """Time-weighted availability stays consistent under flapping."""

    def test_interval_carries_previous_state(self):
        m = machine()
        m.observe(0.0, GOOD)
        m.observe(1.0, BAD)    # (0, 1] was up
        m.observe(3.0, GOOD)   # (1, 3] was down
        assert m.up_time_s == pytest.approx(1.0)
        assert m.observed_s == pytest.approx(3.0)
        assert m.uptime_fraction == pytest.approx(1.0 / 3.0)

    def test_first_sample_spans_nothing(self):
        m = machine()
        m.observe(5.0, GOOD)
        assert m.observed_s == 0.0
        assert m.uptime_fraction == 1.0

    def test_rapid_flapping_sums_exactly(self):
        m = machine()
        relock = SFP_10G_ZR.relock_delay_s
        dt = 0.001
        steps = int(relock * 4 / dt)
        for i in range(steps + 1):
            # 100 ms dark every second for the first half: the link
            # drops each time; the clean tail finally relocks.
            t = i * dt
            dark = (t % 1.0) < 0.1 and t < relock * 2
            m.observe(t, BAD if dark else GOOD)
        assert m.link_up  # the clean tail exceeded the re-lock delay
        assert m.observed_s == pytest.approx(steps * dt)
        assert 0.0 < m.up_time_s < m.observed_s
        assert m.uptime_fraction == pytest.approx(
            m.up_time_s / m.observed_s)

    def test_up_fraction_matches_per_sample_mean(self):
        """Each interval (t_{i-1}, t_i] carries the state the machine
        was in when it started -- the return value of observe i-1."""
        m = machine()
        dt = 0.001
        returns = []
        for i in range(2001):
            power = BAD if 500 <= i < 700 else GOOD
            returns.append(m.observe(i * dt, power))
        mean = sum(returns[:-1]) / len(returns[:-1])
        assert m.uptime_fraction == pytest.approx(mean)


class TestOrdering:
    def test_rejects_time_travel(self):
        m = machine()
        m.observe(1.0, GOOD)
        with pytest.raises(ValueError):
            m.observe(0.5, GOOD)

    def test_equal_times_allowed(self):
        m = machine()
        m.observe(1.0, GOOD)
        assert m.observe(1.0, GOOD)
