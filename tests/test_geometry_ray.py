"""Unit tests for repro.geometry.ray."""

import numpy as np
import pytest

from repro.geometry import Ray, closest_approach, skew_gap


class TestRay:
    def test_direction_normalized(self):
        ray = Ray([0, 0, 0], [0, 0, 5])
        assert np.allclose(ray.direction, [0, 0, 1])

    def test_point_at_is_metric(self):
        ray = Ray([1, 0, 0], [0, 2, 0])
        assert np.allclose(ray.point_at(3.0), [1, 3, 0])

    def test_point_at_zero_is_origin(self):
        ray = Ray([4, 5, 6], [1, 1, 1])
        assert np.allclose(ray.point_at(0.0), [4, 5, 6])

    def test_rejects_zero_direction(self):
        with pytest.raises(ValueError):
            Ray([0, 0, 0], [0, 0, 0])

    def test_distance_to_point_on_ray_is_zero(self):
        ray = Ray([0, 0, 0], [1, 0, 0])
        assert ray.distance_to_point([7.3, 0, 0]) == pytest.approx(0.0)

    def test_distance_to_offset_point(self):
        ray = Ray([0, 0, 0], [1, 0, 0])
        assert ray.distance_to_point([5, 3, 4]) == pytest.approx(5.0)

    def test_distance_measured_to_line_not_segment(self):
        # Points "behind" the origin measure to the infinite line: the
        # TP algorithms treat beams as lines (gauge freedom).
        ray = Ray([0, 0, 0], [1, 0, 0])
        assert ray.distance_to_point([-2, 1, 0]) == pytest.approx(1.0)

    def test_closest_point_to(self):
        ray = Ray([0, 0, 0], [0, 1, 0])
        assert np.allclose(ray.closest_point_to([3, 5, 0]), [0, 5, 0])


class TestClosestApproach:
    def test_intersecting_lines_have_zero_gap(self):
        a = Ray([0, 0, 0], [1, 0, 0])
        b = Ray([5, -5, 0], [0, 1, 0])
        pa, pb, gap = closest_approach(a, b)
        assert gap == pytest.approx(0.0, abs=1e-12)
        assert np.allclose(pa, [5, 0, 0])
        assert np.allclose(pa, pb)

    def test_skew_lines(self):
        a = Ray([0, 0, 0], [1, 0, 0])
        b = Ray([0, 0, 2], [0, 1, 0])
        assert skew_gap(a, b) == pytest.approx(2.0)

    def test_parallel_lines(self):
        a = Ray([0, 0, 0], [1, 0, 0])
        b = Ray([0, 3, 0], [1, 0, 0])
        assert skew_gap(a, b) == pytest.approx(3.0)

    def test_coincident_antiparallel_lines(self):
        # The aligned-link condition: TX beam and the imaginary RX beam
        # share a line with opposite directions.
        a = Ray([0, 0, 0], [1, 0, 0])
        b = Ray([2, 0, 0], [-1, 0, 0])
        assert skew_gap(a, b) == pytest.approx(0.0, abs=1e-12)

    def test_gap_symmetry(self):
        a = Ray([0.3, 1.0, -0.2], [0.1, 0.9, 0.2])
        b = Ray([1.0, -1.0, 0.7], [-0.5, 0.3, 0.8])
        assert skew_gap(a, b) == pytest.approx(skew_gap(b, a))
