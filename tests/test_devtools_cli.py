"""End-to-end tests of ``python -m repro lint`` and the tree gates.

Runs the CLI in a subprocess (exit codes, JSON schema) and asserts the
two repo-wide invariants the PR establishes: ``src/repro`` lints clean,
and ``repro/core`` contains zero suppressions.
"""

from __future__ import annotations

import importlib.util
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools import lint_paths
from repro.devtools.reporters import JSON_SCHEMA_VERSION, to_payload

ROOT = Path(__file__).parent.parent
FIXTURES = Path(__file__).parent / "fixtures" / "lint"
SRC_REPRO = ROOT / "src" / "repro"


def run_lint_cli(*args: str) -> "subprocess.CompletedProcess[str]":
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        capture_output=True, text=True, env=env, cwd=str(ROOT))


def test_exit_zero_on_clean_file():
    proc = run_lint_cli(str(FIXTURES / "repro/core/a001_tn.py"))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_exit_one_on_findings():
    proc = run_lint_cli(str(FIXTURES / "repro/core/d001_tp.py"),
                        "--select", "D001")
    assert proc.returncode == 1
    assert "D001" in proc.stdout


def test_exit_two_on_unknown_rule():
    proc = run_lint_cli(str(FIXTURES), "--select", "Z9")
    assert proc.returncode == 2


def test_exit_two_on_missing_path():
    proc = run_lint_cli(str(FIXTURES / "does_not_exist.py"))
    assert proc.returncode == 2


def test_warn_only_reports_but_exits_zero():
    proc = run_lint_cli(str(FIXTURES / "repro/core/d001_tp.py"),
                        "--select", "D001", "--warn-only")
    assert proc.returncode == 0
    assert "D001" in proc.stdout


def test_list_rules_names_every_rule():
    proc = run_lint_cli("--list-rules")
    assert proc.returncode == 0
    for rule_id in ("D001", "D002", "D003", "D004",
                    "U001", "U002", "N001", "A001"):
        assert rule_id in proc.stdout


def test_json_format_schema_round_trip():
    proc = run_lint_cli(str(FIXTURES / "repro/core/d001_tp.py"),
                        "--select", "D001", "--format", "json")
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert payload["files_checked"] == 1
    assert payload["counts"].get("D001", 0) >= 1
    for finding in payload["findings"]:
        assert set(finding) == {"path", "line", "column", "rule", "message"}
    # The CLI payload must match the library's own serialization.
    library = to_payload(lint_paths(
        [FIXTURES / "repro/core/d001_tp.py"], select=["D001"]))
    assert payload == library


def test_ignore_flag_drops_rule():
    proc = run_lint_cli(str(FIXTURES / "repro/core/d001_tp.py"),
                        "--select", "D", "--ignore", "D001")
    assert proc.returncode == 0


def test_waiver_budget_exceeded_fails():
    proc = run_lint_cli(str(FIXTURES / "repro/core/noqa_demo.py"),
                        "--max-waivers", "0")
    assert proc.returncode == 1
    assert "waiver budget exceeded" in proc.stdout


def test_waiver_budget_met_passes():
    proc = run_lint_cli(str(FIXTURES / "repro/core/noqa_demo.py"),
                        "--max-waivers", "1")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_src_repro_within_waiver_budget():
    """CI gate: the real tree stays at (or below) one justified waiver."""
    proc = run_lint_cli(str(SRC_REPRO), "--max-waivers", "1")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_github_format_emits_error_annotations():
    proc = run_lint_cli(str(FIXTURES / "repro/core/d001_tp.py"),
                        "--select", "D001", "--format", "github")
    assert proc.returncode == 1
    assert "::error file=" in proc.stdout
    assert "title=D001" in proc.stdout


def test_src_repro_tree_lints_clean():
    """The PR's headline gate: zero findings over the real package."""
    result = lint_paths([SRC_REPRO])
    assert result.clean, "\n".join(f.render() for f in result.findings)


def test_core_has_zero_suppressions():
    """ISSUE acceptance: no ``repro: noqa`` waivers inside repro/core."""
    offenders = []
    for path in sorted((SRC_REPRO / "core").rglob("*.py")):
        if "repro: noqa" in path.read_text():
            offenders.append(str(path))
    assert not offenders, offenders


@pytest.mark.skipif(importlib.util.find_spec("mypy") is None,
                    reason="mypy not installed in this environment")
def test_mypy_passes_on_typed_core():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file",
         str(ROOT / "pyproject.toml")],
        capture_output=True, text=True, cwd=str(ROOT))
    assert proc.returncode == 0, proc.stdout + proc.stderr
