"""Unit tests for the Testbed rig itself."""

import numpy as np
import pytest

from repro.link import link_25g
from repro.simulate import Testbed
from repro.simulate.rig import (
    HOME_POSITION,
    RX_MIRROR_BODY,
    TX_MIRROR_BENCH,
    TX_MIRROR_CEILING,
    _perturbed_params,
    _placement_to,
)
from repro.galvo import canonical_gma
from repro.geometry import rotation_matrix
from repro.vrh import Pose


class TestConstruction:
    def test_deterministic_for_seed(self):
        a = Testbed(seed=42)
        b = Testbed(seed=42)
        assert np.allclose(a.tx_hardware.params.to_vector(),
                           b.tx_hardware.params.to_vector())
        assert a.vr_from_world.almost_equal(b.vr_from_world)

    def test_different_seeds_differ(self):
        a = Testbed(seed=1)
        b = Testbed(seed=2)
        assert not np.allclose(a.tx_hardware.params.to_vector(),
                               b.tx_hardware.params.to_vector())

    def test_tx_and_rx_units_differ(self, testbed):
        # Manual assembly: "will likely have different values for p0
        # and x0 parameters".
        assert not np.allclose(testbed.tx_hardware.params.to_vector(),
                               testbed.rx_hardware.params.to_vector())

    def test_geometry_options(self):
        bench = Testbed(seed=5, geometry="bench")
        ceiling = Testbed(seed=5, geometry="ceiling")
        assert np.allclose(bench.tx_mirror_world, TX_MIRROR_BENCH)
        assert np.allclose(ceiling.tx_mirror_world, TX_MIRROR_CEILING)

    def test_rejects_unknown_geometry(self):
        with pytest.raises(ValueError):
            Testbed(seed=5, geometry="underwater")

    def test_alternate_design(self):
        bed = Testbed(design=link_25g(), seed=5)
        assert bed.design.sfp.optimal_throughput_gbps == pytest.approx(
            23.5)


class TestAiming:
    def test_tx_rest_beam_points_at_home(self, testbed):
        testbed.tx_hardware.apply(0.0, 0.0)
        beam = testbed.tx_assembly.world_beam()
        target = HOME_POSITION + RX_MIRROR_BODY
        # Within a few degrees (mounting tilt error is ~1 degree).
        assert beam.distance_to_point(target) < 0.15

    def test_rx_rest_beam_points_at_tx(self, testbed):
        testbed.rx_hardware.apply(0.0, 0.0)
        beam = testbed.rx_assembly.world_beam(testbed.home_pose)
        assert beam.distance_to_point(testbed.tx_mirror_world) < 0.15

    def test_link_range_in_paper_band(self, testbed):
        mirror = testbed.rx_assembly.kspace_to_world(
            testbed.home_pose).apply_point(
                testbed.rx_hardware.params.q2)
        distance = float(np.linalg.norm(
            mirror - testbed.tx_mirror_world))
        assert 1.4 <= distance <= 2.1


class TestHiddenFrames:
    def test_vr_space_is_gravity_aligned(self, testbed):
        # Yaw-only rotation: the z axis maps to itself.
        z = testbed.vr_from_world.apply_direction([0, 0, 1])
        assert np.allclose(z, [0, 0, 1], atol=1e-9)

    def test_x_offset_is_small(self, testbed):
        assert np.linalg.norm(testbed.x_offset.translation) < 0.2

    def test_oracle_round_trip(self, testbed):
        # The oracle's TX model in VR space, pulled back to world,
        # matches the true hardware beam.
        oracle = testbed.oracle_system()
        testbed.tx_hardware.apply(0.7, -0.4)
        truth_world = testbed.tx_assembly.world_beam()
        predicted_vr = oracle.tx_model_vr.beam(0.7, -0.4)
        predicted_world = testbed.world_to_vr().inverse().apply_ray(
            predicted_vr)
        # Linear model vs jittery/nonlinear hardware: sub-mm at origin.
        assert np.linalg.norm(predicted_world.origin
                              - truth_world.origin) < 2e-3


class TestHelpers:
    def test_placement_lands_mirror(self):
        params = canonical_gma(np.radians(1.0))
        target = np.array([1.0, 2.0, 3.0])
        rotation = rotation_matrix([0, 0, 1], 0.5)
        placement = _placement_to(rotation, params.q2, target)
        assert np.allclose(placement.apply_point(params.q2), target)

    def test_perturbed_params_stay_unit(self, rng):
        params = canonical_gma(np.radians(1.0))
        wiggled = _perturbed_params(params, rng, 1e-3,
                                    np.radians(0.5), 0.01)
        for direction in (wiggled.x0, wiggled.n1, wiggled.r1,
                          wiggled.n2, wiggled.r2):
            assert np.linalg.norm(direction) == pytest.approx(1.0)

    def test_perturbed_params_differ_but_close(self, rng):
        params = canonical_gma(np.radians(1.0))
        wiggled = _perturbed_params(params, rng, 1e-3,
                                    np.radians(0.5), 0.01)
        delta = wiggled.to_vector() - params.to_vector()
        assert np.linalg.norm(delta) > 0
        assert np.abs(delta[:3]).max() < 5e-3


class TestInterfaces:
    def test_power_function_probes(self, testbed):
        probe = testbed.power_function(testbed.home_pose)
        power = probe(0.0, 0.0, 0.0, 0.0)
        assert power <= 0.0  # dBm, below the TX power at the least

    def test_apply_command_returns_settle_time(self, testbed,
                                               learned_system):
        from repro.core import point
        command = point(learned_system,
                        testbed.tracker.report(testbed.home_pose))
        settle = testbed.apply_command(command)
        assert settle >= 0.0

    def test_pose_generators_respect_ranges(self, testbed):
        for pose in testbed.random_poses(20, 0.1, np.radians(5)):
            assert np.all(np.abs(pose.position - HOME_POSITION) <= 0.1)
            assert Pose.identity().angular_distance_to(
                Pose(np.zeros(3), pose.orientation)) <= np.radians(9)
