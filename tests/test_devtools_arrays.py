"""Tests for the array-semantics analyzer (S/Y/P/K rule families).

Covers the seeded true-positive/true-negative fixture trees for shape
contracts, dtype stability, hot-path discipline and the kernel subset
checker; ``--select``/``--ignore`` prefix resolution over the grown
rule namespace; the arrays cache tier (round trip, stale-key
rejection, v2→v3 schema invalidation); the ``--profile`` counters;
and the runtime kernel registry.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import subprocess
import sys
from pathlib import Path

from repro.devtools.program import analyze_paths, build_index
from repro.devtools.program.arrays import (
    ARRAYS_SCHEMA_VERSION,
    array_table,
    attach_cached_array_table,
    broadcast_conflict,
    hot_modules,
    kernel_closure,
    kernel_functions,
)
from repro.devtools.program.index import load_cache, save_cache

ROOT = Path(__file__).parent.parent
FIXTURES = Path(__file__).parent / "fixtures" / "program"
SRC_REPRO = ROOT / "src" / "repro"
ARRAYS = FIXTURES / "arrays"
KERNELS = FIXTURES / "kernels"


def run_analyze_cli(*args: str,
                    cwd: Path = ROOT) -> "subprocess.CompletedProcess[str]":
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.run(
        [sys.executable, "-m", "repro", "analyze", *args],
        capture_output=True, text=True, env=env, cwd=str(cwd))


def rules_found(proc: "subprocess.CompletedProcess[str]"):
    payload = json.loads(proc.stdout)
    return sorted(f["rule"] for f in payload["findings"]), payload


# ---------------------------------------------------------------------------
# Rule families against the seeded fixture trees (TP and TN).
# ---------------------------------------------------------------------------

def test_arrays_fixture_trips_every_syp_rule():
    proc = run_analyze_cli(str(ARRAYS), "--no-cache",
                           "--select", "S,Y,P", "--format", "json")
    assert proc.returncode == 1, proc.stdout + proc.stderr
    rules, _ = rules_found(proc)
    assert rules == ["P001", "P001", "P002", "P002",
                     "S001", "S002", "S003",
                     "Y001", "Y002", "Y002", "Y003"]


def test_kernels_fixture_trips_every_k_rule():
    proc = run_analyze_cli(str(KERNELS), "--no-cache",
                           "--select", "K", "--format", "json")
    assert proc.returncode == 1, proc.stdout + proc.stderr
    rules, _ = rules_found(proc)
    assert rules == ["K001", "K001", "K002", "K002", "K003"]


def test_s_messages_name_the_shapes_and_boundary():
    proc = run_analyze_cli(str(ARRAYS), "--no-cache", "--select", "S")
    assert proc.returncode == 1
    assert "blend" in proc.stdout and "4, 3" in proc.stdout  # S001
    assert "positions" in proc.stdout  # S002
    assert "sample-major" in proc.stdout
    assert "doubled_m" in proc.stdout  # S003


def test_k_messages_name_the_reaching_kernel():
    proc = run_analyze_cli(str(KERNELS), "--no-cache", "--select", "K")
    assert proc.returncode == 1
    assert "reached from kernel repro.kern.indirect_kernel" \
        in proc.stdout
    assert "_WEIGHTS" in proc.stdout  # K002 names the state
    assert "**kwargs" in proc.stdout  # K003 names the star form


def test_cold_y_p_habits_are_exempt_off_the_hot_path():
    # plumbing.py allocates without dtype= inside a loop; neither Y002
    # nor P001 may fire because the module is not hot.
    proc = run_analyze_cli(str(ARRAYS), "--no-cache",
                           "--select", "Y,P", "--format", "json")
    payload = json.loads(proc.stdout)
    assert not any(f["path"].endswith("plumbing.py")
                   for f in payload["findings"])


# ---------------------------------------------------------------------------
# --select / --ignore prefix resolution over the grown namespace.
# ---------------------------------------------------------------------------

def test_single_letter_s_selects_only_shape_rules():
    # "S" is a single-letter prefix over S001-S003 and must not leak
    # into any other family.
    proc = run_analyze_cli(str(ARRAYS), "--no-cache",
                           "--select", "S", "--format", "json")
    rules, _ = rules_found(proc)
    assert rules == ["S001", "S002", "S003"]


def test_selection_is_case_insensitive_over_new_families():
    proc = run_analyze_cli(str(ARRAYS), "--no-cache",
                           "--select", "s,y", "--format", "json")
    rules, _ = rules_found(proc)
    assert rules == ["S001", "S002", "S003",
                     "Y001", "Y002", "Y002", "Y003"]


def test_ignore_prefix_drops_a_new_family():
    proc = run_analyze_cli(str(ARRAYS), "--no-cache",
                           "--select", "S,Y,P", "--ignore", "Y",
                           "--format", "json")
    rules, _ = rules_found(proc)
    assert rules == ["P001", "P001", "P002", "P002",
                     "S001", "S002", "S003"]


def test_exact_id_selection_still_works():
    proc = run_analyze_cli(str(ARRAYS), "--no-cache",
                           "--select", "Y002", "--format", "json")
    rules, _ = rules_found(proc)
    assert rules == ["Y002", "Y002"]


def test_unknown_prefix_in_grown_namespace_exits_two():
    for bogus in ("S9", "K9", "Q"):
        proc = run_analyze_cli(str(ARRAYS), "--no-cache",
                               "--select", bogus)
        assert proc.returncode == 2, f"{bogus}: {proc.stdout}"


# ---------------------------------------------------------------------------
# The arrays cache tier.
# ---------------------------------------------------------------------------

def test_array_table_round_trips_through_cache(tmp_path):
    cache = tmp_path / "cache"
    cold = analyze_paths([str(ARRAYS)], select=["S", "Y", "P"],
                         cache_dir=str(cache))
    payload = json.loads((cache / "program-index.json").read_text())
    assert payload.get("arrays"), "array summaries not persisted"

    # A fresh index adopts the cached table instead of re-inferring.
    index = build_index([str(ARRAYS)], cache_dir=None)
    assert attach_cached_array_table(index, payload["arrays"])
    assert array_table(index).from_cache

    # And the warm analyze run reproduces the cold findings exactly.
    warm = analyze_paths([str(ARRAYS)], select=["S", "Y", "P"],
                         cache_dir=str(cache))
    assert warm.extracted == 0
    assert warm.findings == cold.findings


def test_array_table_cache_rejects_stale_key(tmp_path):
    tree = tmp_path / "tree"
    shutil.copytree(ARRAYS, tree)
    cache = tmp_path / "cache"
    analyze_paths([str(tree)], select=["S"], cache_dir=str(cache))
    payload = json.loads((cache / "program-index.json").read_text())
    target = tree / "repro" / "plumbing.py"
    target.write_text(target.read_text() + "\nEXTRA = 1\n")
    index = build_index([str(tree)], cache_dir=None)
    assert not attach_cached_array_table(index, payload["arrays"])


def test_v2_cache_payload_is_invalidated_by_v3_loader(tmp_path):
    # A v2 cache (pre array-semantics) must be discarded wholesale by
    # the v3 loader, never mis-read: the file entries lack the
    # array-op fields and deserializing them would crash or silently
    # drop facts.
    cache = tmp_path / "cache"
    cache.mkdir()
    stale = {
        "version": 2,
        "files": {"x.py": {"sha": "0" * 64, "module": {"bogus": 1}}},
        "results": {"key": "stale", "findings": []},
    }
    (cache / "program-index.json").write_text(json.dumps(stale))
    assert load_cache(str(cache)) == {}
    result = analyze_paths([str(ARRAYS)], select=["S"],
                           cache_dir=str(cache))
    assert result.extracted > 0  # nothing was trusted from the v2 file
    rewritten = json.loads((cache / "program-index.json").read_text())
    assert rewritten["version"] == 4


def test_save_cache_stamps_current_schema_version(tmp_path):
    save_cache(str(tmp_path), {"files": {}})
    payload = json.loads(
        (tmp_path / "program-index.json").read_text())
    assert payload["version"] == 4
    assert ARRAYS_SCHEMA_VERSION == 1


# ---------------------------------------------------------------------------
# --profile counters.
# ---------------------------------------------------------------------------

def test_profile_text_reports_families_and_cache(tmp_path):
    cache = tmp_path / "cache"
    proc = run_analyze_cli(str(ARRAYS), "--cache-dir", str(cache),
                           "--select", "S,Y,P", "--warn-only",
                           "--profile")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "profile: family S" in proc.stdout
    assert "profile: family Y" in proc.stdout
    assert "profile: family P" in proc.stdout
    assert ("results miss, effects miss, arrays miss, "
            "exceptions miss") in proc.stdout

    warm = run_analyze_cli(str(ARRAYS), "--cache-dir", str(cache),
                           "--select", "S,Y,P", "--warn-only",
                           "--profile")
    assert ("results hit, effects hit, arrays hit, "
            "exceptions hit") in warm.stdout


def test_profile_json_payload(tmp_path):
    cache = tmp_path / "cache"
    proc = run_analyze_cli(str(ARRAYS), "--cache-dir", str(cache),
                           "--select", "S,Y", "--warn-only",
                           "--profile", "--format", "json")
    payload = json.loads(proc.stdout)
    profile = payload["profile"]
    assert set(profile["families"]) == {"S", "Y"}
    assert all(seconds >= 0 for seconds in
               profile["families"].values())
    assert profile["cache"]["results"] == "miss"
    assert profile["cache"]["arrays"] == "miss"
    assert profile["cache"]["files_extracted"] > 0


def test_profile_absent_from_json_without_flag():
    proc = run_analyze_cli(str(ARRAYS), "--no-cache", "--select", "S",
                           "--warn-only", "--format", "json")
    assert "profile" not in json.loads(proc.stdout)


# ---------------------------------------------------------------------------
# Kernel registry: static view and runtime contract agree.
# ---------------------------------------------------------------------------

def test_registered_kernels_are_k_clean_on_src_repro():
    proc = run_analyze_cli(str(SRC_REPRO), "--no-cache",
                           "--select", "K", "--format", "json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert json.loads(proc.stdout)["findings"] == []


def test_static_kernel_inventory_matches_runtime_registry():
    import repro.motion.batch   # noqa: F401 - registers _ou_filter
    import repro.simulate.batch  # noqa: F401 - registers _connected_rows
    from repro.determinism import registered_kernels

    index = build_index([str(SRC_REPRO)], cache_dir=None)
    static = {f"{module}.{qualname}"
              for module, qualname, _ in kernel_functions(index)}
    assert static == {"repro.motion.batch._ou_filter",
                      "repro.simulate.batch._connected_rows"}
    assert static <= set(registered_kernels())


def test_kernel_decorator_returns_function_unchanged():
    from repro.determinism import kernel, registered_kernels

    def probe(x: float) -> float:
        return x * 2.0

    assert kernel(probe) is probe  # no wrapper: stays picklable
    assert pickle.loads(pickle.dumps(
        registered_kernels, protocol=2)) is not None


def test_kernel_registration_makes_the_module_hot():
    index = build_index([str(KERNELS)], cache_dir=None)
    assert "repro.kern" in hot_modules(index)
    closure = kernel_closure(index, "repro.kern", "indirect_kernel")
    names = {qualname for _, qualname, _ in closure}
    assert names == {"indirect_kernel", "_lookup"}


def test_batch_engine_modules_are_always_hot():
    index = build_index([str(ARRAYS)], cache_dir=None)
    hot = hot_modules(index)
    assert "repro.motion.batch" in hot
    assert "repro.simulate.batch" in hot
    assert "repro.plumbing" not in hot


# ---------------------------------------------------------------------------
# Lattice helpers.
# ---------------------------------------------------------------------------

def test_broadcast_conflict_right_aligns():
    assert broadcast_conflict(("4", "3"), ("5",))
    assert not broadcast_conflict(("4", "3"), ("3",))
    assert not broadcast_conflict(("4", "3"), ("1",))
    assert not broadcast_conflict(("t", "3"), ("3",))  # symbolic dim
    assert not broadcast_conflict(("4", "1"), ("4", "7"))


def test_root_analyze_default_selection_is_clean():
    # The acceptance bar: the full default selection (all eleven
    # families) over src/repro with zero findings and zero waivers.
    proc = run_analyze_cli(str(SRC_REPRO), "--no-cache",
                           "--max-waivers", "0", "--format", "json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["findings"] == []
    assert payload["suppressed"] == 0
