"""Tests for the exception-flow analyzer (E/B/R rule families).

Covers the interprocedural escape-set inference (seeds, call-graph
propagation, per-call-site handler subtraction, the type lattice);
the seeded true-positive/true-negative fixture tree with finding
counts pinned exactly; ``--select``/``--ignore`` over the grown
namespace; the exceptions cache tier (round trip, stale-key
rejection, v3→v4 schema invalidation); and the ``--profile``
counters' fifth tier.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

from repro.devtools.program import analyze_paths, build_index
from repro.devtools.program.exceptions import (
    EXCEPTIONS_SCHEMA_VERSION,
    attach_cached_exception_table,
    exception_table,
    type_lattice,
)
from repro.devtools.program.index import load_cache

ROOT = Path(__file__).parent.parent
FIXTURES = Path(__file__).parent / "fixtures" / "program"
SRC_REPRO = ROOT / "src" / "repro"
EXC = FIXTURES / "exceptions"


def run_analyze_cli(*args: str,
                    cwd: Path = ROOT) -> "subprocess.CompletedProcess[str]":
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.run(
        [sys.executable, "-m", "repro", "analyze", *args],
        capture_output=True, text=True, env=env, cwd=str(cwd))


def rules_found(proc: "subprocess.CompletedProcess[str]"):
    payload = json.loads(proc.stdout)
    return sorted(f["rule"] for f in payload["findings"]), payload


# ---------------------------------------------------------------------------
# The repo-wide invariant: src/repro has a clean error contract.
# ---------------------------------------------------------------------------

def test_src_repro_has_zero_ebr_findings_and_zero_waivers():
    proc = run_analyze_cli(str(SRC_REPRO), "--no-cache",
                           "--select", "E,B,R", "--max-waivers", "0")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


# ---------------------------------------------------------------------------
# Rule families against the seeded fixture tree (TP and TN twins).
# ---------------------------------------------------------------------------

def test_exceptions_fixture_counts_are_pinned_exactly():
    proc = run_analyze_cli(str(EXC), "--no-cache",
                           "--select", "E,B,R", "--format", "json")
    assert proc.returncode == 1, proc.stdout + proc.stderr
    rules, _ = rules_found(proc)
    # One finding per rule — every safe twin (translated, logged,
    # narrowest-first, `with`-scoped, factory-returned, exit code
    # returned out of the guard) must pass.  R003 fires twice: the
    # direct sys.exit and the transitive bail_out escape.
    assert rules == ["B001", "B002", "B003", "E001", "E002", "E003",
                     "R001", "R002", "R003", "R003"]


def test_e_messages_name_worker_subcommand_and_layer_fn():
    proc = run_analyze_cli(str(EXC), "--no-cache", "--select", "E")
    assert proc.returncode == 1
    assert "fatal_worker" in proc.stdout  # E001 names the worker
    assert "safe_worker" not in proc.stdout
    assert "_cmd_report" in proc.stdout  # E002 names the subcommand
    assert "_cmd_run" not in proc.stdout
    assert "repro.errors.StoreError" in proc.stdout  # qualified type
    assert "align_beam" in proc.stdout  # E003 names the function
    assert "focus_beam" not in proc.stdout


def test_b_twins_logged_translated_and_ordered_pass():
    proc = run_analyze_cli(str(EXC), "--no-cache", "--select", "B")
    assert proc.returncode == 1
    assert "sweep_quietly" in proc.stdout  # B001
    assert "sweep_recorded" not in proc.stdout  # logged twin
    assert "sweep_translated" not in proc.stdout  # translated twin
    assert "guarded_parse" in proc.stdout  # B002 dead catch
    assert "guarded_read" not in proc.stdout
    assert "classify_failure'" in proc.stdout  # B003 shadowed
    assert "classify_failure_ordered" not in proc.stdout


def test_r_twins_full_catch_with_scope_and_region_exit_pass():
    proc = run_analyze_cli(str(EXC), "--no-cache", "--select", "R")
    assert proc.returncode == 1
    assert "retry_until_loaded" in proc.stdout  # R001
    assert "retry_with_taxonomy" not in proc.stdout
    assert "spool_rows'" in proc.stdout  # R002
    assert "spool_rows_scoped" not in proc.stdout
    assert "open_spool" not in proc.stdout  # factory twin
    assert "run_guarded'" in proc.stdout  # R003 direct
    assert "bail_out" in proc.stdout  # R003 transitive
    assert "run_guarded_safe" not in proc.stdout


def test_private_layer_helpers_are_exempt_from_e003():
    proc = run_analyze_cli(str(EXC), "--no-cache",
                           "--select", "E003", "--format", "json")
    _, payload = rules_found(proc)
    assert all("_nudge" not in f["message"]
               for f in payload["findings"])


# ---------------------------------------------------------------------------
# --select / --ignore over the grown namespace.
# ---------------------------------------------------------------------------

def test_exact_id_selection_works_for_new_families():
    proc = run_analyze_cli(str(EXC), "--no-cache",
                           "--select", "E003", "--format", "json")
    rules, _ = rules_found(proc)
    assert rules == ["E003"]


def test_ignore_prefix_drops_a_new_family():
    proc = run_analyze_cli(str(EXC), "--no-cache",
                           "--select", "E,B,R", "--ignore", "R",
                           "--format", "json")
    rules, _ = rules_found(proc)
    assert rules == ["B001", "B002", "B003", "E001", "E002", "E003"]


def test_unknown_prefix_in_grown_namespace_exits_two():
    for bogus in ("E9", "B9", "R9"):
        proc = run_analyze_cli(str(EXC), "--no-cache",
                               "--select", bogus)
        assert proc.returncode == 2, f"{bogus}: {proc.stdout}"


# ---------------------------------------------------------------------------
# The escape-set inference itself.
# ---------------------------------------------------------------------------

def test_seeds_raises_and_sys_exit():
    index = build_index([str(EXC)], cache_dir=None)
    table = exception_table(index)
    assert table.escapes("repro.store", "flaky_load") == \
        {"StoreError", "OSError"}
    assert table.escapes("repro.workers", "fatal_worker") == \
        {"SystemExit"}
    assert table.escapes("repro.signals", "bail_out") == {"SystemExit"}


def test_handler_subtraction_is_subtype_aware():
    index = build_index([str(EXC)], cache_dir=None)
    table = exception_table(index)
    # The broad except swallows everything read_group can raise.
    assert table.escapes("repro.store", "sweep_quietly") == set()
    # except RuntimeError catches StoreError (a subclass); nothing
    # survives classify_failure.
    assert table.escapes("repro.store", "classify_failure") == set()
    # The retry loop catches only OSError; StoreError still escapes.
    assert table.escapes("repro.store", "retry_until_loaded") == \
        {"StoreError"}


def test_translate_handlers_reseed_the_target_type():
    index = build_index([str(EXC)], cache_dir=None)
    table = exception_table(index)
    # The incoming StoreError is absorbed by the broad handler, whose
    # body raises StoreError from exc — recorded as its own fact.
    assert table.escapes("repro.store", "sweep_translated") == \
        {"StoreError"}


def test_escapes_propagate_through_the_call_graph():
    index = build_index([str(EXC)], cache_dir=None)
    table = exception_table(index)
    # _dispatch unions its subcommands' escapes; main() subtracts its
    # ladder (SweepConfigError, SweepError) leaving only StoreError.
    assert table.escapes("repro.cli", "_dispatch") == \
        {"SweepConfigError", "StoreError"}
    assert table.escapes("repro.cli", "main") == {"StoreError"}


def test_lattice_merges_builtin_and_project_hierarchies():
    index = build_index([str(EXC)], cache_dir=None)
    lattice = type_lattice(index)
    assert lattice.is_subtype("SweepConfigError", "SweepError")
    assert lattice.is_subtype("SweepConfigError", "RuntimeError")
    assert lattice.is_subtype("BrokenPipeError", "OSError")
    assert not lattice.is_subtype("ValueError", "OSError")
    assert lattice.is_taxonomy("StoreError")
    assert not lattice.is_taxonomy("ValueError")
    assert lattice.qualified("StoreError") == "repro.errors.StoreError"
    # SystemExit is a BaseException but not an Exception — the E001
    # distinction.
    assert lattice.is_subtype("SystemExit", "BaseException")
    assert not lattice.is_subtype("SystemExit", "Exception")


# ---------------------------------------------------------------------------
# The exceptions cache tier.
# ---------------------------------------------------------------------------

def test_exception_table_round_trips_through_cache(tmp_path):
    cache = tmp_path / "cache"
    cold = analyze_paths([str(EXC)], select=["E", "B", "R"],
                         cache_dir=str(cache))
    payload = json.loads((cache / "program-index.json").read_text())
    assert payload.get("exceptions"), "escape sets not persisted"

    # A fresh index adopts the cached table instead of re-inferring.
    index = build_index([str(EXC)], cache_dir=None)
    assert attach_cached_exception_table(index, payload["exceptions"])
    assert exception_table(index).from_cache
    assert exception_table(index).escapes(
        "repro.workers", "fatal_worker") == {"SystemExit"}

    # And the warm analyze run reproduces the cold findings exactly.
    warm = analyze_paths([str(EXC)], select=["E", "B", "R"],
                         cache_dir=str(cache))
    assert warm.extracted == 0
    assert warm.findings == cold.findings


def test_exception_table_cache_rejects_stale_key(tmp_path):
    tree = tmp_path / "tree"
    shutil.copytree(EXC, tree)
    cache = tmp_path / "cache"
    analyze_paths([str(tree)], select=["E"], cache_dir=str(cache))
    payload = json.loads((cache / "program-index.json").read_text())
    target = tree / "repro" / "store.py"
    target.write_text(target.read_text() + "\nEXTRA = 1\n")
    index = build_index([str(tree)], cache_dir=None)
    assert not attach_cached_exception_table(index,
                                             payload["exceptions"])


def test_v3_cache_payload_is_invalidated_by_v4_loader(tmp_path):
    # A v3 cache (pre exception-flow) must be discarded wholesale by
    # the v4 loader, never mis-read: its file entries lack the
    # try/raise/resource facts and deserializing them would crash or
    # silently drop escape sets.
    cache = tmp_path / "cache"
    cache.mkdir()
    stale = {
        "version": 3,
        "files": {"x.py": {"sha": "0" * 64, "module": {"bogus": 1}}},
        "results": {"key": "stale", "findings": []},
        "effects": {"key": "stale", "table": {}},
        "arrays": {"key": "stale", "table": {}},
    }
    (cache / "program-index.json").write_text(json.dumps(stale))
    assert load_cache(str(cache)) == {}
    result = analyze_paths([str(EXC)], select=["E"],
                           cache_dir=str(cache))
    assert result.extracted > 0  # nothing was trusted from the v3 file
    rewritten = json.loads((cache / "program-index.json").read_text())
    assert rewritten["version"] == 4
    assert EXCEPTIONS_SCHEMA_VERSION == 1


# ---------------------------------------------------------------------------
# --profile counters: the fifth tier.
# ---------------------------------------------------------------------------

def test_profile_reports_the_exceptions_tier(tmp_path):
    cache = tmp_path / "cache"
    proc = run_analyze_cli(str(EXC), "--cache-dir", str(cache),
                           "--select", "E,B,R", "--warn-only",
                           "--profile")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "profile: family E" in proc.stdout
    assert "profile: family B" in proc.stdout
    assert "profile: family R" in proc.stdout
    assert "exceptions miss" in proc.stdout

    warm = run_analyze_cli(str(EXC), "--cache-dir", str(cache),
                           "--select", "E,B,R", "--warn-only",
                           "--profile")
    assert "exceptions hit" in warm.stdout


def test_exceptions_tier_survives_a_selection_change(tmp_path):
    # A warm run with a different --select misses the results tier
    # but must still adopt the cached escape sets.
    cache = tmp_path / "cache"
    run_analyze_cli(str(EXC), "--cache-dir", str(cache),
                    "--select", "E", "--warn-only")
    warm = run_analyze_cli(str(EXC), "--cache-dir", str(cache),
                           "--select", "R", "--warn-only",
                           "--profile")
    assert "results miss" in warm.stdout
    assert "exceptions hit" in warm.stdout
