"""Unit tests for availability aggregation and clustering analysis."""

import numpy as np
import pytest

from repro.motion import generate_dataset
from repro.simulate import (
    TimeslotResult,
    analyze,
    report,
    simulate_dataset,
)


def result_from(connected):
    return TimeslotResult(connected=np.asarray(connected, dtype=bool),
                          viewer=0, video=0)


class TestReport:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            report([])
        with pytest.raises(ValueError):
            simulate_dataset([])

    def test_aggregates(self):
        results = [result_from([True] * 90 + [False] * 10),
                   result_from([True] * 100)]
        rep = report(results)
        assert rep.overall_availability == pytest.approx(0.95)
        assert rep.worst == pytest.approx(0.9)
        assert rep.best == pytest.approx(1.0)

    def test_cdf_axes(self):
        results = [result_from([True] * 90 + [False] * 10),
                   result_from([True] * 100)]
        disconnected, fractions = report(results).disconnection_cdf()
        assert disconnected == pytest.approx([0.0, 10.0])
        assert fractions[-1] == pytest.approx(1.0)

    def test_effective_bandwidth(self):
        rep = report([result_from([True] * 99 + [False])])
        assert rep.effective_bandwidth_gbps(23.5) == pytest.approx(
            0.99 * 23.5)

    def test_rejects_results_with_no_slots(self):
        # All-empty traces carry zero slots: there is no availability
        # to report, and it must not divide by zero.
        with pytest.raises(ValueError):
            report([result_from([]), result_from([])])

    def test_empty_trace_mixed_with_real_ones(self):
        rep = report([result_from([]),
                      result_from([True] * 90 + [False] * 10)])
        assert rep.overall_availability == pytest.approx(0.9)
        # The empty trace contributes its defined 0.0 availability to
        # the per-trace spread but no slots to the totals.
        assert rep.worst == pytest.approx(0.0)

    def test_totals_from_connected_arrays(self):
        results = [result_from([True, False, True]),
                   result_from([False, False])]
        rep = report(results)
        assert rep.overall_availability == pytest.approx(2 / 5)


class TestSimulateDatasetWorkers:
    def test_workers_do_not_change_results(self):
        traces = generate_dataset(viewers=2, videos=2, duration_s=2.0)
        serial = simulate_dataset(traces, workers=1)
        fanned = simulate_dataset(traces, workers=2)
        assert len(serial) == len(fanned)
        for a, b in zip(serial, fanned):
            assert (a.viewer, a.video) == (b.viewer, b.video)
            np.testing.assert_array_equal(a.connected, b.connected)


class TestClustering:
    def test_no_offs_fraction_is_one(self):
        rep = analyze([result_from([True] * 300)])
        assert rep.fraction_in_frames_below(10) == 1.0

    def test_scattered_offs_in_small_frames(self):
        # One off-slot every other frame: every off lives in a frame
        # with a single off-slot.
        connected = np.ones(300, dtype=bool)
        connected[::60] = False
        rep = analyze([result_from(connected)])
        assert rep.fraction_in_frames_below(2) == 1.0

    def test_clustered_offs_in_big_frames(self):
        # One fully dark frame of 30 slots.
        connected = np.ones(300, dtype=bool)
        connected[60:90] = False
        rep = analyze([result_from(connected)])
        assert rep.fraction_in_frames_below(10) == 0.0
        assert rep.fraction_in_frames_below(31) == 1.0

    def test_histogram_counts_frames(self):
        connected = np.ones(90, dtype=bool)
        connected[0:3] = False   # frame 0: 3 offs
        connected[30:33] = False  # frame 1: 3 offs
        rep = analyze([result_from(connected)])
        assert rep.off_per_frame_histogram[3] == 2

    def test_rejects_bad_frame_size(self):
        with pytest.raises(ValueError):
            analyze([result_from([True] * 30)], frame_slots=0)


class TestSmallDatasetEndToEnd:
    """A miniature Section 5.4 run (full 500-trace run in the bench)."""

    @pytest.fixture(scope="class")
    def small_report(self):
        traces = generate_dataset(viewers=6, videos=5, duration_s=30.0)
        results = simulate_dataset(traces)
        return report(results), analyze(results)

    def test_availability_in_paper_band(self, small_report):
        rep, _ = small_report
        assert 0.96 <= rep.overall_availability <= 1.0

    def test_spread_across_traces(self, small_report):
        rep, _ = small_report
        assert rep.best > rep.worst

    def test_most_offs_scattered(self, small_report):
        _, clustering = small_report
        assert clustering.fraction_in_frames_below(10) > 0.3
