"""The acceptance gate: SIGKILL a real sweep process, resume, compare.

This drives ``python -m repro sweep`` as an actual subprocess — no
in-process shortcuts — shoots it with SIGKILL once the journal shows
progress, resumes with ``--resume``, and requires the final corpus
*and* the payload JSON to be byte-identical to an uninterrupted
reference run.  A SIGINT variant checks the graceful path: exit 130,
consistent checkpoint, same bytes after resume.
"""

import filecmp
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[1] / "src"

#: One sweep definition shared by reference, victim, and resume runs —
#: the parameters are hashed into the manifest, so they must match.
SWEEP_ARGS = ["--kind", "demo", "--units", "8", "--workers", "2",
              "--seed", "13", "--work", "2048", "--sleep-s", "0.25"]


def sweep_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    return env


def run_sweep(extra, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro", "sweep"] + SWEEP_ARGS + extra,
        cwd=cwd, env=sweep_env(), capture_output=True, text=True,
        timeout=120)


def start_sweep(extra, cwd):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "sweep"] + SWEEP_ARGS + extra,
        cwd=cwd, env=sweep_env(), stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL)


def wait_for_journal_lines(journal, n, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if journal.exists() and \
                len(journal.read_bytes().splitlines()) >= n:
            return
        time.sleep(0.05)
    raise AssertionError(f"journal never reached {n} lines")


def assert_same_corpus(cwd, ck_a, ck_b):
    dir_a = cwd / ck_a / "store" / "corpus"
    dir_b = cwd / ck_b / "store" / "corpus"
    files = sorted(p.name for p in dir_a.iterdir())
    assert files == sorted(p.name for p in dir_b.iterdir())
    match, mismatch, errors = filecmp.cmpfiles(
        dir_a, dir_b, files, shallow=False)
    assert mismatch == [] and errors == []


@pytest.fixture()
def reference(tmp_path):
    done = run_sweep(["--checkpoint", "ref-ck", "--output", "ref.json"],
                     tmp_path)
    assert done.returncode == 0, done.stdout + done.stderr
    return tmp_path / "ref.json"


class TestKillResume:
    def test_sigkill_midrun_then_resume_is_byte_identical(
            self, tmp_path, reference):
        victim = start_sweep(
            ["--checkpoint", "ck", "--output", "got.json"], tmp_path)
        try:
            wait_for_journal_lines(tmp_path / "ck" / "journal.ndjson",
                                   2)
            os.kill(victim.pid, signal.SIGKILL)
        finally:
            victim.wait(timeout=60)
        assert victim.returncode == -signal.SIGKILL
        assert not (tmp_path / "got.json").exists()

        resumed = run_sweep(["--checkpoint", "ck", "--resume",
                             "--output", "got.json"], tmp_path)
        assert resumed.returncode == 0, resumed.stdout + resumed.stderr
        assert "already checkpointed" in resumed.stdout

        assert (tmp_path / "got.json").read_bytes() == \
            reference.read_bytes()
        assert_same_corpus(tmp_path, "ref-ck", "ck")

    def test_sigint_exits_130_with_consistent_checkpoint(
            self, tmp_path, reference):
        victim = start_sweep(
            ["--checkpoint", "ck", "--output", "got.json"], tmp_path)
        try:
            wait_for_journal_lines(tmp_path / "ck" / "journal.ndjson",
                                   1)
            os.kill(victim.pid, signal.SIGINT)
        finally:
            victim.wait(timeout=60)
        assert victim.returncode == 130

        resumed = run_sweep(["--checkpoint", "ck", "--resume",
                             "--output", "got.json"], tmp_path)
        assert resumed.returncode == 0, resumed.stdout + resumed.stderr
        assert (tmp_path / "got.json").read_bytes() == \
            reference.read_bytes()

    def test_resume_without_flag_is_refused(self, tmp_path, reference):
        clash = run_sweep(["--checkpoint", "ref-ck"], tmp_path)
        assert clash.returncode == 2
        assert "resume" in clash.stdout

    def test_payload_is_run_independent_json(self, tmp_path, reference):
        payload = json.loads(reference.read_text())
        assert payload["units"] == 8
        assert "corpus_sha256" in payload
        # Nothing wall-clock- or host-dependent may leak in: that is
        # what makes the interrupted and reference payloads comparable
        # byte for byte.
        forbidden = {"wall_s", "workers", "machine", "resumed",
                     "elapsed_s"}
        assert forbidden.isdisjoint(payload)
