"""Unit tests for repro.vrh.tracker (VRH-T)."""

import numpy as np
import pytest

from repro import constants
from repro.geometry import RigidTransform, rotation_matrix
from repro.vrh import Pose, VrhTracker


def make_tracker(rng, location_noise=None, orientation_noise=None):
    vr = RigidTransform(rotation_matrix([0, 0, 1], 0.4),
                        np.array([1.0, -0.5, 0.2]))
    x = RigidTransform(rotation_matrix([1, 0, 0], 0.1),
                       np.array([0.02, -0.03, 0.05]))
    kwargs = {}
    if location_noise is not None:
        kwargs["location_noise_m"] = location_noise
    if orientation_noise is not None:
        kwargs["orientation_noise_rad"] = orientation_noise
    return VrhTracker(vr, x, rng=rng, **kwargs)


class TestReportContent:
    def test_noise_free_report_is_v_w_x(self, rng):
        tracker = make_tracker(rng, location_noise=0.0,
                               orientation_noise=0.0)
        pose = Pose.from_euler([0.3, 0.2, 1.1], 0.05, -0.1, 0.2)
        report = tracker.report(pose)
        expected = tracker.vr_from_world.compose(
            pose.as_transform()).compose(tracker.x_offset)
        assert np.allclose(report.position, expected.translation)
        assert np.allclose(report.orientation, expected.rotation)

    def test_report_is_not_world_pose(self, rng):
        # The whole point: the reported frame is unknown/different.
        tracker = make_tracker(rng, location_noise=0.0,
                               orientation_noise=0.0)
        pose = Pose.identity()
        report = tracker.report(pose)
        assert not np.allclose(report.position, pose.position)

    def test_noise_perturbs_reports(self, rng):
        tracker = make_tracker(rng)
        pose = Pose.identity()
        a = tracker.report(pose)
        b = tracker.report(pose)
        assert not np.allclose(a.position, b.position)

    def test_stationary_noise_within_paper_bounds(self, rng):
        # Over many reports of a stationary headset, the location
        # scatter stays at the ~1.79 mm / 0.41 mrad scale of Section 5.2.
        tracker = make_tracker(rng)
        pose = Pose.identity()
        reports = [tracker.report(pose) for _ in range(300)]
        positions = np.array([r.position for r in reports])
        spread = np.linalg.norm(positions - positions.mean(axis=0),
                                axis=1)
        assert spread.max() < 2 * constants.TRACKER_LOCATION_NOISE_MAX_M

    def test_rejects_negative_noise(self, rng):
        with pytest.raises(ValueError):
            make_tracker(rng, location_noise=-1.0)

    def test_orientation_report_is_rotation(self, rng):
        tracker = make_tracker(rng)
        report = tracker.report(Pose.identity())
        # Pose construction validates the matrix; reaching here is the
        # assertion, but double-check determinant anyway.
        assert np.linalg.det(report.orientation) == pytest.approx(1.0)


class TestReportTiming:
    def test_periods_in_normal_band(self, rng):
        tracker = make_tracker(rng)
        periods = [tracker.next_period_s() for _ in range(2000)]
        normal = [p for p in periods if p <= 0.013]
        slow = [p for p in periods if p >= 0.014]
        assert len(normal) + len(slow) == len(periods)
        assert all(p >= 0.012 for p in normal)
        assert all(p <= 0.015 for p in slow)

    def test_slow_fraction_near_paper_value(self, rng):
        tracker = make_tracker(rng)
        periods = np.array([tracker.next_period_s() for _ in range(20000)])
        slow_fraction = np.mean(periods >= 0.014)
        assert 0.003 <= slow_fraction <= 0.012  # 0.7 % nominal

    def test_report_times_cover_duration(self, rng):
        tracker = make_tracker(rng)
        times = tracker.report_times(1.0)
        assert times[0] == 0.0
        assert times[-1] <= 1.0
        assert 70 <= len(times) <= 90  # ~80 reports per second
