"""Property-based tests for the extension subsystems."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.motion import StaticProfile, VibrationOverlay
from repro.net.arq import run_arq
from repro.plan import CoverageConstraints, CoveragePlan, Room
from repro.galvo.servo import ServoModel
from repro.reporting import sparkline
from repro.stream import VideoFormat, stream_over_link
from repro.vrh import Pose


class TestArqProperties:
    @settings(max_examples=30, deadline=None)
    @given(pattern=st.lists(st.booleans(), min_size=10, max_size=200),
           rate=st.floats(min_value=1.0, max_value=50.0))
    def test_goodput_bounded_by_availability(self, pattern, rate):
        link = np.array(pattern, dtype=bool)
        result = run_arq(link, 1e-3, rate)
        availability = float(np.mean(link))
        assert result.goodput_gbps <= rate * availability + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(pattern=st.lists(st.booleans(), min_size=10, max_size=200))
    def test_delivered_never_exceeds_transmitted(self, pattern):
        result = run_arq(np.array(pattern, dtype=bool), 1e-3, 23.5)
        assert result.delivered_packets <= result.transmissions


class TestStreamProperties:
    @settings(max_examples=20, deadline=None)
    @given(up_fraction=st.floats(min_value=0.0, max_value=1.0),
           seed=st.integers(min_value=0, max_value=99))
    def test_frame_accounting_conserved(self, up_fraction, seed):
        rng = np.random.default_rng(seed)
        link = rng.random(2000) < up_fraction
        video = VideoFormat("t", 640, 480, 30.0, 24)
        report = stream_over_link(video, link, 1e-3, 1.0)
        assert 0 <= report.late_frames <= report.frames
        assert 0.0 <= report.late_fraction <= 1.0
        assert report.longest_late_burst() <= report.frames

    @settings(max_examples=20, deadline=None)
    @given(capacity=st.floats(min_value=0.5, max_value=50.0))
    def test_more_capacity_never_hurts(self, capacity):
        link = np.ones(1500, dtype=bool)
        video = VideoFormat("t", 1920, 1080, 30.0, 24)
        lo = stream_over_link(video, link, 1e-3, capacity)
        hi = stream_over_link(video, link, 1e-3, capacity * 2)
        assert hi.late_fraction <= lo.late_fraction + 1e-9


class TestPlanProperties:
    @settings(max_examples=20, deadline=None)
    @given(width=st.floats(min_value=1.0, max_value=4.0),
           depth=st.floats(min_value=1.0, max_value=4.0))
    def test_more_txs_more_coverage(self, width, depth):
        room = Room(width_m=width, depth_m=depth)
        constraints = CoverageConstraints()
        center = (width / 2, depth / 2)
        corner = (0.3, 0.3)
        one = CoveragePlan(room, constraints, [center])
        two = CoveragePlan(room, constraints, [center, corner])
        assert two.coverage_fraction(0.4) >= \
            one.coverage_fraction(0.4) - 1e-12

    @settings(max_examples=20, deadline=None)
    @given(x=st.floats(min_value=0.0, max_value=3.0),
           y=st.floats(min_value=0.0, max_value=3.0))
    def test_coverage_fraction_in_unit_interval(self, x, y):
        room = Room(width_m=3.0, depth_m=3.0)
        plan = CoveragePlan(room, CoverageConstraints(), [(x, y)])
        fraction = plan.coverage_fraction(0.4)
        assert 0.0 <= fraction <= 1.0


class TestServoProperties:
    @settings(max_examples=30, deadline=None)
    @given(step=st.floats(min_value=1e-5, max_value=0.3),
           t=st.floats(min_value=0.0, max_value=0.01))
    def test_error_never_exceeds_step(self, step, t):
        servo = ServoModel.calibrated()
        assert servo.error_at(t, step) <= step + 1e-15

    @settings(max_examples=30, deadline=None)
    @given(a=st.floats(min_value=1e-4, max_value=0.1),
           b=st.floats(min_value=1e-4, max_value=0.1))
    def test_settle_time_monotone_in_step(self, a, b):
        servo = ServoModel.calibrated()
        lo, hi = min(a, b), max(a, b)
        assert servo.settle_time_s(lo) <= servo.settle_time_s(hi) + 1e-12


class TestVibrationProperties:
    @settings(max_examples=20, deadline=None)
    @given(freq=st.floats(min_value=0.5, max_value=300.0),
           amp=st.floats(min_value=0.0, max_value=5e-3),
           t=st.floats(min_value=0.0, max_value=5.0))
    def test_jitter_amplitude_bound(self, freq, amp, t):
        overlay = VibrationOverlay(
            StaticProfile(Pose.identity(), 10.0),
            frequency_hz=freq, linear_amplitude_m=amp)
        pose = overlay.pose_at(t)
        assert np.all(np.abs(pose.position) <= amp + 1e-12)


class TestSparklineProperties:
    @settings(max_examples=30, deadline=None)
    @given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6),
                           min_size=1, max_size=300),
           width=st.integers(min_value=1, max_value=100))
    def test_output_length_bounded(self, values, width):
        line = sparkline(values, width=width)
        assert 1 <= len(line) <= width
        assert all(c in " .:-=+*#" for c in line)
