"""The completion journal under kill-at-any-byte corruption."""

import pytest

from repro.faults import mangle_json, tear_file
from repro.orchestrator import Journal, JournalRecord


def record(i):
    return JournalRecord(unit_key=f"key{i}", group=f"u{i}",
                         payload_sha=f"sha{i}")


@pytest.fixture()
def journal(tmp_path):
    return Journal(tmp_path / "journal.ndjson")


class TestRoundtrip:
    def test_append_replay(self, journal):
        for i in range(3):
            journal.append(record(i))
        records, dropped = journal.replay()
        assert dropped == 0
        assert sorted(records) == ["key0", "key1", "key2"]
        assert records["key1"].group == "u1"
        assert records["key1"].status == "done"

    def test_missing_file_is_empty(self, journal):
        assert journal.replay() == ({}, 0)

    def test_rewritten_unit_latest_wins(self, journal):
        journal.append(record(0))
        journal.append(JournalRecord(unit_key="key0", group="u0",
                                     payload_sha="sha0-after-rerun"))
        records, _ = journal.replay()
        assert records["key0"].payload_sha == "sha0-after-rerun"


class TestTornWrites:
    def test_torn_tail_is_invisible(self, journal):
        for i in range(3):
            journal.append(record(i))
        # SIGKILL mid-append: the last record loses its tail bytes.
        tear_file(journal.path, drop_bytes=7)
        records, dropped = journal.replay()
        assert sorted(records) == ["key0", "key1"]
        assert dropped > 0

    def test_flipped_bytes_fail_the_checksum(self, journal):
        journal.append(record(0))
        journal.append(record(1))
        data = bytearray(journal.path.read_bytes())
        # Corrupt a byte inside the *first* line's record body.
        target = data.index(b"key0"[0], data.index(b"record"))
        data[target] ^= 0x5A
        journal.path.write_bytes(bytes(data))
        records, dropped = journal.replay()
        # Everything from the corrupt line on is untrusted.
        assert records == {}
        assert dropped == len(data)

    def test_repair_truncates_to_good_prefix(self, journal):
        for i in range(3):
            journal.append(record(i))
        good_size = None
        # Size of the 2-record prefix = file minus the last line.
        lines = journal.path.read_bytes().splitlines(keepends=True)
        good_size = sum(len(line) for line in lines[:2])
        tear_file(journal.path, drop_bytes=3)
        journal.replay(repair=True)
        assert journal.path.stat().st_size == good_size
        # Appends continue cleanly from the repaired prefix.
        journal.append(record(9))
        records, dropped = journal.replay()
        assert dropped == 0
        assert sorted(records) == ["key0", "key1", "key9"]

    def test_mangled_file_drops_from_corruption_on(self, journal):
        for i in range(4):
            journal.append(record(i))
        mangle_json(journal.path)
        records, dropped = journal.replay()
        assert dropped > 0
        # The intact prefix survives; nothing bogus is invented.
        assert all(key in {f"key{i}" for i in range(4)}
                   for key in records)


class TestRepairEdges:
    """``replay(repair=True)`` at the awkward corners."""

    def test_repair_of_empty_file_is_a_noop(self, journal):
        journal.path.write_bytes(b"")
        records, dropped = journal.replay(repair=True)
        assert (records, dropped) == ({}, 0)
        assert journal.path.stat().st_size == 0

    def test_repair_of_clean_file_changes_nothing(self, journal):
        for i in range(2):
            journal.append(record(i))
        before = journal.path.read_bytes()
        records, dropped = journal.replay(repair=True)
        assert dropped == 0
        assert sorted(records) == ["key0", "key1"]
        assert journal.path.read_bytes() == before

    def test_exactly_one_torn_line_repairs_to_empty(self, journal):
        journal.append(record(0))
        # Tear the ONLY record: the verified prefix is zero bytes.
        data = journal.path.read_bytes()
        journal.path.write_bytes(data[:len(data) // 2])
        records, dropped = journal.replay(repair=True)
        assert records == {}
        assert dropped > 0
        assert journal.path.stat().st_size == 0
        # The journal is fully usable again after the repair.
        journal.append(record(5))
        assert sorted(journal.replay()[0]) == ["key5"]

    def test_trailing_partial_crc_is_dropped(self, journal):
        journal.append(record(0))
        good = journal.path.read_bytes()
        # A second line whose body parses but whose crc is truncated
        # to a prefix: the checksum comparison must reject it.
        bad = good.decode().replace('"crc":"', '"crc":"000')
        journal.path.write_bytes(good + bad.encode())
        records, dropped = journal.replay(repair=True)
        assert sorted(records) == ["key0"]
        assert dropped == len(bad)
        assert journal.path.read_bytes() == good

    def test_repair_is_idempotent(self, journal):
        for i in range(3):
            journal.append(record(i))
        tear_file(journal.path, drop_bytes=5)
        journal.replay(repair=True)
        after_first = journal.path.read_bytes()
        records, dropped = journal.replay(repair=True)
        assert dropped == 0
        assert journal.path.read_bytes() == after_first
        assert sorted(records) == ["key0", "key1"]
