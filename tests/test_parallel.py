"""Unit tests for the deterministic chunked process-pool map."""

import pytest

from repro.parallel import (
    chunk_items,
    default_workers,
    parallel_map,
)


def square(x):
    """Module-level so it pickles into pool workers."""
    return x * x


def explode(x):
    raise RuntimeError("worker failure")


class TestChunking:
    def test_chunks_concatenate_to_input(self):
        items = list(range(17))
        chunks = chunk_items(items, 5)
        assert [len(c) for c in chunks] == [5, 5, 5, 2]
        assert [x for c in chunks for x in c] == items

    def test_single_chunk(self):
        assert chunk_items([1, 2], 10) == [[1, 2]]

    def test_empty(self):
        assert chunk_items([], 3) == []

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            chunk_items([1], 0)


class TestParallelMap:
    def test_serial_matches_comprehension(self):
        items = list(range(25))
        assert parallel_map(square, items, workers=1) == \
            [x * x for x in items]

    def test_none_workers_is_serial(self):
        assert parallel_map(square, [3, 4], workers=None) == [9, 16]

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            parallel_map(square, [1], workers=0)

    def test_empty_items(self):
        assert parallel_map(square, [], workers=4) == []

    def test_parallel_preserves_order(self):
        items = list(range(40))
        assert parallel_map(square, items, workers=3) == \
            [x * x for x in items]

    def test_parallel_matches_serial(self):
        items = list(range(23))
        assert parallel_map(square, items, workers=4) == \
            parallel_map(square, items, workers=1)

    def test_explicit_chunk_size(self):
        items = list(range(11))
        assert parallel_map(square, items, workers=2, chunk_size=2) == \
            [x * x for x in items]

    def test_lambda_falls_back_to_serial(self):
        # Lambdas do not pickle; the map must still return the right
        # answer via the in-process fallback.
        items = list(range(10))
        assert parallel_map(lambda x: x + 1, items, workers=4) == \
            [x + 1 for x in items]

    def test_serial_path_propagates_exceptions(self):
        with pytest.raises(RuntimeError):
            parallel_map(explode, [1], workers=1)

    def test_default_workers_positive(self):
        assert default_workers() >= 1
