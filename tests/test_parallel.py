"""Unit tests for the deterministic chunked process-pool map."""

import concurrent.futures

import pytest

from repro.determinism import derive
from repro.parallel import (
    chunk_items,
    default_workers,
    parallel_map,
)


def square(x):
    """Module-level so it pickles into pool workers."""
    return x * x


def explode(x):
    raise RuntimeError("worker failure")


def noisy_sum(seed):
    """A float pipeline whose bits would expose any stream fork."""
    return float(derive(seed).standard_normal(8).sum())


class TestChunking:
    def test_chunks_concatenate_to_input(self):
        items = list(range(17))
        chunks = chunk_items(items, 5)
        assert [len(c) for c in chunks] == [5, 5, 5, 2]
        assert [x for c in chunks for x in c] == items

    def test_single_chunk(self):
        assert chunk_items([1, 2], 10) == [[1, 2]]

    def test_empty(self):
        assert chunk_items([], 3) == []

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            chunk_items([1], 0)


class TestParallelMap:
    def test_serial_matches_comprehension(self):
        items = list(range(25))
        assert parallel_map(square, items, workers=1) == \
            [x * x for x in items]

    def test_none_workers_is_serial(self):
        assert parallel_map(square, [3, 4], workers=None) == [9, 16]

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            parallel_map(square, [1], workers=0)

    def test_empty_items(self):
        assert parallel_map(square, [], workers=4) == []

    def test_parallel_preserves_order(self):
        items = list(range(40))
        assert parallel_map(square, items, workers=3) == \
            [x * x for x in items]

    def test_parallel_matches_serial(self):
        items = list(range(23))
        assert parallel_map(square, items, workers=4) == \
            parallel_map(square, items, workers=1)

    def test_explicit_chunk_size(self):
        items = list(range(11))
        assert parallel_map(square, items, workers=2, chunk_size=2) == \
            [x * x for x in items]

    def test_lambda_falls_back_to_serial(self):
        # Lambdas do not pickle; the map must still return the right
        # answer via the in-process fallback.
        items = list(range(10))
        assert parallel_map(lambda x: x + 1, items, workers=4) == \
            [x + 1 for x in items]

    def test_serial_path_propagates_exceptions(self):
        with pytest.raises(RuntimeError):
            parallel_map(explode, [1], workers=1)

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestDefaultWorkers:
    """The worker-count resolution ladder: env var, affinity, cpus."""

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3

    def test_env_override_must_be_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError):
            default_workers()

    def test_env_override_must_be_positive(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError):
            default_workers()

    def test_respects_affinity_mask(self, monkeypatch):
        # Containers pin processes to a core subset; cpu_count alone
        # would oversubscribe the pool.
        import os
        if not hasattr(os, "sched_getaffinity"):
            pytest.skip("platform has no scheduler affinity")
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.setattr(os, "sched_getaffinity",
                            lambda pid: {0, 1, 2, 3, 4})
        assert default_workers() == 5

    def test_ladder_order_env_beats_affinity_beats_cpu_count(
            self, monkeypatch):
        # The full ladder, each rung distinct so order is observable:
        # REPRO_WORKERS=2 > affinity mask of 5 > cpu_count of 7.
        import os
        if not hasattr(os, "sched_getaffinity"):
            pytest.skip("platform has no scheduler affinity")
        monkeypatch.setattr(os, "sched_getaffinity",
                            lambda pid: {0, 1, 2, 3, 4})
        monkeypatch.setattr(os, "cpu_count", lambda: 7)
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert default_workers() == 2  # env wins over both
        monkeypatch.delenv("REPRO_WORKERS")
        assert default_workers() == 5  # affinity wins over cpu_count
        monkeypatch.delattr(os, "sched_getaffinity")
        assert default_workers() == 7  # cpu_count is the last rung


class TestSerialFallback:
    """The silent serial fallback, proven rather than assumed."""

    def test_lambda_fallback_runs_in_this_process(self):
        # A lambda cannot reach the workers, so every call must land
        # in the parent process -- observable through a closure.
        calls = []

        def tag(x):
            calls.append(x)
            return x + 1

        items = list(range(10))
        assert parallel_map(tag, items, workers=4) == \
            [x + 1 for x in items]
        assert calls == items  # in order, once each, in-process

    def test_broken_pool_falls_back(self, monkeypatch):
        attempts = []

        class BrokenPool:
            def __init__(self, max_workers=None):
                attempts.append(max_workers)
                raise OSError("no processes allowed here")

        monkeypatch.setattr(concurrent.futures,
                            "ProcessPoolExecutor", BrokenPool)
        items = list(range(12))
        assert parallel_map(square, items, workers=4) == \
            [x * x for x in items]
        assert attempts  # the pool WAS attempted: fallback exercised

    def test_pool_that_dies_mid_map_falls_back(self, monkeypatch):
        class DyingPool:
            def __init__(self, max_workers=None):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def map(self, fn, *iterables):
                raise concurrent.futures.process.BrokenProcessPool(
                    "worker crashed")

        monkeypatch.setattr(concurrent.futures,
                            "ProcessPoolExecutor", DyingPool)
        items = list(range(7))
        assert parallel_map(square, items, workers=2) == \
            [x * x for x in items]

    def test_fallback_is_byte_identical_to_serial(self, monkeypatch):
        seeds = list(range(20))
        serial = parallel_map(noisy_sum, seeds, workers=1)

        class BrokenPool:
            def __init__(self, max_workers=None):
                raise OSError("no processes allowed here")

        monkeypatch.setattr(concurrent.futures,
                            "ProcessPoolExecutor", BrokenPool)
        fallen_back = parallel_map(noisy_sum, seeds, workers=4)
        assert fallen_back == serial  # exact float equality, not approx


def square_row(x):
    """Row fn for the array transport tests below."""
    return {"y": float(x * x)}


class TestPooledCleanup:
    """The shm teardown in ``_fill_pooled`` catches only OSError now
    (a crashed worker's atexit hooks racing the parent's cleanup);
    anything else must propagate.  This pins the tolerated path."""

    def test_cleanup_survives_already_unlinked_blocks(self, monkeypatch):
        import numpy as np

        from repro import parallel as par

        created = []
        real_create = par._create_shm

        def recording_create(name, array):
            handle, record = real_create(name, array)
            created.append(record[0])
            return handle, record

        monkeypatch.setattr(par, "_create_shm", recording_create)

        class EagerUnlinkPool:
            """In-process stand-in whose teardown unlinks the shared
            blocks before the parent's own cleanup gets to them."""

            def __init__(self, max_workers=None):
                pass

            def __enter__(self):
                return self

            def map(self, fn, *iterables):
                return list(map(fn, *iterables))

            def __exit__(self, *exc):
                for block in created:
                    block.unlink()
                return False

        monkeypatch.setattr(concurrent.futures,
                            "ProcessPoolExecutor", EagerUnlinkPool)
        items = list(range(8))
        outputs = par._allocate_outputs(
            len(items), {"y": ((), np.float64)})
        # Direct call: parallel_map_arrays would mask a cleanup crash
        # behind its serial fallback, and this must NOT fall back.
        par._fill_pooled(square_row, items, outputs, workers=2,
                         chunk_size=None, batched=False)
        assert created, "shared blocks were never allocated"
        assert outputs["y"].tolist() == [float(x * x) for x in items]


class TestPendingCallChildPipeGone:
    """``_pending_call_child`` swallows only BrokenPipeError/OSError
    when the parent vanished; run the body in-process against a pipe
    whose read end is already closed to pin both report paths."""

    def test_result_send_to_dead_parent_is_swallowed(self):
        from multiprocessing import Pipe

        from repro.parallel import _pending_call_child

        recv, child = Pipe(duplex=False)
        recv.close()
        _pending_call_child(child, square, 3)  # must not raise

    def test_error_report_to_dead_parent_is_swallowed(self):
        from multiprocessing import Pipe

        from repro.parallel import _pending_call_child

        recv, child = Pipe(duplex=False)
        recv.close()
        _pending_call_child(child, explode, 3)  # must not raise
