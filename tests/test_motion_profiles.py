"""Unit tests for motion profiles, the rail, and the rotation stage."""

import numpy as np
import pytest

from repro.motion import (
    AngularStrokeProfile,
    LinearRail,
    LinearStrokeProfile,
    RotationStage,
    StaticProfile,
    StrokeSchedule,
)
from repro.vrh import Pose


class TestStrokeSchedule:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            StrokeSchedule(extent=0.0, speeds=[0.1])
        with pytest.raises(ValueError):
            StrokeSchedule(extent=0.3, speeds=[])
        with pytest.raises(ValueError):
            StrokeSchedule(extent=0.3, speeds=[0.1, -0.2])

    def test_duration_accounts_for_strokes_and_rests(self):
        schedule = StrokeSchedule(extent=0.4, speeds=[0.2], rest_s=0.25)
        # Two strokes of 2 s each plus two rests.
        assert schedule.duration_s == pytest.approx(4.5)

    def test_offset_starts_at_zero(self):
        schedule = StrokeSchedule(extent=0.4, speeds=[0.2])
        assert schedule.offset_at(0.0) == 0.0

    def test_offset_reaches_far_end(self):
        schedule = StrokeSchedule(extent=0.4, speeds=[0.2], rest_s=0.25)
        assert schedule.offset_at(2.0) == pytest.approx(0.4)

    def test_offset_returns(self):
        schedule = StrokeSchedule(extent=0.4, speeds=[0.2], rest_s=0.25)
        assert schedule.offset_at(4.25) == pytest.approx(0.0)

    def test_rest_holds_position(self):
        schedule = StrokeSchedule(extent=0.4, speeds=[0.2], rest_s=0.25)
        assert schedule.offset_at(2.1) == pytest.approx(0.4)

    def test_speed_at(self):
        schedule = StrokeSchedule(extent=0.4, speeds=[0.2, 0.4],
                                  rest_s=0.25)
        assert schedule.speed_at(1.0) == pytest.approx(0.2)
        assert schedule.speed_at(2.1) == 0.0  # resting
        # Fourth segment (second speed, first stroke) starts at 4.5 s.
        assert schedule.speed_at(4.6) == pytest.approx(0.4)

    def test_speeds_ramp_in_listed_order(self):
        schedule = StrokeSchedule(extent=0.2, speeds=[0.1, 0.3])
        seen = []
        t = 0.0
        while t < schedule.duration_s:
            s = schedule.speed_at(t)
            if s > 0 and (not seen or seen[-1] != s):
                seen.append(s)
            t += 0.05
        assert seen == [0.1, 0.3]

    def test_implied_speed_matches_offsets(self):
        schedule = StrokeSchedule(extent=0.4, speeds=[0.25], rest_s=0.3)
        d = (schedule.offset_at(1.0) - schedule.offset_at(0.8)) / 0.2
        assert d == pytest.approx(0.25)


class TestStaticProfile:
    def test_never_moves(self):
        pose = Pose([1, 2, 3], np.eye(3))
        profile = StaticProfile(pose)
        for t in (0.0, 1.0, 59.9):
            assert profile.pose_at(t).almost_equal(pose)


class TestLinearRail:
    def test_stroke_profile_moves_along_axis_only(self):
        rail = LinearRail(axis=[1, 0, 0], length_m=0.3)
        center = Pose([0, 0, 1], np.eye(3))
        profile = rail.stroke_profile(center, [0.1])
        a = profile.pose_at(0.0)
        b = profile.pose_at(1.5)  # mid-stroke
        delta = b.position - a.position
        assert delta[1] == pytest.approx(0.0, abs=1e-12)
        assert delta[2] == pytest.approx(0.0, abs=1e-12)
        assert delta[0] > 0

    def test_orientation_never_changes(self):
        rail = LinearRail(axis=[0, 1, 0])
        profile = rail.stroke_profile(Pose.identity(), [0.2])
        for t in np.linspace(0, profile.duration_s, 7):
            assert np.allclose(profile.pose_at(float(t)).orientation,
                               np.eye(3))

    def test_center_is_midpoint_of_travel(self):
        rail = LinearRail(axis=[1, 0, 0], length_m=0.4)
        center = Pose([5, 0, 0], np.eye(3))
        profile = rail.stroke_profile(center, [0.4])
        start = profile.pose_at(0.0).position
        end = profile.pose_at(0.999).position  # just before far end
        assert start[0] == pytest.approx(4.8)
        assert end[0] <= 5.2 + 1e-9

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            LinearRail(axis=[1, 0, 0], length_m=0.0)


class TestRotationStage:
    def test_position_never_changes(self):
        stage = RotationStage(axis=[0, 0, 1])
        profile = stage.stroke_profile(Pose([1, 2, 3], np.eye(3)),
                                       [np.radians(10)])
        for t in np.linspace(0, profile.duration_s, 7):
            assert np.allclose(profile.pose_at(float(t)).position,
                               [1, 2, 3])

    def test_sweep_is_centered(self):
        stage = RotationStage(axis=[0, 0, 1], range_rad=np.radians(20))
        base = Pose.identity()
        profile = stage.stroke_profile(base, [np.radians(10)])
        start = profile.pose_at(0.0)
        assert base.angular_distance_to(start) == pytest.approx(
            np.radians(10), rel=1e-6)

    def test_angular_speed_matches_schedule(self):
        stage = RotationStage(axis=[0, 0, 1], range_rad=np.radians(20))
        profile = stage.stroke_profile(Pose.identity(), [np.radians(8)])
        a = profile.pose_at(1.0)
        b = profile.pose_at(1.2)
        rate = a.angular_distance_to(b) / 0.2
        assert rate == pytest.approx(np.radians(8), rel=1e-6)

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            RotationStage(axis=[0, 0, 1], range_rad=0.0)
