"""Unit tests for repro.geometry.transform."""

import numpy as np
import pytest

from repro.geometry import Ray, RigidTransform, rotation_matrix


def sample_transform():
    return RigidTransform(rotation_matrix([0, 0, 1], 0.6),
                          np.array([1.0, -2.0, 0.5]))


class TestConstruction:
    def test_identity(self):
        t = RigidTransform.identity()
        assert np.allclose(t.apply_point([1, 2, 3]), [1, 2, 3])

    def test_rejects_non_rotation(self):
        with pytest.raises(ValueError):
            RigidTransform(np.diag([1.0, 1.0, -1.0]), np.zeros(3))

    def test_from_params_round_trip(self):
        params = np.array([0.1, 0.2, -0.3, 0.4, -0.5, 0.6])
        t = RigidTransform.from_params(params)
        assert np.allclose(t.to_params(), params, atol=1e-10)

    def test_from_params_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            RigidTransform.from_params([1, 2, 3])


class TestApplication:
    def test_point_gets_rotation_and_translation(self):
        t = RigidTransform(rotation_matrix([0, 0, 1], np.pi / 2),
                           np.array([10.0, 0.0, 0.0]))
        assert np.allclose(t.apply_point([1, 0, 0]), [10, 1, 0],
                           atol=1e-12)

    def test_direction_gets_rotation_only(self):
        t = RigidTransform(rotation_matrix([0, 0, 1], np.pi / 2),
                           np.array([10.0, 0.0, 0.0]))
        assert np.allclose(t.apply_direction([1, 0, 0]), [0, 1, 0],
                           atol=1e-12)

    def test_ray_transforms_consistently(self):
        t = sample_transform()
        ray = Ray([0.2, 0.3, 0.4], [0, 1, 0])
        out = t.apply_ray(ray)
        # The image of a point on the ray lies on the transformed ray.
        image = t.apply_point(ray.point_at(2.0))
        assert out.distance_to_point(image) == pytest.approx(0.0,
                                                             abs=1e-12)


class TestAlgebra:
    def test_compose_order(self):
        # compose applies the *other* transform first.
        shift = RigidTransform(np.eye(3), np.array([1.0, 0.0, 0.0]))
        turn = RigidTransform(rotation_matrix([0, 0, 1], np.pi / 2),
                              np.zeros(3))
        composed = turn.compose(shift)
        assert np.allclose(composed.apply_point([0, 0, 0]), [0, 1, 0],
                           atol=1e-12)

    def test_inverse_undoes(self):
        t = sample_transform()
        round_trip = t.inverse().compose(t)
        assert round_trip.almost_equal(RigidTransform.identity(),
                                       tol=1e-12)

    def test_inverse_of_inverse(self):
        t = sample_transform()
        assert t.inverse().inverse().almost_equal(t, tol=1e-12)

    def test_compose_associative(self):
        a = sample_transform()
        b = RigidTransform(rotation_matrix([1, 0, 0], 0.3),
                           np.array([0.0, 1.0, 0.0]))
        c = RigidTransform(rotation_matrix([0, 1, 0], -0.8),
                           np.array([0.5, 0.0, -1.0]))
        left = a.compose(b).compose(c)
        right = a.compose(b.compose(c))
        assert left.almost_equal(right, tol=1e-10)

    def test_almost_equal_tolerance(self):
        t = sample_transform()
        nudged = RigidTransform(t.rotation, t.translation + 1e-12)
        assert t.almost_equal(nudged, tol=1e-9)
        assert not t.almost_equal(
            RigidTransform(t.rotation, t.translation + 1.0))
