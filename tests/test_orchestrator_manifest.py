"""The sweep manifest: two-tier content keys and the file contract."""

import json

import pytest

from repro.orchestrator import (
    ManifestError,
    build_manifest,
    canonical_json,
    content_key,
)
from repro.orchestrator.manifest import (
    read_manifest_key,
    write_manifest,
)


def demo_units(n=4):
    return [{"seed": 7, "index": i} for i in range(n)]


class TestContentKeys:
    def test_canonical_json_is_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == \
            canonical_json({"a": 2, "b": 1})

    def test_rejects_nan_and_unjsonable(self):
        with pytest.raises(ManifestError):
            canonical_json({"x": float("nan")})
        with pytest.raises(ManifestError):
            content_key({"x": object()})

    def test_unit_keys_depend_on_every_tier1_input(self):
        base = build_manifest("s", {"c": 1}, demo_units())
        other_name = build_manifest("t", {"c": 1}, demo_units())
        other_common = build_manifest("s", {"c": 2}, demo_units())
        keys = {m.units[0].key
                for m in (base, other_name, other_common)}
        assert len(keys) == 3

    def test_sweep_key_depends_on_unit_order(self):
        fwd = build_manifest("s", {}, demo_units())
        rev = build_manifest("s", {}, list(reversed(demo_units())))
        assert fwd.sweep_key != rev.sweep_key
        # ... but each *unit* keeps its identity under reordering.
        assert {u.key for u in fwd.units} == {u.key for u in rev.units}

    def test_rederivation_is_exact(self):
        a = build_manifest("s", {"c": 1}, demo_units())
        b = build_manifest("s", {"c": 1}, demo_units())
        assert a.sweep_key == b.sweep_key
        assert [u.key for u in a.units] == [u.key for u in b.units]


class TestValidation:
    def test_empty_sweep_rejected(self):
        with pytest.raises(ManifestError, match="no work units"):
            build_manifest("s", {}, [])

    def test_duplicate_units_rejected(self):
        units = demo_units() + [demo_units()[0]]
        with pytest.raises(ManifestError, match="identical parameters"):
            build_manifest("s", {}, units)


class TestManifestFile:
    def test_write_read_roundtrip(self, tmp_path):
        manifest = build_manifest("s", {"c": 1}, demo_units())
        path = tmp_path / "MANIFEST.json"
        write_manifest(path, manifest)
        assert read_manifest_key(path) == manifest.sweep_key
        payload = json.loads(path.read_text())
        assert [u["params"] for u in payload["units"]] == demo_units()

    def test_unreadable_manifest_raises_manifest_error(self, tmp_path):
        path = tmp_path / "MANIFEST.json"
        with pytest.raises(ManifestError):
            read_manifest_key(path)          # missing
        path.write_text("{not json")
        with pytest.raises(ManifestError):
            read_manifest_key(path)          # torn
        path.write_text('{"version": 999, "sweep_key": "x"}')
        with pytest.raises(ManifestError):
            read_manifest_key(path)          # wrong schema version

    def test_group_names_are_stable_and_unique(self):
        manifest = build_manifest("s", {}, demo_units(16))
        groups = [u.group for u in manifest.units]
        assert len(set(groups)) == len(groups)
        assert all(g.startswith("u") and len(g) == 17 for g in groups)
