"""Unit tests for the seeded fault models."""

import numpy as np
import pytest

from repro.faults import (
    AttenuationRamp,
    GalvoSaturation,
    StuckMirror,
    TrackerDrift,
    poisson_windows,
)


class TestPoissonWindows:
    def rng(self, seed=0):
        return np.random.default_rng(seed)

    def test_deterministic_per_seed(self):
        a = poisson_windows(self.rng(5), 20.0, 0.5, 0.2)
        b = poisson_windows(self.rng(5), 20.0, 0.5, 0.2)
        assert a == b

    def test_different_seeds_differ(self):
        a = poisson_windows(self.rng(1), 20.0, 0.5, 0.2)
        b = poisson_windows(self.rng(2), 20.0, 0.5, 0.2)
        assert a != b

    def test_windows_do_not_overlap(self):
        windows = poisson_windows(self.rng(3), 60.0, 2.0, 0.3)
        for (_, prev_end), (start, _) in zip(windows, windows[1:]):
            assert start >= prev_end

    def test_windows_clip_to_duration(self):
        for seed in range(10):
            for start, end in poisson_windows(self.rng(seed), 5.0,
                                              1.0, 1.0):
                assert 0.0 <= start < end <= 5.0

    def test_zero_rate_yields_nothing(self):
        assert poisson_windows(self.rng(0), 10.0, 0.0, 0.5) == []


class TestDrift:
    def test_zero_before_onset(self):
        drift = TrackerDrift(onset_s=2.0, rate_m_per_s=0.01, max_m=0.1)
        assert np.allclose(drift.offset_at(1.0), 0.0)

    def test_ramps_then_saturates(self):
        drift = TrackerDrift(onset_s=1.0, rate_m_per_s=0.01, max_m=0.02,
                             direction=(1.0, 0.0, 0.0))
        assert np.linalg.norm(drift.offset_at(2.0)) == pytest.approx(0.01)
        assert np.linalg.norm(drift.offset_at(50.0)) == pytest.approx(0.02)


class TestAttenuationRamp:
    def test_ramp_shape(self):
        ramp = AttenuationRamp(start_s=1.0, ramp_db_per_s=2.0, max_db=5.0)
        assert ramp.extra_loss_db(0.5) == 0.0
        assert ramp.extra_loss_db(2.0) == pytest.approx(2.0)
        assert ramp.extra_loss_db(100.0) == pytest.approx(5.0)


class TestActuatorModels:
    def test_saturation_clamps_symmetrically(self):
        sat = GalvoSaturation(limit_v=6.0)
        assert sat.clamp(7.5) == 6.0
        assert sat.clamp(-9.0) == -6.0
        assert sat.clamp(1.25) == 1.25

    def test_stuck_mirror_window(self):
        stuck = StuckMirror(start_s=3.0, end_s=4.0, side="tx", axis=0)
        assert not stuck.active_at(2.9)
        assert stuck.active_at(3.5)
        assert not stuck.active_at(4.1)
