"""Unit tests for LearnedSystem and the mapping-fit plumbing."""

import numpy as np
import pytest

from repro.core import GmaModel, LearnedSystem
from repro.core.mapping import (
    AlignedSample,
    coincidence_error_m,
    coincidence_residuals,
    fit_mapping,
    mean_coincidence_error_m,
)
from repro.galvo import canonical_gma
from repro.geometry import RigidTransform, euler_to_matrix
from repro.vrh import Pose


@pytest.fixture()
def kspace_models():
    tx = GmaModel(canonical_gma(np.radians(1.0)))
    rx = GmaModel(canonical_gma(np.radians(1.0)))
    return tx, rx


class TestLearnedSystem:
    def test_from_mapping_params_shapes(self, kspace_models):
        tx, rx = kspace_models
        with pytest.raises(ValueError):
            LearnedSystem.from_mapping_params(tx, rx, np.zeros(11))

    def test_tx_transform_applied(self, kspace_models):
        tx, rx = kspace_models
        params = np.zeros(12)
        params[0] = 1.0  # shift TX by +x
        system = LearnedSystem.from_mapping_params(tx, rx, params)
        moved = system.tx_model_vr.beam(0.0, 0.0).origin
        original = tx.beam(0.0, 0.0).origin
        assert np.allclose(moved - original, [1.0, 0.0, 0.0])

    def test_rx_model_follows_reported_pose(self, kspace_models):
        tx, rx = kspace_models
        system = LearnedSystem.from_mapping_params(tx, rx, np.zeros(12))
        a = system.rx_model_vr(Pose.identity()).beam(0.0, 0.0).origin
        b = system.rx_model_vr(
            Pose([0.5, 0.0, 0.0], np.eye(3))).beam(0.0, 0.0).origin
        assert np.allclose(b - a, [0.5, 0.0, 0.0])

    def test_rx_mapping_composes_before_pose(self, kspace_models):
        tx, rx = kspace_models
        params = np.zeros(12)
        params[6] = 0.1  # RX offset +x in the reported frame
        system = LearnedSystem.from_mapping_params(tx, rx, params)
        turned = Pose([0, 0, 0],
                      euler_to_matrix(0.0, 0.0, np.pi / 2))
        origin = system.rx_model_vr(turned).beam(0.0, 0.0).origin
        base = LearnedSystem.from_mapping_params(
            tx, rx, np.zeros(12)).rx_model_vr(turned).beam(
                0.0, 0.0).origin
        # The +x body offset appears rotated into +y by the pose.
        assert np.allclose(origin - base, [0.0, 0.1, 0.0], atol=1e-12)

    def test_tx_params_accessor(self, kspace_models):
        tx, rx = kspace_models
        system = LearnedSystem.from_mapping_params(tx, rx, np.zeros(12))
        assert np.allclose(system.tx_params().to_vector(),
                           tx.params.to_vector())


def synthetic_aligned_sample(tx, rx, tx_map, rx_map, pose):
    """An exactly aligned 5-tuple built from known geometry.

    Place RX via (pose o rx_map), then find voltages whose beams
    coincide: aim both GMAs at each other's rest origins via the
    inverse solver -- which is exactly the pointing construction.
    """
    from repro.core import point
    system = LearnedSystem.from_mapping_params(
        tx, rx, np.concatenate([tx_map.to_params(),
                                rx_map.to_params()]))
    command = point(system, pose)
    return AlignedSample(v_tx1=command.v_tx1, v_tx2=command.v_tx2,
                         v_rx1=command.v_rx1, v_rx2=command.v_rx2,
                         reported_pose=pose)


class TestCoincidence:
    def make_geometry(self):
        tx = GmaModel(canonical_gma(np.radians(1.0)))
        rx = GmaModel(canonical_gma(np.radians(1.0)))
        # TX 1.8 m away along +z, flipped to face the RX.
        tx_map = RigidTransform(euler_to_matrix(np.pi, 0.0, 0.0),
                                np.array([0.0, 0.05, 1.8]))
        rx_map = RigidTransform(euler_to_matrix(0.05, -0.03, 0.1),
                                np.array([0.02, 0.01, 0.05]))
        return tx, rx, tx_map, rx_map

    def test_aligned_sample_has_tiny_residual(self):
        tx, rx, tx_map, rx_map = self.make_geometry()
        pose = Pose([0.05, -0.02, 0.0], euler_to_matrix(0.02, 0, 0.05))
        sample = synthetic_aligned_sample(tx, rx, tx_map, rx_map, pose)
        system = LearnedSystem.from_mapping_params(
            tx, rx, np.concatenate([tx_map.to_params(),
                                    rx_map.to_params()]))
        assert coincidence_error_m(system, sample) < 1e-4

    def test_wrong_mapping_has_large_residual(self):
        tx, rx, tx_map, rx_map = self.make_geometry()
        pose = Pose.identity()
        sample = synthetic_aligned_sample(tx, rx, tx_map, rx_map, pose)
        wrong = np.concatenate([tx_map.to_params(),
                                rx_map.to_params()])
        wrong[0] += 0.05  # 5 cm TX placement error
        system = LearnedSystem.from_mapping_params(tx, rx, wrong)
        assert coincidence_error_m(system, sample) > 5e-3

    def test_residual_vector_shape(self):
        tx, rx, tx_map, rx_map = self.make_geometry()
        pose = Pose.identity()
        sample = synthetic_aligned_sample(tx, rx, tx_map, rx_map, pose)
        system = LearnedSystem.from_mapping_params(
            tx, rx, np.concatenate([tx_map.to_params(),
                                    rx_map.to_params()]))
        assert coincidence_residuals(system, sample).shape == (6,)

    def test_fit_recovers_perturbed_mapping(self):
        # Noise-free synthetic world: the 12-parameter fit should
        # drive the coincidence error to ~zero from a perturbed start.
        tx, rx, tx_map, rx_map = self.make_geometry()
        poses = [Pose([0.05 * i, -0.03 * i, 0.02 * i],
                      euler_to_matrix(0.02 * i, 0.01 * i, -0.03 * i))
                 for i in range(-3, 4)]
        samples = [synthetic_aligned_sample(tx, rx, tx_map, rx_map, p)
                   for p in poses]
        true_params = np.concatenate([tx_map.to_params(),
                                      rx_map.to_params()])
        rng = np.random.default_rng(0)
        initial = true_params + rng.normal(0.0, 0.01, size=12)
        system = fit_mapping(tx, rx, samples, initial)
        assert mean_coincidence_error_m(system, samples) < 1e-4

    def test_fit_requires_enough_samples(self):
        tx, rx, tx_map, rx_map = self.make_geometry()
        sample = synthetic_aligned_sample(tx, rx, tx_map, rx_map,
                                          Pose.identity())
        with pytest.raises(ValueError):
            fit_mapping(tx, rx, [sample], np.zeros(12))

    def test_fit_validates_initial_length(self):
        tx, rx, tx_map, rx_map = self.make_geometry()
        samples = [synthetic_aligned_sample(
            tx, rx, tx_map, rx_map, Pose.identity())] * 5
        with pytest.raises(ValueError):
            fit_mapping(tx, rx, samples, np.zeros(7))

    def test_mean_error_requires_samples(self, kspace_models):
        tx, rx = kspace_models
        system = LearnedSystem.from_mapping_params(tx, rx, np.zeros(12))
        with pytest.raises(ValueError):
            mean_coincidence_error_m(system, [])
