"""Tests for the 40G multi-wavelength designs (Section 6)."""

import pytest

from repro.link import (
    CWDM4_WAVELENGTHS_NM,
    MultiWavelengthDesign,
    link_25g,
    link_40g_commodity,
    link_40g_custom,
)


class TestLaneGeometry:
    def test_four_cwdm_lanes(self):
        design = link_40g_commodity()
        assert len(design.lane_reports()) == 4
        assert design.aggregate_rate_gbps == pytest.approx(41.25)

    def test_band_center_is_design_wavelength(self):
        design = link_40g_commodity()
        center = (CWDM4_WAVELENGTHS_NM[0] + CWDM4_WAVELENGTHS_NM[-1]) / 2
        assert design.design_wavelength_nm == pytest.approx(center)

    def test_outer_lanes_pay_more(self):
        reports = link_40g_commodity().lane_reports()
        inner = [r for r in reports
                 if r.wavelength_nm in (1291.0, 1311.0)]
        outer = [r for r in reports
                 if r.wavelength_nm in (1271.0, 1331.0)]
        assert min(o.chromatic_loss_db for o in outer) > \
            max(i.chromatic_loss_db for i in inner)

    def test_band_is_symmetric(self):
        reports = link_40g_commodity().lane_reports()
        assert reports[0].chromatic_loss_db == pytest.approx(
            reports[-1].chromatic_loss_db)


class TestFeasibility:
    def test_both_feasible_at_design_range(self):
        assert link_40g_commodity().is_feasible()
        assert link_40g_custom().is_feasible()

    def test_custom_has_more_margin(self):
        assert (link_40g_custom().worst_lane_margin_db()
                > link_40g_commodity().worst_lane_margin_db() + 2.0)

    def test_bad_singlet_kills_outer_lanes(self):
        # Dial the chromatic coefficient up to a poor singlet's level:
        # the outer CWDM lanes stop closing while an achromatic
        # collimator at the same budget still works.
        bad = MultiWavelengthDesign(name="bad singlet", base=link_25g(),
                                    chromatic_db_per_nm=0.30)
        assert not bad.is_feasible()
        assert link_40g_custom().is_feasible()

    def test_worst_lane_is_min(self):
        design = link_40g_commodity()
        reports = design.lane_reports()
        assert design.worst_lane_margin_db() == pytest.approx(
            min(r.margin_db for r in reports))


class TestMovementTolerance:
    def test_chromatic_penalty_shrinks_tolerance(self):
        commodity = link_40g_commodity()
        custom = link_40g_custom()
        assert (commodity.worst_lane_angular_tolerance_rad()
                < custom.worst_lane_angular_tolerance_rad())

    def test_tolerance_zero_when_infeasible(self):
        design = MultiWavelengthDesign(
            name="hopeless", base=link_25g(),
            chromatic_db_per_nm=1.0)  # absurd chroma
        assert design.worst_lane_angular_tolerance_rad() == 0.0

    def test_custom_near_single_wavelength_tolerance(self):
        # The custom collimator nearly recovers the base design's
        # single-wavelength tolerance.
        from repro.link import rx_angular_tolerance_rad
        base = rx_angular_tolerance_rad(link_25g(), 1.75)
        custom = link_40g_custom().worst_lane_angular_tolerance_rad(1.75)
        assert custom == pytest.approx(base, rel=0.06)
