"""Unit tests for repro.optics.units."""

import pytest

from repro.optics import (
    MIN_POWER_DBM,
    MIN_RATIO_DB,
    apply_gain_dbm,
    db_to_linear,
    dbm_to_mw,
    linear_to_db,
    mw_to_dbm,
)


class TestDbmConversions:
    def test_zero_dbm_is_one_mw(self):
        assert dbm_to_mw(0.0) == pytest.approx(1.0)

    def test_ten_db_is_factor_ten(self):
        assert dbm_to_mw(10.0) == pytest.approx(10.0)
        assert dbm_to_mw(-10.0) == pytest.approx(0.1)

    def test_round_trip(self):
        for dbm in (-25.0, -10.0, 0.0, 4.0, 23.0):
            assert mw_to_dbm(dbm_to_mw(dbm)) == pytest.approx(dbm)

    def test_non_positive_power_floors(self):
        assert mw_to_dbm(0.0) == MIN_POWER_DBM
        assert mw_to_dbm(-1.0) == MIN_POWER_DBM


class TestDbRatios:
    def test_three_db_doubles(self):
        assert db_to_linear(3.0103) == pytest.approx(2.0, rel=1e-4)

    def test_round_trip(self):
        for db in (-30.0, -3.0, 0.0, 20.0):
            assert linear_to_db(db_to_linear(db)) == pytest.approx(db)

    def test_zero_ratio_floors(self):
        assert linear_to_db(0.0) == MIN_RATIO_DB
        assert linear_to_db(-1.0) == MIN_RATIO_DB

    def test_ratio_floor_is_its_own_quantity(self):
        # Same magnitude today, but a dB ratio is not a dBm level;
        # the two floors must be independently importable.
        assert MIN_RATIO_DB == MIN_POWER_DBM == -200.0


class TestApplyGain:
    def test_gain_adds(self):
        assert apply_gain_dbm(-25.0, 20.0) == pytest.approx(-5.0)

    def test_loss_subtracts(self):
        assert apply_gain_dbm(0.0, -30.0) == pytest.approx(-30.0)
