"""The batched slot kernel against the per-trace oracle.

``simulate_trace`` is the reference; ``simulate_batch`` must produce
the element-for-element identical ``connected`` tensor across every
TP-latency regime (carry, no-carry, never-realigns), worker count and
corpus shape.
"""

import warnings

import numpy as np
import pytest

from repro.motion import TraceBatch, generate_batch, generate_dataset
from repro.parallel import ParallelFallbackWarning
from repro.simulate import (
    BatchTimeslotResult,
    TimeslotParams,
    simulate_batch,
    simulate_dataset,
    simulate_trace,
)
from repro.store import ColumnStore

SEED = 2022
DUR = 5.0


@pytest.fixture(scope="module")
def corpus():
    return generate_batch(viewers=2, videos=3, duration_s=DUR,
                          seed=SEED)


def _oracle(batch, params):
    return [simulate_trace(trace, params) for trace in batch.traces()]


class TestBitIdentity:
    # Latencies straddle every kernel regime: 0 (no carry), 1/2
    # (carry), 9 (carry nearly the whole interval), 10/15 (realignment
    # never lands within the default 10-slot report).
    @pytest.mark.parametrize("latency", [0, 1, 2, 9, 10, 15])
    def test_matches_simulate_trace(self, corpus, latency):
        params = TimeslotParams(tp_latency_slots=latency)
        got = simulate_batch(corpus, params)
        for row, want in zip(got.results(), _oracle(corpus, params)):
            assert np.array_equal(row.connected, want.connected)
            assert row.viewer == want.viewer
            assert row.video == want.video

    def test_accepts_plain_trace_sequences(self, corpus):
        got = simulate_batch(corpus.traces())
        for row, want in zip(got.results(),
                             _oracle(corpus, TimeslotParams())):
            assert np.array_equal(row.connected, want.connected)

    def test_chunk_size_does_not_change_bytes(self, corpus):
        whole = simulate_batch(corpus, chunk_size=None)
        chopped = simulate_batch(corpus, chunk_size=2)
        assert np.array_equal(whole.connected, chopped.connected)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_workers_do_not_change_bytes(self, corpus, workers):
        serial = simulate_batch(corpus, workers=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ParallelFallbackWarning)
            pooled = simulate_batch(corpus, workers=workers,
                                    chunk_size=2)
        assert np.array_equal(serial.connected, pooled.connected)

    def test_dataset_engine_parity(self):
        traces = generate_dataset(viewers=2, videos=2, duration_s=DUR)
        loop = simulate_dataset(traces, engine="loop")
        batch = simulate_dataset(traces, engine="batch")
        for got, want in zip(batch, loop):
            assert np.array_equal(got.connected, want.connected)
            assert (got.viewer, got.video) == (want.viewer, want.video)


class TestEdgeShapes:
    def test_empty_batch_of_traces(self):
        batch = generate_batch(viewers=0, videos=5, duration_s=DUR)
        result = simulate_batch(batch)
        assert len(result) == 0
        assert result.results() == []
        assert result.per_trace_availability().shape == (0,)

    def test_empty_trace_sequence_rejected(self):
        with pytest.raises(ValueError):
            simulate_batch([])

    def test_single_trace(self, corpus):
        batch = generate_batch(viewers=1, videos=1, duration_s=DUR,
                               seed=SEED)
        got = simulate_batch(batch)
        want = simulate_trace(batch.trace(0))
        assert np.array_equal(got.result(0).connected, want.connected)

    def test_trace_shorter_than_one_report(self):
        # duration == dt: a single report interval (n == 1), which
        # exercises the report-0-only early return.
        batch = generate_batch(viewers=2, videos=1, duration_s=0.01,
                               dt_s=0.01, seed=SEED)
        assert batch.steps == 1
        got = simulate_batch(batch)
        for row, want in zip(got.results(),
                             _oracle(batch, TimeslotParams())):
            assert np.array_equal(row.connected, want.connected)

    def test_zero_step_trace(self):
        # A duration-0 trace has one sample and zero steps: the replay
        # is empty but must stay well-formed.
        batch = generate_batch(viewers=1, videos=1, duration_s=0.0,
                               seed=SEED)
        assert batch.steps == 0
        got = simulate_batch(batch)
        assert got.slots == 0
        assert got.per_trace_availability().tolist() == [0.0]

    def test_availability_matches_loop(self, corpus):
        got = simulate_batch(corpus).per_trace_availability()
        want = [r.availability
                for r in _oracle(corpus, TimeslotParams())]
        assert got.tolist() == want


class TestStoreIntegration:
    def test_save_load_roundtrip(self, corpus, tmp_path):
        store = ColumnStore(tmp_path)
        result = simulate_batch(corpus, store=store)
        loaded = BatchTimeslotResult.load(store)
        assert np.array_equal(loaded.connected, result.connected)
        assert np.array_equal(loaded.viewer_ids, result.viewer_ids)
        attrs = store.read_group("slots").attrs
        assert attrs["slots_per_report"] == 10
        assert attrs["tp_latency_slots"] == 2

    def test_loaded_rows_replay_as_results(self, corpus, tmp_path):
        store = ColumnStore(tmp_path)
        simulate_batch(corpus, store=store)
        loaded = BatchTimeslotResult.load(store)
        for row, want in zip(loaded.results(),
                             _oracle(corpus, TimeslotParams())):
            assert np.array_equal(row.connected, want.connected)
