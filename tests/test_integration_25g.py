"""End-to-end integration: the 25G prototype (Section 5.3.1).

The session-scoped fixtures elsewhere exercise the 10G pipeline; this
module proves the identical learning code works unchanged on the 25G
design -- the paper's point that "our core technique (the TP
mechanism) generalizes to higher bandwidths without change".
"""

import numpy as np
import pytest

from repro.core import point
from repro.link import link_25g
from repro.simulate import Testbed


@pytest.fixture(scope="module")
def rig_25g():
    testbed = Testbed(design=link_25g(), seed=11)
    return testbed, testbed.calibrate()


class Test25GPipeline:
    def test_calibration_completes(self, rig_25g):
        _, outcome = rig_25g
        assert outcome.system is not None
        assert len(outcome.mapping_samples) == 30

    def test_pointing_keeps_25g_connected(self, rig_25g):
        testbed, outcome = rig_25g
        connected = 0
        for pose in testbed.evaluation_poses(8):
            command = point(outcome.system, testbed.tracker.report(pose))
            testbed.apply_command(command)
            connected += testbed.channel.evaluate(pose).connected
        assert connected == 8

    def test_throughput_is_25g_class(self, rig_25g):
        testbed, _ = rig_25g
        assert testbed.design.sfp.optimal_throughput_gbps == \
            pytest.approx(23.5)

    def test_same_tp_code_no_wavelength_inputs(self, rig_25g):
        # The pointing function's signature is pure geometry: nothing
        # about the 25G design (wavelength, budget) enters it.
        testbed, outcome = rig_25g
        pose = testbed.evaluation_poses(1)[0]
        report = testbed.tracker.report(pose)
        command = point(outcome.system, report)
        assert 1 <= command.iterations <= 8

    def test_power_within_margin_of_peak(self, rig_25g):
        testbed, outcome = rig_25g
        pose = testbed.evaluation_poses(1)[0]
        command = point(outcome.system, testbed.tracker.report(pose))
        testbed.apply_command(command)
        state = testbed.channel.evaluate(pose)
        peak = testbed.design.peak_power_dbm(state.range_m)
        assert state.received_power_dbm > peak - 5.0
