"""Edge-case tests for the FSO channel geometry."""

import numpy as np
import pytest

from repro.core import point
from repro.geometry import rotation_matrix
from repro.link import NOISE_FLOOR_DBM
from repro.vrh import Pose


def oracle_align(testbed, pose):
    report = Pose.from_transform(
        testbed.tracker.true_report_transform(pose))
    command = point(testbed.oracle_system(), report)
    testbed.apply_command(command)


class TestChannelEdges:
    def test_rx_behind_tx_gets_no_light(self, testbed):
        pose = testbed.home_pose
        oracle_align(testbed, pose)
        # Move the headset to the far side of the transmitter: the
        # beam cannot reach backwards.
        tx = testbed.tx_mirror_world
        behind = Pose(2 * tx - pose.position - np.array([0, 0, 0.2]),
                      pose.orientation)
        state = testbed.channel.evaluate(behind)
        assert state.received_power_dbm == NOISE_FLOOR_DBM
        assert not state.connected

    def test_power_never_below_noise_floor(self, testbed, rng):
        pose = testbed.home_pose
        oracle_align(testbed, pose)
        for _ in range(10):
            wild = Pose(pose.position + rng.uniform(-1, 1, 3),
                        rotation_matrix(rng.normal(size=3),
                                        rng.uniform(0, 1))
                        @ pose.orientation)
            state = testbed.channel.evaluate(wild)
            assert state.received_power_dbm >= NOISE_FLOOR_DBM

    def test_range_positive_always(self, testbed, rng):
        pose = testbed.home_pose
        oracle_align(testbed, pose)
        for _ in range(5):
            jittered = Pose(pose.position + rng.normal(0, 0.1, 3),
                            pose.orientation)
            assert testbed.channel.evaluate(jittered).range_m > 0

    def test_symmetric_offsets_symmetric_power(self, testbed):
        # The coupling model is even in lateral offset.
        pose = testbed.home_pose
        oracle_align(testbed, pose)
        left = Pose(pose.position + np.array([4e-3, 0, 0]),
                    pose.orientation)
        right = Pose(pose.position - np.array([4e-3, 0, 0]),
                     pose.orientation)
        p_left = testbed.channel.evaluate(left).received_power_dbm
        p_right = testbed.channel.evaluate(right).received_power_dbm
        assert p_left == pytest.approx(p_right, abs=1.5)

    def test_evaluate_is_pure(self, testbed):
        # Evaluating the channel must not mutate any state: two calls
        # in a row agree exactly.
        pose = testbed.home_pose
        oracle_align(testbed, pose)
        a = testbed.channel.evaluate(pose)
        b = testbed.channel.evaluate(pose)
        assert a.received_power_dbm == b.received_power_dbm
        assert a.axis_offset_m == b.axis_offset_m

    def test_lemma_points_error_nonnegative(self, testbed):
        pose = testbed.home_pose
        oracle_align(testbed, pose)
        assert testbed.channel.lemma_points(pose).error >= 0.0
