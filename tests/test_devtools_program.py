"""Tests for the whole-program analyzer (``python -m repro analyze``).

Covers the project index (extraction, caching, invalidation), each
interprocedural rule family against seeded true-positive fixture trees,
the baseline ratchet, noqa suppression, the CLI exit-code contract, and
the GitHub annotation format.  A marker-gated perf smoke test asserts
the warm index cache actually pays for itself.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.devtools.program import (
    analyze_paths,
    build_index,
    load_baseline,
    module_name_for,
    write_baseline,
)

ROOT = Path(__file__).parent.parent
FIXTURES = Path(__file__).parent / "fixtures" / "program"
SRC_REPRO = ROOT / "src" / "repro"


def run_analyze_cli(*args: str,
                    cwd: Path = ROOT) -> "subprocess.CompletedProcess[str]":
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.run(
        [sys.executable, "-m", "repro", "analyze", *args],
        capture_output=True, text=True, env=env, cwd=str(cwd))


def rules_found(proc: "subprocess.CompletedProcess[str]"):
    payload = json.loads(proc.stdout)
    return sorted(f["rule"] for f in payload["findings"]), payload


# ---------------------------------------------------------------------------
# The repo-wide invariant: src/repro analyzes clean.
# ---------------------------------------------------------------------------

def test_src_repro_analyzes_clean():
    proc = run_analyze_cli(str(SRC_REPRO), "--no-cache")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_committed_baseline_is_empty():
    baseline = load_baseline(str(ROOT / ".analyze-baseline.json"))
    assert baseline == set()


# ---------------------------------------------------------------------------
# Rule families against the seeded true-positive trees.
# ---------------------------------------------------------------------------

def test_layering_fixture_trips_every_l_rule():
    proc = run_analyze_cli(str(FIXTURES / "layering"), "--no-cache",
                           "--select", "L", "--format", "json")
    assert proc.returncode == 1, proc.stdout + proc.stderr
    rules, _ = rules_found(proc)
    assert rules == ["L001", "L002", "L003"]


def test_layering_messages_name_the_modules():
    proc = run_analyze_cli(str(FIXTURES / "layering"), "--no-cache",
                           "--select", "L")
    assert "repro.geometry" in proc.stdout  # L001 upward import
    assert "repro.core -> repro.link" in proc.stdout  # L002 cycle
    assert "experimental" in proc.stdout  # L003 unassigned


def test_unitflow_fixture_trips_every_x_rule():
    proc = run_analyze_cli(str(FIXTURES / "unitflow"), "--no-cache",
                           "--select", "X", "--format", "json")
    assert proc.returncode == 1, proc.stdout + proc.stderr
    rules, _ = rules_found(proc)
    assert rules == ["X001", "X002", "X002", "X003"]


def test_x001_is_positional_and_cross_function():
    proc = run_analyze_cli(str(FIXTURES / "unitflow"), "--no-cache",
                           "--select", "X001")
    assert proc.returncode == 1
    assert "tx_dbm" in proc.stdout and "power_mw" in proc.stdout


def test_rngflow_fixture_trips_every_t_rule():
    proc = run_analyze_cli(str(FIXTURES / "rngflow"), "--no-cache",
                           "--select", "T", "--format", "json")
    assert proc.returncode == 1, proc.stdout + proc.stderr
    rules, _ = rules_found(proc)
    assert rules == ["T001", "T002", "T003"]


def test_fixture_determinism_module_may_mint():
    proc = run_analyze_cli(str(FIXTURES / "rngflow"), "--no-cache",
                           "--select", "T001", "--format", "json")
    _, payload = rules_found(proc)
    paths = {f["path"] for f in payload["findings"]}
    assert all("determinism" not in path for path in paths)


def test_concurrency_fixture_trips_every_c_rule():
    proc = run_analyze_cli(str(FIXTURES / "concurrency"), "--no-cache",
                           "--select", "C", "--format", "json")
    assert proc.returncode == 1, proc.stdout + proc.stderr
    rules, _ = rules_found(proc)
    # Exactly one finding per rule: every safe twin in the fixture
    # (read-only capture, start+i index, worker-opened handle,
    # sorted(set(...)) items) must pass.
    assert rules == ["C001", "C002", "C003", "C004"]


def test_concurrency_messages_name_the_culprits():
    proc = run_analyze_cli(str(FIXTURES / "concurrency"), "--no-cache",
                           "--select", "C")
    assert "repro.spool.CACHE" in proc.stdout  # C001 mutated global
    assert "out[i]" in proc.stdout  # C002 unprovable index
    assert "repro.spool.TRACE" in proc.stdout  # C003 parent handle
    assert "set()" in proc.stdout  # C004 unordered items


def test_c002_accepts_start_offset_form():
    proc = run_analyze_cli(str(FIXTURES / "concurrency"), "--no-cache",
                           "--select", "C002", "--format", "json")
    _, payload = rules_found(proc)
    assert len(payload["findings"]) == 1
    assert "fill_rows" in payload["findings"][0]["message"]
    assert "fill_rows_safe" not in payload["findings"][0]["message"]


def test_crashsafety_fixture_trips_every_w_rule():
    proc = run_analyze_cli(str(FIXTURES / "crashsafety"), "--no-cache",
                           "--select", "W", "--format", "json")
    assert proc.returncode == 1, proc.stdout + proc.stderr
    rules, _ = rules_found(proc)
    # W001 twice: the direct json.dump and the interprocedurally
    # resolved _dump("spool_counts.json") call site.  The atomic twin
    # (tmp sibling -> fsync -> rename through the same helper) passes.
    assert rules == ["W001", "W001", "W002", "W003"]


def test_w001_resolves_helper_writes_at_call_sites():
    proc = run_analyze_cli(str(FIXTURES / "crashsafety"), "--no-cache",
                           "--select", "W001", "--format", "json")
    _, payload = rules_found(proc)
    messages = [f["message"] for f in payload["findings"]]
    assert any("_dump" in m and "spool_counts" in m for m in messages)


def test_atomic_and_journal_modules_are_exempt():
    proc = run_analyze_cli(str(FIXTURES / "crashsafety"), "--no-cache",
                           "--select", "W", "--format", "json")
    _, payload = rules_found(proc)
    paths = {f["path"] for f in payload["findings"]}
    # store/atomic.py rewrites a published path in place and the
    # journal fixture appends to sweep_journal.ndjson: both sanctioned.
    assert all("atomic" not in path for path in paths)
    assert all("orchestrator" not in path for path in paths)


# ---------------------------------------------------------------------------
# noqa suppression flows through to program rules.
# ---------------------------------------------------------------------------

def test_program_noqa_suppresses(tmp_path):
    tree = tmp_path / "repro"
    tree.mkdir()
    (tree / "__init__.py").write_text("")
    (tree / "rogue.py").write_text(
        "import numpy as np\n\n\n"
        "def minted():\n"
        "    return np.random.default_rng(7)"
        "  # repro: noqa[T001]\n")
    result = analyze_paths([str(tmp_path)], select=["T"],
                           cache_dir=None)
    assert result.findings == []
    assert result.suppressed == 1


def test_max_waivers_budget(tmp_path):
    tree = tmp_path / "repro"
    tree.mkdir()
    (tree / "__init__.py").write_text("")
    (tree / "rogue.py").write_text(
        "import numpy as np\n\n\n"
        "def minted():\n"
        "    return np.random.default_rng(7)"
        "  # repro: noqa[T001]\n")
    # The waiver keeps the tree clean, but it still spends budget.
    proc = run_analyze_cli(str(tmp_path), "--no-cache", "--select",
                           "T", "--max-waivers", "1")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    proc = run_analyze_cli(str(tmp_path), "--no-cache", "--select",
                           "T", "--max-waivers", "0")
    assert proc.returncode == 1
    assert "waiver" in proc.stdout


# ---------------------------------------------------------------------------
# Baseline ratchet.
# ---------------------------------------------------------------------------

def test_baseline_freezes_old_findings_only(tmp_path):
    baseline = tmp_path / "baseline.json"
    # Snapshot only the L001 finding into the baseline.
    proc = run_analyze_cli(str(FIXTURES / "layering"), "--no-cache",
                           "--select", "L001", "--baseline",
                           str(baseline), "--write-baseline")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert baseline.exists()
    assert len(load_baseline(str(baseline))) == 1

    # Same selection against the baseline: nothing new, exit 0.
    proc = run_analyze_cli(str(FIXTURES / "layering"), "--no-cache",
                           "--select", "L001", "--baseline",
                           str(baseline), "--format", "json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    _, payload = rules_found(proc)
    assert payload["findings"] == []
    assert payload["baselined"] == 1

    # The wider selection surfaces L002/L003 as NEW findings: exit 1.
    proc = run_analyze_cli(str(FIXTURES / "layering"), "--no-cache",
                           "--select", "L", "--baseline",
                           str(baseline), "--format", "json")
    assert proc.returncode == 1
    rules, payload = rules_found(proc)
    assert rules == ["L002", "L003"]
    assert payload["baselined"] == 1


def test_stale_baseline_entries_are_counted(tmp_path):
    baseline = tmp_path / "baseline.json"
    write_baseline(str(baseline), [])
    payload = json.loads(baseline.read_text())
    payload["findings"].append(
        {"path": "gone.py", "rule": "L001", "message": "fixed"})
    baseline.write_text(json.dumps(payload))
    result = analyze_paths([str(FIXTURES / "rngflow")], select=["T"],
                           cache_dir=None, baseline_path=str(baseline))
    assert result.stale_baseline == 1


# ---------------------------------------------------------------------------
# Index cache: reuse, invalidation, corruption tolerance.
# ---------------------------------------------------------------------------

def test_cache_round_trip_is_equivalent(tmp_path):
    cache = tmp_path / "cache"
    cold = analyze_paths([str(FIXTURES / "rngflow")], select=["T"],
                         cache_dir=str(cache))
    warm = analyze_paths([str(FIXTURES / "rngflow")], select=["T"],
                         cache_dir=str(cache))
    assert cold.extracted > 0 and cold.from_cache == 0
    assert warm.extracted == 0
    assert warm.from_cache == cold.extracted
    assert warm.findings == cold.findings


def test_cache_invalidates_on_content_change(tmp_path):
    tree = tmp_path / "tree"
    shutil.copytree(FIXTURES / "rngflow", tree)
    cache = tmp_path / "cache"
    analyze_paths([str(tree)], select=["T"], cache_dir=str(cache))
    target = tree / "repro" / "simulate" / "rig.py"
    target.write_text(target.read_text() + "\n\nEXTRA = 1\n")
    warm = analyze_paths([str(tree)], select=["T"],
                         cache_dir=str(cache))
    assert warm.extracted == 1  # only the edited module re-parsed
    assert warm.from_cache > 0


def test_effect_table_round_trips_through_cache(tmp_path):
    from repro.devtools.program.effects import (
        attach_cached_table,
        effect_table,
    )
    cache = tmp_path / "cache"
    cold = analyze_paths([str(FIXTURES / "crashsafety")], select=["W"],
                         cache_dir=str(cache))
    payload = json.loads((cache / "program-index.json").read_text())
    assert payload.get("effects"), "effect summaries not persisted"

    # A fresh index adopts the cached table instead of re-inferring.
    index = build_index([str(FIXTURES / "crashsafety")],
                        cache_dir=None)
    assert attach_cached_table(index, payload["effects"])
    assert effect_table(index).from_cache

    # And the warm analyze run reproduces the cold findings exactly.
    warm = analyze_paths([str(FIXTURES / "crashsafety")], select=["W"],
                         cache_dir=str(cache))
    assert warm.extracted == 0
    assert warm.findings == cold.findings


def test_effect_table_cache_rejects_stale_key(tmp_path):
    from repro.devtools.program.effects import attach_cached_table
    tree = tmp_path / "tree"
    shutil.copytree(FIXTURES / "crashsafety", tree)
    cache = tmp_path / "cache"
    analyze_paths([str(tree)], select=["W"], cache_dir=str(cache))
    payload = json.loads((cache / "program-index.json").read_text())
    target = tree / "repro" / "spool.py"
    target.write_text(target.read_text() + "\nEXTRA = 1\n")
    index = build_index([str(tree)], cache_dir=None)
    assert not attach_cached_table(index, payload["effects"])


def test_corrupt_cache_is_ignored(tmp_path):
    cache = tmp_path / "cache"
    cache.mkdir()
    (cache / "program-index.json").write_text("{not json")
    result = analyze_paths([str(FIXTURES / "rngflow")], select=["T"],
                           cache_dir=str(cache))
    assert result.extracted > 0
    assert len(result.findings) == 3


# ---------------------------------------------------------------------------
# CLI surface.
# ---------------------------------------------------------------------------

def test_exit_two_on_unknown_rule():
    proc = run_analyze_cli(str(FIXTURES / "layering"), "--no-cache",
                           "--select", "Z9")
    assert proc.returncode == 2


def test_warn_only_reports_but_exits_zero():
    proc = run_analyze_cli(str(FIXTURES / "layering"), "--no-cache",
                           "--select", "L", "--warn-only")
    assert proc.returncode == 0
    assert "L001" in proc.stdout


def test_list_rules_covers_all_families():
    proc = run_analyze_cli("--list-rules")
    assert proc.returncode == 0
    for rule_id in ("L001", "L002", "L003", "X001", "X002", "X003",
                    "T001", "T002", "T003", "C001", "C002", "C003",
                    "C004", "W001", "W002", "W003",
                    "S001", "S002", "S003", "Y001", "Y002", "Y003",
                    "P001", "P002", "K001", "K002", "K003"):
        assert rule_id in proc.stdout


def test_github_format_emits_annotations():
    proc = run_analyze_cli(str(FIXTURES / "rngflow"), "--no-cache",
                           "--select", "T001", "--format", "github")
    assert proc.returncode == 1
    assert "::error file=" in proc.stdout
    assert "title=T001" in proc.stdout


def test_syntax_error_is_reported_not_fatal(tmp_path):
    tree = tmp_path / "repro"
    tree.mkdir()
    (tree / "__init__.py").write_text("")
    (tree / "broken.py").write_text("def broken(:\n")
    result = analyze_paths([str(tmp_path)], cache_dir=None)
    assert [f.rule_id for f in result.findings] == ["E999"]


# ---------------------------------------------------------------------------
# Index internals.
# ---------------------------------------------------------------------------

def test_module_names_root_at_repro():
    path = FIXTURES / "rngflow" / "repro" / "simulate" / "rig.py"
    assert module_name_for(str(path)) == "repro.simulate.rig"
    init = FIXTURES / "rngflow" / "repro" / "simulate" / "__init__.py"
    assert module_name_for(str(init)) == "repro.simulate"


def test_index_resolves_cross_module_calls():
    index = build_index([str(FIXTURES / "unitflow")], cache_dir=None)
    info = index.modules["repro.link"]
    calls = {call.func for call in info.calls}
    assert "linear_to_db" in calls
    converter = next(c for c in info.calls
                     if c.func == "linear_to_db")
    callee = index.resolve_call("repro.link", converter)
    assert callee is not None
    assert callee.qualified == "repro.optics.units.linear_to_db"


def test_index_resolution_follows_reexports():
    index = build_index([str(SRC_REPRO)], cache_dir=None)
    # repro.simulate.rig imports GalvoHardware via the repro.galvo
    # facade; the index must resolve it to the defining module's class.
    info = index.modules["repro.simulate.rig"]
    call = next(c for c in info.calls if c.func == "GalvoHardware")
    callee = index.resolve_call("repro.simulate.rig", call)
    assert callee is not None
    assert callee.kind == "class"
    assert callee.module.startswith("repro.galvo")


# ---------------------------------------------------------------------------
# Perf smoke: the warm cache must pay for itself.
# ---------------------------------------------------------------------------

@pytest.mark.perf
def test_warm_cache_at_least_5x_faster(tmp_path):
    # The default selection includes the C/W families, so the cold run
    # pays for effect inference and the warm runs must reuse the
    # persisted effect table as well as the per-file extractions.
    cache = tmp_path / "cache"
    started = time.perf_counter()
    cold = analyze_paths([str(SRC_REPRO)], cache_dir=str(cache))
    cold_s = time.perf_counter() - started
    assert cold.extracted > 0
    cached = json.loads((cache / "program-index.json").read_text())
    assert cached.get("effects"), "effect summaries not persisted"
    assert cached.get("arrays"), "array summaries not persisted"
    assert cached.get("exceptions"), "escape sets not persisted"

    warm_s = float("inf")
    for _ in range(3):  # best-of-3 to shrug off scheduler noise
        started = time.perf_counter()
        warm = analyze_paths([str(SRC_REPRO)], cache_dir=str(cache))
        warm_s = min(warm_s, time.perf_counter() - started)
        assert warm.extracted == 0
        assert warm.profile["cache"]["exceptions"] == "hit"
    assert warm_s * 5 <= cold_s, (
        f"warm re-run {warm_s:.4f}s vs cold {cold_s:.4f}s: cache "
        "no longer pays for itself")
