"""Tests for the eye-safety analysis."""

import math

import pytest

from repro.link import link_10g_collimated, link_10g_diverging, link_25g
from repro.optics import (
    GaussianBeam,
    assess_design,
    class1_limit_mw,
    hazard_distance_m,
    is_class1_at,
    power_through_pupil_mw,
)
from repro.optics.gaussian import divergence_for_diameter


def diverging_beam():
    div = divergence_for_diameter(16e-3, 1.75, 2e-3)
    return GaussianBeam(2e-3, div, wavelength_m=1550e-9)


class TestLimits:
    def test_1550_is_retina_safe_band(self):
        assert class1_limit_mw(1550.0) == pytest.approx(10.0)

    def test_1310_band_is_tighter(self):
        assert class1_limit_mw(1310.0) < class1_limit_mw(1550.0)

    def test_visible_band_tightest(self):
        assert class1_limit_mw(850.0) < class1_limit_mw(1310.0)

    def test_rejects_bad_wavelength(self):
        with pytest.raises(ValueError):
            class1_limit_mw(0.0)


class TestPupilPower:
    def test_narrow_beam_all_in_pupil(self):
        # A 2 mm beam fits entirely inside a 7 mm pupil.
        beam = diverging_beam()
        power = power_through_pupil_mw(beam, 0.0, 0.0)  # 1 mW launch
        assert power == pytest.approx(1.0, abs=0.01)

    def test_spreading_reduces_pupil_power(self):
        beam = diverging_beam()
        near = power_through_pupil_mw(beam, 20.0, 0.2)
        far = power_through_pupil_mw(beam, 20.0, 2.0)
        assert far < near

    def test_rejects_negative_distance(self):
        with pytest.raises(ValueError):
            power_through_pupil_mw(diverging_beam(), 0.0, -1.0)


class TestHazardDistance:
    def test_safe_launch_has_zero_hazard(self):
        # 1 mW launch: Class 1 everywhere at 1550 nm.
        assert hazard_distance_m(diverging_beam(), 0.0) == 0.0

    def test_hot_diverging_launch_has_finite_hazard(self):
        # 100 mW into a diverging beam: unsafe near, safe far.
        d = hazard_distance_m(diverging_beam(), 20.0)
        assert 0.1 < d < 20.0
        assert is_class1_at(diverging_beam(), 20.0, d * 1.01)
        assert not is_class1_at(diverging_beam(), 20.0, d * 0.9)

    def test_hot_collimated_launch_never_safe(self):
        collimated = GaussianBeam(5e-3, 0.0, wavelength_m=1550e-9)
        assert math.isinf(hazard_distance_m(collimated, 20.0))


class TestDesignAssessment:
    def test_10g_designs_safe_at_link_range(self):
        # Footnote 12's claim, for the 1550 nm prototypes.
        for design in (link_10g_diverging(), link_10g_collimated()):
            report = assess_design(design)
            assert report.safe_at_link_range

    def test_10g_hazard_inside_link_range(self):
        # ... but not arbitrarily close to the aperture.
        report = assess_design(link_10g_diverging())
        assert 0.0 < report.hazard_distance_m < 1.75

    def test_25g_flagged_at_1310(self):
        # The tighter 1310 nm limit catches the amplified 25G model --
        # an honest design finding (the real 25G ran unamplified).
        report = assess_design(link_25g())
        assert not report.safe_at_link_range

    def test_report_fields(self):
        report = assess_design(link_10g_diverging())
        assert report.wavelength_nm == pytest.approx(1550.0)
        assert report.launched_power_dbm < 20.0  # TX-side loss applied
