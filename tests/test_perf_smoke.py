"""Marker-gated performance smoke tests (``-m perf`` selects them).

Small enough to ride in tier-1: they assert the vectorized slot model
agrees with the reference loop on a real (tiny) dataset and that the
``python -m repro bench`` artifact round-trips through ``json.load``.
Absolute speed assertions live in ``python -m repro bench`` itself, not
here, so CI timing noise cannot break the suite.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.motion import generate_dataset
from repro.simulate import simulate_dataset
from repro.simulate.timeslot import _simulate_trace_reference

pytestmark = pytest.mark.perf


class TestVectorizedSmoke:
    def test_vectorized_equals_reference_on_dataset(self):
        traces = generate_dataset(viewers=2, videos=2, duration_s=3.0)
        vectorized = simulate_dataset(traces)
        for trace, fast in zip(traces, vectorized):
            slow = _simulate_trace_reference(trace)
            np.testing.assert_array_equal(fast.connected,
                                          slow.connected)


class TestBenchArtifact:
    @pytest.fixture(scope="class")
    def bench_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("bench") / \
            "BENCH_trace_pipeline.json"
        code = main(["bench", "--viewers", "1", "--videos", "2",
                     "--duration", "2.0", "--ref-traces", "1",
                     "--output", str(path)])
        assert code == 0
        return path

    def test_round_trips_through_json_load(self, bench_path):
        with open(bench_path) as handle:
            payload = json.load(handle)
        assert payload == json.loads(json.dumps(payload))

    def test_reports_required_fields(self, bench_path):
        with open(bench_path) as handle:
            payload = json.load(handle)
        for key in ("wall_s", "traces_per_s", "slots_per_s",
                    "speedup_vs_reference", "traces", "slots",
                    "workers"):
            assert key in payload
        assert payload["traces"] == 2
        assert payload["slots"] == 2 * 200 * 10
        assert payload["wall_s"] > 0
        assert payload["speedup_vs_reference"] > 1.0
