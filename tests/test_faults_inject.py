"""Unit tests for the fault injection wrappers."""

import numpy as np
import pytest

from repro.core import PointingCommand
from repro.faults import (
    AttenuationRamp,
    ChannelBlockage,
    CommandJitter,
    CommandLoss,
    EventLog,
    FaultInjector,
    GalvoSaturation,
    NullInjector,
    TrackerDrift,
    TrackerDropout,
    TrackerFreeze,
)
from repro.link.design import NOISE_FLOOR_DBM
from repro.simulate import Testbed


@pytest.fixture(scope="module")
def rig():
    return Testbed(seed=3)


def command(v=1.0):
    return PointingCommand(v_tx1=v, v_tx2=-v, v_rx1=v, v_rx2=-v,
                           iterations=3)


class TestArming:
    def test_arm_events_logged_at_time_zero(self):
        injector = FaultInjector([TrackerDropout(), CommandLoss()],
                                 duration_s=5.0, seed=0)
        arms = [e for e in injector.log.events
                if e.kind.startswith("arm-")]
        assert len(arms) == 2
        assert all(e.t_s == 0.0 for e in arms)

    def test_unknown_model_rejected(self):
        with pytest.raises(TypeError):
            FaultInjector([object()], duration_s=5.0)

    def test_same_seed_same_schedule(self, rig):
        faults = [TrackerDropout(rate_hz=2.0), ChannelBlockage(rate_hz=1.0)]
        a = FaultInjector(faults, 20.0, seed=9)
        b = FaultInjector(faults, 20.0, seed=9)
        for tl_a, tl_b in zip(a._dropouts + a._blockages,
                              b._dropouts + b._blockages):
            assert tl_a.windows == tl_b.windows


class TestTrackerSide:
    def test_dropout_returns_none(self, rig):
        injector = FaultInjector(
            [TrackerDropout(rate_hz=500.0, mean_duration_s=10.0)], 1.0)
        assert injector.tracker_report(0.5, rig.tracker,
                                       rig.home_pose) is None

    def test_freeze_repeats_last_report(self, rig):
        injector = FaultInjector([TrackerFreeze(rate_hz=0.0)], 1.0)
        first = injector.tracker_report(0.1, rig.tracker, rig.home_pose)
        injector._freezes[0].windows = [(0.15, 0.9)]
        injector._freezes[0]._logged = [False]
        frozen = injector.tracker_report(0.2, rig.tracker, rig.home_pose)
        assert frozen is first

    def test_drift_shifts_report(self):
        drift = TrackerDrift(onset_s=0.0, rate_m_per_s=1.0, max_m=0.05,
                             direction=(1.0, 0.0, 0.0))
        # Twin testbeds so both trackers draw identical noise: the
        # report difference is then exactly the (saturated) drift.
        rig_a, rig_b = Testbed(seed=7), Testbed(seed=7)
        a = FaultInjector([drift], 2.0, seed=4).tracker_report(
            1.0, rig_a.tracker, rig_a.home_pose)
        b = FaultInjector([], 2.0, seed=4).tracker_report(
            1.0, rig_b.tracker, rig_b.home_pose)
        assert np.linalg.norm(a.position - b.position) == \
            pytest.approx(0.05, rel=1e-6)

    def test_calibration_report_sees_drift_not_dropouts(self, rig):
        drift = TrackerDrift(onset_s=0.0, rate_m_per_s=1.0, max_m=0.05)
        injector = FaultInjector(
            [TrackerDropout(rate_hz=500.0, mean_duration_s=10.0), drift],
            1.0)
        report = injector.calibration_report(0.5, rig.tracker,
                                             rig.home_pose)
        assert report is not None


class TestActuatorSide:
    def test_command_loss_returns_none_and_logs(self, rig):
        injector = FaultInjector([CommandLoss(probability=1.0)], 1.0)
        assert injector.apply_command(0.1, rig, command()) is None
        assert any(e.kind == "command-loss" for e in injector.log.events)

    def test_saturation_clamps_voltages(self, rig):
        injector = FaultInjector([GalvoSaturation(limit_v=0.5)], 1.0)
        injector.apply_command(0.1, rig, command(v=3.0))
        assert np.all(np.abs(rig.tx_hardware.voltages) <= 0.5)
        assert any(e.kind == "saturation" for e in injector.log.events)

    def test_jitter_consumes_rng_deterministically(self):
        a = FaultInjector([CommandJitter(max_extra_s=0.004)], 1.0, seed=2)
        b = FaultInjector([CommandJitter(max_extra_s=0.004)], 1.0, seed=2)
        xs = [a.command_latency_extra_s(0.0) for _ in range(5)]
        ys = [b.command_latency_extra_s(0.0) for _ in range(5)]
        assert xs == ys
        assert all(0.0 <= x <= 0.004 for x in xs)


class TestChannelSide:
    def test_blockage_floors_power(self, rig):
        injector = FaultInjector(
            [ChannelBlockage(rate_hz=500.0, mean_duration_s=10.0)], 1.0)
        sample = injector.channel_sample(0.5, rig.channel, rig.home_pose)
        assert sample.received_power_dbm == NOISE_FLOOR_DBM
        assert not sample.connected

    def test_attenuation_subtracts_ramp(self, rig):
        ramp = AttenuationRamp(start_s=0.0, ramp_db_per_s=1.0, max_db=3.0)
        faulted = FaultInjector([ramp], 10.0)
        clean = NullInjector()
        a = faulted.channel_sample(5.0, rig.channel, rig.home_pose)
        b = clean.channel_sample(5.0, rig.channel, rig.home_pose)
        assert a.received_power_dbm == pytest.approx(
            max(b.received_power_dbm - 3.0, NOISE_FLOOR_DBM))

    def test_null_injector_is_passthrough(self, rig):
        injector = NullInjector()
        a = injector.channel_sample(0.0, rig.channel, rig.home_pose)
        b = rig.channel.evaluate(rig.home_pose)
        assert a.received_power_dbm == b.received_power_dbm
        assert injector.log.events == ()
