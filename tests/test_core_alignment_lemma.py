"""Tests for the exhaustive alignment search and Lemma 1."""

import numpy as np
import pytest

from repro.core import point, rank_agreement, search, sweep
from repro.core.lemma import LemmaCheck
from repro.vrh import Pose


class TestSearch:
    def test_finds_peak_of_quadratic_surface(self):
        optimum = np.array([0.3, -0.2, 0.15, 0.05])

        def power(*vs):
            return -10.0 - 40.0 * float(
                np.sum((np.array(vs) - optimum) ** 2))

        result = search(power, seed=(0.0, 0.0, 0.0, 0.0))
        assert np.allclose(result.voltages, optimum, atol=2e-3)

    def test_counts_evaluations(self):
        calls = []

        def power(*vs):
            calls.append(vs)
            return -float(np.sum(np.square(vs)))

        result = search(power, seed=(0.1, 0.1, 0.1, 0.1))
        assert result.evaluations == len(calls)

    def test_rejects_wrong_seed_length(self):
        with pytest.raises(ValueError):
            search(lambda *v: 0.0, seed=(0.0, 0.0))

    def test_on_testbed_reaches_near_peak(self, testbed):
        pose = testbed.home_pose
        result = testbed.align_exhaustively(pose)
        peak = testbed.design.peak_power_dbm(
            testbed.channel.evaluate(pose).range_m)
        assert result.power_dbm > peak - 1.0

    def test_improves_on_seed(self, testbed):
        pose = testbed.home_pose
        report = Pose.from_transform(
            testbed.tracker.true_report_transform(pose))
        seed_cmd = point(testbed.oracle_system(), report)
        testbed.apply_command(seed_cmd)
        seed_power = testbed.channel.received_power_dbm(pose)
        result = testbed.align_exhaustively(pose)
        assert result.power_dbm >= seed_power - 1e-9


class TestLemma1:
    def test_rank_agreement_on_testbed(self, testbed):
        """Power ranks (inversely) with the coincidence error."""
        pose = testbed.home_pose
        aligned = testbed.align_exhaustively(pose).voltages
        power_fn = testbed.power_function(pose)

        def coincidence(*voltages):
            testbed.tx_hardware.apply(voltages[0], voltages[1])
            testbed.rx_hardware.apply(voltages[2], voltages[3])
            return testbed.channel.lemma_points(pose).error

        rng = np.random.default_rng(5)
        voltage_sets = [np.array(aligned) + rng.normal(0, scale, 4)
                        for scale in (0.0, 0.01, 0.02, 0.05, 0.1)
                        for _ in range(4)]
        checks = sweep(power_fn, coincidence, voltage_sets)
        assert rank_agreement(checks) > 0.7

    def test_aligned_configuration_minimizes_coincidence(self, testbed):
        pose = testbed.home_pose
        aligned = testbed.align_exhaustively(pose).voltages
        testbed.tx_hardware.apply(aligned[0], aligned[1])
        testbed.rx_hardware.apply(aligned[2], aligned[3])
        error_aligned = testbed.channel.lemma_points(pose).error
        rng = np.random.default_rng(6)
        for _ in range(5):
            vs = np.array(aligned) + rng.normal(0, 0.08, 4)
            testbed.tx_hardware.apply(vs[0], vs[1])
            testbed.rx_hardware.apply(vs[2], vs[3])
            assert testbed.channel.lemma_points(pose).error \
                >= error_aligned - 1e-3

    def test_rank_agreement_needs_three_checks(self):
        with pytest.raises(ValueError):
            rank_agreement([LemmaCheck(0.0, 0.0), LemmaCheck(1.0, -1.0)])
