"""Tests for the baselines the paper argues against."""

import numpy as np
import pytest

from repro.baselines import (
    ConstantOriginModel,
    DirectInverseRegressor,
    LookupFeasibility,
    run_static,
)
from repro.core import GmaModel
from repro.core.kspace import BOARD_PLANE
from repro.galvo import canonical_gma
from repro.motion import LinearRail, StaticProfile


@pytest.fixture()
def model():
    return GmaModel(canonical_gma(np.radians(1.0)))


def board_training_data(model, n_per_axis=15):
    """(targets, voltages) pairs on a virtual board 1.5 m out."""
    targets, voltages = [], []
    for v1 in np.linspace(-4, 4, n_per_axis):
        for v2 in np.linspace(-4, 4, n_per_axis):
            beam = model.beam(float(v1), float(v2))
            targets.append(beam.point_at(1.5))
            voltages.append([v1, v2])
    return np.array(targets), np.array(voltages)


class TestDirectInverse:
    def test_interpolates_on_training_surface(self, model):
        targets, voltages = board_training_data(model)
        reg = DirectInverseRegressor(degree=3).fit(targets, voltages)
        # A held-out point on the same surface: interpolation is fine.
        beam = model.beam(1.23, -0.47)
        probe = beam.point_at(1.5)
        v = reg.predict([probe])[0]
        predicted_beam = model.beam(float(v[0]), float(v[1]))
        assert predicted_beam.distance_to_point(probe) < 2e-3

    def test_fails_off_the_training_surface(self, model):
        # Footnote 3's observation: a few-hundred-sample direct fit
        # errs by centimeters away from where samples could be taken.
        targets, voltages = board_training_data(model)
        reg = DirectInverseRegressor(degree=3).fit(targets, voltages)
        beam = model.beam(1.23, -0.47)
        probe = beam.point_at(1.0)  # 0.5 m off the training surface
        v = reg.predict([probe])[0]
        predicted_beam = model.beam(float(v[0]), float(v[1]))
        # Either grossly wrong voltages or a centimeter-scale miss.
        assert predicted_beam.distance_to_point(probe) > 5e-3

    def test_rejects_unfitted_prediction(self):
        with pytest.raises(RuntimeError):
            DirectInverseRegressor().predict([[0.0, 0.0, 1.0]])

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            DirectInverseRegressor().fit(np.zeros((5, 3)),
                                         np.zeros((4, 2)))
        with pytest.raises(ValueError):
            DirectInverseRegressor().fit(np.zeros((5, 2)),
                                         np.zeros((5, 2)))

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            DirectInverseRegressor(degree=0)


class TestLookupFeasibility:
    def test_table_size_matches_footnote5(self):
        # "~10^18 in a m^3 space ... for mm-level accuracy".
        feasibility = LookupFeasibility()
        assert 1e17 <= feasibility.table_entries() <= 1e20

    def test_collection_takes_geological_time(self):
        assert LookupFeasibility().collection_years() > 1e9

    def test_even_modest_corpus_takes_years(self):
        # Footnote 3: tens of thousands+ samples at minutes each.
        years = LookupFeasibility().collection_years(samples=1e6)
        assert years > 1.0

    def test_position_cells(self):
        assert LookupFeasibility().position_cells() == pytest.approx(1e9)


class TestConstantOrigin:
    def test_origin_is_rest_origin(self, model):
        ablated = ConstantOriginModel(model)
        rest = model.beam(0.0, 0.0)
        assert np.allclose(ablated.origin, rest.origin)

    def test_matches_full_model_at_rest(self, model):
        ablated = ConstantOriginModel(model)
        flip = canonical_gma(np.radians(1.0))
        board = BOARD_PLANE
        # At rest the two models agree exactly.
        assert ablated.board_error_m(0.0, 0.0, board) < 1e-12

    def test_distortion_error_grows_with_steering(self, model):
        from repro.geometry import Plane
        ablated = ConstantOriginModel(model)
        board = Plane([0.0, 0.0, 1.5], [0.0, 0.0, 1.0])
        small = ablated.board_error_m(0.5, 0.5, board)
        large = ablated.board_error_m(4.0, 4.0, board)
        assert large > small

    def test_distortion_is_millimetric_at_cone_edge(self, model):
        # Footnote 6: ignoring the moving origin costs real accuracy
        # relative to the paper's few-mm tolerance budget.
        from repro.geometry import Plane
        ablated = ConstantOriginModel(model)
        board = Plane([0.0, 0.0, 1.5], [0.0, 0.0, 1.0])
        assert ablated.board_error_m(5.0, 5.0, board) > 0.5e-3


class TestStaticBaseline:
    def test_static_link_survives_no_motion(self, testbed):
        profile = StaticProfile(testbed.home_pose, duration_s=0.5)
        result = run_static(testbed, profile)
        assert result.uptime_fraction == 1.0

    def test_static_link_dies_under_motion(self, testbed):
        rail = LinearRail(axis=[1, 0, 0], length_m=0.3)
        profile = rail.stroke_profile(testbed.home_pose, [0.15])
        result = run_static(testbed, profile, duration_s=2.0)
        # 15 cm/s for 2 s moves ~20x beyond the lateral tolerance.
        assert result.uptime_fraction < 0.5
