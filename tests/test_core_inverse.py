"""Unit tests for the G' iterative inverse (Section 4.3)."""

import numpy as np
import pytest

from repro.core import GmaModel, solve_inverse
from repro.core.inverse import InverseDivergedError
from repro.galvo import canonical_gma


@pytest.fixture()
def model():
    return GmaModel(canonical_gma(np.radians(1.0)))


class TestSolve:
    def test_beam_passes_through_target(self, model):
        # Pick a target the real beam can reach, then recover voltages.
        target = model.beam(1.3, -0.8).point_at(1.5)
        result = solve_inverse(model, target)
        assert result.miss_distance_m < 1e-6

    def test_recovers_generating_voltages(self, model):
        target = model.beam(2.0, 1.0).point_at(1.2)
        result = solve_inverse(model, target)
        assert result.v1 == pytest.approx(2.0, abs=2e-3)
        assert result.v2 == pytest.approx(1.0, abs=2e-3)

    def test_converges_in_paper_iteration_count(self, model):
        # "In our evaluations, the above converged in 2-4 iterations."
        counts = []
        for v1, v2 in [(0.5, 0.5), (-2.0, 1.5), (3.0, -3.0), (1.0, 4.0)]:
            target = model.beam(v1, v2).point_at(1.75)
            counts.append(solve_inverse(model, target).iterations)
        assert max(counts) <= 6
        assert min(counts) >= 1

    def test_warm_start_converges_faster_or_equal(self, model):
        target = model.beam(1.5, -1.5).point_at(1.75)
        cold = solve_inverse(model, target)
        warm = solve_inverse(model, target, v1=1.49, v2=-1.49)
        assert warm.iterations <= cold.iterations

    def test_off_axis_target_reached(self, model):
        # A target not generated from the model: any point in the cone.
        target = np.array([0.2, 0.3, 1.5])
        result = solve_inverse(model, target)
        beam = model.beam(result.v1, result.v2)
        assert beam.distance_to_point(target) < 1e-6

    def test_respects_voltage_step_threshold(self, model):
        target = model.beam(0.5, 0.5).point_at(1.0)
        coarse = solve_inverse(model, target, voltage_step_v=0.01)
        fine = solve_inverse(model, target, voltage_step_v=1e-6)
        assert fine.miss_distance_m <= coarse.miss_distance_m + 1e-9

    def test_unreachable_target_needs_unphysical_voltages(self, model):
        # A target far outside the coverage cone: the pure math may
        # still "solve" it (the model is unbounded in voltage), but the
        # answer must be visibly unphysical so the hardware layer's
        # range check rejects it -- or the iteration diverges outright.
        target = np.array([0.0, -10.0, 0.0])
        try:
            result = solve_inverse(model, target, max_iterations=8)
        except InverseDivergedError:
            return
        assert max(abs(result.v1), abs(result.v2)) > 10.0
