"""Unit tests for repro.geometry.plane."""

import numpy as np
import pytest

from repro.geometry import NoIntersectionError, Plane, Ray


class TestPlaneBasics:
    def test_normal_normalized(self):
        plane = Plane([0, 0, 0], [0, 0, 4])
        assert np.allclose(plane.normal, [0, 0, 1])

    def test_signed_distance_signs(self):
        plane = Plane([0, 0, 0], [0, 0, 1])
        assert plane.signed_distance([0, 0, 2]) == pytest.approx(2.0)
        assert plane.signed_distance([0, 0, -3]) == pytest.approx(-3.0)

    def test_contains(self):
        plane = Plane([1, 1, 1], [1, 0, 0])
        assert plane.contains([1, 9, -4])
        assert not plane.contains([1.1, 0, 0])

    def test_project(self):
        plane = Plane([0, 0, 5], [0, 0, 1])
        assert np.allclose(plane.project([3, 4, 9]), [3, 4, 5])

    def test_project_is_idempotent(self):
        plane = Plane([1, 2, 3], [0.3, -0.5, 0.8])
        p = plane.project([4, -1, 0])
        assert np.allclose(plane.project(p), p)


class TestIntersectRay:
    def test_perpendicular_hit(self):
        plane = Plane([0, 0, 5], [0, 0, 1])
        ray = Ray([1, 2, 0], [0, 0, 1])
        assert np.allclose(plane.intersect_ray(ray), [1, 2, 5])

    def test_oblique_hit(self):
        plane = Plane([0, 0, 1], [0, 0, 1])
        ray = Ray([0, 0, 0], [1, 0, 1])
        hit = plane.intersect_ray(ray)
        assert np.allclose(hit, [1, 0, 1])

    def test_parallel_raises(self):
        plane = Plane([0, 0, 1], [0, 0, 1])
        ray = Ray([0, 0, 0], [1, 0, 0])
        with pytest.raises(NoIntersectionError):
            plane.intersect_ray(ray)

    def test_behind_raises_forward_only(self):
        plane = Plane([0, 0, -1], [0, 0, 1])
        ray = Ray([0, 0, 0], [0, 0, 1])
        with pytest.raises(NoIntersectionError):
            plane.intersect_ray(ray)

    def test_behind_allowed_when_not_forward_only(self):
        plane = Plane([0, 0, -1], [0, 0, 1])
        ray = Ray([0, 0, 0], [0, 0, 1])
        hit = plane.intersect_ray(ray, forward_only=False)
        assert np.allclose(hit, [0, 0, -1])

    def test_intersection_distance(self):
        plane = Plane([0, 0, 10], [0, 0, 1])
        ray = Ray([0, 0, 4], [0, 0, 1])
        assert plane.intersection_distance(ray) == pytest.approx(6.0)

    def test_intersection_distance_negative_behind(self):
        plane = Plane([0, 0, -2], [0, 0, 1])
        ray = Ray([0, 0, 0], [0, 0, 1])
        assert plane.intersection_distance(ray) == pytest.approx(-2.0)
