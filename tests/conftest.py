"""Shared fixtures.

The expensive artifact is a fully calibrated testbed (board calibration
of both GMAs plus the 30-sample mapping fit takes a few seconds), so it
is built once per session.  Tests that steer its mirrors must apply
their own voltages first and never rely on leftover state.
"""

import numpy as np
import pytest

from repro.simulate import Testbed


@pytest.fixture(scope="session")
def testbed():
    """One deterministic, fully built (but uncalibrated) prototype."""
    return Testbed(seed=3)


@pytest.fixture(scope="session")
def calibration(testbed):
    """The Section 4 pipeline's output against the shared testbed."""
    return testbed.calibrate()


@pytest.fixture(scope="session")
def learned_system(calibration):
    return calibration.system


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(1234)
