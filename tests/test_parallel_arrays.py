"""The shared-memory array transport (``parallel_map_arrays``)."""

import concurrent.futures
import warnings

import numpy as np
import pytest

from repro.parallel import ParallelFallbackWarning, parallel_map_arrays
from repro.store import ColumnStore


def row_fn(x):
    """Module-level so it pickles into pool workers."""
    return {"sq": np.array([x * x, x * x + 1.0]),
            "neg": np.array([-float(x)])}


def batch_fn(items):
    xs = np.asarray(items, dtype=float)
    return {"sq": np.stack([xs * xs, xs * xs + 1.0], axis=1),
            "neg": -xs[:, None]}


SPECS = {"sq": ((2,), np.float64), "neg": ((1,), np.float64)}


def expected(items):
    xs = np.asarray(items, dtype=float)
    return {"sq": np.stack([xs * xs, xs * xs + 1.0], axis=1),
            "neg": -xs[:, None]}


class TestSerial:
    def test_per_item_rows(self):
        items = list(range(7))
        out = parallel_map_arrays(row_fn, items, specs=SPECS)
        want = expected(items)
        assert np.array_equal(out["sq"], want["sq"])
        assert np.array_equal(out["neg"], want["neg"])

    def test_batched_rows(self):
        items = list(range(9))
        out = parallel_map_arrays(batch_fn, items, specs=SPECS,
                                  batched=True)
        assert np.array_equal(out["sq"], expected(items)["sq"])

    def test_batched_chunking_matches_monolithic(self):
        items = list(range(11))
        whole = parallel_map_arrays(batch_fn, items, specs=SPECS,
                                    batched=True)
        chopped = parallel_map_arrays(batch_fn, items, specs=SPECS,
                                      batched=True, chunk_size=3)
        assert np.array_equal(whole["sq"], chopped["sq"])
        assert np.array_equal(whole["neg"], chopped["neg"])

    def test_empty_items(self):
        out = parallel_map_arrays(row_fn, [], specs=SPECS)
        assert out["sq"].shape == (0, 2)


class TestPooled:
    @pytest.mark.parametrize("batched,fn", [(False, row_fn),
                                            (True, batch_fn)])
    def test_pool_matches_serial_bytes(self, batched, fn):
        items = list(range(17))
        serial = parallel_map_arrays(fn, items, specs=SPECS,
                                     workers=1, batched=batched)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ParallelFallbackWarning)
            pooled = parallel_map_arrays(fn, items, specs=SPECS,
                                         workers=3, chunk_size=4,
                                         batched=batched)
        assert np.array_equal(serial["sq"], pooled["sq"])
        assert np.array_equal(serial["neg"], pooled["neg"])

    def test_store_memmap_out(self, tmp_path):
        # Workers (or the serial path) write straight into the store's
        # preallocated column files; finalize publishes them.
        items = list(range(8))
        store = ColumnStore(tmp_path)
        writer = store.open_writer("rows", SPECS, rows=len(items))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ParallelFallbackWarning)
            parallel_map_arrays(row_fn, items, out=writer.columns,
                               workers=2)
        group = writer.finalize()
        assert np.array_equal(group["sq"], expected(items)["sq"])


class TestValidation:
    def test_requires_exactly_one_of_specs_or_out(self):
        with pytest.raises(ValueError):
            parallel_map_arrays(row_fn, [1])
        with pytest.raises(ValueError):
            parallel_map_arrays(row_fn, [1], specs=SPECS,
                               out={"sq": np.empty((1, 2))})

    def test_out_leading_dimension_checked(self):
        with pytest.raises(ValueError):
            parallel_map_arrays(row_fn, [1, 2],
                               out={"sq": np.empty((3, 2))})

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            parallel_map_arrays(row_fn, [1], specs=SPECS, workers=0)


class TestObservableFallback:
    def test_exactly_one_warning_and_identical_bytes(self, monkeypatch):
        # Satellite contract: a degraded map emits ONE warning, not a
        # stream, and the fallback result is byte-identical.
        items = list(range(10))
        serial = parallel_map_arrays(row_fn, items, specs=SPECS)

        class BrokenPool:
            def __init__(self, max_workers=None):
                raise OSError("no processes allowed here")

        monkeypatch.setattr(concurrent.futures,
                            "ProcessPoolExecutor", BrokenPool)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fallen = parallel_map_arrays(row_fn, items, specs=SPECS,
                                         workers=4)
        fallbacks = [w for w in caught
                     if issubclass(w.category, ParallelFallbackWarning)]
        assert len(fallbacks) == 1
        assert "parallel_map_arrays" in str(fallbacks[0].message)
        assert np.array_equal(serial["sq"], fallen["sq"])
        assert np.array_equal(serial["neg"], fallen["neg"])

    def test_no_warning_on_serial_request(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            parallel_map_arrays(row_fn, [1, 2], specs=SPECS, workers=1)
        assert not [w for w in caught
                    if issubclass(w.category, ParallelFallbackWarning)]
