"""Property-based tests (hypothesis) on the core invariants.

These cover the algebraic backbone everything else rests on: geometry
identities, coupling monotonicity, the G'/G inverse relationship, and
schedule/timeslot conservation laws.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import GmaModel, solve_inverse
from repro.galvo import canonical_gma
from repro.geometry import (
    Plane,
    Ray,
    RigidTransform,
    angle_between,
    normalize,
    reflect_direction,
    rotation_matrix,
)
from repro.motion import StrokeSchedule
from repro.optics import CouplingModel, GaussianBeam


finite = st.floats(min_value=-100.0, max_value=100.0,
                   allow_nan=False, allow_infinity=False)
unit_component = st.floats(min_value=-1.0, max_value=1.0,
                           allow_nan=False, allow_infinity=False)
angle = st.floats(min_value=-math.pi, max_value=math.pi,
                  allow_nan=False, allow_infinity=False)


def vec3(strategy=finite):
    return st.tuples(strategy, strategy, strategy).map(np.array)


def nonzero_vec3():
    return vec3(unit_component).filter(
        lambda v: np.linalg.norm(v) > 1e-3)


class TestGeometryProperties:
    @given(v=nonzero_vec3())
    def test_normalize_is_idempotent(self, v):
        once = normalize(v)
        assert np.allclose(normalize(once), once, atol=1e-12)

    @given(d=nonzero_vec3(), n=nonzero_vec3())
    def test_reflection_is_involution(self, d, n):
        once = reflect_direction(d, n)
        twice = reflect_direction(once, n)
        assert np.allclose(twice, normalize(d), atol=1e-9)

    @given(d=nonzero_vec3(), n=nonzero_vec3())
    def test_reflection_preserves_norm(self, d, n):
        out = reflect_direction(d, n)
        assert np.linalg.norm(out) == pytest.approx(1.0)

    @given(axis=nonzero_vec3(), theta=angle, v=nonzero_vec3())
    def test_rotation_preserves_norm(self, axis, theta, v):
        rotated = rotation_matrix(axis, theta) @ v
        assert np.linalg.norm(rotated) == pytest.approx(
            np.linalg.norm(v))

    @given(axis=nonzero_vec3(), theta=angle)
    def test_rotation_inverse_is_negative_angle(self, axis, theta):
        forward = rotation_matrix(axis, theta)
        backward = rotation_matrix(axis, -theta)
        assert np.allclose(forward @ backward, np.eye(3), atol=1e-9)

    @given(t=vec3(unit_component), axis=nonzero_vec3(), theta=angle,
           p=vec3(unit_component))
    def test_rigid_transform_preserves_distances(self, t, axis, theta, p):
        transform = RigidTransform(rotation_matrix(axis, theta), t)
        q = p + np.array([0.1, -0.2, 0.3])
        d_before = np.linalg.norm(p - q)
        d_after = np.linalg.norm(transform.apply_point(p)
                                 - transform.apply_point(q))
        assert d_after == pytest.approx(d_before, abs=1e-9)

    @given(origin=vec3(unit_component), direction=nonzero_vec3(),
           t=st.floats(min_value=0.0, max_value=50.0))
    def test_points_on_ray_have_zero_distance(self, origin, direction, t):
        ray = Ray(origin, direction)
        assert ray.distance_to_point(ray.point_at(t)) < 1e-9

    @given(origin=vec3(unit_component), direction=nonzero_vec3())
    def test_plane_projection_lies_on_plane(self, origin, direction):
        plane = Plane(origin, direction)
        probe = origin + np.array([1.0, 2.0, 3.0])
        assert plane.contains(plane.project(probe), tol=1e-9)


class TestCouplingProperties:
    @given(lateral=st.floats(min_value=0, max_value=0.05),
           angular=st.floats(min_value=0, max_value=0.05))
    def test_excess_loss_nonnegative(self, lateral, angular):
        model = CouplingModel(-10.0, 10e-3, 2.5e-3)
        assert model.excess_loss_db(lateral, angular) >= 0.0

    @given(lateral=st.floats(min_value=0, max_value=0.02),
           extra=st.floats(min_value=1e-6, max_value=0.02))
    def test_power_monotone_in_lateral_offset(self, lateral, extra):
        model = CouplingModel(-10.0, 10e-3, 2.5e-3)
        assert (model.received_power_dbm(lateral + extra, 0.0)
                <= model.received_power_dbm(lateral, 0.0))

    @given(margin=st.floats(min_value=0.1, max_value=40.0))
    def test_power_at_tolerance_is_sensitivity(self, margin):
        model = CouplingModel(-10.0, 10e-3, 2.5e-3)
        sensitivity = -10.0 - margin
        tol = model.angular_tolerance_rad(sensitivity)
        assert model.received_power_dbm(0.0, tol) == pytest.approx(
            sensitivity, abs=1e-9)


class TestBeamProperties:
    @given(waist=st.floats(min_value=1e-4, max_value=0.05),
           divergence=st.floats(min_value=0.0, max_value=0.05),
           z1=st.floats(min_value=0.0, max_value=10.0),
           z2=st.floats(min_value=0.0, max_value=10.0))
    def test_diameter_monotone_in_range(self, waist, divergence, z1, z2):
        beam = GaussianBeam(waist, divergence)
        lo, hi = min(z1, z2), max(z1, z2)
        assert beam.diameter_at(lo) <= beam.diameter_at(hi) + 1e-12

    @given(waist=st.floats(min_value=1e-4, max_value=0.05),
           divergence=st.floats(min_value=1e-5, max_value=0.05),
           z=st.floats(min_value=0.1, max_value=10.0))
    def test_curvature_at_least_range(self, waist, divergence, z):
        beam = GaussianBeam(waist, divergence)
        assert beam.curvature_radius_m(z) >= z


class TestInverseProperty:
    @settings(max_examples=25, deadline=None)
    @given(v1=st.floats(min_value=-5.0, max_value=5.0),
           v2=st.floats(min_value=-5.0, max_value=5.0),
           reach=st.floats(min_value=0.5, max_value=2.5))
    def test_g_prime_inverts_g(self, v1, v2, reach):
        """For any reachable target, G'(point on G(v)) recovers v."""
        model = GmaModel(canonical_gma(np.radians(1.0)))
        target = model.beam(v1, v2).point_at(reach)
        result = solve_inverse(model, target)
        beam = model.beam(result.v1, result.v2)
        assert beam.distance_to_point(target) < 1e-5


class TestScheduleProperties:
    @settings(max_examples=30, deadline=None)
    @given(extent=st.floats(min_value=0.05, max_value=1.0),
           speeds=st.lists(st.floats(min_value=0.01, max_value=2.0),
                           min_size=1, max_size=4),
           t=st.floats(min_value=0.0, max_value=100.0))
    def test_offset_stays_in_extent(self, extent, speeds, t):
        schedule = StrokeSchedule(extent=extent, speeds=speeds)
        assert -1e-9 <= schedule.offset_at(t) <= extent + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(extent=st.floats(min_value=0.05, max_value=1.0),
           speeds=st.lists(st.floats(min_value=0.01, max_value=2.0),
                           min_size=1, max_size=4))
    def test_lipschitz_in_time(self, extent, speeds):
        """The carriage never moves faster than the segment speed."""
        schedule = StrokeSchedule(extent=extent, speeds=speeds)
        top = max(speeds)
        dt = 0.01
        t = 0.0
        while t < schedule.duration_s:
            step = abs(schedule.offset_at(t + dt) - schedule.offset_at(t))
            assert step <= top * dt + 1e-9
            t += 0.37  # sample irregularly
