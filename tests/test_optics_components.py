"""Unit tests for collimators, amplifier, SFPs, photodiodes, budgets."""

import numpy as np
import pytest

from repro import constants
from repro.optics import (
    BE02_05_C,
    Amplifier,
    BeamExpander,
    C40FC_C,
    CFC_2X_C,
    Collimator,
    F810FC_1550,
    GaussianBeam,
    LinkBudget,
    QuadPhotodiode,
    SFP28_LR,
    SFP_10G_ZR,
    Sfp,
)


class TestCollimator:
    def test_catalogue_entries_valid(self):
        for collimator in (F810FC_1550, CFC_2X_C, C40FC_C):
            assert collimator.aperture_m > 0
            assert collimator.focal_length_m > 0
            assert collimator.fiber_core_m > 0

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            Collimator("bad", aperture_m=0.0, focal_length_m=1e-3,
                       fiber_core_m=1e-6)

    def test_launch_collimated_uses_diffraction_limit(self):
        beam = F810FC_1550.launch_collimated(10e-3)
        assert beam.divergence_rad == pytest.approx(
            beam.diffraction_limited_divergence_rad)

    def test_launch_diverging_reaches_target(self):
        beam = CFC_2X_C.launch_diverging(2e-3, 16e-3, 1.75)
        assert beam.diameter_at(1.75) == pytest.approx(16e-3)


class TestBeamExpander:
    def test_magnification(self):
        beam = GaussianBeam(4e-3, 1e-3)
        expanded = BE02_05_C.expand(beam)
        assert expanded.waist_diameter_m == pytest.approx(20e-3)

    def test_divergence_shrinks(self):
        beam = GaussianBeam(4e-3, 1e-3)
        expanded = BE02_05_C.expand(beam)
        assert expanded.divergence_rad == pytest.approx(1e-3 / 5.0)

    def test_rejects_bad_magnification(self):
        with pytest.raises(ValueError):
            BeamExpander(0.0)


class TestAmplifier:
    def test_small_signal_gain(self):
        amp = Amplifier(20.0)
        assert amp.amplify_dbm(-10.0) == pytest.approx(10.0)

    def test_saturation(self):
        amp = Amplifier(20.0, saturation_output_dbm=15.0)
        assert amp.amplify_dbm(0.0) == pytest.approx(15.0)

    def test_rejects_negative_gain(self):
        with pytest.raises(ValueError):
            Amplifier(-1.0)


class TestSfp:
    def test_10g_budget(self):
        assert SFP_10G_ZR.link_budget_db == pytest.approx(25.0)

    def test_25g_budget_in_datasheet_range(self):
        assert 12.0 <= SFP28_LR.link_budget_db <= 18.0

    def test_signal_detection_threshold(self):
        assert SFP_10G_ZR.signal_detected(-25.0)
        assert not SFP_10G_ZR.signal_detected(-25.1)

    def test_goodput_below_line_rate(self):
        for sfp in (SFP_10G_ZR, SFP28_LR):
            assert sfp.optimal_throughput_gbps < sfp.line_rate_gbps

    def test_rejects_goodput_above_line_rate(self):
        with pytest.raises(ValueError):
            Sfp("bad", 0.0, -20.0, 1550.0, line_rate_gbps=10.0,
                optimal_throughput_gbps=11.0)

    def test_relock_delay_matches_paper(self):
        assert 1.0 <= SFP_10G_ZR.relock_delay_s <= 5.0


class TestQuadPhotodiode:
    def test_centered_beam_balances(self, rng):
        quad = QuadPhotodiode(noise_mw=0.0)
        readings = quad.read(-10.0, [0.0, 0.0], 16e-3, rng=rng)
        assert np.allclose(readings, readings[0])
        hint = quad.centroid_hint(readings)
        assert np.allclose(hint, [0, 0], atol=1e-9)

    def test_offset_beam_hints_direction(self, rng):
        quad = QuadPhotodiode(noise_mw=0.0)
        readings = quad.read(-10.0, [5e-3, 0.0], 16e-3, rng=rng)
        hint = quad.centroid_hint(readings)
        assert hint[0] > 0  # beam is east of center
        assert abs(hint[1]) < abs(hint[0])

    def test_rejects_bad_offset_shape(self, rng):
        with pytest.raises(ValueError):
            QuadPhotodiode().read(-10.0, [1.0, 2.0, 3.0], 16e-3, rng=rng)

    def test_hint_of_darkness_is_zero(self):
        assert np.allclose(QuadPhotodiode().centroid_hint(
            np.zeros(4)), [0, 0])


class TestLinkBudget:
    def test_accumulates(self):
        budget = LinkBudget(0.0)
        budget.add("amp", 20.0).add("coupling", -30.0)
        assert budget.received_power_dbm == pytest.approx(-10.0)

    def test_margin_and_closes(self):
        budget = LinkBudget(0.0).add("loss", -20.0)
        assert budget.margin_db(-25.0) == pytest.approx(5.0)
        assert budget.closes(-25.0)
        assert not budget.closes(-15.0)

    def test_breakdown_mentions_stages(self):
        budget = LinkBudget(0.0).add("amplifier", 20.0)
        text = budget.breakdown()
        assert "amplifier" in text
        assert "TX power" in text

    def test_rejects_unnamed_stage(self):
        with pytest.raises(ValueError):
            LinkBudget(0.0).add("", -3.0)

    def test_constants_coupling_loss_documented(self):
        # The paper's -30 dB diverging coupling loss is recorded.
        assert constants.DIVERGING_COUPLING_LOSS_DB == pytest.approx(30.0)
