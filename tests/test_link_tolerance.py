"""Unit tests for repro.link.tolerance: Table 1 and Fig. 11 shapes."""

import numpy as np
import pytest

from repro import constants
from repro.link import (
    diameter_sweep,
    evaluate,
    lateral_tolerance_m,
    link_10g_collimated,
    link_10g_diverging,
    link_25g,
    rx_angular_tolerance_rad,
    tx_angular_tolerance_rad,
)


class TestTable1:
    """The four Table 1 operating points."""

    def test_collimated_tx_tolerance(self):
        tol = tx_angular_tolerance_rad(link_10g_collimated(), 1.75)
        assert tol * 1e3 == pytest.approx(
            constants.COLLIMATED_TX_TOLERANCE_MRAD, rel=0.1)

    def test_collimated_rx_tolerance(self):
        tol = rx_angular_tolerance_rad(link_10g_collimated(), 1.75)
        assert tol * 1e3 == pytest.approx(
            constants.COLLIMATED_RX_TOLERANCE_MRAD, rel=0.1)

    def test_diverging_tx_tolerance(self):
        tol = tx_angular_tolerance_rad(link_10g_diverging(20e-3), 1.75)
        assert tol * 1e3 == pytest.approx(
            constants.DIVERGING_20MM_TX_TOLERANCE_MRAD, rel=0.1)

    def test_diverging_rx_tolerance(self):
        tol = rx_angular_tolerance_rad(link_10g_diverging(20e-3), 1.75)
        assert tol * 1e3 == pytest.approx(
            constants.DIVERGING_20MM_RX_TOLERANCE_MRAD, rel=0.1)

    def test_diverging_beats_collimated_on_tolerance(self):
        # Table 1's trade-off, direction 1.
        collimated = evaluate(link_10g_collimated())
        diverging = evaluate(link_10g_diverging(20e-3))
        assert (diverging.tx_angular_tolerance_rad
                > 3 * collimated.tx_angular_tolerance_rad)
        assert (diverging.rx_angular_tolerance_rad
                > 2 * collimated.rx_angular_tolerance_rad)

    def test_collimated_beats_diverging_on_power(self):
        # Table 1's trade-off, direction 2 (about 25 dB apart).
        gap = (evaluate(link_10g_collimated()).peak_power_dbm
               - evaluate(link_10g_diverging(20e-3)).peak_power_dbm)
        assert 20.0 <= gap <= 30.0


class TestFig11:
    """RX angular tolerance peaks at the 16 mm beam diameter."""

    def test_peak_at_16mm(self):
        diameters = np.arange(8e-3, 33e-3, 2e-3)
        reports = diameter_sweep(link_10g_diverging, diameters, 1.75)
        tolerances = [r.rx_angular_tolerance_rad for r in reports]
        best = diameters[int(np.argmax(tolerances))]
        assert best == pytest.approx(16e-3, abs=2.1e-3)

    def test_peak_value_is_577_mrad(self):
        tol = rx_angular_tolerance_rad(link_10g_diverging(16e-3), 1.75)
        assert tol * 1e3 == pytest.approx(5.77, rel=0.05)

    def test_rises_then_falls(self):
        reports = diameter_sweep(link_10g_diverging,
                                 [8e-3, 16e-3, 32e-3], 1.75)
        left, peak, right = [r.rx_angular_tolerance_rad for r in reports]
        assert peak > left
        assert peak > right

    def test_tx_tolerance_monotone_in_diameter(self):
        reports = diameter_sweep(link_10g_diverging,
                                 [8e-3, 16e-3, 24e-3, 32e-3], 1.75)
        tx = [r.tx_angular_tolerance_rad for r in reports]
        assert tx == sorted(tx)


class TestLateralTolerance:
    def test_diverging_lateral_includes_angular_budget(self):
        # For a diverging beam, translation also rotates the arrival
        # wavefront, so the lateral tolerance is *below* the naive
        # lateral-only figure.
        design = link_10g_diverging()
        coupling = design.coupling(1.75)
        naive = coupling.lateral_tolerance_m(design.sfp.rx_sensitivity_dbm)
        assert lateral_tolerance_m(design, 1.75) < naive

    def test_10g_lateral_near_9mm(self):
        # The figure that produces the 33 cm/s linear speed threshold.
        tol = lateral_tolerance_m(link_10g_diverging(16e-3), 1.75)
        assert 7e-3 <= tol <= 12e-3

    def test_25g_lateral_near_6mm(self):
        tol = lateral_tolerance_m(link_25g(), 1.75)
        assert 4e-3 <= tol <= 10e-3

    def test_zero_margin_zero_tolerance(self):
        design = link_10g_diverging()
        assert lateral_tolerance_m(design, 60.0) == 0.0


class Test25G:
    def test_rx_tolerance_matches_paper(self):
        tol = rx_angular_tolerance_rad(link_25g(), 1.75)
        assert tol * 1e3 == pytest.approx(8.73, rel=0.05)

    def test_25g_rx_beats_10g_rx(self):
        # Section 5.3.1: "slightly better RX angular tolerance".
        t25 = rx_angular_tolerance_rad(link_25g(), 1.75)
        t10 = rx_angular_tolerance_rad(link_10g_diverging(), 1.75)
        assert t25 > t10

    def test_25g_tx_worse_than_10g_tx(self):
        # Section 5.3.1: "worse TX angular tolerance ... compared to
        # our 10G link design".
        t25 = tx_angular_tolerance_rad(link_25g(), 1.75)
        t10 = tx_angular_tolerance_rad(link_10g_diverging(), 1.75)
        assert t25 < t10

    def test_report_fields_populated(self):
        report = evaluate(link_25g())
        assert report.range_m == pytest.approx(1.75)
        assert report.beam_diameter_at_rx_m > 0
