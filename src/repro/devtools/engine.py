"""The lint engine: walk files, run rules, collect findings."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from .context import FileContext
from .findings import Finding
from .registry import Rule, resolve_selection

#: Directories never descended into.
_SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".mypy_cache", ".ruff_cache",
    ".pytest_cache", ".hypothesis", "node_modules",
})


@dataclass
class LintResult:
    """Findings plus bookkeeping from one engine run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises ``FileNotFoundError`` for a path that does not exist --
    linting nothing because of a typo must not report success.
    """
    collected = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        if path.is_file():
            collected.append(str(path))
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in _SKIP_DIRS)
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    collected.append(os.path.join(dirpath, filename))
    return sorted(collected)


def lint_source(path: str, source: str,
                rules: Sequence[Rule]) -> LintResult:
    """Lint one in-memory file (the unit the fixture tests drive)."""
    result = LintResult(files_checked=1)
    try:
        ctx = FileContext.from_source(path, source)
    except SyntaxError as exc:
        line = exc.lineno or 1
        column = (exc.offset or 1) - 1
        result.findings.append(Finding(
            path=path, line=line, column=column + 1, rule_id="E999",
            message=f"syntax error: {exc.msg}"))
        return result
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if ctx.is_suppressed(finding.line, finding.rule_id):
                result.suppressed += 1
            else:
                result.findings.append(finding)
    result.findings.sort(key=Finding.sort_key)
    return result


def lint_paths(paths: Sequence[str],
               select: Optional[Sequence[str]] = None,
               ignore: Optional[Sequence[str]] = None) -> LintResult:
    """Lint files and directories; the package's main entry point."""
    rules = resolve_selection(select=select, ignore=ignore)
    total = LintResult()
    for filename in iter_python_files(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            source = handle.read()
        result = lint_source(filename, source, rules)
        total.findings.extend(result.findings)
        total.files_checked += 1
        total.suppressed += result.suppressed
    total.findings.sort(key=Finding.sort_key)
    return total
