"""Rule base class, registry, and --select/--ignore resolution."""

from __future__ import annotations

from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Type,
    TypeVar,
)

from .context import FileContext
from .findings import Finding

_REGISTRY: Dict[str, "Rule"] = {}


class HasRuleId(Protocol):
    """Anything selectable by rule id (lint rules, program rules)."""

    rule_id: str


_AnyRule = TypeVar("_AnyRule", bound=HasRuleId)


class Rule:
    """One lint rule: an id, a rationale, and a ``check`` pass.

    Subclasses set ``rule_id`` and ``summary`` and implement
    :meth:`check`; :meth:`applies_to` scopes the rule to parts of the
    tree (determinism rules bind ``src/repro`` tighter than benchmark
    scripts, for example).
    """

    rule_id: str = ""
    summary: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, line: int, column: int,
                message: str) -> Finding:
        """Build a finding for this rule (column converted to 1-based)."""
        return Finding(path=ctx.path, line=line, column=column + 1,
                       rule_id=self.rule_id, message=message)


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule = rule_class()
    if not rule.rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return rule_class


def _load_rules() -> None:
    # Importing the rule modules populates the registry; deferred so
    # the registry module itself stays import-cycle free.
    from . import rules_api, rules_determinism, rules_units  # noqa: F401


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by id."""
    _load_rules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Look one rule up by exact id (raises ``KeyError`` if unknown)."""
    _load_rules()
    return _REGISTRY[rule_id.upper()]


def apply_selection(rules: List["_AnyRule"],
                    select: Optional[Iterable[str]] = None,
                    ignore: Optional[Iterable[str]] = None
                    ) -> List["_AnyRule"]:
    """Apply flake8-style ``--select`` / ``--ignore`` prefix lists.

    Entries match by prefix, so ``D`` selects every determinism rule
    and ``D001`` exactly one.  Unknown entries (matching no registered
    rule) raise ``ValueError`` so typos fail loudly instead of
    silently linting nothing.  Works for any rule set that carries
    ``rule_id`` attributes — the per-file lint rules and the
    whole-program analysis rules share this resolver.
    """
    def expand(entries: Iterable[str]) -> List[str]:
        prefixes = []
        for entry in entries:
            prefix = entry.strip().upper()
            if not prefix:
                continue
            if not any(r.rule_id.startswith(prefix) for r in rules):
                raise ValueError(f"unknown rule or prefix: {prefix}")
            prefixes.append(prefix)
        return prefixes

    selected = rules
    if select is not None:
        prefixes = expand(select)
        selected = [r for r in rules
                    if any(r.rule_id.startswith(p) for p in prefixes)]
    if ignore is not None:
        prefixes = expand(ignore)
        selected = [r for r in selected
                    if not any(r.rule_id.startswith(p) for p in prefixes)]
    return selected


def resolve_selection(select: Optional[Iterable[str]] = None,
                      ignore: Optional[Iterable[str]] = None) -> List[Rule]:
    """``apply_selection`` over the registered per-file lint rules."""
    return apply_selection(all_rules(), select=select, ignore=ignore)
