"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict

from .engine import LintResult

#: Schema version of the JSON payload; bump on breaking changes.
JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult) -> str:
    """Compiler-style ``path:line:col RULE message`` lines + summary."""
    lines = [finding.render() for finding in result.findings]
    counts = Counter(f.rule_id for f in result.findings)
    if result.findings:
        by_rule = ", ".join(f"{rule} x{count}"
                            for rule, count in sorted(counts.items()))
        lines.append(f"{len(result.findings)} finding"
                     f"{'s' if len(result.findings) != 1 else ''} "
                     f"({by_rule}) in {result.files_checked} files")
    else:
        lines.append(f"clean: {result.files_checked} files, "
                     f"{result.suppressed} suppressed")
    return "\n".join(lines)


def to_payload(result: LintResult) -> Dict[str, Any]:
    """The JSON-serializable form of a lint run."""
    counts = Counter(f.rule_id for f in result.findings)
    return {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "counts": dict(sorted(counts.items())),
        "findings": [f.to_dict() for f in result.findings],
    }


def render_json(result: LintResult) -> str:
    """Deterministically ordered JSON (sorted findings, sorted keys)."""
    return json.dumps(to_payload(result), indent=2, sort_keys=True)


def _escape_workflow_data(text: str) -> str:
    """GitHub workflow-command escaping for the message portion."""
    return (text.replace("%", "%25")
                .replace("\r", "%0D")
                .replace("\n", "%0A"))


def render_github(result: LintResult) -> str:
    """GitHub Actions ``::error`` workflow annotations, one per finding.

    Emitted to stdout during a CI run, these surface as inline
    annotations on the PR diff.  The trailing summary line is plain
    text (GitHub ignores lines that are not workflow commands).
    """
    lines = [
        f"::error file={f.path},line={f.line},col={f.column},"
        f"title={f.rule_id}::{_escape_workflow_data(f.message)}"
        for f in result.findings
    ]
    lines.append(f"{len(result.findings)} finding"
                 f"{'s' if len(result.findings) != 1 else ''} in "
                 f"{result.files_checked} files")
    return "\n".join(lines)
