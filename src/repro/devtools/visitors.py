"""Shared AST-visitor machinery for the lint rules.

Rules that need statement-level context subclass
:class:`FunctionStackVisitor`, which tracks the stack of enclosing
function definitions so a rule can ask "am I inside a function, and
what are its parameters?".  Free helpers cover the patterns almost
every rule needs: dotted attribute names and RNG-factory detection.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Recognized unit suffixes, longest first so ``_mm`` wins over ``_m``
#: and ``_dbm`` over ``_m``.  These are the unit classes Table 1 and
#: the link budget juggle: absolute power (dBm), relative power (dB),
#: linear power (mW), length (m / mm), angle (mrad), voltage (V),
#: time (s), and rate (Hz).
UNIT_SUFFIXES: Tuple[str, ...] = (
    "_dbm", "_mrad", "_mm", "_mw", "_hz", "_db", "_m", "_v", "_s")


def unit_suffix(name: str) -> Optional[str]:
    """The unit suffix a name carries, or None.

    Requires the underscore form (``power_dbm``); a bare ``v`` or ``s``
    is a generic variable, not a unit annotation.
    """
    lowered = name.lower()
    for suffix in UNIT_SUFFIXES:
        if lowered.endswith(suffix) and len(lowered) > len(suffix):
            return suffix
    return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain rooted at a Name, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def rng_factory_name(call: ast.Call) -> Optional[str]:
    """"default_rng"/"RandomState" when the call constructs a generator.

    Matches both the attribute form (``np.random.default_rng``) and a
    directly imported name (``default_rng(...)``).
    """
    name = dotted_name(call.func)
    if name is None:
        return None
    leaf = name.rsplit(".", 1)[-1]
    if leaf not in ("default_rng", "RandomState"):
        return None
    if "." in name:
        root = name.split(".", 1)[0]
        if root not in ("np", "numpy"):
            return None
    return leaf


def is_unseeded_rng_call(call: ast.Call) -> bool:
    """True for ``default_rng()`` / ``RandomState(None)``-style calls."""
    if rng_factory_name(call) is None:
        return False
    if call.args:
        return _is_none(call.args[0])
    for keyword in call.keywords:
        if keyword.arg is None:  # **kwargs -- assume the caller seeds it
            return False
        if keyword.arg == "seed":
            return _is_none(keyword.value)
    return True


def literal_seed(call: ast.Call) -> Optional[int]:
    """The hard-coded integer seed of an RNG-factory call, if any."""
    if rng_factory_name(call) is None:
        return None
    seed_node: Optional[ast.expr] = None
    if call.args:
        seed_node = call.args[0]
    else:
        for keyword in call.keywords:
            if keyword.arg == "seed":
                seed_node = keyword.value
    if (isinstance(seed_node, ast.Constant)
            and isinstance(seed_node.value, int)
            and not isinstance(seed_node.value, bool)):
        return seed_node.value
    return None


def parameter_nodes(node: FunctionNode) -> List[ast.arg]:
    """All named parameters of a function, in declaration order."""
    args = node.args
    return list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)


def annotation_text(node: Optional[ast.AST]) -> Optional[str]:
    """Source text of an annotation node (None when absent)."""
    if node is None:
        return None
    return ast.unparse(node)


class FunctionStackVisitor(ast.NodeVisitor):
    """NodeVisitor that tracks the enclosing function-definition stack.

    Subclasses override ``handle_*`` hooks instead of ``visit_*`` so the
    stack bookkeeping cannot be accidentally lost.
    """

    def __init__(self) -> None:
        self.function_stack: List[FunctionNode] = []
        self.class_stack: List[ast.ClassDef] = []

    # -- stack bookkeeping ---------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append(node)
        self.handle_class(node)
        self.generic_visit(node)
        self.class_stack.pop()

    def _visit_function(self, node: FunctionNode) -> None:
        self.handle_function(node)
        self.function_stack.append(node)
        self.generic_visit(node)
        self.function_stack.pop()

    # -- hooks for subclasses ------------------------------------------------

    def handle_function(self, node: FunctionNode) -> None:
        """Called for each function definition, before descending."""

    def handle_class(self, node: ast.ClassDef) -> None:
        """Called for each class definition, before descending."""

    @property
    def current_function(self) -> Optional[FunctionNode]:
        return self.function_stack[-1] if self.function_stack else None
