"""repro.devtools: the repo's own static-analysis layer.

PRs 1-2 made byte-identical-per-seed output the repo's headline
contract; this package *enforces* it (and the unit discipline the link
budget depends on) at lint time instead of hoping runtime tests trip
over violations.  It is a small AST lint engine with repo-specific
rules in three families:

* **determinism** (``D``): no unseeded generators, no wall-clock or
  global RNG state inside ``src/repro``, RNGs threaded as parameters;
* **units & numerics** (``U``/``N``): unit-suffixed parameters
  (``_dbm``, ``_mrad``, ...) must be annotated and never cross-assigned
  to a different unit, no silent ``float(array)`` truncation, no
  mutable default arguments;
* **API hygiene** (``A``): the core physics packages stay fully
  annotated so ``mypy`` has something to check.

Run it as ``python -m repro lint``; suppress a single finding with a
``# repro: noqa[RULE]`` comment on the offending line (bare
``# repro: noqa`` suppresses every rule on the line).  The rule
catalog lives in DESIGN.md.

The per-file rules see one AST at a time.  Their whole-program
counterparts — the import-layering contract (``L``), call-site unit
flow (``X``) and RNG-provenance taint (``T``) — live in
:mod:`repro.devtools.program` and run as ``python -m repro analyze``.
"""

from .engine import LintResult, lint_paths
from .findings import Finding
from .registry import Rule, all_rules, get_rule, resolve_selection
from .reporters import render_github, render_json, render_text

__all__ = [
    "Finding",
    "LintResult",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "render_github",
    "render_json",
    "render_text",
    "resolve_selection",
]
