"""Determinism rules (D family).

Byte-identical-per-seed output is the repo's headline contract (the
trace pipeline, the fault sweeps, and every BENCH artifact depend on
it).  These rules make the contract checkable: randomness must enter
through an explicit seed or ``numpy.random.Generator`` threaded from
the caller, never minted ad hoc from OS entropy, wall-clock time, or
NumPy's hidden global state.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from .context import FileContext
from .findings import Finding
from .registry import Rule, register
from .visitors import (
    FunctionNode,
    FunctionStackVisitor,
    dotted_name,
    is_unseeded_rng_call,
    literal_seed,
    parameter_nodes,
    rng_factory_name,
)

#: Dotted calls that read the wall clock (D002).  ``time.perf_counter``
#: and ``time.monotonic`` are *not* listed: timing how long work took
#: is fine, deriving simulation inputs from the current date is not.
_WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
    "date.today",
})

#: ``np.random.<attr>`` accesses that touch the legacy global state
#: (D003).  Seeding it, restoring it, or drawing from it are all
#: equally poisonous to reproducibility under concurrency.
_GLOBAL_STATE_ATTRS = frozenset({
    "seed", "set_state", "get_state",
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "uniform", "normal", "standard_normal", "choice",
    "shuffle", "permutation", "bytes", "exponential", "poisson",
})


@register
class UnseededGeneratorRule(Rule):
    """D001: every RNG must be constructed from an explicit seed."""

    rule_id = "D001"
    summary = ("no unseeded default_rng()/RandomState(); pass a seed or "
               "thread a Generator (opt out per line with "
               "# repro: noqa[D001] plus a rationale)")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and is_unseeded_rng_call(node):
                yield self.finding(
                    ctx, node.lineno, node.col_offset,
                    f"{rng_factory_name(node)} called without a seed; "
                    "results become irreproducible")


@register
class WallClockRule(Rule):
    """D002: no wall-clock or stdlib-``random`` inputs in ``src/repro``.

    Scoped to the package: a benchmark script timestamping its output
    file is fine, library code deriving behavior from the clock is not.
    ``time.perf_counter``/``monotonic`` stay allowed -- measuring how
    long work took does not alter what the work computes.
    """

    rule_id = "D002"
    summary = ("no random-module or wall-clock (time.time / "
               "datetime.now) use inside src/repro")

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package()

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or \
                            alias.name.startswith("random."):
                        yield self.finding(
                            ctx, node.lineno, node.col_offset,
                            "the stdlib random module draws from hidden "
                            "global state; use numpy.random.Generator")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        ctx, node.lineno, node.col_offset,
                        "the stdlib random module draws from hidden "
                        "global state; use numpy.random.Generator")
                elif node.module == "time":
                    bad = [a.name for a in node.names
                           if a.name in ("time", "time_ns")]
                    for name in bad:
                        yield self.finding(
                            ctx, node.lineno, node.col_offset,
                            f"time.{name} reads the wall clock; thread "
                            "timestamps in as parameters")
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in _WALL_CLOCK_CALLS:
                    yield self.finding(
                        ctx, node.lineno, node.col_offset,
                        f"{name}() reads the wall clock; simulation "
                        "inputs must be explicit parameters")


@register
class GlobalSeedRule(Rule):
    """D003: never touch ``np.random``'s global state."""

    rule_id = "D003"
    summary = ("no np.random.seed / legacy global-state sampling; "
               "construct a Generator instead")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            name = dotted_name(node)
            if name is None:
                continue
            parts = name.split(".")
            if (len(parts) == 3 and parts[0] in ("np", "numpy")
                    and parts[1] == "random"
                    and parts[2] in _GLOBAL_STATE_ATTRS):
                yield self.finding(
                    ctx, node.lineno, node.col_offset,
                    f"{name} mutates/reads NumPy's global RNG state; "
                    "use an explicit np.random.Generator")


@register
class ThreadedRngRule(Rule):
    """D004: thread RNGs as parameters; no mid-function literal seeds.

    A function that mints its own generator from a hard-coded seed
    returns identical "random" draws on every call and hides the
    determinism contract from its caller.  Spawning a child generator
    from a threaded one (``default_rng(rng.integers(2**63))``) is the
    sanctioned pattern and is not flagged.
    """

    rule_id = "D004"
    summary = ("inside src/repro functions, no default_rng(<literal>); "
               "accept an rng/seed parameter instead")

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package()

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        findings: List[Tuple[int, int, str]] = []
        rule = self

        class Visitor(FunctionStackVisitor):
            def visit_Call(self, node: ast.Call) -> None:
                enclosing = self.current_function
                if enclosing is not None and \
                        literal_seed(node) is not None and \
                        not _is_seed_plumbing(enclosing):
                    findings.append((
                        node.lineno, node.col_offset,
                        f"{rng_factory_name(node)} seeded with a literal "
                        f"inside {enclosing.name}(); thread an rng or "
                        "seed parameter through instead"))
                self.generic_visit(node)

        Visitor().visit(ctx.tree)
        for line, column, message in findings:
            yield rule.finding(ctx, line, column, message)


def _is_seed_plumbing(node: FunctionNode) -> bool:
    """Functions whose declared job is turning a seed into an rng.

    A function that *accepts* a ``seed`` parameter (CLI entry points,
    dataclass ``__post_init__`` resolving a stored seed) may build a
    generator from whatever literal default that parameter carries.
    """
    names = {a.arg for a in parameter_nodes(node)}
    return bool(names & {"seed", "fault_seed", "rng"}) or \
        node.name == "__post_init__"
