"""API-hygiene rules (A family).

The core physics packages (``core``, ``optics``, ``link``) are the
part of the tree mypy runs strict on; A001 keeps their public surface
fully annotated so the strict run stays meaningful (an unannotated
``def`` is a hole mypy silently skips in permissive mode).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from .context import FileContext
from .findings import Finding
from .registry import Rule, register
from .visitors import FunctionNode, FunctionStackVisitor, parameter_nodes

#: Methods that never need a return annotation to be useful -- none;
#: even ``__post_init__`` gets ``-> None`` so mypy checks its body.
_EXEMPT_PARAMS = frozenset({"self", "cls"})


@register
class FullAnnotationRule(Rule):
    """A001: public functions in core/optics/link are fully annotated."""

    rule_id = "A001"
    summary = ("every public function in repro/core, repro/optics and "
               "repro/link annotates all parameters and the return "
               "type")

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package("core", "optics", "link")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        findings: List[Tuple[int, int, str]] = []

        class Visitor(FunctionStackVisitor):
            def handle_function(self, node: FunctionNode) -> None:
                if self.current_function is not None:
                    return  # nested helpers are implementation detail
                if node.name.startswith("_") and \
                        not node.name.startswith("__"):
                    return  # private helpers are mypy's job, not A001's
                if self.class_stack and \
                        self.class_stack[-1].name.startswith("_"):
                    return
                findings.extend(_signature_gaps(node))

        Visitor().visit(ctx.tree)
        for line, column, message in findings:
            yield self.finding(ctx, line, column, message)


def _signature_gaps(node: FunctionNode) -> List[Tuple[int, int, str]]:
    gaps = []
    for arg in parameter_nodes(node):
        if arg.arg in _EXEMPT_PARAMS:
            continue
        if arg.annotation is None:
            gaps.append((
                arg.lineno, arg.col_offset,
                f"parameter {arg.arg} of public {node.name}() lacks a "
                "type annotation"))
    for vararg in (node.args.vararg, node.args.kwarg):
        if vararg is not None and vararg.annotation is None:
            gaps.append((
                vararg.lineno, vararg.col_offset,
                f"parameter *{vararg.arg} of public {node.name}() lacks "
                "a type annotation"))
    if node.returns is None:
        gaps.append((
            node.lineno, node.col_offset,
            f"public {node.name}() lacks a return annotation"))
    return gaps
