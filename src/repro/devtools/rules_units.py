"""Units & numerics rules (U/N families).

The link budget mixes absolute power (dBm), relative power (dB),
linear power (mW), lengths, angles, voltages, times, and rates.  The
repo's convention is to carry the unit in the name (``power_dbm``,
``range_m``); these rules make the convention load-bearing: suffixed
parameters must be annotated, and a value named in one unit must not
be passed into a parameter named in another.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .context import FileContext
from .findings import Finding
from .registry import Rule, register
from .visitors import (
    FunctionStackVisitor,
    annotation_text,
    parameter_nodes,
    unit_suffix,
)

#: Annotations that cannot possibly describe a numeric quantity.
_NON_NUMERIC = frozenset({"str", "bool", "bytes", "dict", "Dict"})

#: Annotation fragments identifying an array-typed parameter (U002).
_ARRAY_MARKERS = ("ndarray", "NDArray", "ArrayLike", "Array")

#: Call-expression defaults that construct a fresh mutable object per
#: *definition* (not per call) -- the classic shared-state bug (N001).
_MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "np.array", "np.zeros", "np.ones", "np.empty", "np.full",
    "numpy.array", "numpy.zeros", "numpy.ones", "numpy.empty",
    "numpy.full",
})


@register
class UnitSuffixRule(Rule):
    """U001: unit-suffixed parameters are annotated and never
    cross-assigned to a different unit within a call."""

    rule_id = "U001"
    summary = ("parameters with unit suffixes (_dbm/_db/_mw/_m/_mm/"
               "_mrad/_v/_s/_hz) must be annotated, and keyword "
               "arguments must not mix unit suffixes")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        findings: List[Tuple[int, int, str]] = []
        require_annotations = ctx.in_package()

        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and require_annotations:
                findings.extend(self._check_signature(node))
            elif isinstance(node, ast.Call):
                findings.extend(self._check_call(node))

        for line, column, message in findings:
            yield self.finding(ctx, line, column, message)

    def _check_signature(self, node: ast.AST
                         ) -> List[Tuple[int, int, str]]:
        findings = []
        for arg in parameter_nodes(node):  # type: ignore[arg-type]
            suffix = unit_suffix(arg.arg)
            if suffix is None:
                continue
            text = annotation_text(arg.annotation)
            if text is None:
                findings.append((
                    arg.lineno, arg.col_offset,
                    f"parameter {arg.arg} carries the {suffix} unit "
                    "suffix but no type annotation (expected float or "
                    "an array type)"))
            elif text in _NON_NUMERIC:
                findings.append((
                    arg.lineno, arg.col_offset,
                    f"parameter {arg.arg} carries the {suffix} unit "
                    f"suffix but is annotated {text}, which cannot "
                    "hold a physical quantity"))
        return findings

    def _check_call(self, node: ast.Call) -> List[Tuple[int, int, str]]:
        findings = []
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            expected = unit_suffix(keyword.arg)
            if expected is None or not isinstance(keyword.value, ast.Name):
                continue
            actual = unit_suffix(keyword.value.id)
            if actual is not None and actual != expected:
                findings.append((
                    keyword.value.lineno, keyword.value.col_offset,
                    f"{keyword.value.id} ({actual}) passed into "
                    f"{keyword.arg}= ({expected}); convert explicitly "
                    "or rename one side"))
        return findings


@register
class FloatTruncationRule(Rule):
    """U002: no bare ``float(array_param)`` in ``optics/`` / ``link/``.

    ``float()`` of a multi-element array raises at runtime; of a
    single-element array it silently collapses a vector quantity.  A
    reduction (``float(np.sum(x))``) states intent and stays allowed.
    """

    rule_id = "U002"
    summary = ("no bare float(<array parameter>) in repro/optics and "
               "repro/link; reduce explicitly first")

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package("optics", "link")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        findings: List[Tuple[int, int, str]] = []

        class Visitor(FunctionStackVisitor):
            def __init__(self) -> None:
                super().__init__()
                self._array_params: List[Set[str]] = []

            def handle_function(self, node: ast.AST) -> None:
                arrays = set()
                for arg in parameter_nodes(node):  # type: ignore[arg-type]
                    text = annotation_text(arg.annotation)
                    if text and any(m in text for m in _ARRAY_MARKERS):
                        arrays.add(arg.arg)
                self._array_params.append(arrays)

            def visit_Call(self, node: ast.Call) -> None:
                if (isinstance(node.func, ast.Name)
                        and node.func.id == "float"
                        and len(node.args) == 1
                        and isinstance(node.args[0], ast.Name)):
                    name = node.args[0].id
                    if any(name in scope for scope in self._array_params):
                        findings.append((
                            node.lineno, node.col_offset,
                            f"float({name}) truncates an array-typed "
                            "parameter; reduce it explicitly (e.g. "
                            "float(np.sum(...)) or .item())"))
                self.generic_visit(node)

            def _visit_function(self, node: ast.AST) -> None:
                super()._visit_function(node)  # type: ignore[arg-type]
                self._array_params.pop()

        Visitor().visit(ctx.tree)
        for line, column, message in findings:
            yield self.finding(ctx, line, column, message)


@register
class MutableDefaultRule(Rule):
    """N001: no mutable default arguments."""

    rule_id = "N001"
    summary = ("no mutable default arguments (list/dict/set literals "
               "or array constructors); use None plus an in-body "
               "default")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                reason = _mutable_default_reason(default)
                if reason is not None:
                    yield self.finding(
                        ctx, default.lineno, default.col_offset,
                        f"mutable default argument ({reason}) is shared "
                        "across calls; default to None instead")


def _mutable_default_reason(node: ast.expr) -> Optional[str]:
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Call):
        names: Dict[str, str] = {}
        func = node.func
        if isinstance(func, ast.Name):
            names[func.id] = func.id
        elif isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name):
            dotted = f"{func.value.id}.{func.attr}"
            names[dotted] = dotted
        for name in names:
            if name in _MUTABLE_FACTORIES:
                return f"{name}()"
    return None
