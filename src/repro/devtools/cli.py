"""The ``python -m repro lint`` front end.

Exit codes follow compiler conventions: 0 clean, 1 findings, 2 usage
error (unknown rule, missing path).  ``--warn-only`` reports findings
but exits 0 -- the mode used to survey ``benchmarks/`` and
``examples/`` without gating on them.  ``--max-waivers N`` turns the
suppression count itself into a budget: ``# repro: noqa`` waivers
beyond N fail the run, so the waiver list can only ratchet down.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from .engine import lint_paths
from .registry import all_rules
from .reporters import render_github, render_json, render_text


def default_lint_target() -> str:
    """The installed ``repro`` package directory.

    Makes ``python -m repro lint`` work from any CWD: the contract is
    "the package is clean", not "whatever happens to be here is clean".
    """
    return str(Path(__file__).resolve().parent.parent)


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to a (sub)parser."""
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files/directories to lint (default: the repro package)")
    parser.add_argument(
        "--format", choices=("text", "json", "github"),
        default="text",
        help="output format (default text; github emits ::error "
             "workflow annotations)")
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids/prefixes to run (e.g. D,U001)")
    parser.add_argument(
        "--ignore", default=None, metavar="RULES",
        help="comma-separated rule ids/prefixes to skip")
    parser.add_argument(
        "--warn-only", action="store_true",
        help="report findings but exit 0 (survey mode)")
    parser.add_argument(
        "--max-waivers", type=int, default=None, metavar="N",
        help="fail (exit 1) when more than N findings are waived by "
             "noqa comments; the repo's waiver budget only ratchets "
             "down")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit")


def _split(option: Optional[str]) -> Optional[List[str]]:
    if option is None:
        return None
    return [entry for entry in option.split(",") if entry.strip()]


def run_lint(args: argparse.Namespace) -> int:
    """Execute the lint command; returns the process exit code."""
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.summary}")
        return 0
    paths = args.paths or [default_lint_target()]
    try:
        result = lint_paths(paths, select=_split(args.select),
                            ignore=_split(args.ignore))
    except (ValueError, FileNotFoundError) as exc:
        print(f"lint: {exc}")
        return 2
    if args.format == "json":
        print(render_json(result))
    elif args.format == "github":
        print(render_github(result))
    else:
        print(render_text(result))
    if args.max_waivers is not None and \
            result.suppressed > args.max_waivers:
        print(f"waiver budget exceeded: {result.suppressed} findings "
              f"suppressed by noqa, budget is {args.max_waivers}; "
              "burn a waiver down before adding a new one")
        return 1
    if result.findings and not args.warn_only:
        return 1
    return 0
