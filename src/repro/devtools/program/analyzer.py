"""Run the program rules over an index, with baseline ratcheting.

The baseline file freezes pre-existing findings (as ``path + rule +
message`` fingerprints, deliberately line-insensitive so unrelated
edits don't churn it) and the analyzer reports only *new* findings —
the count can only ratchet down.  An empty or missing baseline means
every finding is new, which is the steady state this repo commits to.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ...store.atomic import write_json_atomic
from ..engine import LintResult, iter_python_files
from ..findings import Finding
from .arrays import (
    ARRAYS_SCHEMA_VERSION,
    attach_cached_array_table,
    serialized_array_table,
)
from .effects import (
    EFFECTS_SCHEMA_VERSION,
    attach_cached_table,
    serialized_table,
)
from .exceptions import (
    EXCEPTIONS_SCHEMA_VERSION,
    attach_cached_exception_table,
    serialized_exception_table,
)
from .index import (
    DEFAULT_CACHE_DIR,
    ProjectIndex,
    build_index,
    file_sha,
    load_cache,
    save_cache,
)
from .model import INDEX_SCHEMA_VERSION
from .registry import resolve_program_selection

#: Schema version of the committed baseline file.
BASELINE_SCHEMA_VERSION = 1

#: Default baseline location, relative to the working directory.
DEFAULT_BASELINE = ".analyze-baseline.json"


@dataclass
class AnalyzeResult(LintResult):
    """Lint-shaped result plus whole-program bookkeeping.

    ``profile`` holds per-rule-family wall time ("families": letter →
    seconds, empty when the results tier short-circuited the run) and
    cache hit/miss counters ("cache": results/effects/arrays/
    exceptions tier state plus files reused vs. re-extracted) — what
    ``analyze --profile`` renders.
    """

    from_cache: int = 0
    extracted: int = 0
    baselined: int = 0
    stale_baseline: int = 0
    profile: Dict[str, Any] = field(default_factory=dict)


def fingerprint(finding: Finding) -> Tuple[str, str, str]:
    return (finding.path, finding.rule_id, finding.message)


def load_baseline(path: str) -> Set[Tuple[str, str, str]]:
    """The baselined fingerprints ({} for a missing/invalid file)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return set()
    if not isinstance(payload, dict) or \
            payload.get("version") != BASELINE_SCHEMA_VERSION:
        return set()
    entries = payload.get("findings", [])
    baseline = set()
    for entry in entries:
        try:
            baseline.add((entry["path"], entry["rule"],
                          entry["message"]))
        except (TypeError, KeyError):
            continue
    return baseline


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Persist findings as the new baseline (sorted, deterministic)."""
    entries = sorted({fingerprint(f) for f in findings})
    payload = {
        "version": BASELINE_SCHEMA_VERSION,
        "findings": [
            {"path": p, "rule": r, "message": m}
            for p, r, m in entries],
    }
    write_json_atomic(path, payload, indent=2, sort_keys=True)


def run_program_rules(index: ProjectIndex,
                      select: Optional[Sequence[str]] = None,
                      ignore: Optional[Sequence[str]] = None,
                      timings: Optional[Dict[str, float]] = None
                      ) -> Tuple[List[Finding], int]:
    """(findings, suppressed count) over an index, noqa applied.

    With a ``timings`` dict, per-rule-family wall time (seconds, keyed
    by the rule-id letter prefix) is accumulated into it — the
    ``--profile`` counters.
    """
    rules = resolve_program_selection(select=select, ignore=ignore)
    by_path = {info.path: info for info in index.modules.values()}
    findings: List[Finding] = []
    suppressed = 0
    for rule in rules:
        start = time.monotonic()
        for finding in rule.check(index):
            info = by_path.get(finding.path)
            if info is not None and \
                    info.is_suppressed(finding.line, finding.rule_id):
                suppressed += 1
                continue
            findings.append(finding)
        if timings is not None:
            family = rule.rule_id[:1]
            timings[family] = timings.get(family, 0.0) + \
                (time.monotonic() - start)
    findings.sort(key=Finding.sort_key)
    return findings, suppressed


def _run_key(shas: Dict[str, str],
             select: Optional[Sequence[str]],
             ignore: Optional[Sequence[str]]) -> str:
    """Content hash of everything the rule findings depend on."""
    rules = [rule.rule_id
             for rule in resolve_program_selection(select=select,
                                                   ignore=ignore)]
    payload = json.dumps(
        [INDEX_SCHEMA_VERSION, EFFECTS_SCHEMA_VERSION,
         ARRAYS_SCHEMA_VERSION, EXCEPTIONS_SCHEMA_VERSION,
         sorted(shas.items()), sorted(rules)],
        sort_keys=True)
    return file_sha(payload)


def _cached_results(payload: Dict[str, Any],
                    run_key: str) -> Optional[Dict[str, Any]]:
    results = payload.get("results")
    if isinstance(results, dict) and results.get("key") == run_key:
        return results
    return None


def analyze_paths(paths: Sequence[str],
                  select: Optional[Sequence[str]] = None,
                  ignore: Optional[Sequence[str]] = None,
                  cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
                  baseline_path: Optional[str] = None
                  ) -> AnalyzeResult:
    """Index, analyze, baseline-filter; the package's entry point.

    With a cache directory, findings of the previous run are stored
    keyed by a hash of every input file's content plus the resolved
    rule selection: a no-change re-run returns them without even
    deserializing the index.  The baseline is applied *after* that
    (it is cheap and must not be baked into cached results).
    """
    payload: Dict[str, Any] = {}
    run_key = None
    cache_state = {"results": "miss", "effects": "miss",
                   "arrays": "miss", "exceptions": "miss"}
    if cache_dir is not None:
        payload = load_cache(cache_dir)
        shas = {}
        for filename in iter_python_files(paths):
            with open(filename, "r", encoding="utf-8") as handle:
                shas[filename] = file_sha(handle.read())
        run_key = _run_key(shas, select, ignore)
        results = _cached_results(payload, run_key)
        if results is not None:
            raw = [Finding(path=f["path"], line=f["line"],
                           column=f["column"], rule_id=f["rule"],
                           message=f["message"])
                   for f in results.get("findings", [])]
            cache_state = {"results": "hit", "effects": "hit",
                           "arrays": "hit", "exceptions": "hit"}
            return _finish(raw, baseline_path,
                           files_checked=int(results["files_checked"]),
                           suppressed=int(results["suppressed"]),
                           from_cache=len(shas), extracted=0,
                           profile=_profile({}, cache_state,
                                            len(shas), 0))

    index = build_index(paths, cache_dir=cache_dir,
                        cached_payload=payload if cache_dir else None,
                        save=False)
    if cache_dir is not None:
        # Third through fifth cache tiers: reuse the effect-inference,
        # array-semantics, and exception-escape fixpoints when every
        # input file is unchanged (e.g. a warm run with a different
        # --select missed the results tier but can still skip
        # re-deriving the summaries).
        if attach_cached_table(index, payload.get("effects", {})):
            cache_state["effects"] = "hit"
        if attach_cached_array_table(index, payload.get("arrays", {})):
            cache_state["arrays"] = "hit"
        if attach_cached_exception_table(index,
                                         payload.get("exceptions", {})):
            cache_state["exceptions"] = "hit"
    timings: Dict[str, float] = {}
    raw, suppressed = run_program_rules(index, select=select,
                                        ignore=ignore, timings=timings)
    for path, line, message in index.syntax_errors:
        raw.append(Finding(path=path, line=line, column=1,
                           rule_id="E999",
                           message=f"syntax error: {message}"))
    raw.sort(key=Finding.sort_key)
    files_checked = len(index.modules) + len(index.syntax_errors)

    if cache_dir is not None:
        files: Dict[str, Any] = dict(payload.get("files", {}))
        files.update(index.cache_entries)
        effects = serialized_table(index) or payload.get("effects")
        arrays = serialized_array_table(index) or payload.get("arrays")
        exceptions = serialized_exception_table(index) \
            or payload.get("exceptions")
        next_payload: Dict[str, Any] = {
            "files": files,
            "results": {
                "key": run_key,
                "findings": [f.to_dict() for f in raw],
                "suppressed": suppressed,
                "files_checked": files_checked,
            },
        }
        if effects is not None:
            next_payload["effects"] = effects
        if arrays is not None:
            next_payload["arrays"] = arrays
        if exceptions is not None:
            next_payload["exceptions"] = exceptions
        save_cache(cache_dir, next_payload)

    return _finish(raw, baseline_path, files_checked=files_checked,
                   suppressed=suppressed,
                   from_cache=index.from_cache,
                   extracted=index.extracted,
                   profile=_profile(timings, cache_state,
                                    index.from_cache, index.extracted))


def _profile(timings: Dict[str, float], cache_state: Dict[str, str],
             files_cached: int, files_extracted: int) -> Dict[str, Any]:
    return {
        "families": {family: round(seconds, 6)
                     for family, seconds in sorted(timings.items())},
        "cache": {
            "results": cache_state["results"],
            "effects": cache_state["effects"],
            "arrays": cache_state["arrays"],
            "exceptions": cache_state["exceptions"],
            "files_cached": files_cached,
            "files_extracted": files_extracted,
        },
    }


def _finish(raw: List[Finding], baseline_path: Optional[str],
            files_checked: int, suppressed: int, from_cache: int,
            extracted: int,
            profile: Optional[Dict[str, Any]] = None) -> AnalyzeResult:
    baseline = load_baseline(baseline_path) if baseline_path else set()
    new = [f for f in raw if fingerprint(f) not in baseline]
    matched = {fingerprint(f) for f in raw} & baseline
    return AnalyzeResult(
        findings=new,
        files_checked=files_checked,
        suppressed=suppressed,
        from_cache=from_cache,
        extracted=extracted,
        baselined=len(raw) - len(new),
        stale_baseline=len(baseline) - len(matched),
        profile=profile or {})
