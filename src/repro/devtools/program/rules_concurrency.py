"""C-series: static race detection at the worker-pool boundary.

``parallel_map`` / ``parallel_map_arrays`` fork worker processes; a
worker function that mutates module globals mutates a *copy* that the
parent never sees (or, under threads-in-future engines, a shared one
racily), and a resource handle created in the parent is dead weight or
a deadlock in the child.  These rules consume the effect summaries of
:mod:`.effects`:

* **C001** — the worker callable (or its transitive callees) mutates a
  module global, or a lambda/partial captures a mutable module-level
  container across the pool boundary.
* **C002** — a ``parallel_map_arrays`` worker writes rows at absolute
  indices that cannot be proven chunk-disjoint: an index expression is
  accepted only when it involves a start-offset parameter
  (``start + i`` style); constants and item-derived indices are
  flagged.
* **C003** — a fork-unsafe resource (open handle, memmap,
  ``SharedMemory``, pipe) created in the parent scope or at module
  level is reachable from the worker callable or the items.
* **C004** — the items fed to the pool come from an unordered
  enumeration (``set``, ``glob``, ``os.listdir``, ...) without a
  ``sorted`` wrapper, so reduction over the results is
  order-unstable run to run.
"""

from __future__ import annotations

from typing import Iterator, Optional, Set, Tuple

from ..findings import Finding
from .effects import (
    EffectTable,
    effect_table,
    owner_of,
    resolve_worker,
)
from .index import ProjectIndex
from .model import CallSite, FunctionInfo, ModuleInfo, ValueDesc
from .registry import ProgramRule, register_program_rule

#: Pool entry points guarded by the C-series.
POOL_LEAVES = frozenset({"parallel_map", "parallel_map_arrays"})

#: Qualified pool functions (fixture stand-ins index identically).
_POOL_QUALIFIED = frozenset({
    "repro.parallel.parallel_map",
    "repro.parallel.parallel_map_arrays"})

#: Parameter names accepted as a chunk's absolute start offset.
START_PARAMS = frozenset({
    "start", "starts", "base", "offset", "row0", "row_start", "begin"})

#: Callee leaves producing an enumeration with unstable order.
UNORDERED_SOURCES = frozenset({
    "set", "frozenset", "glob", "iglob", "listdir", "scandir",
    "iterdir"})


def _leaf(dotted: str) -> str:
    return dotted.rsplit(".", 1)[-1]


def _is_pool_call(index: ProjectIndex, module: str,
                  call: CallSite) -> bool:
    if not call.func or _leaf(call.func) not in POOL_LEAVES:
        return False
    callee = index.resolve_call(module, call)
    if callee is None:
        return True  # unresolved but unambiguous by name
    return callee.qualified in _POOL_QUALIFIED


def _argument(call: CallSite, position: int,
              keyword: str) -> Optional[ValueDesc]:
    if len(call.args) > position:
        return call.args[position]
    for name, value in call.keywords:
        if name == keyword:
            return value
    return None


def _pool_sites(index: ProjectIndex
                ) -> Iterator[Tuple[str, ModuleInfo, CallSite]]:
    for module in sorted(index.modules):
        info = index.modules[module]
        for call in info.calls:
            if _is_pool_call(index, module, call):
                yield module, info, call


class _PoolRule(ProgramRule):
    """Shared iteration scaffold for the C-series."""

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        table = effect_table(index)
        for module, info, call in _pool_sites(index):
            yield from self.check_site(index, table, module, info,
                                       call)

    def check_site(self, index: ProjectIndex, table: EffectTable,
                   module: str, info: ModuleInfo,
                   call: CallSite) -> Iterator[Finding]:
        raise NotImplementedError


@register_program_rule
class WorkerMutationRule(_PoolRule):
    """C001: the worker mutates shared module state."""

    rule_id = "C001"
    summary = ("a parallel_map / parallel_map_arrays worker callable "
               "must not mutate module globals or capture a mutable "
               "module-level container; each forked worker sees its "
               "own copy and the parent's state silently diverges")

    def check_site(self, index: ProjectIndex, table: EffectTable,
                   module: str, info: ModuleInfo,
                   call: CallSite) -> Iterator[Finding]:
        fn = _argument(call, 0, "fn")
        if fn is None:
            return
        worker = resolve_worker(index, module, call, fn)
        if worker is not None:
            wmodule, wqual, _ = worker
            summary = table.summary(wmodule, wqual)
            if summary is not None and summary.mutates_globals:
                culprit = sorted(summary.mutates_globals)[0]
                yield self.finding(
                    info, call.lineno, call.col,
                    f"worker {fn.text!r} mutates module global "
                    f"{culprit!r} across the {_leaf(call.func)} "
                    "boundary; forked workers mutate private copies "
                    "— return the value and merge in the parent")
            return
        if fn.kind in ("lambda", "call"):
            captured = sorted(set(fn.names) & set(info.mutable_globals))
            if captured:
                yield self.finding(
                    info, call.lineno, call.col,
                    f"{_leaf(call.func)} callable captures mutable "
                    f"module global {captured[0]!r}; shared mutable "
                    "state must not cross the pool boundary — pass "
                    "it through the items instead")
                return
            for name in sorted(set(fn.names)):
                probe = ValueDesc(kind="name", text=name)
                target = resolve_worker(index, module, call, probe)
                if target is None:
                    continue
                tmodule, tqual, _ = target
                summary = table.summary(tmodule, tqual)
                if summary is not None and summary.mutates_globals:
                    culprit = sorted(summary.mutates_globals)[0]
                    yield self.finding(
                        info, call.lineno, call.col,
                        f"worker {name!r} (wrapped in the "
                        f"{_leaf(call.func)} callable) mutates "
                        f"module global {culprit!r}; return the "
                        "value and merge in the parent")
                    return


@register_program_rule
class ChunkOverlapRule(_PoolRule):
    """C002: absolute-index writes must be provably chunk-disjoint."""

    rule_id = "C002"
    summary = ("a parallel_map_arrays worker writing output rows at "
               "absolute indices must derive every index from its "
               "chunk start offset (start + i); constant or "
               "item-derived indices can collide across chunks")

    def check_site(self, index: ProjectIndex, table: EffectTable,
                   module: str, info: ModuleInfo,
                   call: CallSite) -> Iterator[Finding]:
        if _leaf(call.func) != "parallel_map_arrays":
            return
        fn = _argument(call, 0, "fn")
        if fn is None:
            return
        worker = resolve_worker(index, module, call, fn)
        if worker is None:
            return
        wmodule, _, function = worker
        winfo = index.modules.get(wmodule)
        if winfo is None:
            return
        params = {p.name for p in function.params}
        start_params = params & START_PARAMS
        for write in function.index_writes:
            root = write.target.split(".")[0]
            if root not in params:
                continue  # local scratch arrays are the engine's job
            if set(write.names) & start_params:
                continue  # start-offset form: chunks are disjoint
            yield self.finding(
                winfo, write.lineno, write.col,
                f"worker {function.qualname!r} writes "
                f"{write.target}[{write.index_text}] but the index "
                "cannot be proven chunk-disjoint; derive it from the "
                "chunk start offset (start + i) so parallel chunks "
                "never overlap")


@register_program_rule
class ForkUnsafeResourceRule(_PoolRule):
    """C003: parent-held resources must not reach the workers."""

    rule_id = "C003"
    summary = ("an open file handle, memmap, SharedMemory segment or "
               "pipe created in the parent must not be reachable from "
               "a pool worker; forked copies of a live handle share "
               "file offsets and buffers and corrupt each other")

    def check_site(self, index: ProjectIndex, table: EffectTable,
                   module: str, info: ModuleInfo,
                   call: CallSite) -> Iterator[Finding]:
        module_resources = table.module_resources.get(module, {})
        qualified_resources = {
            f"{mod}.{name}"
            for mod, bindings in table.module_resources.items()
            for name in bindings}
        owner = owner_of(info, call.in_function)
        parent = table.summary(module, owner) if owner else None
        parent_resources = dict(parent.resources) if parent else {}

        fn = _argument(call, 0, "fn")
        if fn is not None:
            worker = resolve_worker(index, module, call, fn)
            if worker is not None:
                yield from self._check_worker(
                    table, info, call, fn, worker,
                    qualified_resources, parent_resources)
            elif fn.kind in ("lambda", "call"):
                captured = sorted(
                    set(fn.names) & (set(module_resources)
                                     | set(parent_resources)))
                if captured:
                    kind = self._kind_of(captured[0], module_resources,
                                         parent_resources)
                    yield self.finding(
                        info, call.lineno, call.col,
                        f"{_leaf(call.func)} callable captures "
                        f"{captured[0]!r} (an {kind}) created in the "
                        "parent; open the resource inside the worker "
                        "instead")

        items = _argument(call, 1, "items")
        if items is not None:
            carried = sorted(
                set(items.names) & (set(module_resources)
                                    | set(parent_resources)))
            if carried:
                kind = self._kind_of(carried[0], module_resources,
                                     parent_resources)
                yield self.finding(
                    info, call.lineno, call.col,
                    f"{_leaf(call.func)} items reference "
                    f"{carried[0]!r} (an {kind}) created in the "
                    "parent; ship paths or specs across the pool "
                    "boundary, not live handles")

    def _check_worker(self, table: EffectTable, info: ModuleInfo,
                      call: CallSite, fn: ValueDesc,
                      worker: Tuple[str, str, FunctionInfo],
                      qualified_resources: Set[str],
                      parent_resources: "dict[str, Tuple[str, int]]"
                      ) -> Iterator[Finding]:
        wmodule, wqual, function = worker
        summary = table.summary(wmodule, wqual)
        if summary is not None:
            reached = sorted(summary.reads_globals
                             & qualified_resources)
            if reached:
                yield self.finding(
                    info, call.lineno, call.col,
                    f"worker {fn.text!r} reaches module-level "
                    f"resource {reached[0]!r} across the "
                    f"{_leaf(call.func)} boundary; open the resource "
                    "inside the worker instead")
                return
        # A nested-def worker closing over a parent-local handle.
        if "." in wqual:
            captured = sorted(set(function.reads)
                              & set(parent_resources))
            if captured:
                kind = parent_resources[captured[0]][0]
                yield self.finding(
                    info, call.lineno, call.col,
                    f"worker {fn.text!r} closes over {captured[0]!r} "
                    f"(an {kind}) created in the parent; open the "
                    "resource inside the worker instead")

    @staticmethod
    def _kind_of(name: str,
                 module_resources: "dict[str, Tuple[str, int]]",
                 parent_resources: "dict[str, Tuple[str, int]]"
                 ) -> str:
        if name in parent_resources:
            return parent_resources[name][0]
        return module_resources[name][0]


@register_program_rule
class OrderStabilityRule(_PoolRule):
    """C004: pool items must come from a deterministic enumeration."""

    rule_id = "C004"
    summary = ("parallel_map merges results in items order, so the "
               "items enumeration IS the result order; feeding an "
               "unordered source (set, glob, os.listdir) makes any "
               "reduction over the results — float accumulation "
               "especially — differ run to run unless sorted first")

    def check_site(self, index: ProjectIndex, table: EffectTable,
                   module: str, info: ModuleInfo,
                   call: CallSite) -> Iterator[Finding]:
        items = _argument(call, 1, "items")
        if items is None or items.kind != "call":
            return
        leaves = {_leaf(callee) for callee in items.calls}
        if items.text:
            leaves.add(_leaf(items.text))
        unordered = sorted(leaves & UNORDERED_SOURCES)
        if not unordered or "sorted" in leaves:
            return
        yield self.finding(
            info, call.lineno, call.col,
            f"{_leaf(call.func)} items come from unordered source "
            f"{unordered[0]}(); the merge order — and any reduction "
            "over the results — then varies run to run; wrap the "
            "source in sorted(...) to pin it")
