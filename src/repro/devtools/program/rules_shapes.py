"""S-series: interprocedural shape and axis-order contracts.

These consume the :class:`~.arrays.ArrayTable` events the
array-semantics pass emits while replaying every function with the
converged return-summary table.  They are global (not hot-module
gated): a shape contract broken anywhere is a crash or a silent
mis-broadcast waiting for the first caller.
"""

from __future__ import annotations

from typing import Iterator

from ..findings import Finding
from .arrays import ArrayEvent, array_table
from .index import ProjectIndex
from .registry import ProgramRule, register_program_rule


class _ShapeEventRule(ProgramRule):
    """Shared scaffold: turn one event kind into findings."""

    event_kind = ""

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        table = array_table(index)
        for event in table.events:
            if event.kind != self.event_kind:
                continue
            info = index.modules.get(event.module)
            if info is None:
                continue
            yield self.finding(info, event.lineno, event.col,
                               self.message(event))

    def message(self, event: ArrayEvent) -> str:
        raise NotImplementedError


@register_program_rule
class BroadcastRule(_ShapeEventRule):
    """S001: statically incompatible broadcast at a call site."""

    rule_id = "S001"
    summary = ("arguments a callee combines elementwise must be "
               "statically broadcast-compatible (right-aligned dims "
               "equal or 1)")
    event_kind = "broadcast"

    def message(self, event: ArrayEvent) -> str:
        return (f"incompatible broadcast: {event.detail}; the shapes "
                "cannot broadcast together")


@register_program_rule
class AxisOrderRule(_ShapeEventRule):
    """S002: trace tensors crossing motion→simulate are axis-major."""

    rule_id = "S002"
    summary = ("trace tensors passed into repro.motion / "
               "repro.simulate must be axis-major (T, 3, n), not "
               "sample-major (T, n, 3)")
    event_kind = "axis-order"

    def message(self, event: ArrayEvent) -> str:
        return (f"axis-order violation: {event.detail}; transpose to "
                "(T, 3, n) before crossing the engine boundary")


@register_program_rule
class ReturnShapeRule(_ShapeEventRule):
    """S003: unit-suffixed functions preserve their input's shape."""

    rule_id = "S003"
    summary = ("a unit-suffixed function taking an array must return "
               "a value shaped like its input, not a freshly "
               "constructed shape")
    event_kind = "return-shape"

    def message(self, event: ArrayEvent) -> str:
        return (f"return-shape mismatch: {event.detail} — a "
                "unit-suffixed signature promises an elementwise "
                "conversion")
