"""Per-file extraction: one parsed AST in, one :class:`ModuleInfo` out.

This is the only place the analyzer touches an AST.  Everything the
interprocedural rules need — imports with their laziness and
``TYPE_CHECKING`` status, function signatures, class constructor
shapes, call sites with argument descriptions, RNG-source names — is
distilled here into the JSON-serializable model, so the rest of the
package (and the on-disk cache) never re-parses source.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..context import package_parts, parse_noqa
from ..visitors import dotted_name, parameter_nodes, unit_suffix
from .model import (
    RESOURCE_PRODUCERS,
    ArrayOp,
    CallGuard,
    CallSite,
    ClassInfo,
    FunctionInfo,
    HandlerSpec,
    ImportedName,
    IndexWrite,
    ModuleInfo,
    ParamInfo,
    RaiseFact,
    ResourceFact,
    TryFact,
    ValueDesc,
)

#: Callee leaves that produce an RNG object (sanctioned or not).
RNG_PRODUCERS = frozenset({
    "resolve_rng", "spawn", "derive", "default_rng", "RandomState"})

#: Constructor leaves yielding a mutable container at module scope.
MUTABLE_CONSTRUCTORS = frozenset({
    "dict", "list", "set", "defaultdict", "OrderedDict", "deque",
    "bytearray", "Counter"})

#: Method leaves that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "append", "extend", "add", "update", "setdefault", "pop",
    "popitem", "clear", "insert", "remove", "discard", "appendleft",
    "sort", "reverse"})


def module_name_for(path: str) -> str:
    """Dotted module name for a file, rooted at the ``repro`` package.

    ``src/repro/optics/units.py`` -> ``repro.optics.units``; package
    ``__init__.py`` files name the package itself.  Files outside a
    ``repro`` tree (fixtures, benchmarks) use their own trailing
    components, so a fixture tree embedding ``repro/...`` indexes
    exactly like the real package.
    """
    parts = list(package_parts(path))
    if not parts:
        return ""
    leaf = parts[-1]
    if leaf == "__init__.py":
        parts = parts[:-1]
    elif leaf.endswith(".py"):
        parts[-1] = leaf[:-3]
    return ".".join(parts)


def _is_none(node: Optional[ast.expr]) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _leaf(dotted: str) -> str:
    return dotted.rsplit(".", 1)[-1]


def _free_names(node: ast.expr) -> Tuple[Set[str], Set[str]]:
    """(loaded names, dotted callees) inside an expression.

    Names bound by lambdas and comprehensions within the expression are
    excluded from the loaded set — they are not free.
    """
    loaded: Set[str] = set()
    bound: Set[str] = set()
    callees: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            if isinstance(child.ctx, ast.Load):
                loaded.add(child.id)
            else:
                bound.add(child.id)
        elif isinstance(child, ast.Lambda):
            for arg in parameter_nodes(child):  # type: ignore[arg-type]
                bound.add(arg.arg)
        elif isinstance(child, ast.Call):
            name = dotted_name(child.func)
            if name is not None:
                callees.add(name)
    return loaded - bound, callees


def _str_consts(node: ast.expr) -> Tuple[str, ...]:
    found = sorted({child.value for child in ast.walk(node)
                    if isinstance(child, ast.Constant)
                    and isinstance(child.value, str)})
    return tuple(found)


def describe_value(node: ast.expr) -> ValueDesc:
    """Build the :class:`ValueDesc` approximation of one expression."""
    names, callees = _free_names(node)
    names_t = tuple(sorted(names))
    calls_t = tuple(sorted(callees))
    consts_t = _str_consts(node)
    if isinstance(node, ast.Name):
        return ValueDesc(kind="name", text=node.id,
                         suffix=unit_suffix(node.id),
                         names=names_t, calls=calls_t)
    if isinstance(node, ast.Attribute):
        dotted = dotted_name(node)
        if dotted is not None:
            return ValueDesc(kind="attr", text=dotted,
                             suffix=unit_suffix(_leaf(dotted)),
                             names=names_t, calls=calls_t)
        return ValueDesc(kind="other", names=names_t, calls=calls_t,
                         consts=consts_t)
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func) or ""
        return ValueDesc(kind="call", text=dotted,
                         names=names_t, calls=calls_t, consts=consts_t)
    if isinstance(node, ast.Lambda):
        return ValueDesc(kind="lambda", names=names_t, calls=calls_t,
                         consts=consts_t)
    if isinstance(node, ast.Constant):
        return ValueDesc(kind="const", text=repr(node.value),
                         consts=consts_t)
    return ValueDesc(kind="other", names=names_t, calls=calls_t,
                     consts=consts_t)


def _is_mutable_initializer(value: Optional[ast.expr]) -> bool:
    if value is None:
        return False
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        callee = dotted_name(value.func)
        return callee is not None and \
            _leaf(callee) in MUTABLE_CONSTRUCTORS
    return False


def _module_prepass(
        stmts: Sequence[ast.stmt]) -> Tuple[Set[str], Set[str]]:
    """(top-level bound names, mutable-container names) of a module."""
    names: Set[str] = set()
    mutable: Set[str] = set()
    for stmt in stmts:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                    if _is_mutable_initializer(stmt.value):
                        mutable.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
            if _is_mutable_initializer(stmt.value):
                mutable.add(stmt.target.id)
        elif isinstance(stmt, (ast.If, ast.Try)):
            for block in _nested_bodies(stmt):
                sub_names, sub_mutable = _module_prepass(block)
                names |= sub_names
                mutable |= sub_mutable
    return names, mutable


def _subscript_base(node: ast.Subscript) -> Optional[str]:
    return dotted_name(node.value)


def _index_write(node: ast.Subscript) -> Optional[IndexWrite]:
    base = _subscript_base(node)
    if base is None:
        return None
    index = node.slice
    kind = "slice" if isinstance(index, ast.Slice) else "expr"
    names, _ = _free_names(index) if isinstance(index, ast.expr) \
        else (set(), set())
    return IndexWrite(
        target=base, index_kind=kind, index_text=ast.unparse(index),
        names=tuple(sorted(names)), lineno=node.lineno,
        col=node.col_offset)


def _function_facts(
        node: ast.AST, module_names: Set[str],
) -> Tuple[Tuple[str, ...], Tuple[str, ...], Tuple[IndexWrite, ...]]:
    """(global_writes, free reads, index writes) for one def body.

    Walks the whole def including nested functions — a nested worker
    closure mutating a module global makes the enclosing function an
    effectful one, which is exactly the conservative view the race
    rules need.  A name is treated as a module global when it is bound
    at module scope and not rebound anywhere inside the def (params
    and local assignments shadow), or when declared ``global``.
    """
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    bound: Set[str] = set()
    declared_global: Set[str] = set()
    loaded: Set[str] = set()
    store_targets: List[ast.expr] = []
    mutator_calls: List[ast.Call] = []
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            if isinstance(child.ctx, ast.Load):
                loaded.add(child.id)
            else:
                bound.add(child.id)
        elif isinstance(child, ast.arg):
            bound.add(child.arg)
        elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.ClassDef)) and child is not node:
            bound.add(child.name)
        elif isinstance(child, ast.Global):
            declared_global.update(child.names)
        elif isinstance(child, (ast.Import, ast.ImportFrom)):
            for alias in child.names:
                bound.add(alias.asname
                          or alias.name.split(".")[0])
        elif isinstance(child, ast.Assign):
            store_targets.extend(child.targets)
        elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
            store_targets.append(child.target)
        elif isinstance(child, ast.Call) and \
                isinstance(child.func, ast.Attribute) and \
                child.func.attr in MUTATOR_METHODS:
            mutator_calls.append(child)

    def _refers_to_global(name: str) -> bool:
        if name in declared_global:
            return True
        return name in module_names and name not in bound

    global_writes: Set[str] = set()
    index_writes: List[IndexWrite] = []
    for target in store_targets:
        if isinstance(target, ast.Tuple):
            elements: List[ast.expr] = list(target.elts)
        else:
            elements = [target]
        for element in elements:
            if isinstance(element, ast.Name):
                if element.id in declared_global:
                    global_writes.add(element.id)
            elif isinstance(element, ast.Subscript):
                write = _index_write(element)
                if write is not None:
                    index_writes.append(write)
                    root = write.target.split(".")[0]
                    if _refers_to_global(root):
                        global_writes.add(root)
            elif isinstance(element, ast.Attribute):
                dotted = dotted_name(element)
                if dotted is not None:
                    root = dotted.split(".")[0]
                    if _refers_to_global(root):
                        global_writes.add(root)
    for call in mutator_calls:
        assert isinstance(call.func, ast.Attribute)
        receiver = dotted_name(call.func.value)
        if receiver is not None and \
                _refers_to_global(receiver.split(".")[0]):
            global_writes.add(receiver.split(".")[0])
    reads = loaded - bound
    index_writes.sort(key=lambda w: (w.lineno, w.col))
    return (tuple(sorted(global_writes)), tuple(sorted(reads)),
            tuple(index_writes))


# -- array-semantics facts ---------------------------------------------------

#: Allocation leaves whose dtype defaults silently (Y002 candidates).
DTYPE_REQUIRED_LEAVES = frozenset({"empty", "zeros", "ones", "full"})

#: All allocation leaves (value-derived dtypes included).
_ALLOC_LEAVES = DTYPE_REQUIRED_LEAVES | frozenset({
    "array", "arange", "linspace", "eye", "identity", "frombuffer",
    "fromiter"})

_LIKE_LEAVES = frozenset({
    "empty_like", "zeros_like", "ones_like", "full_like"})

#: ``np.``-namespace leaves that build a new array by concatenation.
_CONCAT_LEAVES = frozenset({
    "concatenate", "append", "stack", "vstack", "hstack", "dstack",
    "column_stack", "block", "tile", "repeat"})

_CONVERT_LEAVES = frozenset({
    "asarray", "ascontiguousarray", "asfortranarray"})

_VIEW_LEAVES = frozenset({
    "reshape", "transpose", "ravel", "swapaxes", "view", "squeeze",
    "flatten", "broadcast_to"})

_AXIS_LEAVES = frozenset({
    "sum", "cumsum", "cumprod", "mean", "std", "var", "median",
    "prod", "max", "min", "amax", "amin", "argmax", "argmin", "all",
    "any", "count_nonzero", "diff", "norm", "lfilter", "nanmean",
    "nansum", "percentile", "quantile", "sort", "take"})

_UFUNC_LEAVES = frozenset({
    "add", "subtract", "multiply", "divide", "true_divide",
    "floor_divide", "power", "mod", "sqrt", "exp", "log", "log2",
    "log10", "abs", "absolute", "minimum", "maximum", "where", "clip",
    "less", "less_equal", "greater", "greater_equal", "equal",
    "not_equal", "logical_and", "logical_or", "logical_not", "hypot",
    "arctan2", "sin", "cos", "tan", "radians", "degrees"})

_OBJECT_LEAVES = frozenset({
    "dict", "set", "defaultdict", "OrderedDict", "Counter"})

_BINOP_SYMBOLS = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/",
    ast.FloorDiv: "//", ast.Mod: "%", ast.Pow: "**",
    ast.BitAnd: "&", ast.BitOr: "|", ast.BitXor: "^",
    ast.LShift: "<<", ast.RShift: ">>", ast.MatMult: "@",
}

_COMPARE_SYMBOLS = {
    ast.Lt: "<", ast.LtE: "<=", ast.Gt: ">", ast.GtE: ">=",
    ast.Eq: "==", ast.NotEq: "!=",
}


def _normalize_dtype(text: str) -> str:
    """Canonical dtype token of a ``dtype=`` expression string."""
    text = text.strip().strip("'\"")
    for prefix in ("np.", "numpy."):
        if text.startswith(prefix):
            text = text[len(prefix):]
    return {
        "float": "float64", "bool_": "bool", "bool8": "bool",
        "int": "int64", "double": "float64",
    }.get(text, text)


def _dtype_argument(node: ast.Call, position: int) -> Optional[str]:
    """The normalized explicit dtype of an allocation call, if any."""
    for kw in node.keywords:
        if kw.arg == "dtype":
            return _normalize_dtype(ast.unparse(kw.value))
    if 0 <= position < len(node.args):
        arg = node.args[position]
        if not isinstance(arg, ast.Starred):
            return _normalize_dtype(ast.unparse(arg))
    return None


def _shape_dims(node: Optional[ast.expr]) -> Optional[Tuple[str, ...]]:
    """Per-dimension shape expressions of a literal shape argument."""
    if node is None:
        return None
    if isinstance(node, ast.Tuple):
        return tuple(ast.unparse(element) for element in node.elts)
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return (str(node.value),)
    return None


def _operand_names(*nodes: ast.expr) -> Tuple[Tuple[str, ...],
                                              Tuple[str, ...]]:
    """(plain-name operands, subscripted base names) of expressions."""
    plain: List[str] = []
    subs: List[str] = []
    for node in nodes:
        if isinstance(node, ast.Name):
            plain.append(node.id)
        elif isinstance(node, ast.Subscript):
            base = dotted_name(node.value)
            if base is not None and "." not in base:
                subs.append(base)
        elif isinstance(node, ast.UnaryOp):
            inner_plain, inner_subs = _operand_names(node.operand)
            plain.extend(inner_plain)
            subs.extend(inner_subs)
    return tuple(plain), tuple(subs)


def _const_kind(*nodes: ast.expr) -> str:
    """``float`` / ``int`` / ``bool`` when a literal operand appears."""
    for node in nodes:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return "bool"
            if isinstance(node.value, float):
                return "float"
            if isinstance(node.value, int):
                return "int"
    return ""


class _ArrayFactsCollector:
    """Collect :class:`ArrayOp` facts for one def body.

    Nested defs and classes are skipped (they collect their own
    facts).  ``for`` / ``while`` statements raise the loop depth;
    comprehensions deliberately do not — a comprehension is a single
    vectorizable expression, not the per-element Python loop the
    hot-path rules police.
    """

    def __init__(self) -> None:
        self.ops: List[ArrayOp] = []
        self.depth = 0

    # -- statements ----------------------------------------------------------

    def walk(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._for(stmt)
            return
        if isinstance(stmt, ast.While):
            self._expr(stmt.test, None)
            self.depth += 1
            self.walk(stmt.body)
            self.walk(stmt.orelse)
            self.depth -= 1
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            bound: Optional[str] = None
            if isinstance(stmt, ast.Assign):
                if len(stmt.targets) == 1 and \
                        isinstance(stmt.targets[0], ast.Name):
                    bound = stmt.targets[0].id
            elif isinstance(stmt.target, ast.Name):
                bound = stmt.target.id
            if stmt.value is not None:
                self._binding(stmt.value, bound)
            return
        if isinstance(stmt, ast.AugAssign):
            self._augassign(stmt)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._binding(stmt.value, "<ret>")
            return
        for block in _nested_bodies(stmt):
            self.walk(block)
        for expr in _own_expressions(stmt):
            self._expr(expr, None)

    def _binding(self, value: ast.expr, bound: Optional[str]) -> None:
        """Record the value's ops; kill the target if none bound it."""
        before = len(self.ops)
        self._expr(value, bound)
        if bound is None:
            return
        if any(op.bound_to == bound for op in self.ops[before:]):
            return
        self._record("kill", "", value, bound_to=bound)

    def _for(self, stmt: ast.stmt) -> None:
        assert isinstance(stmt, (ast.For, ast.AsyncFor))
        target = stmt.target.id if isinstance(stmt.target, ast.Name) \
            else None
        iter_call = dotted_name(stmt.iter.func) or "" \
            if isinstance(stmt.iter, ast.Call) else ""
        if _leaf(iter_call) == "range" and target is not None:
            detail, operands = self._range_body_facts(stmt.body, target)
            self._record("iter", "range", stmt, operands=operands,
                         detail=detail)
        elif isinstance(stmt.iter, ast.Name):
            self._record("iter", "", stmt,
                         operands=(stmt.iter.id,), detail="name")
        else:
            plain, subs = _operand_names(stmt.iter)
            self._record("iter", iter_call, stmt, operands=plain,
                         subs=subs, detail="plain")
        self._expr(stmt.iter, None)
        self.depth += 1
        self.walk(stmt.body)
        self.walk(stmt.orelse)
        self.depth -= 1

    def _range_body_facts(self, body: Sequence[ast.stmt],
                          loop_var: str) -> Tuple[str, Tuple[str, ...]]:
        """Classify a ``for i in range(...)`` body for rule P002.

        ``elementwise``: arrays are subscripted only with the bare loop
        variable and the body does arithmetic — a vectorized op could
        replace the loop.  ``scan``: some index offsets the loop
        variable (``out[i - 1]``) or a plain name accumulates via an
        augmented assignment — a loop-carried recurrence no single
        ufunc expresses, exempt.  ``plain``: nothing indexed by the
        loop var.
        """
        pure: Set[str] = set()
        offset = False
        has_arith = False
        for stmt in body:
            for child in ast.walk(stmt):
                if isinstance(child, ast.AugAssign) and \
                        isinstance(child.target, ast.Name):
                    offset = True
                if isinstance(child, (ast.BinOp, ast.AugAssign)):
                    has_arith = True
                if not isinstance(child, ast.Subscript):
                    continue
                base = dotted_name(child.value)
                if base is None or "." in base:
                    continue
                index = child.slice
                names, _ = _free_names(index) \
                    if isinstance(index, ast.expr) else (set(), set())
                if loop_var not in names:
                    continue
                if self._pure_index(index, loop_var):
                    pure.add(base)
                else:
                    offset = True
        if offset:
            return "scan", tuple(sorted(pure))
        if pure and has_arith:
            return "elementwise", tuple(sorted(pure))
        return "plain", tuple(sorted(pure))

    @staticmethod
    def _pure_index(index: ast.expr, loop_var: str) -> bool:
        """Is the subscript exactly the loop var (plus full slices)?"""
        elements = list(index.elts) if isinstance(index, ast.Tuple) \
            else [index]
        for element in elements:
            if isinstance(element, ast.Name):
                continue
            if isinstance(element, ast.Constant):
                continue
            if isinstance(element, ast.Slice) and \
                    element.lower is None and element.upper is None \
                    and element.step is None:
                continue
            return False
        return True

    def _augassign(self, stmt: ast.AugAssign) -> None:
        symbol = _BINOP_SYMBOLS.get(type(stmt.op), "?")
        target_plain, target_subs = _operand_names(stmt.target)
        value_plain, value_subs = _operand_names(stmt.value)
        bound = stmt.target.id \
            if isinstance(stmt.target, ast.Name) else None
        self._record(
            "ufunc", symbol, stmt,
            operands=target_plain + value_plain,
            subs=target_subs + value_subs, bound_to=bound,
            detail=_const_kind(stmt.value))
        self._expr(stmt.value, None)

    # -- expressions ---------------------------------------------------------

    def _expr(self, expr: ast.expr, bound: Optional[str]) -> None:
        if isinstance(expr, ast.Call):
            self._call(expr, bound)
            return
        if isinstance(expr, ast.BinOp):
            plain, subs = _operand_names(expr.left, expr.right)
            self._record(
                "ufunc", _BINOP_SYMBOLS.get(type(expr.op), "?"), expr,
                operands=plain, subs=subs, bound_to=bound,
                detail=_const_kind(expr.left, expr.right))
            self._expr(expr.left, None)
            self._expr(expr.right, None)
            return
        if isinstance(expr, ast.Compare):
            comparators = [expr.left] + list(expr.comparators)
            plain, subs = _operand_names(*comparators)
            symbol = _COMPARE_SYMBOLS.get(type(expr.ops[0]), "?")
            self._record("ufunc", symbol, expr, operands=plain,
                         subs=subs, bound_to=bound,
                         detail=_const_kind(*comparators))
            for operand in comparators:
                self._expr(operand, None)
            return
        if isinstance(expr, ast.Name):
            if bound is not None:
                self._record("name", "", expr, operands=(expr.id,),
                             bound_to=bound)
            return
        if isinstance(expr, ast.Attribute):
            if expr.attr == "T" and bound is not None:
                base = dotted_name(expr.value)
                if base is not None and "." not in base:
                    self._record("view", ".T", expr, operands=(base,),
                                 bound_to=bound)
                    return
            self._expr(expr.value, None)
            return
        if isinstance(expr, ast.Subscript):
            if bound is not None:
                base = dotted_name(expr.value)
                if base is not None and "." not in base:
                    self._record("view", "[]", expr, subs=(base,),
                                 bound_to=bound)
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    self._expr(child, None)
            return
        if isinstance(expr, (ast.Dict, ast.DictComp)):
            self._record("object", "dict", expr, bound_to=bound)
        elif isinstance(expr, (ast.Set, ast.SetComp)):
            self._record("object", "set", expr, bound_to=bound)
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._expr(child, None)

    def _call(self, node: ast.Call, bound: Optional[str]) -> None:
        dotted = dotted_name(node.func)
        receiver: Optional[str] = None
        if dotted is not None:
            leaf = _leaf(dotted)
            if "." in dotted:
                receiver = dotted[:-(len(leaf) + 1)]
        elif isinstance(node.func, ast.Attribute):
            leaf = node.func.attr
        else:
            leaf = ""
        self._classify_call(node, bound, leaf, receiver,
                            dotted or leaf)
        for operand in _call_operands(node):
            self._expr(operand, None)

    def _classify_call(self, node: ast.Call, bound: Optional[str],
                       leaf: str, receiver: Optional[str],
                       func: str) -> None:
        np_ns = receiver is None or receiver in ("np", "numpy")
        first = node.args[0] if node.args and \
            not isinstance(node.args[0], ast.Starred) else None
        first_plain, first_subs = _operand_names(first) \
            if first is not None else ((), ())
        if leaf in _ALLOC_LEAVES and np_ns:
            detail = ""
            dims = None
            if leaf in DTYPE_REQUIRED_LEAVES:
                dims = _shape_dims(first)
                position = 2 if leaf == "full" else 1
            elif leaf == "array":
                position = 1
                if isinstance(first, (ast.List, ast.Tuple,
                                      ast.ListComp, ast.GeneratorExp)):
                    detail = "literal"
            else:
                position = {"arange": 4, "linspace": 5,
                            "eye": 2}.get(leaf, 1)
            self._record("alloc", func, node, dims=dims,
                         dtype=_dtype_argument(node, position),
                         bound_to=bound, detail=detail)
        elif leaf in _LIKE_LEAVES and np_ns:
            self._record("alloc_like", func, node,
                         operands=first_plain, subs=first_subs,
                         dtype=_dtype_argument(node, 1), bound_to=bound)
        elif leaf == "astype":
            plain, subs = _operand_names(node.func.value) \
                if isinstance(node.func, ast.Attribute) else ((), ())
            self._record("cast", func, node, operands=plain, subs=subs,
                         dtype=_dtype_argument(node, 0), bound_to=bound)
        elif leaf in _CONVERT_LEAVES and np_ns:
            self._record("convert", func, node, operands=first_plain,
                         subs=first_subs,
                         dtype=_dtype_argument(node, 1), bound_to=bound)
        elif leaf == "copy":
            operands = first_plain
            subs = first_subs
            if receiver is not None and \
                    receiver not in ("np", "numpy") and \
                    "." not in receiver:
                operands = (receiver,)
                subs = ()
            self._record("copy", func, node, operands=operands,
                         subs=subs, bound_to=bound)
        elif leaf in _CONCAT_LEAVES and receiver in ("np", "numpy"):
            names, _ = _free_names(first) if first is not None \
                else (set(), set())
            self._record("concat", func, node,
                         operands=tuple(sorted(names)), bound_to=bound)
        elif leaf in _VIEW_LEAVES and \
                (receiver is None or receiver not in ("np", "numpy")):
            operands = (receiver,) if receiver is not None and \
                "." not in receiver else ()
            self._record("view", func, node, operands=operands,
                         bound_to=bound)
        elif leaf in _AXIS_LEAVES:
            operands = first_plain
            subs = first_subs
            if receiver is not None and \
                    receiver not in ("np", "numpy", "np.linalg",
                                     "numpy.linalg", "math"):
                if "." not in receiver:
                    operands, subs = (receiver,), ()
                else:
                    operands, subs = (), ()
            axis = None
            for kw in node.keywords:
                if kw.arg == "axis":
                    axis = ast.unparse(kw.value)
            self._record("axis", func, node, operands=operands,
                         subs=subs, axis=axis, bound_to=bound)
        elif leaf in _UFUNC_LEAVES and \
                (receiver in ("np", "numpy") or
                 (receiver is None and leaf in ("where", "clip"))):
            plain, subs = _operand_names(*[
                a for a in node.args if not isinstance(a, ast.Starred)])
            detail = _const_kind(*[
                a for a in node.args if not isinstance(a, ast.Starred)])
            if any(kw.arg == "out" for kw in node.keywords):
                detail = (detail + ",out").lstrip(",")
            self._record("ufunc", func, node, operands=plain,
                         subs=subs, bound_to=bound, detail=detail)
        elif leaf in _OBJECT_LEAVES and receiver is None:
            self._record("object", leaf, node, bound_to=bound)

    def _record(self, kind: str, func: str, node: ast.AST,
                operands: Tuple[str, ...] = (),
                subs: Tuple[str, ...] = (),
                dims: Optional[Tuple[str, ...]] = None,
                dtype: Optional[str] = None,
                axis: Optional[str] = None,
                bound_to: Optional[str] = None,
                detail: str = "") -> None:
        self.ops.append(ArrayOp(
            kind=kind, func=func,
            lineno=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            loop_depth=self.depth, bound_to=bound_to,
            operands=operands, subs=subs, dims=dims, dtype=dtype,
            axis=axis, detail=detail))


def _array_facts(node: ast.AST) -> Tuple[ArrayOp, ...]:
    """The :class:`ArrayOp` facts of one def body (nested defs skip)."""
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    collector = _ArrayFactsCollector()
    collector.walk(node.body)
    return tuple(collector.ops)


# -- exception-flow facts ----------------------------------------------------

#: ``try`` statement classes (``try*`` joined the AST in 3.11).
_TRY_NODES: Tuple[type, ...] = tuple(
    cls for cls in (getattr(ast, "Try", None),
                    getattr(ast, "TryStar", None)) if cls is not None)


def _walk_skipping_defs(nodes: Sequence[ast.AST]):
    """Depth-first walk that never descends into nested defs/lambdas."""
    stack = list(nodes)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class _ExceptionFactsCollector:
    """Collect raise/handler/cleanup facts for one def body.

    Nested defs and classes are skipped (they collect their own
    facts).  The guard stack tracks which enclosing ``try`` statements
    would intercept an exception at the current position: pushed for a
    try *body* only — handler bodies, ``else`` and ``finally`` blocks
    are not protected by their own handlers, matching Python
    semantics.  A ``with SignalGuard()`` region raises the signal
    depth, marking calls whose ``sys.exit`` would bypass the deferred
    checkpoint-exit protocol.
    """

    def __init__(self) -> None:
        self.tries: List[TryFact] = []
        self.raises: List[RaiseFact] = []
        self.calls: List[CallGuard] = []
        self.resources: List[ResourceFact] = []
        self.returned: Set[str] = set()
        self._stack: List[int] = []     # try indices, outermost first
        self._loops = 0
        self._signal = 0

    def walk(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._statement(stmt)

    def _guards(self) -> Tuple[int, ...]:
        return tuple(reversed(self._stack))

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return
        if isinstance(stmt, _TRY_NODES):
            self._try(stmt)
            return
        if isinstance(stmt, ast.Raise):
            self._raise(stmt)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._with(stmt)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            for expr in _own_expressions(stmt):
                self._calls_in(expr)
            self._loops += 1
            self.walk(stmt.body)
            self.walk(stmt.orelse)
            self._loops -= 1
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                names, _ = _free_names(stmt.value)
                self.returned |= names
                self._calls_in(stmt.value)
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            self._assign(stmt)
            return
        for expr in _own_expressions(stmt):
            self._calls_in(expr)
        for block in _nested_bodies(stmt):
            self.walk(block)

    def _try(self, stmt: ast.stmt) -> None:
        index = len(self.tries)
        handlers = tuple(self._handler(h)
                         for h in getattr(stmt, "handlers", []))
        self.tries.append(TryFact(
            lineno=stmt.lineno, col=stmt.col_offset,
            handlers=handlers,
            has_finally=bool(getattr(stmt, "finalbody", [])),
            in_loop=self._loops > 0, guards=self._guards()))
        if handlers:
            self._stack.append(index)
            self.walk(stmt.body)
            self._stack.pop()
        else:
            self.walk(stmt.body)
        # else runs after the body completed; finally and handler
        # bodies raise past this try's own handlers.
        self.walk(getattr(stmt, "orelse", []))
        for handler in getattr(stmt, "handlers", []):
            self.walk(handler.body)
        self.walk(getattr(stmt, "finalbody", []))

    def _handler(self, handler: ast.ExceptHandler) -> HandlerSpec:
        types: Tuple[str, ...] = ()
        if handler.type is not None:
            if isinstance(handler.type, ast.Tuple):
                types = tuple(t for t in (dotted_name(e) for e
                                          in handler.type.elts)
                              if t is not None)
            else:
                dotted = dotted_name(handler.type)
                types = (dotted,) if dotted is not None else ()
        action, target = self._handler_action(handler)
        uses_exc = False
        if handler.name:
            uses_exc = any(
                isinstance(node, ast.Name) and node.id == handler.name
                and isinstance(node.ctx, ast.Load)
                for node in _walk_skipping_defs(handler.body))
        return HandlerSpec(types=types, action=action, target=target,
                           uses_exc=uses_exc, lineno=handler.lineno,
                           col=handler.col_offset)

    @staticmethod
    def _handler_action(
            handler: ast.ExceptHandler) -> Tuple[str, str]:
        """(action, target) of a handler body — see HandlerSpec."""
        first: Optional[Tuple[str, str]] = None
        for node in _walk_skipping_defs(handler.body):
            if not isinstance(node, ast.Raise):
                continue
            if node.exc is None:
                return "reraise", ""
            target = node.exc.func if isinstance(node.exc, ast.Call) \
                else node.exc
            token = dotted_name(target) or ""
            chained = isinstance(node.cause, ast.Name) and \
                handler.name is not None and \
                node.cause.id == handler.name
            if chained:
                return "translate", token
            if first is None:
                first = ("raise", token)
        return first if first is not None else ("swallow", "")

    def _raise(self, stmt: ast.Raise) -> None:
        token = ""
        if stmt.exc is not None:
            target = stmt.exc.func if isinstance(stmt.exc, ast.Call) \
                else stmt.exc
            token = dotted_name(target) or ""
            self._calls_in(stmt.exc)
        from_name = stmt.cause.id \
            if isinstance(stmt.cause, ast.Name) else ""
        self.raises.append(RaiseFact(
            type_token=token, lineno=stmt.lineno, col=stmt.col_offset,
            guards=self._guards(), from_name=from_name))

    def _with(self, stmt: ast.stmt) -> None:
        assert isinstance(stmt, (ast.With, ast.AsyncWith))
        signal = False
        for item in stmt.items:
            expr = item.context_expr
            self._calls_in(expr)
            if not isinstance(expr, ast.Call):
                continue
            leaf = _leaf(dotted_name(expr.func) or "")
            if leaf == "SignalGuard":
                signal = True
            if leaf in RESOURCE_PRODUCERS and \
                    isinstance(item.optional_vars, ast.Name):
                self.resources.append(ResourceFact(
                    name=item.optional_vars.id,
                    kind=RESOURCE_PRODUCERS[leaf],
                    lineno=expr.lineno, col=expr.col_offset,
                    via_with=True))
        if signal:
            self._signal += 1
        self.walk(stmt.body)
        if signal:
            self._signal -= 1

    def _assign(self, stmt: ast.stmt) -> None:
        assert isinstance(stmt, (ast.Assign, ast.AnnAssign))
        value = stmt.value
        if value is None:
            return
        self._calls_in(value)
        target: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
        elif isinstance(stmt, ast.AnnAssign):
            target = stmt.target
        if isinstance(target, ast.Name) and isinstance(value, ast.Call):
            leaf = _leaf(dotted_name(value.func) or "")
            if leaf in RESOURCE_PRODUCERS:
                self.resources.append(ResourceFact(
                    name=target.id, kind=RESOURCE_PRODUCERS[leaf],
                    lineno=value.lineno, col=value.col_offset,
                    via_with=False))

    def _calls_in(self, expr: ast.expr) -> None:
        for node in _walk_skipping_defs([expr]):
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is not None:
                    self.calls.append(CallGuard(
                        func=dotted, lineno=node.lineno,
                        col=node.col_offset, guards=self._guards(),
                        in_signal_guard=self._signal > 0))


def _exception_facts(node: ast.AST) -> Tuple[
        Tuple[TryFact, ...], Tuple[RaiseFact, ...],
        Tuple[CallGuard, ...], Tuple[ResourceFact, ...],
        Tuple[str, ...]]:
    """The exception-flow facts of one def body (nested defs skip)."""
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    collector = _ExceptionFactsCollector()
    collector.walk(node.body)
    return (tuple(collector.tries), tuple(collector.raises),
            tuple(sorted(collector.calls,
                         key=lambda c: (c.lineno, c.col, c.func))),
            tuple(collector.resources),
            tuple(sorted(collector.returned)))


def _decorator_names(node: ast.AST) -> Tuple[str, ...]:
    """Dotted decorator names (the callee for decorator factories)."""
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    names = []
    for decorator in node.decorator_list:
        target = decorator.func \
            if isinstance(decorator, ast.Call) else decorator
        dotted = dotted_name(target)
        if dotted is not None:
            names.append(dotted)
    return tuple(names)


def _is_type_checking_test(test: ast.expr) -> bool:
    name = dotted_name(test)
    return name in ("TYPE_CHECKING", "typing.TYPE_CHECKING")


def _annotation_is_classvar(node: ast.expr) -> bool:
    text = ast.unparse(node)
    return "ClassVar" in text


def _param_from_arg(arg: ast.arg,
                    default: Optional[ast.expr]) -> ParamInfo:
    annotation = ast.unparse(arg.annotation) if arg.annotation else None
    return ParamInfo(name=arg.arg, annotation=annotation,
                     has_default=default is not None,
                     default_is_none=_is_none(default))


def _signature_params(node: ast.AST, drop_self: bool) -> List[ParamInfo]:
    """Declared parameters with default alignment (excluding *args)."""
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = node.args
    positional = list(args.posonlyargs) + list(args.args)
    defaults: List[Optional[ast.expr]] = (
        [None] * (len(positional) - len(args.defaults))
        + list(args.defaults))
    params = [_param_from_arg(arg, default)
              for arg, default in zip(positional, defaults)]
    params.extend(_param_from_arg(arg, default)
                  for arg, default in zip(args.kwonlyargs,
                                          args.kw_defaults))
    if drop_self and params and params[0].name in ("self", "cls"):
        params = params[1:]
    return params


class _ModuleExtractor:
    """Single pass over one module's AST, accumulating the model."""

    def __init__(self, module: str, path: str) -> None:
        self.module = module
        self.path = path
        self.package = module  # adjusted by extract() for non-packages
        self.imports: List[ImportedName] = []
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.calls: List[CallSite] = []
        self.bindings: Dict[str, str] = {}
        self.module_names: Set[str] = set()
        self.mutable_globals: Set[str] = set()
        self._scope: List[str] = []        # enclosing def/class names
        self._function_depth = 0

    # -- statement walk ------------------------------------------------------

    def walk(self, stmts: Sequence[ast.stmt],
             type_checking: bool = False) -> None:
        for stmt in stmts:
            self._statement(stmt, type_checking)

    def _statement(self, stmt: ast.stmt, type_checking: bool) -> None:
        if isinstance(stmt, ast.Import):
            self._plain_import(stmt, type_checking)
        elif isinstance(stmt, ast.ImportFrom):
            self._from_import(stmt, type_checking)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._function(stmt)
        elif isinstance(stmt, ast.ClassDef):
            self._class(stmt)
        elif isinstance(stmt, ast.If) and \
                _is_type_checking_test(stmt.test):
            self.walk(stmt.body, type_checking=True)
            self.walk(stmt.orelse, type_checking=type_checking)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            self._assignment(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._with(stmt, type_checking)
        else:
            # Compound statements (if/for/while/with/try) may nest any
            # of the above; expressions inside carry the call sites.
            for child_stmts in _nested_bodies(stmt):
                self.walk(child_stmts, type_checking)
            for expr in _own_expressions(stmt):
                self._expression(expr)

    # -- imports -------------------------------------------------------------

    def _plain_import(self, stmt: ast.Import,
                      type_checking: bool) -> None:
        lazy = self._function_depth > 0
        for alias in stmt.names:
            if alias.asname:
                local, target = alias.asname, alias.name
            else:
                local = target = alias.name.split(".")[0]
            record = ImportedName(
                local=local, target=target, module=alias.name,
                lineno=stmt.lineno, lazy=lazy,
                type_checking=type_checking)
            self.imports.append(record)
            if not lazy:
                self.bindings.setdefault(local, target)

    def _from_import(self, stmt: ast.ImportFrom,
                     type_checking: bool) -> None:
        lazy = self._function_depth > 0
        base = self._resolve_relative(stmt.module, stmt.level)
        if base is None:
            return
        for alias in stmt.names:
            if alias.name == "*":
                record = ImportedName(
                    local="*", target=f"{base}.*", module=base,
                    lineno=stmt.lineno, lazy=lazy,
                    type_checking=type_checking)
                self.imports.append(record)
                continue
            local = alias.asname or alias.name
            record = ImportedName(
                local=local, target=f"{base}.{alias.name}", module=base,
                lineno=stmt.lineno, lazy=lazy,
                type_checking=type_checking)
            self.imports.append(record)
            if not lazy:
                self.bindings.setdefault(local, record.target)

    def _resolve_relative(self, module: Optional[str],
                          level: int) -> Optional[str]:
        if level == 0:
            return module
        anchor = self.package.split(".")
        drop = level - 1
        if drop:
            if drop >= len(anchor):
                return None
            anchor = anchor[:-drop]
        if module:
            anchor = anchor + module.split(".")
        return ".".join(anchor) if anchor else None

    # -- definitions ---------------------------------------------------------

    def _function(self, node: ast.AST) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        in_class = bool(self._scope) and self._scope[-1] in self.classes
        qualname = ".".join(self._scope + [node.name])
        params = _signature_params(node, drop_self=in_class)
        rng_sources = {p.name for p in params
                       if p.name == "rng" or p.name.endswith("_rng")
                       or (p.annotation and "Generator" in p.annotation)}
        global_writes, reads, index_writes = _function_facts(
            node, self.module_names)
        try_facts, raise_facts, call_guards, resource_facts, \
            returned_names = _exception_facts(node)
        self.functions[qualname] = FunctionInfo(
            qualname=qualname, lineno=node.lineno,
            params=tuple(params), is_method=in_class,
            rng_sources=tuple(sorted(rng_sources)),
            global_writes=global_writes, reads=reads,
            index_writes=index_writes,
            array_ops=_array_facts(node),
            decorators=_decorator_names(node),
            has_varargs=node.args.vararg is not None,
            has_kwargs=node.args.kwarg is not None,
            try_facts=try_facts, raise_facts=raise_facts,
            call_guards=call_guards, resource_facts=resource_facts,
            returned_names=returned_names)
        if not self._scope:
            self.bindings.setdefault(
                node.name, f"{self.module}.{node.name}")
        for decorator in node.decorator_list:
            self._expression(decorator)
        self._scope.append(node.name)
        self._function_depth += 1
        self.walk(node.body)
        self._function_depth -= 1
        self._scope.pop()
        self._finalize_function(qualname)

    def _finalize_function(self, qualname: str) -> None:
        """Fill call-derived facts once the body has been walked."""
        info = self.functions[qualname]
        prefix = qualname + "."
        sources = set(info.rng_sources)
        calls_resolve = False
        for call in self.calls:
            if call.in_function != qualname and \
                    not call.in_function.startswith(prefix):
                continue
            leaf = _leaf(call.func) if call.func else ""
            if leaf == "resolve_rng" and call.in_function == qualname:
                calls_resolve = True
            if leaf in RNG_PRODUCERS and call.bound_to:
                sources.add(call.bound_to)
        self.functions[qualname] = FunctionInfo(
            qualname=info.qualname, lineno=info.lineno,
            params=info.params, is_method=info.is_method,
            calls_resolve_rng=calls_resolve,
            rng_sources=tuple(sorted(sources)),
            global_writes=info.global_writes, reads=info.reads,
            index_writes=info.index_writes,
            array_ops=info.array_ops, decorators=info.decorators,
            has_varargs=info.has_varargs, has_kwargs=info.has_kwargs,
            try_facts=info.try_facts, raise_facts=info.raise_facts,
            call_guards=info.call_guards,
            resource_facts=info.resource_facts,
            returned_names=info.returned_names)

    def _class(self, node: ast.ClassDef) -> None:
        qualname = ".".join(self._scope + [node.name])
        is_dataclass = any(
            _leaf(dotted_name(d) or "") == "dataclass"
            or (isinstance(d, ast.Call)
                and _leaf(dotted_name(d.func) or "") == "dataclass")
            for d in node.decorator_list)
        if not self._scope:
            self.bindings.setdefault(
                node.name, f"{self.module}.{node.name}")
        bases = tuple(b for b in (dotted_name(base)
                                  for base in node.bases)
                      if b is not None)
        # Register before walking so methods see themselves as such.
        self.classes[qualname] = ClassInfo(
            name=qualname, lineno=node.lineno, is_dataclass=is_dataclass,
            bases=bases)
        fields: List[ParamInfo] = []
        for stmt in node.body:
            if is_dataclass and isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name) and \
                    not _annotation_is_classvar(stmt.annotation):
                fields.append(ParamInfo(
                    name=stmt.target.id,
                    annotation=ast.unparse(stmt.annotation),
                    has_default=stmt.value is not None,
                    default_is_none=_is_none(stmt.value)))
        for decorator in node.decorator_list:
            self._expression(decorator)
        self._scope.append(node.name)
        self.walk(node.body)
        self._scope.pop()
        methods = tuple(sorted(
            q for q in self.functions if q.startswith(qualname + ".")))
        if not is_dataclass:
            init = self.functions.get(f"{qualname}.__init__")
            fields = list(init.params) if init else []
        self.classes[qualname] = ClassInfo(
            name=qualname, lineno=node.lineno,
            is_dataclass=is_dataclass, fields=tuple(fields),
            methods=methods, bases=bases)

    # -- expressions & assignments -------------------------------------------

    def _assignment(self, stmt: ast.stmt) -> None:
        assert isinstance(stmt, (ast.Assign, ast.AnnAssign))
        value = stmt.value
        bound_to: Optional[str] = None
        if isinstance(stmt, ast.Assign):
            if len(stmt.targets) == 1 and \
                    isinstance(stmt.targets[0], ast.Name):
                bound_to = stmt.targets[0].id
        elif isinstance(stmt.target, ast.Name):
            bound_to = stmt.target.id
        if value is None:
            return
        if isinstance(value, ast.Call):
            self._record_call(value, bound_to=bound_to)
            for arg_expr in _call_operands(value):
                self._expression(arg_expr)
        else:
            self._expression(value)

    def _with(self, stmt: ast.stmt, type_checking: bool) -> None:
        """``with open(p) as fh:`` binds ``fh`` like an assignment.

        The generic compound-statement walk would record the call but
        lose the binding; the resource-tracking rules need it to see
        which local holds the open handle.
        """
        assert isinstance(stmt, (ast.With, ast.AsyncWith))
        for item in stmt.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call) and \
                    isinstance(item.optional_vars, ast.Name):
                self._record_call(expr,
                                  bound_to=item.optional_vars.id)
                for operand in _call_operands(expr):
                    self._expression(operand)
            else:
                self._expression(expr)
        self.walk(stmt.body, type_checking)

    def _expression(self, expr: ast.expr) -> None:
        """Record every call expression nested anywhere in ``expr``."""
        for child in ast.walk(expr):
            if isinstance(child, ast.Call):
                self._record_call(child)

    def _record_call(self, node: ast.Call,
                     bound_to: Optional[str] = None) -> None:
        func = dotted_name(node.func) or ""
        args = tuple(describe_value(a) for a in node.args
                     if not isinstance(a, ast.Starred))
        keywords = tuple(
            (kw.arg or "**", describe_value(kw.value))
            for kw in node.keywords)
        self.calls.append(CallSite(
            func=func, lineno=node.lineno, col=node.col_offset,
            args=args, keywords=keywords, bound_to=bound_to,
            in_function=".".join(self._scope)))

def _call_operands(node: ast.Call) -> List[ast.expr]:
    operands: List[ast.expr] = []
    operands.extend(a.value if isinstance(a, ast.Starred) else a
                    for a in node.args)
    operands.extend(kw.value for kw in node.keywords)
    return operands


def _nested_bodies(stmt: ast.stmt) -> List[List[ast.stmt]]:
    bodies = []
    for name in ("body", "orelse", "finalbody"):
        block = getattr(stmt, name, None)
        if block and isinstance(block[0], ast.stmt):
            bodies.append(block)
    for handler in getattr(stmt, "handlers", []):
        bodies.append(handler.body)
    return bodies


def _own_expressions(stmt: ast.stmt) -> List[ast.expr]:
    """Expressions held directly by a statement (not via nested blocks)."""
    exprs = []
    for field_name, value in ast.iter_fields(stmt):
        if field_name in ("body", "orelse", "finalbody", "handlers"):
            continue
        if isinstance(value, ast.expr):
            exprs.append(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.expr):
                    exprs.append(item)
                elif isinstance(item, ast.withitem):
                    exprs.append(item.context_expr)
                    if item.optional_vars is not None:
                        exprs.append(item.optional_vars)
    return exprs


def extract_module(path: str, source: str, sha: str) -> ModuleInfo:
    """Parse and distill one file (raises ``SyntaxError`` unparsable)."""
    tree = ast.parse(source, filename=path)
    module = module_name_for(path)
    extractor = _ModuleExtractor(module, path)
    if not path.replace("\\", "/").endswith("__init__.py"):
        extractor.package = module.rsplit(".", 1)[0] \
            if "." in module else module
    extractor.module_names, extractor.mutable_globals = \
        _module_prepass(tree.body)
    extractor.walk(tree.body)
    return ModuleInfo(
        module=module, path=path, sha=sha,
        imports=tuple(extractor.imports),
        functions=extractor.functions,
        classes=extractor.classes,
        calls=tuple(extractor.calls),
        bindings=extractor.bindings,
        suppressions=parse_noqa(source),
        mutable_globals=tuple(sorted(extractor.mutable_globals)))
