"""T-series: RNG provenance taint across the program.

The determinism contract (:mod:`repro.determinism`) says every
stochastic component draws from a generator its caller threaded in.
The per-file D rules catch unseeded factories; these whole-program
rules track *provenance*: generators may only be minted inside
``repro.determinism`` (T001), must never be captured across the
``parallel_map`` process boundary (T002) — worker processes re-seed
from explicit per-item seeds, a pickled generator would silently fork
the stream — and every stochastic sink must be handed a generator or
seed the analyzer can trace back to ``resolve_rng`` / ``spawn`` /
``derive`` (T003).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Set, Tuple

from ..findings import Finding
from .extract import RNG_PRODUCERS
from .index import ProjectIndex, ResolvedCallee
from .model import CallSite, ClassInfo, FunctionInfo, ModuleInfo, ValueDesc
from .registry import ProgramRule, register_program_rule

#: The one module allowed to call the numpy generator factories.
SANCTIONED_MINT = "repro.determinism"

#: Callee leaves that *mint* a fresh generator from numpy.
_FACTORY_LEAVES = frozenset({"default_rng", "RandomState"})

#: Callee leaves that derive a generator under the contract.
_SANCTIONED_LEAVES = frozenset({"resolve_rng", "spawn", "derive"})


def _leaf(dotted: str) -> str:
    return dotted.rsplit(".", 1)[-1]


def _is_rngish(name: str, sources: Set[str]) -> bool:
    return name in sources or name == "rng" or name.endswith("_rng")


def _module_rng_sources(info: ModuleInfo) -> Set[str]:
    """Module-level names bound to generator-producing calls."""
    return {call.bound_to for call in info.calls
            if call.in_function == "" and call.bound_to
            and call.func and _leaf(call.func) in RNG_PRODUCERS}


def _enclosing_sources(info: ModuleInfo, call: CallSite) -> Set[str]:
    sources = _module_rng_sources(info)
    function = info.functions.get(call.in_function)
    if function is not None:
        sources.update(function.rng_sources)
    return sources


@register_program_rule
class MintDisciplineRule(ProgramRule):
    """T001: generators are minted only inside repro.determinism."""

    rule_id = "T001"
    summary = ("np.random.default_rng / RandomState may be called "
               "only inside repro.determinism; everything else uses "
               "resolve_rng / spawn / derive so provenance stays "
               "traceable")

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        for module in sorted(index.modules):
            if not module.startswith("repro") or \
                    module == SANCTIONED_MINT:
                continue
            info = index.modules[module]
            for call in info.calls:
                if not call.func:
                    continue
                if _leaf(call.func) not in _FACTORY_LEAVES:
                    continue
                root = call.func.split(".")[0]
                if root not in ("np", "numpy", "default_rng",
                                "RandomState"):
                    continue
                yield self.finding(
                    info, call.lineno, call.col,
                    f"{call.func}() mints a generator outside "
                    f"{SANCTIONED_MINT}; use resolve_rng(seed=...), "
                    "spawn(parent) or derive(*keys) so RNG "
                    "provenance stays auditable")


@register_program_rule
class PoolBoundaryRule(ProgramRule):
    """T002: no RNG object crosses the parallel_map boundary."""

    rule_id = "T002"
    summary = ("parallel_map callables and item lists must not carry "
               "RNG objects across the process boundary; pass "
               "explicit per-item seeds instead")

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        for module in sorted(index.modules):
            info = index.modules[module]
            for call in info.calls:
                if not self._is_parallel_map(index, module, call):
                    continue
                sources = _enclosing_sources(info, call)
                fn = self._argument(call, 0, "fn")
                items = self._argument(call, 1, "items")
                if fn is not None:
                    yield from self._check_callable(info, call, fn,
                                                    sources)
                if items is not None:
                    yield from self._check_items(info, call, items,
                                                 sources)

    def _is_parallel_map(self, index: ProjectIndex, module: str,
                         call: CallSite) -> bool:
        if not call.func or _leaf(call.func) != "parallel_map":
            return False
        callee = index.resolve_call(module, call)
        if callee is None:
            return True  # unresolved but unambiguous by name
        return callee.qualified == "repro.parallel.parallel_map"

    def _argument(self, call: CallSite, position: int,
                  keyword: str) -> Optional[ValueDesc]:
        if len(call.args) > position:
            return call.args[position]
        for name, value in call.keywords:
            if name == keyword:
                return value
        return None

    def _check_callable(self, info: ModuleInfo, call: CallSite,
                        fn: ValueDesc,
                        sources: Set[str]) -> Iterator[Finding]:
        minted = {c for c in fn.calls if _leaf(c) in RNG_PRODUCERS}
        if minted:
            culprit = sorted(minted)[0]
            yield self.finding(
                info, call.lineno, call.col,
                f"parallel_map callable builds an RNG ({culprit}) "
                "that would be pickled into the workers; pass a "
                "per-item seed and resolve it worker-side")
            return
        if fn.kind in ("lambda", "call"):
            captured = sorted(n for n in fn.names
                              if _is_rngish(n, sources))
            if captured:
                yield self.finding(
                    info, call.lineno, call.col,
                    f"parallel_map callable captures RNG "
                    f"{captured[0]!r}; a generator crossing the "
                    "process-pool boundary forks its stream — pass "
                    "an explicit per-item seed instead")

    def _check_items(self, info: ModuleInfo, call: CallSite,
                     items: ValueDesc,
                     sources: Set[str]) -> Iterator[Finding]:
        minted = sorted(c for c in items.calls
                        if _leaf(c) in RNG_PRODUCERS)
        if minted:
            yield self.finding(
                info, call.lineno, call.col,
                f"parallel_map items contain RNG objects "
                f"({minted[0]}); ship per-item seeds across the "
                "pool boundary, not generators")
            return
        carried = sorted(n for n in items.names
                         if _is_rngish(n, sources))
        if carried:
            yield self.finding(
                info, call.lineno, call.col,
                f"parallel_map items reference RNG {carried[0]!r}; "
                "ship per-item seeds across the pool boundary, not "
                "generators")


@register_program_rule
class SinkProvenanceRule(ProgramRule):
    """T003: stochastic sinks get a traceable rng/seed, or fail."""

    rule_id = "T003"
    summary = ("every call to a stochastic component (one whose "
               "constructor calls resolve_rng) must thread rng=/"
               "seed=/deterministic= — and an rng= value must trace "
               "back to resolve_rng/spawn/derive")

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        sinks = self._stochastic_sinks(index)
        for module in sorted(index.modules):
            info = index.modules[module]
            for call in info.calls:
                callee = index.resolve_call(module, call)
                if callee is None or callee.qualified not in sinks:
                    continue
                yield from self._check_sink(
                    index, info, call, callee)

    def _stochastic_sinks(self, index: ProjectIndex) -> Set[str]:
        """Qualified names whose invocation resolves an RNG."""
        sinks: Set[str] = set()
        for module, info in index.modules.items():
            for name, klass in info.classes.items():
                for ctor in (f"{name}.__init__",
                             f"{name}.__post_init__"):
                    function = info.functions.get(ctor)
                    if function is not None and \
                            function.calls_resolve_rng:
                        sinks.add(f"{module}.{name}")
                        break
            for name, function in info.functions.items():
                if "." in name or not function.calls_resolve_rng:
                    continue
                if any(p.name in ("rng", "seed")
                       for p in function.params):
                    sinks.add(f"{module}.{name}")
        return sinks

    def _check_sink(self, index: ProjectIndex, info: ModuleInfo,
                    call: CallSite,
                    callee: ResolvedCallee) -> Iterator[Finding]:
        param_names, _ = index.constructor_params(callee)
        provided: Dict[str, ValueDesc] = {}
        for position, value in enumerate(call.args):
            if position < len(param_names):
                provided[param_names[position]] = value
        for keyword, value in call.keywords:
            if keyword != "**":
                provided[keyword] = value
        rng_value = provided.get("rng")
        has_rng_channel = any(name in param_names
                              for name in ("rng", "seed",
                                           "deterministic"))
        if not has_rng_channel:
            return
        if rng_value is not None:
            yield from self._check_provenance(info, call, callee,
                                              rng_value)
            return
        if "seed" in provided or "deterministic" in provided:
            return
        if self._has_safe_default(callee):
            return
        yield self.finding(
            info, call.lineno, call.col,
            f"{callee.qualified} is a stochastic component but this "
            "call threads no rng=/seed=/deterministic=; under the "
            "determinism contract resolve_rng will raise at runtime")

    def _has_safe_default(self, callee: ResolvedCallee) -> bool:
        """True when omitting rng/seed still yields a seeded stream."""
        params = ()
        if callee.kind == "class" and callee.klass is not None:
            params = callee.klass.fields
        elif callee.function is not None:
            params = callee.function.params
        for param in params:
            if param.name in ("rng", "seed") and param.has_default \
                    and not param.default_is_none:
                return True
        return False

    def _check_provenance(self, info: ModuleInfo, call: CallSite,
                          callee: ResolvedCallee,
                          value: ValueDesc) -> Iterator[Finding]:
        if value.kind == "call":
            leaf = _leaf(value.text) if value.text else ""
            if leaf in _SANCTIONED_LEAVES or leaf in _FACTORY_LEAVES:
                return  # direct mints are already T001 findings
        elif value.kind == "name":
            sources = _enclosing_sources(info, call)
            if _is_rngish(value.text, sources):
                return
        elif value.kind == "attr":
            if "rng" in _leaf(value.text):
                return
        elif value.kind == "const":
            return  # rng=None explicitly defers to seed/deterministic
        yield self.finding(
            info, call.lineno, call.col,
            f"rng= argument {value.text or value.kind!r} to "
            f"{callee.qualified} cannot be traced to resolve_rng/"
            "spawn/derive; thread the generator from a sanctioned "
            "source")
