"""E/B/R-series: error-contract enforcement over escape sets.

The sweep orchestrator survives crashes, signals, and flaky units only
because the exception taxonomy (``SweepError`` / ``UnitFailedError`` /
``StoreError`` / ``ManifestError`` ...) is raised, classified, retried
and mapped to exit codes consistently.  These rules consume the
converged escape sets of :mod:`.exceptions` to police that contract:

* **E001** — a ``parallel_map`` / ``parallel_map_arrays`` worker whose
  escape set contains a ``BaseException``-only type (``SystemExit``,
  ``KeyboardInterrupt``): the pool's infra-vs-fn classifier cannot
  attribute it, and a worker calling ``sys.exit`` kills the child
  silently.
* **E002** — a CLI subcommand (``_cmd_*`` in a ``cli`` module) whose
  escape set contains a taxonomy type with no exception→exit-code
  mapping in that module's ``main``.
* **E003** — a public ``core`` / ``optics`` / ``link`` function
  escaping a bare ``Exception`` / ``RuntimeError`` where a taxonomy
  type should name the failure.
* **B001** — a broad handler (``except Exception`` or bare) that
  neither re-raises, translates, nor records the caught exception.
* **B002** — a dead catch: a handler naming a taxonomy type that is
  provably absent from everything the guarded region can raise (only
  claimed when every call in the region resolves to a project
  function).
* **B003** — handler ordering where a broad clause shadows a narrower
  one later in the same ``try``.
* **R001** — a retry loop (``try`` inside a loop) re-invoking a
  project callee whose taxonomy escapes it does not fully catch: the
  uncaught type aborts the whole retry ladder on attempt one.
* **R002** — a resource acquired without ``with`` in a function that
  has a live raise path after the acquisition and no ``finally``
  (returned handles — factory pattern — are exempt).
* **R003** — a ``SignalGuard``-deferred region calling something that
  can raise ``SystemExit`` directly, bypassing the guard's deferred
  delivery and the journal flush it protects.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from ..findings import Finding
from .effects import resolve_worker
from .exceptions import (
    ExceptionTable,
    TypeLattice,
    arriving_at,
    exception_table,
    propagate_types,
    resolve_call_guard,
    type_lattice,
    type_token,
)
from .index import ProjectIndex
from .model import CallSite, FunctionInfo, HandlerSpec, ModuleInfo
from .registry import ProgramRule, register_program_rule

#: Pool entry points guarded by E001.
POOL_LEAVES = frozenset({"parallel_map", "parallel_map_arrays"})

#: Module path components whose public API E003 holds to the taxonomy.
CONTRACT_LAYERS = frozenset({"core", "optics", "link"})

#: Escaping these from a layer function is an abdication, not a type.
VAGUE_TYPES = frozenset({"Exception", "RuntimeError"})


def _leaf(dotted: str) -> str:
    return dotted.rsplit(".", 1)[-1]


def _is_broad(spec: HandlerSpec) -> bool:
    if not spec.types:
        return True  # bare except
    return any(_leaf(t) in ("Exception", "BaseException")
               for t in spec.types)


def _functions(index: ProjectIndex
               ) -> Iterator[Tuple[str, ModuleInfo, str, FunctionInfo]]:
    for module in sorted(index.modules):
        info = index.modules[module]
        for qualname in sorted(info.functions):
            yield module, info, qualname, info.functions[qualname]


class _EscapeRule(ProgramRule):
    """Shared scaffold: rules that walk functions with both tables."""

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        table = exception_table(index)
        lattice = type_lattice(index)
        for module, info, qualname, function in _functions(index):
            yield from self.check_function(index, table, lattice,
                                           module, info, qualname,
                                           function)

    def check_function(self, index: ProjectIndex,
                       table: ExceptionTable, lattice: TypeLattice,
                       module: str, info: ModuleInfo, qualname: str,
                       function: FunctionInfo) -> Iterator[Finding]:
        raise NotImplementedError


@register_program_rule
class WorkerEscapeRule(ProgramRule):
    """E001: pool workers must not escape unclassifiable exceptions."""

    rule_id = "E001"
    summary = ("a parallel_map / parallel_map_arrays worker whose "
               "escape set contains SystemExit or KeyboardInterrupt "
               "kills the child process outside the pool's infra-vs-fn "
               "error classification; raise a taxonomy exception and "
               "let the parent decide")

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        table = exception_table(index)
        lattice = type_lattice(index)
        for module in sorted(index.modules):
            info = index.modules[module]
            for call in info.calls:
                if _leaf(call.func) not in POOL_LEAVES:
                    continue
                yield from self._check_site(index, table, lattice,
                                            module, info, call)

    def _check_site(self, index: ProjectIndex, table: ExceptionTable,
                    lattice: TypeLattice, module: str,
                    info: ModuleInfo,
                    call: CallSite) -> Iterator[Finding]:
        fn = call.args[0] if call.args else None
        if fn is None:
            for name, value in call.keywords:
                if name == "fn":
                    fn = value
        if fn is None:
            return
        worker = resolve_worker(index, module, call, fn)
        if worker is None:
            return
        wmodule, wqual, _ = worker
        bad = sorted(
            leaf for leaf in table.escapes(wmodule, wqual)
            if lattice.is_subtype(leaf, "BaseException")
            and not lattice.is_subtype(leaf, "Exception"))
        if bad:
            yield self.finding(
                info, call.lineno, call.col,
                f"worker {fn.text!r} can escape {bad[0]} across the "
                f"{_leaf(call.func)} boundary; the pool classifies "
                "worker failures infra-vs-fn by Exception subtype and "
                f"{bad[0]} bypasses that — raise a taxonomy exception "
                "instead")


@register_program_rule
class CliExitMapRule(_EscapeRule):
    """E002: every subcommand escape needs an exit-code mapping."""

    rule_id = "E002"
    summary = ("a CLI subcommand whose escape set contains a taxonomy "
               "exception with no exception-to-exit-code mapping in "
               "the module's main() surfaces as a traceback and exit "
               "1 instead of the documented 0/1/2/130/143 contract")

    def check_function(self, index: ProjectIndex,
                       table: ExceptionTable, lattice: TypeLattice,
                       module: str, info: ModuleInfo, qualname: str,
                       function: FunctionInfo) -> Iterator[Finding]:
        if _leaf(module) != "cli" or not _leaf(qualname).startswith(
                "_cmd_"):
            return
        mapped: List[HandlerSpec] = []
        main = info.functions.get("main")
        if main is not None:
            for fact in main.try_facts:
                mapped.extend(fact.handlers)
        unmapped = sorted(
            leaf for leaf in table.escapes(module, qualname)
            if lattice.is_taxonomy(leaf)
            and not any(lattice.catches(spec, leaf)
                        for spec in mapped))
        for leaf in unmapped:
            yield self.finding(
                info, function.lineno, 0,
                f"subcommand {qualname!r} can escape "
                f"{lattice.qualified(leaf)} but main() maps no exit "
                "code for it; extend the exception-to-exit-code "
                "ladder in main() to keep the 0/1/2/130/143 contract")


@register_program_rule
class VagueEscapeRule(_EscapeRule):
    """E003: layer APIs must fail with taxonomy types, not vague ones."""

    rule_id = "E003"
    summary = ("a public core / optics / link function escaping a "
               "bare Exception or RuntimeError gives callers nothing "
               "to catch selectively; raise the taxonomy type that "
               "names the failure (PointingDivergedError, "
               "NoIntersectionError, ...)")

    def check_function(self, index: ProjectIndex,
                       table: ExceptionTable, lattice: TypeLattice,
                       module: str, info: ModuleInfo, qualname: str,
                       function: FunctionInfo) -> Iterator[Finding]:
        if not CONTRACT_LAYERS & set(module.split(".")):
            return
        if any(part.startswith("_") for part in qualname.split(".")):
            return
        vague = sorted(table.escapes(module, qualname) & VAGUE_TYPES)
        for leaf in vague:
            yield self.finding(
                info, function.lineno, 0,
                f"public function {qualname!r} can escape a bare "
                f"{leaf}; callers cannot catch it without catching "
                "everything — raise (or translate to) a taxonomy "
                "exception that names the failure")


@register_program_rule
class SilentSwallowRule(_EscapeRule):
    """B001: broad handlers must re-raise, translate, or record."""

    rule_id = "B001"
    summary = ("an `except Exception` / bare `except` whose body "
               "neither re-raises, translates, nor even reads the "
               "caught exception erases failures silently; narrow the "
               "type, translate to a taxonomy exception, or record "
               "the error before continuing")

    def check_function(self, index: ProjectIndex,
                       table: ExceptionTable, lattice: TypeLattice,
                       module: str, info: ModuleInfo, qualname: str,
                       function: FunctionInfo) -> Iterator[Finding]:
        for fact in function.try_facts:
            for spec in fact.handlers:
                if not _is_broad(spec):
                    continue
                if spec.action != "swallow" or spec.uses_exc:
                    continue
                caught = " ".join(spec.types) or "bare except"
                yield self.finding(
                    info, spec.lineno, spec.col,
                    f"broad handler ({caught}) in "
                    f"{qualname!r} swallows the exception without "
                    "re-raising, translating, or recording it; "
                    "narrow the caught type or handle the failure "
                    "explicitly")


@register_program_rule
class DeadCatchRule(_EscapeRule):
    """B002: a taxonomy catch must be reachable by a matching raise."""

    rule_id = "B002"
    summary = ("a handler catching a taxonomy exception that no "
               "raise or resolved callee in the guarded region can "
               "produce is dead code — usually a refactor moved the "
               "raising call out of the try")

    def check_function(self, index: ProjectIndex,
                       table: ExceptionTable, lattice: TypeLattice,
                       module: str, info: ModuleInfo, qualname: str,
                       function: FunctionInfo) -> Iterator[Finding]:
        for try_index, fact in enumerate(function.try_facts):
            if not fact.handlers:
                continue
            arrive: Set[str] = set()
            resolved = False
            for spec in fact.handlers:
                taxonomy = sorted(
                    t for t in (type_token(raw) for raw in spec.types)
                    if t and lattice.is_taxonomy(t))
                if not taxonomy:
                    continue
                if not resolved:
                    arrive, ok = arriving_at(index, table, module,
                                             info, qualname,
                                             try_index, lattice)
                    if not ok:
                        break  # an unresolved call could raise anything
                    resolved = True
                for leaf in taxonomy:
                    if any(lattice.is_subtype(a, leaf)
                           for a in arrive):
                        continue
                    yield self.finding(
                        info, spec.lineno, spec.col,
                        f"handler in {qualname!r} catches "
                        f"{lattice.qualified(leaf)} but nothing in "
                        "the guarded region can raise it; the catch "
                        "is dead — move the raising call back inside "
                        "the try or drop the clause")


@register_program_rule
class ShadowedHandlerRule(_EscapeRule):
    """B003: a broad clause must not precede a narrower one."""

    rule_id = "B003"
    summary = ("except clauses are tried in order, so a broad type "
               "before a narrower one makes the narrow handler "
               "unreachable; order handlers narrowest-first")

    def check_function(self, index: ProjectIndex,
                       table: ExceptionTable, lattice: TypeLattice,
                       module: str, info: ModuleInfo, qualname: str,
                       function: FunctionInfo) -> Iterator[Finding]:
        for fact in function.try_facts:
            for position, spec in enumerate(fact.handlers):
                for earlier in fact.handlers[:position]:
                    shadowed = sorted(
                        t for t in (type_token(raw)
                                    for raw in spec.types)
                        if t and lattice.catches(earlier, t))
                    if not spec.types and not earlier.types:
                        shadowed = ["BaseException"]
                    if shadowed:
                        before = " ".join(earlier.types) or "bare"
                        yield self.finding(
                            info, spec.lineno, spec.col,
                            f"handler for {shadowed[0]} in "
                            f"{qualname!r} is unreachable: the "
                            f"earlier {before} clause already "
                            "catches it; order handlers "
                            "narrowest-first")
                        break


@register_program_rule
class RetryCoverageRule(_EscapeRule):
    """R001: retry loops must catch everything they retry over."""

    rule_id = "R001"
    summary = ("a retry loop re-invoking a callee whose taxonomy "
               "escapes it does not fully catch aborts the whole "
               "ladder on the first uncaught raise; catch the full "
               "escape set or let a supervisor own the retry")

    def check_function(self, index: ProjectIndex,
                       table: ExceptionTable, lattice: TypeLattice,
                       module: str, info: ModuleInfo, qualname: str,
                       function: FunctionInfo) -> Iterator[Finding]:
        for try_index, fact in enumerate(function.try_facts):
            if not fact.in_loop or not fact.handlers:
                continue
            for call in function.call_guards:
                if try_index not in call.guards:
                    continue
                callee = resolve_call_guard(index, module, info,
                                            qualname, call)
                if callee is None:
                    continue
                summary = table.summaries.get(callee)
                if summary is None:
                    continue
                inner = call.guards[:call.guards.index(try_index)]
                arriving = propagate_types(summary.escapes, inner,
                                           function, lattice)
                uncaught = sorted(
                    leaf for leaf in arriving
                    if lattice.is_taxonomy(leaf)
                    and not any(lattice.catches(spec, leaf)
                                for spec in fact.handlers))
                if uncaught:
                    yield self.finding(
                        info, call.lineno, call.col,
                        f"retry loop in {qualname!r} re-invokes "
                        f"{_leaf(call.func)!r} but does not catch its "
                        f"escape {lattice.qualified(uncaught[0])}; "
                        "one uncaught raise aborts every remaining "
                        "attempt — catch it or classify it fatal "
                        "explicitly")
                    break


@register_program_rule
class UncleanedResourceRule(_EscapeRule):
    """R002: resources on a raise path need with/finally cleanup."""

    rule_id = "R002"
    summary = ("a file handle, memmap, SharedMemory segment or pipe "
               "acquired without `with` in a function that can raise "
               "afterwards leaks on the raise path unless a finally "
               "closes it; returned handles (factory functions) are "
               "the caller's job")

    def check_function(self, index: ProjectIndex,
                       table: ExceptionTable, lattice: TypeLattice,
                       module: str, info: ModuleInfo, qualname: str,
                       function: FunctionInfo) -> Iterator[Finding]:
        if any(fact.has_finally for fact in function.try_facts):
            return
        for resource in function.resource_facts:
            if resource.via_with:
                continue
            if resource.name in function.returned_names:
                continue
            live_raise = any(
                fact.lineno > resource.lineno
                and propagate_types(
                    {type_token(fact.type_token)} - {""},
                    fact.guards, function, lattice)
                for fact in function.raise_facts)
            if live_raise:
                yield self.finding(
                    info, resource.lineno, resource.col,
                    f"{resource.kind} {resource.name!r} in "
                    f"{qualname!r} is acquired without `with` but "
                    "the function can raise after the acquisition; "
                    "the handle leaks on the raise path — use `with` "
                    "or close it in a finally")


@register_program_rule
class SignalGuardExitRule(_EscapeRule):
    """R003: SignalGuard regions must not sys.exit out of the guard."""

    rule_id = "R003"
    summary = ("a SignalGuard region defers SIGINT/SIGTERM so the "
               "journal and store flush before exit; calling "
               "sys.exit (or anything escaping SystemExit) inside "
               "the region bypasses the deferred delivery and can "
               "strand a half-written checkpoint")

    def check_function(self, index: ProjectIndex,
                       table: ExceptionTable, lattice: TypeLattice,
                       module: str, info: ModuleInfo, qualname: str,
                       function: FunctionInfo) -> Iterator[Finding]:
        for call in function.call_guards:
            if not call.in_signal_guard:
                continue
            if call.func in ("sys.exit", "exit", "os._exit"):
                yield self.finding(
                    info, call.lineno, call.col,
                    f"{call.func}() inside a SignalGuard region in "
                    f"{qualname!r} bypasses deferred signal delivery "
                    "and the cleanup it protects; return an exit "
                    "code out of the region instead")
                continue
            callee = resolve_call_guard(index, module, info, qualname,
                                        call)
            if callee is None:
                continue
            summary = table.summaries.get(callee)
            if summary is not None and summary.can_exit:
                yield self.finding(
                    info, call.lineno, call.col,
                    f"{_leaf(call.func)!r} called inside a "
                    f"SignalGuard region in {qualname!r} can raise "
                    "SystemExit, bypassing deferred signal delivery; "
                    "make the callee return instead of exiting")
