"""repro.devtools.program: the whole-program analyzer.

Where ``repro lint`` checks one file at a time, this package parses
all of ``src/repro`` once into a **project index** — module table,
import graph, and a resolved call graph with per-function parameter /
return unit signatures inferred from the repo's ``*_dbm`` / ``*_mw`` /
``*_mrad`` suffix convention — then runs three interprocedural rule
families over it:

* **L-series** — the import-layering contract (the explicit layer DAG
  ``geometry/optics/galvo/vrh -> core/link -> motion/plan ->
  simulate/faults -> devtools/cli``): upward imports, module cycles,
  and unassigned subpackages;
* **X-series** — call-site unit flow: argument-vs-parameter suffix
  mismatches across files, dB-vs-linear mixing through the
  ``repro.optics.units`` converters, and return values bound to
  differently-suffixed names;
* **T-series** — RNG provenance taint: generators minted only inside
  ``repro.determinism``, no RNG object crossing the ``parallel_map``
  process boundary, and every stochastic sink threaded a traceable
  ``rng=`` / ``seed=``;
* **C-series** — static race detection over the per-function effect
  summaries of :mod:`.effects`: workers mutating module globals,
  absolute-index writes that can overlap across chunks, fork-unsafe
  resources reaching a worker, and unordered item enumerations;
* **W-series** — crash safety: truncating writes to published paths
  (tmp→rename scopes are proven safe interprocedurally), publish
  renames without a preceding fsync, and journal/manifest mutation
  outside the orchestrator's checksummed append path;
* **S-series** — shape/axis contracts over the array-semantics
  inference of :mod:`.arrays`: statically incompatible broadcasts at
  call sites, sample-major ``(T, n, 3)`` trace tensors crossing the
  ``motion``→``simulate`` boundary (the engines are axis-major
  ``(T, 3, n)``), and unit-suffixed functions returning a freshly
  constructed shape;
* **Y-series** — dtype stability on the hot path: implicit
  promotions of declared-dtype arrays, allocations without an
  explicit ``dtype=``, and bool-array arithmetic that silently
  upcasts;
* **P/K-series** — hot-path and kernel discipline: per-iteration
  allocation and vectorizable Python loops in the batch engines, and
  the nopython-safe subset check over every
  ``@repro.determinism.kernel``-registered function and its
  transitive call closure (no object containers, no mutable module
  state, static signatures) — a static proof the kernel is ready for
  a compiled (numba/CuPy) backend;
* **E/B/R-series** — error contracts over the interprocedural
  exception-escape inference of :mod:`.exceptions`: escape-set
  violations (unclassifiable worker exceptions, CLI subcommands with
  no exit-code mapping, vague ``Exception``/``RuntimeError`` escapes
  from layer APIs), swallow discipline (silent broad handlers, dead
  taxonomy catches, shadowed clause ordering), and retry/cleanup
  discipline (retry loops not covering callee escapes, uncleaned
  resources on raise paths, ``sys.exit`` inside ``SignalGuard``
  regions).

Run it as ``python -m repro analyze``.  The index is cached on disk
keyed by content hash (warm re-runs skip parsing entirely), the
effect, array, and exception fixpoints are cached as separate tiers,
and findings ratchet against a committed baseline file — new findings
fail, pre-existing ones are frozen until burned down.
"""

from .analyzer import (
    DEFAULT_BASELINE,
    AnalyzeResult,
    analyze_paths,
    load_baseline,
    run_program_rules,
    write_baseline,
)
from .arrays import (
    ArraySummary,
    ArrayTable,
    ArrayValue,
    array_table,
    arrays_key,
    hot_modules,
    kernel_closure,
    kernel_functions,
)
from .effects import (
    EffectSummary,
    EffectTable,
    effect_table,
    effects_key,
)
from .exceptions import (
    ExceptionSummary,
    ExceptionTable,
    TypeLattice,
    exception_table,
    exceptions_key,
    type_lattice,
)
from .extract import extract_module, module_name_for
from .index import (
    DEFAULT_CACHE_DIR,
    ProjectIndex,
    ResolvedCallee,
    build_index,
)
from .model import (
    CallSite,
    ClassInfo,
    FunctionInfo,
    ImportedName,
    ModuleInfo,
    ParamInfo,
    ValueDesc,
)
from .registry import (
    ProgramRule,
    all_program_rules,
    register_program_rule,
    resolve_program_selection,
)

__all__ = [
    "AnalyzeResult",
    "ArraySummary",
    "ArrayTable",
    "ArrayValue",
    "CallSite",
    "ClassInfo",
    "DEFAULT_BASELINE",
    "DEFAULT_CACHE_DIR",
    "EffectSummary",
    "EffectTable",
    "ExceptionSummary",
    "ExceptionTable",
    "FunctionInfo",
    "ImportedName",
    "ModuleInfo",
    "ParamInfo",
    "ProgramRule",
    "ProjectIndex",
    "ResolvedCallee",
    "TypeLattice",
    "ValueDesc",
    "all_program_rules",
    "analyze_paths",
    "array_table",
    "arrays_key",
    "build_index",
    "effect_table",
    "effects_key",
    "exception_table",
    "exceptions_key",
    "extract_module",
    "hot_modules",
    "kernel_closure",
    "kernel_functions",
    "load_baseline",
    "module_name_for",
    "register_program_rule",
    "resolve_program_selection",
    "run_program_rules",
    "type_lattice",
    "write_baseline",
]
