"""Interprocedural effect inference over the resolved call graph.

Every function in the index gets a conservative :class:`EffectSummary`
— does it mutate module globals, write files (and to what kind of
path), rename, fsync, spawn workers, hold fork-unsafe resources — and
the summaries are propagated to a fixpoint along two edge kinds:

* **call edges** (caller → resolved callee): a caller inherits its
  callee's effects.  Writes whose destination is a callee *parameter*
  are substituted at each call site: an argument that is itself a tmp
  path is proven safe, an argument that is the caller's own parameter
  re-parameterizes the write one level up, and anything else becomes a
  *published* write attributed at the call site.  This is how
  ``_write_meta(path, ...)`` — a raw ``open(path, "w")`` — is proven
  harmless: every caller hands it a hidden ``.tmp`` directory.
* **containment edges** (enclosing function → nested def): defining a
  closure is treated as potentially executing it, matching the
  conservative per-function fact walk in :mod:`.extract`.

The race rules (:mod:`.rules_concurrency`) consume ``mutates_globals``
/ ``reads_globals`` / ``resources`` / ``index_writes``; the
crash-safety rules (:mod:`.rules_crashsafety`) consume the write /
rename / fsync events.  The finished table is persisted in the
analyzer's content-hash cache (keyed by every input file's SHA plus
the schema versions), so a warm run that re-runs the rules — e.g.
with a different ``--select`` — skips the fixpoint entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .index import ProjectIndex, file_sha
from .model import (
    INDEX_SCHEMA_VERSION,
    RESOURCE_PRODUCERS,
    CallSite,
    FunctionInfo,
    ModuleInfo,
    ValueDesc,
)

#: Bump when the summary shape or inference semantics change.
EFFECTS_SCHEMA_VERSION = 1

#: Callee leaves that push work onto worker processes.
SPAWN_LEAVES = frozenset({
    "parallel_map", "parallel_map_arrays", "PendingCall", "Process",
    "ProcessPoolExecutor", "Pool"})

#: ``np.save``-family leaves: a whole-file write to their path arg.
_NP_WRITE_LEAVES = frozenset({
    "save", "savez", "savez_compressed", "savetxt"})

#: Substrings marking a path expression as a tmp/scratch sibling.
_TMP_TOKENS = ("tmp", "temp", "scratch")

#: The one module sanctioned to do raw write→fsync→rename plumbing.
ATOMIC_MODULE = "repro.store.atomic"


@dataclass(frozen=True)
class WriteEvent:
    """One file-write (or rename) anchored at a source location.

    ``scope`` is ``"tmp"`` (destination inside a tmp→rename scope),
    ``"published"`` (a path a reader could observe), or ``"param:<p>"``
    (destination is the enclosing function's parameter ``p`` — resolved
    at call sites during propagation).  ``via`` names the anchor, with
    ``→`` marking writes inherited through a callee.  ``mode`` is
    ``"w"`` for truncating/creating writes, ``"a"`` for appends and
    ``"u"`` for in-place updates (``r+`` modes) — only ``"w"`` events
    are non-atomic *publication* (W001); the others still count as
    journal/manifest mutations (W003).
    """

    module: str
    lineno: int
    col: int
    via: str
    scope: str
    detail: str
    mode: str = "w"

    def to_dict(self) -> Dict[str, Any]:
        return {"module": self.module, "lineno": self.lineno,
                "col": self.col, "via": self.via, "scope": self.scope,
                "detail": self.detail, "mode": self.mode}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WriteEvent":
        return cls(module=payload["module"], lineno=payload["lineno"],
                   col=payload["col"], via=payload["via"],
                   scope=payload["scope"], detail=payload["detail"],
                   mode=payload["mode"])


@dataclass(frozen=True)
class RenameEvent:
    """One ``os.replace``-style publish rename."""

    module: str
    lineno: int
    col: int
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {"module": self.module, "lineno": self.lineno,
                "col": self.col, "detail": self.detail}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RenameEvent":
        return cls(module=payload["module"], lineno=payload["lineno"],
                   col=payload["col"], detail=payload["detail"])


@dataclass
class EffectSummary:
    """Conservative effects of one function (direct + propagated)."""

    key: str                          # "module.qualname"
    mutates_globals: Set[str] = field(default_factory=set)
    reads_globals: Set[str] = field(default_factory=set)
    writes_any: bool = False
    fsyncs: bool = False
    spawns_worker: bool = False
    renames: Tuple[RenameEvent, ...] = ()
    param_writes: Set[Tuple[str, str]] = field(default_factory=set)
    resources: Dict[str, Tuple[str, int]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "mutates_globals": sorted(self.mutates_globals),
            "reads_globals": sorted(self.reads_globals),
            "writes_any": self.writes_any,
            "fsyncs": self.fsyncs,
            "spawns_worker": self.spawns_worker,
            "renames": [r.to_dict() for r in self.renames],
            "param_writes": sorted(list(pair)
                                   for pair in self.param_writes),
            "resources": {name: list(value) for name, value
                          in sorted(self.resources.items())},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EffectSummary":
        return cls(
            key=payload["key"],
            mutates_globals=set(payload["mutates_globals"]),
            reads_globals=set(payload["reads_globals"]),
            writes_any=payload["writes_any"],
            fsyncs=payload["fsyncs"],
            spawns_worker=payload["spawns_worker"],
            renames=tuple(RenameEvent.from_dict(r)
                          for r in payload["renames"]),
            param_writes={(p, v) for p, v in payload["param_writes"]},
            resources={name: (value[0], value[1]) for name, value
                       in payload["resources"].items()})


@dataclass
class EffectTable:
    """The full program's effect summaries plus derived write events.

    ``published_writes`` holds every write whose destination is a path
    a reader could observe: direct anchors plus the ones derived by
    resolving a callee's parameter-scoped write at a call site.
    ``module_resources`` maps each module to its module-level resource
    bindings (``HANDLE = open(...)`` at import time).
    """

    summaries: Dict[str, EffectSummary] = field(default_factory=dict)
    module_resources: Dict[str, Dict[str, Tuple[str, int]]] = \
        field(default_factory=dict)
    published_writes: Tuple[WriteEvent, ...] = ()
    journal_events: Tuple[WriteEvent, ...] = ()
    from_cache: bool = False

    def summary(self, module: str,
                qualname: str) -> Optional[EffectSummary]:
        return self.summaries.get(f"{module}.{qualname}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "summaries": {key: summary.to_dict() for key, summary
                          in sorted(self.summaries.items())},
            "module_resources": {
                module: {name: list(value) for name, value
                         in sorted(bindings.items())}
                for module, bindings
                in sorted(self.module_resources.items())},
            "published_writes": [w.to_dict()
                                 for w in self.published_writes],
            "journal_events": [w.to_dict()
                               for w in self.journal_events],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EffectTable":
        return cls(
            summaries={key: EffectSummary.from_dict(s)
                       for key, s in payload["summaries"].items()},
            module_resources={
                module: {name: (value[0], value[1])
                         for name, value in bindings.items()}
                for module, bindings
                in payload["module_resources"].items()},
            published_writes=tuple(
                WriteEvent.from_dict(w)
                for w in payload["published_writes"]),
            journal_events=tuple(
                WriteEvent.from_dict(w)
                for w in payload["journal_events"]),
            from_cache=True)


def effects_key(index: ProjectIndex) -> str:
    """Content hash the cached effect table is valid for."""
    shas = sorted((info.path, info.sha)
                  for info in index.modules.values())
    return file_sha(repr((INDEX_SCHEMA_VERSION, EFFECTS_SCHEMA_VERSION,
                          shas)))


# -- location helpers --------------------------------------------------------


def _leaf(dotted: str) -> str:
    return dotted.rsplit(".", 1)[-1]


def owner_of(info: ModuleInfo, scope: str) -> str:
    """Innermost enclosing *function* qualname of a scope string.

    ``in_function`` may name a class body or a nested non-function
    scope; walk outward until an actual function is found ("" for
    module level).
    """
    parts = scope.split(".") if scope else []
    while parts:
        qualname = ".".join(parts)
        if qualname in info.functions:
            return qualname
        parts.pop()
    return ""


def resolve_worker(index: ProjectIndex, module: str, call: CallSite,
                   desc: ValueDesc
                   ) -> Optional[Tuple[str, str, FunctionInfo]]:
    """Resolve a callable argument to a project function.

    Handles nested defs in the enclosing scope chain (closures passed
    as workers), module-level functions, and imported names — returns
    ``(module, qualname, FunctionInfo)`` or None for lambdas, partials
    and anything outside the index.
    """
    if desc.kind not in ("name", "attr") or not desc.text:
        return None
    info = index.modules.get(module)
    if info is None:
        return None
    if desc.kind == "name":
        parts = call.in_function.split(".") if call.in_function else []
        while parts:
            qualname = ".".join(parts + [desc.text])
            if qualname in info.functions:
                return module, qualname, info.functions[qualname]
            parts.pop()
        if desc.text in info.functions:
            return module, desc.text, info.functions[desc.text]
    probe = CallSite(func=desc.text, lineno=call.lineno, col=call.col)
    callee = index.resolve_call(module, probe)
    if callee is not None and callee.kind == "function" and \
            callee.function is not None:
        return callee.module, callee.name, callee.function
    return None


# -- path classification -----------------------------------------------------


def _is_tmpish(text: str, names: Sequence[str],
               consts: Sequence[str]) -> bool:
    blob = " ".join([text, *names, *consts]).lower()
    return any(token in blob for token in _TMP_TOKENS)


def classify_path(desc: ValueDesc,
                  params: Sequence[str]) -> Tuple[str, str]:
    """(scope, detail) of a path expression inside a function.

    Tmp tokens win over parameters: ``path + ".tmp"`` is a tmp sibling
    even when ``path`` is a parameter — this is how W001 "sees"
    tmp→rename scopes.
    """
    detail = desc.text or (desc.consts[0] if desc.consts
                           else (desc.names[0] if desc.names else
                                 desc.kind))
    if _is_tmpish(desc.text, desc.names, desc.consts):
        return "tmp", detail
    root = desc.text.split(".")[0] if desc.text else ""
    if root in params:
        return f"param:{root}", detail
    for name in desc.names:
        if name in params:
            return f"param:{name}", detail
    return "published", detail


def _classify_receiver(receiver: str,
                       params: Sequence[str]) -> Tuple[str, str]:
    """Like :func:`classify_path` for a dotted method receiver."""
    if _is_tmpish(receiver, (), ()):
        return "tmp", receiver
    if receiver.split(".")[0] in params:
        return f"param:{receiver.split('.')[0]}", receiver
    return "published", receiver


def _argument(call: CallSite, position: int,
              keyword: Optional[str]) -> Optional[ValueDesc]:
    if 0 <= position < len(call.args):
        return call.args[position]
    if keyword is not None:
        for name, value in call.keywords:
            if name == keyword:
                return value
    return None


def _const_text(desc: Optional[ValueDesc]) -> Optional[str]:
    if desc is None or desc.kind != "const":
        return None
    text = desc.text
    if len(text) >= 2 and text[0] in "'\"" and text[-1] == text[0]:
        return text[1:-1]
    return None


def _open_mode(call: CallSite, position: int) -> Optional[str]:
    """The constant mode string of an ``open`` call, if knowable."""
    desc = _argument(call, position, "mode")
    if desc is None:
        return "r"  # open() defaults to reading
    return _const_text(desc)


# -- direct fact extraction --------------------------------------------------


def _direct_write(call: CallSite,
                  params: Sequence[str]) -> Optional[WriteEvent]:
    """The write event a single call site anchors, if any."""
    if not call.func:
        return None
    leaf = _leaf(call.func)
    root = call.func.split(".")[0]
    if leaf == "open":
        if call.func == "open":
            path, mode = _argument(call, 0, "file"), _open_mode(call, 1)
            if path is None or mode is None:
                return None
            scope, detail = classify_path(path, params)
        else:
            receiver = call.func[:-len(".open")]
            mode = _open_mode(call, 0)
            if mode is None:
                return None
            scope, detail = _classify_receiver(receiver, params)
        if mode.startswith("r") and "+" not in mode:
            return None
        if mode.startswith("a"):
            kind = "a"
        elif "+" in mode and not mode.startswith(("w", "x")):
            kind = "u"
        else:
            kind = "w"
        return WriteEvent(module="", lineno=call.lineno, col=call.col,
                          via=call.func, scope=scope, detail=detail,
                          mode=kind)
    if root in ("np", "numpy") and leaf in _NP_WRITE_LEAVES:
        path = _argument(call, 0, "file")
        if path is None:
            return None
        scope, detail = classify_path(path, params)
        return WriteEvent(module="", lineno=call.lineno, col=call.col,
                          via=call.func, scope=scope, detail=detail)
    if leaf in ("write_text", "write_bytes") and "." in call.func:
        receiver = call.func[:-(len(leaf) + 1)]
        scope, detail = _classify_receiver(receiver, params)
        return WriteEvent(module="", lineno=call.lineno, col=call.col,
                          via=call.func, scope=scope, detail=detail)
    return None


def _direct_rename(call: CallSite) -> Optional[RenameEvent]:
    if not call.func:
        return None
    leaf = _leaf(call.func)
    root = call.func.split(".")[0]
    if root in ("os", "shutil") and leaf in ("replace", "rename",
                                             "move"):
        dst = _argument(call, 1, "dst")
        detail = (dst.text or "...") if dst is not None else "..."
        return RenameEvent(module="", lineno=call.lineno, col=call.col,
                           detail=detail)
    # Path.replace / Path.rename take exactly one argument;
    # str.replace takes two — the arity disambiguates them.
    if leaf in ("replace", "rename") and "." in call.func and \
            len(call.args) == 1 and not call.keywords:
        return RenameEvent(module="", lineno=call.lineno, col=call.col,
                           detail=call.args[0].text or "...")
    return None


@dataclass(frozen=True)
class _CallEdge:
    caller: str                      # summary key
    callee: str                      # summary key
    module: str                      # caller's module
    call: Optional[CallSite]         # None for containment edges


def _interesting_names(info: ModuleInfo,
                       resources: Mapping[str, Tuple[str, int]]
                       ) -> Set[str]:
    return set(info.mutable_globals) | set(resources)


def _build_table(index: ProjectIndex) -> EffectTable:
    table = EffectTable()
    edges: List[_CallEdge] = []
    published: Dict[Tuple[str, int, int, str], WriteEvent] = {}
    journalish: List[WriteEvent] = []

    # Pass 1: module-level resources, then per-function direct facts.
    for module in sorted(index.modules):
        info = index.modules[module]
        bindings: Dict[str, Tuple[str, int]] = {}
        for call in info.calls:
            if call.in_function == "" and call.bound_to and call.func \
                    and _leaf(call.func) in RESOURCE_PRODUCERS:
                bindings[call.bound_to] = (
                    RESOURCE_PRODUCERS[_leaf(call.func)], call.lineno)
        table.module_resources[module] = bindings

    for module in sorted(index.modules):
        info = index.modules[module]
        interesting = _interesting_names(
            info, table.module_resources[module])
        for qualname, function in info.functions.items():
            key = f"{module}.{qualname}"
            summary = EffectSummary(key=key)
            summary.mutates_globals = {
                f"{module}.{name}" for name in function.global_writes}
            summary.reads_globals = {
                f"{module}.{name}" for name in function.reads
                if name in interesting}
            table.summaries[key] = summary
        # Containment: defining a nested function is conservatively
        # treated as executing it (matches extract._function_facts).
        for qualname in info.functions:
            if "." not in qualname:
                continue
            outer = owner_of(info, qualname.rsplit(".", 1)[0])
            if outer:
                edges.append(_CallEdge(
                    caller=f"{module}.{outer}",
                    callee=f"{module}.{qualname}",
                    module=module, call=None))

        params_of: Dict[str, Tuple[str, ...]] = {
            qualname: tuple(p.name for p in function.params)
            for qualname, function in info.functions.items()}
        for call in info.calls:
            owner = owner_of(info, call.in_function)
            params = params_of.get(owner, ())
            key = f"{module}.{owner}" if owner else ""
            summary = table.summaries.get(key)
            leaf = _leaf(call.func) if call.func else ""

            write = _direct_write(call, params)
            if write is not None:
                write = WriteEvent(
                    module=module, lineno=write.lineno, col=write.col,
                    via=write.via, scope=write.scope,
                    detail=write.detail, mode=write.mode)
                if _mentions_journal(call, write):
                    journalish.append(write)
                if write.scope == "published":
                    published.setdefault(
                        (module, write.lineno, write.col, write.via),
                        write)
                if summary is not None:
                    summary.writes_any = True
                    if write.scope.startswith("param:"):
                        summary.param_writes.add(
                            (write.scope[len("param:"):], write.via))

            rename = _direct_rename(call)
            if rename is not None and summary is not None:
                summary.renames += (RenameEvent(
                    module=module, lineno=rename.lineno,
                    col=rename.col, detail=rename.detail),)
            if rename is not None and _mentions_journal(call, None):
                journalish.append(WriteEvent(
                    module=module, lineno=call.lineno, col=call.col,
                    via=call.func, scope="published",
                    detail=rename.detail, mode="w"))

            if summary is not None:
                if leaf == "fsync":
                    summary.fsyncs = True
                if leaf in SPAWN_LEAVES:
                    summary.spawns_worker = True
                if call.bound_to and leaf in RESOURCE_PRODUCERS:
                    summary.resources.setdefault(
                        call.bound_to,
                        (RESOURCE_PRODUCERS[leaf], call.lineno))

            # Call edge to a resolvable project function: imported /
            # module-level names via the index, local nested defs via
            # the enclosing scope chain.
            if not owner or not call.func:
                continue
            callee_key = _callee_key(index, module, info, call)
            if callee_key is not None:
                edges.append(_CallEdge(
                    caller=f"{module}.{owner}", callee=callee_key,
                    module=module, call=call))

    # Pass 2: fixpoint propagation.
    changed = True
    while changed:
        changed = False
        for edge in edges:
            caller = table.summaries.get(edge.caller)
            callee = table.summaries.get(edge.callee)
            if caller is None or callee is None or caller is callee:
                continue
            changed |= _merge_booleans(caller, callee)
            if not callee.mutates_globals <= caller.mutates_globals:
                caller.mutates_globals |= callee.mutates_globals
                changed = True
            if not callee.reads_globals <= caller.reads_globals:
                caller.reads_globals |= callee.reads_globals
                changed = True
            if edge.call is None:
                # Containment: a nested def's param-scoped writes are
                # its own; they do not re-parameterize the outer fn.
                continue
            changed |= _substitute_param_writes(
                index, table, edge, caller, callee, published)

    table.published_writes = tuple(sorted(
        published.values(),
        key=lambda w: (w.module, w.lineno, w.col, w.via)))
    table.journal_events = tuple(sorted(
        journalish,
        key=lambda w: (w.module, w.lineno, w.col, w.via)))
    return table


def _merge_booleans(caller: EffectSummary,
                    callee: EffectSummary) -> bool:
    changed = False
    for attr in ("writes_any", "fsyncs", "spawns_worker"):
        if getattr(callee, attr) and not getattr(caller, attr):
            setattr(caller, attr, True)
            changed = True
    return changed


def _callee_key(index: ProjectIndex, module: str, info: ModuleInfo,
                call: CallSite) -> Optional[str]:
    if "." not in call.func:
        parts = call.in_function.split(".") if call.in_function else []
        while parts:
            qualname = ".".join(parts + [call.func])
            if qualname in info.functions:
                return f"{module}.{qualname}"
            parts.pop()
    callee = index.resolve_call(module, call)
    if callee is not None and callee.kind == "function":
        return f"{callee.module}.{callee.name}"
    return None


def _substitute_param_writes(
        index: ProjectIndex, table: EffectTable, edge: _CallEdge,
        caller: EffectSummary, callee: EffectSummary,
        published: Dict[Tuple[str, int, int, str], WriteEvent]) -> bool:
    """Resolve a callee's param-scoped writes at one call site."""
    if not callee.param_writes or edge.call is None:
        return False
    function = _lookup_function(index, edge.callee)
    if function is None:
        return False
    param_names = [p.name for p in function.params]
    caller_info = index.modules[edge.module]
    owner = owner_of(caller_info, edge.call.in_function)
    caller_params: Tuple[str, ...] = ()
    if owner and owner in caller_info.functions:
        caller_params = tuple(
            p.name for p in caller_info.functions[owner].params)
    changed = False
    for param, via in sorted(callee.param_writes):
        desc = None
        if param in param_names:
            desc = _argument(edge.call, param_names.index(param), param)
        if desc is None:
            continue  # defaulted or unmatchable: stays callee-scoped
        scope, detail = classify_path(desc, caller_params)
        derived_via = f"{_leaf(edge.call.func)} → {via}"
        if scope == "tmp":
            continue
        if scope.startswith("param:"):
            pair = (scope[len("param:"):], derived_via)
            if pair not in caller.param_writes:
                caller.param_writes.add(pair)
                changed = True
        else:
            event_key = (edge.module, edge.call.lineno, edge.call.col,
                         derived_via)
            if event_key not in published:
                published[event_key] = WriteEvent(
                    module=edge.module, lineno=edge.call.lineno,
                    col=edge.call.col, via=derived_via,
                    scope="published", detail=detail)
                changed = True
    return changed


def _lookup_function(index: ProjectIndex,
                     key: str) -> Optional[FunctionInfo]:
    for module, info in index.modules.items():
        if key.startswith(module + "."):
            qualname = key[len(module) + 1:]
            if qualname in info.functions:
                return info.functions[qualname]
    return None


def _mentions_journal(call: CallSite,
                      write: Optional[WriteEvent]) -> bool:
    """Does this call's path expression name a journal or manifest?"""
    blobs: List[str] = [call.func or ""]
    for desc in call.args[:2]:
        blobs.append(desc.text)
        blobs.extend(desc.names)
        blobs.extend(desc.consts)
    for _, desc in call.keywords:
        blobs.append(desc.text)
        blobs.extend(desc.consts)
    if write is not None:
        blobs.append(write.detail)
    blob = " ".join(blobs).lower()
    return "journal" in blob or "manifest" in blob


def effect_table(index: ProjectIndex) -> EffectTable:
    """The (memoized) effect table for an index."""
    cached = getattr(index, "_effect_table", None)
    if isinstance(cached, EffectTable):
        return cached
    table = _build_table(index)
    setattr(index, "_effect_table", table)
    return table


def attach_cached_table(index: ProjectIndex,
                        payload: Mapping[str, Any]) -> bool:
    """Adopt a cached effect table if its key matches this index."""
    if not isinstance(payload, Mapping):
        return False
    if payload.get("key") != effects_key(index):
        return False
    try:
        table = EffectTable.from_dict(payload["table"])
    except (KeyError, TypeError, ValueError):
        return False
    setattr(index, "_effect_table", table)
    return True


def serialized_table(index: ProjectIndex
                     ) -> Optional[Dict[str, Any]]:
    """The cache payload for this index's table (None if not built)."""
    table = getattr(index, "_effect_table", None)
    if not isinstance(table, EffectTable):
        return None
    return {"key": effects_key(index), "table": table.to_dict()}
