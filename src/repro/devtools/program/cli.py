"""The ``python -m repro analyze`` front end.

Exit codes match ``repro lint``: 0 clean (no *new* findings beyond the
committed baseline), 1 new findings, 2 usage error.  ``--write-
baseline`` snapshots the current findings so a legacy violation can be
ratcheted instead of blocking; the committed steady state is an empty
baseline.
"""

from __future__ import annotations

import argparse
import json
import time
from typing import List, Optional

from ..cli import default_lint_target
from ..reporters import (
    render_github,
    render_json,
    render_text,
    to_payload,
)
from .analyzer import DEFAULT_BASELINE, analyze_paths, write_baseline
from .index import DEFAULT_CACHE_DIR
from .registry import all_program_rules


def add_analyze_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the analyze options to a (sub)parser."""
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files/directories to analyze (default: the repro "
             "package)")
    parser.add_argument(
        "--format", choices=("text", "json", "github"),
        default="text", help="output format (default text)")
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids/prefixes to run (e.g. L,X001)")
    parser.add_argument(
        "--ignore", default=None, metavar="RULES",
        help="comma-separated rule ids/prefixes to skip")
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE, metavar="FILE",
        help="baseline file of ratcheted findings (default "
             f"{DEFAULT_BASELINE}; missing file = empty baseline)")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="snapshot current findings into the baseline file and "
             "exit 0")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the on-disk index cache")
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help=f"index cache directory (default {DEFAULT_CACHE_DIR})")
    parser.add_argument(
        "--warn-only", action="store_true",
        help="report findings but exit 0 (survey mode)")
    parser.add_argument(
        "--max-waivers", type=int, default=None, metavar="N",
        help="fail when more than N findings are suppressed via "
             "noqa (waiver budget; default: unlimited)")
    parser.add_argument(
        "--stats", action="store_true",
        help="print index/cache statistics after the report")
    parser.add_argument(
        "--profile", action="store_true",
        help="print per-rule-family wall time and cache hit/miss "
             "counters (included under \"profile\" in --format json)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the program-rule catalog and exit")


def _split(option: Optional[str]) -> Optional[List[str]]:
    if option is None:
        return None
    return [entry for entry in option.split(",") if entry.strip()]


def run_analyze(args: argparse.Namespace) -> int:
    """Execute the analyze command; returns the process exit code."""
    if args.list_rules:
        for rule in all_program_rules():
            print(f"{rule.rule_id}  {rule.summary}")
        return 0
    paths = args.paths or [default_lint_target()]
    cache_dir = None if args.no_cache else args.cache_dir
    started = time.perf_counter()
    try:
        result = analyze_paths(
            paths, select=_split(args.select),
            ignore=_split(args.ignore), cache_dir=cache_dir,
            baseline_path=args.baseline)
    except (ValueError, FileNotFoundError) as exc:
        print(f"analyze: {exc}")
        return 2
    elapsed = time.perf_counter() - started

    if args.write_baseline:
        write_baseline(args.baseline, result.findings)
        print(f"wrote {len(result.findings)} finding"
              f"{'s' if len(result.findings) != 1 else ''} to "
              f"{args.baseline}")
        return 0

    if args.format == "json":
        payload = to_payload(result)
        payload.update({
            "from_cache": result.from_cache,
            "extracted": result.extracted,
            "baselined": result.baselined,
            "stale_baseline": result.stale_baseline,
        })
        if args.profile:
            payload["profile"] = result.profile
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.format == "github":
        print(render_github(result))
    else:
        print(render_text(result))
        if result.baselined:
            print(f"{result.baselined} pre-existing finding"
                  f"{'s' if result.baselined != 1 else ''} held by "
                  f"the baseline ({args.baseline})")
        if result.stale_baseline:
            print(f"note: {result.stale_baseline} baseline entr"
                  f"{'ies are' if result.stale_baseline != 1 else 'y is'}"
                  " stale (finding fixed); re-run with "
                  "--write-baseline to shrink it")
    if args.stats:
        print(f"index: {result.files_checked} modules "
              f"({result.from_cache} cached, {result.extracted} "
              f"extracted) in {elapsed:.3f} s")
    if args.profile and args.format != "json":
        _print_profile(result.profile, elapsed)
    if args.max_waivers is not None and \
            result.suppressed > args.max_waivers:
        print(f"analyze: {result.suppressed} noqa waiver"
              f"{'s' if result.suppressed != 1 else ''} exceed the "
              f"budget of {args.max_waivers}; remove suppressions or "
              "raise --max-waivers deliberately")
        return 1
    if result.findings and not args.warn_only:
        return 1
    return 0


def _print_profile(profile: dict, elapsed: float) -> None:
    """Render the --profile counters (text formats)."""
    families = profile.get("families", {})
    cache = profile.get("cache", {})
    if families:
        widest = max(len(family) for family in families)
        for family in sorted(families):
            print(f"profile: family {family:<{widest}} "
                  f"{families[family] * 1000.0:9.3f} ms")
    else:
        print("profile: rule families not run "
              "(results cache hit)")
    tiers = ", ".join(f"{tier} {cache.get(tier, 'miss')}"
                      for tier in ("results", "effects", "arrays",
                                   "exceptions"))
    print(f"profile: cache {tiers}; files "
          f"{cache.get('files_cached', 0)} cached / "
          f"{cache.get('files_extracted', 0)} extracted; total "
          f"{elapsed:.3f} s")
