"""The project index: every module parsed once, names resolved across
files, and an on-disk cache keyed by content hash.

Building the index is the analyzer's only expensive step (parsing and
walking ~100 ASTs), so :func:`build_index` can run against a cache
file: each source file's extracted :class:`ModuleInfo` is stored under
its SHA-256, and a warm run deserializes unchanged files instead of
re-extracting them.  The cache is a plain JSON file — safe to delete
at any time, keyed by content rather than mtime so it survives
checkouts and CI cache restores.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Set, Tuple

from ..engine import iter_python_files
from .extract import extract_module
from .model import (
    INDEX_SCHEMA_VERSION,
    CallSite,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
)

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"
_CACHE_FILENAME = "program-index.json"


@dataclass(frozen=True)
class ResolvedCallee:
    """What a call site's dotted name resolved to."""

    module: str
    name: str                       # qualified display name
    kind: str                       # "function" | "class"
    function: Optional[FunctionInfo] = None
    klass: Optional[ClassInfo] = None

    @property
    def qualified(self) -> str:
        return f"{self.module}.{self.name}"


@dataclass
class ProjectIndex:
    """All modules plus cross-module name resolution."""

    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    from_cache: int = 0
    extracted: int = 0
    syntax_errors: Tuple[Tuple[str, int, str], ...] = ()
    cache_entries: Dict[str, Dict[str, object]] = \
        field(default_factory=dict, repr=False, compare=False)
    _call_cache: Dict[Tuple[str, str], Optional["ResolvedCallee"]] = \
        field(default_factory=dict, repr=False, compare=False)

    # -- name resolution -----------------------------------------------------

    def resolve_symbol(self, symbol: str,
                       _seen: Optional[Set[str]] = None) -> Optional[str]:
        """Follow re-export chains until ``symbol`` names a definition.

        ``repro.link.FsoChannel`` -> ``repro.link.channel.FsoChannel``
        when the package ``__init__`` merely re-exports it.  Returns
        None for symbols outside the index (numpy, stdlib) or broken
        chains.
        """
        seen = _seen if _seen is not None else set()
        if symbol in seen:
            return None
        seen.add(symbol)
        module, attrs = self._split_module(symbol)
        if module is None:
            return None
        if not attrs:
            return symbol  # the symbol is a module itself
        info = self.modules[module]
        name = ".".join(attrs)
        if name in info.functions or name in info.classes:
            return symbol  # defined right here
        head, rest = attrs[0], attrs[1:]
        target = info.bindings.get(head)
        if target is None or target == f"{module}.{head}":
            return None  # unknown name, or a local non-def binding
        resolved_head = self.resolve_symbol(target, seen)
        if resolved_head is None:
            return None
        if rest:
            return self.resolve_symbol(
                ".".join([resolved_head] + list(rest)), seen)
        return resolved_head

    def _split_module(self, symbol: str
                      ) -> Tuple[Optional[str], Tuple[str, ...]]:
        """Longest module prefix of a dotted symbol, plus the rest."""
        parts = symbol.split(".")
        for cut in range(len(parts), 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in self.modules:
                return candidate, tuple(parts[cut:])
        return None, ()

    def lookup(self, symbol: str) -> Optional[ResolvedCallee]:
        """The definition a fully resolved symbol points at, if any."""
        resolved = self.resolve_symbol(symbol)
        if resolved is None:
            return None
        module, attrs = self._split_module(resolved)
        if module is None or not attrs:
            return None
        info = self.modules[module]
        name = ".".join(attrs)
        if name in info.classes:
            return ResolvedCallee(module=module, name=name, kind="class",
                                  klass=info.classes[name])
        if name in info.functions:
            return ResolvedCallee(module=module, name=name,
                                  kind="function",
                                  function=info.functions[name])
        return None

    def resolve_call(self, module: str,
                     call: CallSite) -> Optional[ResolvedCallee]:
        """Resolve a call site's dotted callee to a project definition.

        Handles plain names, imported names, re-exports, and
        ``ClassName.method`` / ``module.attr`` chains.  Attribute calls
        on instances (``self.tracker.report``) are out of scope and
        resolve to None.
        """
        if not call.func or module not in self.modules:
            return None
        key = (module, call.func)
        if key in self._call_cache:
            return self._call_cache[key]
        callee = self._resolve_call_uncached(module, call)
        self._call_cache[key] = callee
        return callee

    def _resolve_call_uncached(self, module: str,
                               call: CallSite
                               ) -> Optional[ResolvedCallee]:
        parts = call.func.split(".")
        head = parts[0]
        if head in ("self", "cls"):
            return None
        info = self.modules[module]
        target = info.bindings.get(head)
        if target is None:
            # A method calling a sibling defined in the same class
            # cannot be seen here; only module-level names resolve.
            return None
        symbol = ".".join([target] + parts[1:])
        callee = self.lookup(symbol)
        if callee is not None or len(parts) == 1:
            return callee
        return None

    def constructor_params(self, callee: ResolvedCallee
                           ) -> Tuple[Tuple[str, ...], ResolvedCallee]:
        """Parameter names a call to ``callee`` binds, in order."""
        if callee.kind == "function" and callee.function is not None:
            return (tuple(p.name for p in callee.function.params),
                    callee)
        if callee.kind == "class" and callee.klass is not None:
            return tuple(p.name for p in callee.klass.fields), callee
        return (), callee


def file_sha(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _cache_path(cache_dir: str) -> str:
    return os.path.join(cache_dir, _CACHE_FILENAME)


def load_cache(cache_dir: str) -> Dict[str, object]:
    """The full cache payload ({} for a missing/invalid/stale file).

    The payload holds a ``files`` section ({path: {sha, module}}) and,
    once an analysis has run to completion, a ``results`` section (the
    findings of the last run, keyed by a content hash of every input —
    see :func:`repro.devtools.program.analyzer.analyze_paths`).
    """
    try:
        with open(_cache_path(cache_dir), "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return {}
    if not isinstance(payload, dict) or \
            payload.get("version") != INDEX_SCHEMA_VERSION:
        return {}
    if not isinstance(payload.get("files"), dict):
        payload["files"] = {}
    return payload


def save_cache(cache_dir: str, payload: Dict[str, object]) -> None:
    """Atomically persist the cache payload (best effort)."""
    try:
        os.makedirs(cache_dir, exist_ok=True)
        path = _cache_path(cache_dir)
        tmp = path + ".tmp"
        payload = dict(payload, version=INDEX_SCHEMA_VERSION)
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except OSError:
        pass  # a read-only checkout must not break analysis


def build_index(paths: Sequence[str],
                cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
                cached_payload: Optional[Dict[str, object]] = None,
                save: bool = True) -> ProjectIndex:
    """Parse every ``.py`` file under ``paths`` into a ProjectIndex.

    ``cache_dir=None`` disables the on-disk cache entirely.  Files that
    fail to parse are recorded as ``syntax_errors`` (path, line,
    message) instead of aborting the whole build.  A caller that has
    already loaded the cache may pass it as ``cached_payload`` (and
    ``save=False`` to take over persistence, e.g. to add a results
    section before the single write).
    """
    if cached_payload is not None:
        payload = cached_payload
    elif cache_dir is not None:
        payload = load_cache(cache_dir)
    else:
        payload = {}
    cached: Dict[str, Dict[str, object]] = \
        payload.get("files", {})  # type: ignore[assignment]
    next_cache: Dict[str, Dict[str, object]] = {}
    index = ProjectIndex()
    errors = []
    for filename in iter_python_files(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            source = handle.read()
        sha = file_sha(source)
        entry = cached.get(filename)
        if entry is not None and entry.get("sha") == sha:
            info = ModuleInfo.from_dict(entry["module"])  # type: ignore[arg-type]
            index.from_cache += 1
            next_cache[filename] = entry
        else:
            try:
                info = extract_module(filename, source, sha)
            except SyntaxError as exc:
                errors.append((filename, exc.lineno or 1,
                               exc.msg or "syntax error"))
                continue
            index.extracted += 1
            next_cache[filename] = {"sha": sha, "module": info.to_dict()}
        index.modules[info.module] = info
    index.syntax_errors = tuple(errors)
    index.cache_entries = next_cache
    # Rewriting an unchanged cache costs more than everything else on a
    # warm run, so only persist when something was actually re-parsed.
    # Entries merge over the old cache: analyzing a subtree must not
    # evict the rest of the project's entries.
    if cache_dir is not None and save and index.extracted > 0:
        merged = dict(cached)
        merged.update(next_cache)
        save_cache(cache_dir, dict(payload, files=merged))
    return index
