"""P/K-series: hot-path allocation discipline and the kernel subset.

P-rules police the hot modules for per-iteration allocation and
Python-level element loops — the two habits that cap a batch engine an
order of magnitude below memory bandwidth.  K-rules check every
``@repro.determinism.kernel``-registered function *and its transitive
project-call closure* against the nopython-safe subset a compiled
backend (numba ``@njit`` or a CuPy raw kernel) accepts: no
dict/set/object-dtype values, no mutable module state, no ``*args`` /
``**kwargs``, and no output built by concatenation — so K-clean is a
static proof the kernel is migration-ready.
"""

from __future__ import annotations

from typing import Iterator, Set, Tuple

from ..findings import Finding
from .arrays import (
    ArrayEvent,
    array_table,
    hot_modules,
    kernel_closure,
    kernel_functions,
)
from .index import ProjectIndex
from .model import FunctionInfo, ModuleInfo
from .registry import ProgramRule, register_program_rule


class _HotEventRule(ProgramRule):
    """Shared scaffold: one event kind, hot modules only."""

    event_kind = ""

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        table = array_table(index)
        hot: Set[str] = set(hot_modules(index))
        for event in table.events:
            if event.kind != self.event_kind or \
                    event.module not in hot:
                continue
            info = index.modules.get(event.module)
            if info is None:
                continue
            yield self.finding(info, event.lineno, event.col,
                               self.message(event))

    def message(self, event: ArrayEvent) -> str:
        raise NotImplementedError


@register_program_rule
class LoopAllocationRule(_HotEventRule):
    """P001: no allocation or concatenation inside a hot loop."""

    rule_id = "P001"
    summary = ("in hot modules, array allocation and np.concatenate/"
               "np.append inside a loop reallocate per iteration; "
               "hoist the buffer out of the loop")
    event_kind = "loop-alloc"

    def message(self, event: ArrayEvent) -> str:
        return (f"allocation in loop: {event.detail} in "
                f"{event.function}; hoist the buffer and write into "
                "it")


@register_program_rule
class PythonLoopRule(_HotEventRule):
    """P002: no element-wise Python loops where a ufunc would do."""

    rule_id = "P002"
    summary = ("in hot modules, a Python for-loop indexing arrays "
               "element-wise is a vectorized op written long-hand; "
               "loop-carried scans are exempt")
    event_kind = "python-loop"

    def message(self, event: ArrayEvent) -> str:
        return (f"vectorizable Python loop: {event.detail} in "
                f"{event.function}; replace with a whole-array op")


class _KernelRule(ProgramRule):
    """Shared scaffold: walk each kernel's transitive closure."""

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        seen: Set[Tuple[str, int, str]] = set()
        for module, qualname, _ in kernel_functions(index):
            closure = kernel_closure(index, module, qualname)
            kernel = f"{module}.{qualname}"
            for fn_module, fn_qualname, function in closure:
                info = index.modules.get(fn_module)
                if info is None:
                    continue
                site = "" if fn_qualname == qualname and \
                    fn_module == module else \
                    f" (reached from kernel {kernel})"
                for found in self.check_function(
                        info, fn_qualname, function, site):
                    key = (found.path, found.line, found.message)
                    if key not in seen:
                        seen.add(key)
                        yield found

    def check_function(self, info: ModuleInfo, qualname: str,
                       function: FunctionInfo,
                       site: str) -> Iterator[Finding]:
        raise NotImplementedError


@register_program_rule
class KernelObjectOpsRule(_KernelRule):
    """K001: no dict/set/object-dtype values in a kernel closure."""

    rule_id = "K001"
    summary = ("a registered kernel and everything it calls must not "
               "build dicts, sets, or object-dtype arrays — none "
               "exist in nopython mode")

    def check_function(self, info: ModuleInfo, qualname: str,
                       function: FunctionInfo,
                       site: str) -> Iterator[Finding]:
        for op in function.array_ops:
            if op.kind == "object":
                yield self.finding(
                    info, op.lineno, op.col,
                    f"kernel subset violation: {qualname} builds a "
                    f"Python {op.func}{site}; nopython mode has no "
                    "object containers")
            elif op.kind in ("alloc", "cast", "convert") and \
                    op.dtype == "object":
                yield self.finding(
                    info, op.lineno, op.col,
                    f"kernel subset violation: {qualname} allocates "
                    f"an object-dtype array{site}")


@register_program_rule
class KernelMutableStateRule(_KernelRule):
    """K002: no mutable module state touched from a kernel closure."""

    rule_id = "K002"
    summary = ("a registered kernel and everything it calls must not "
               "write globals, read mutable module state, or close "
               "over nested defs")

    def check_function(self, info: ModuleInfo, qualname: str,
                       function: FunctionInfo,
                       site: str) -> Iterator[Finding]:
        if function.global_writes:
            names = ", ".join(sorted(function.global_writes))
            yield self.finding(
                info, function.lineno, 0,
                f"kernel subset violation: {qualname} writes module "
                f"state ({names}){site}; kernels must be pure over "
                "their arguments")
        mutable = set(info.mutable_globals) & set(function.reads)
        if mutable:
            names = ", ".join(sorted(mutable))
            yield self.finding(
                info, function.lineno, 0,
                f"kernel subset violation: {qualname} reads mutable "
                f"module state ({names}){site}; pass it as an "
                "argument instead")
        prefix = qualname + "."
        nested = sorted(
            name for name in info.functions
            if name.startswith(prefix) and "." not in
            name[len(prefix):])
        if nested:
            yield self.finding(
                info, function.lineno, 0,
                f"kernel subset violation: {qualname} defines nested "
                f"function(s) {', '.join(nested)}{site}; closures "
                "capture state a compiled backend cannot see")


@register_program_rule
class KernelSignatureRule(_KernelRule):
    """K003: static signatures, outputs not grown by concatenation."""

    rule_id = "K003"
    summary = ("a registered kernel and everything it calls must take "
               "a static signature (no *args/**kwargs) and must not "
               "return a concatenation-grown array")

    def check_function(self, info: ModuleInfo, qualname: str,
                       function: FunctionInfo,
                       site: str) -> Iterator[Finding]:
        if function.has_varargs or function.has_kwargs:
            star = "**kwargs" if function.has_kwargs else "*args"
            yield self.finding(
                info, function.lineno, 0,
                f"kernel subset violation: {qualname} takes {star}"
                f"{site}; compiled kernels need a static signature")
        for op in function.array_ops:
            if op.kind == "concat" and op.bound_to == "<ret>":
                yield self.finding(
                    info, op.lineno, op.col,
                    f"kernel subset violation: {qualname} returns "
                    f"{op.func}(...){site}; preallocate the output "
                    "and write into it")
