"""L-series: the import-layering contract.

The repo's packages form an explicit DAG — physics primitives at the
bottom, the learned pipeline above them, workloads above that, the
experiment harnesses above those, and tooling on top:

====== =========================================================
layer  packages
====== =========================================================
0      ``constants`` ``determinism`` ``parallel`` ``reporting``
       ``store``
1      ``geometry`` ``optics`` ``galvo`` ``vrh`` ``net`` ``stream``
2      ``core`` ``link``
3      ``motion`` ``plan`` ``analysis``
4      ``simulate`` ``faults`` ``baselines`` ``orchestrator``
5      ``devtools`` ``cli`` ``__main__`` (and the ``repro`` facade)
====== =========================================================

A module may import its own layer and any layer below it; importing
*upward* couples the physics to the harnesses that are supposed to be
swappable on top of it.  ``TYPE_CHECKING``-gated imports are exempt
(they never execute), but lazy function-level imports are not — they
are a runtime dependency however late they bind.  Cycle detection
(L002) considers only module-level imports, since a lazy import is the
sanctioned way to break a cycle.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..findings import Finding
from .index import ProjectIndex
from .model import ImportedName, ModuleInfo
from .registry import ProgramRule, register_program_rule

#: The layer DAG, as (layer name, members).  Index = height.
LAYERS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("foundation", ("constants", "determinism", "parallel",
                    "reporting", "store")),
    ("device", ("geometry", "optics", "galvo", "vrh", "net",
                "stream")),
    ("pipeline", ("core", "link")),
    ("workload", ("motion", "plan", "analysis")),
    ("experiment", ("simulate", "faults", "baselines",
                    "orchestrator")),
    ("tooling", ("devtools", "cli", "__main__")),
)

_COMPONENT_LAYER: Dict[str, int] = {
    member: height
    for height, (_, members) in enumerate(LAYERS)
    for member in members
}


def component_of(module: str) -> Optional[str]:
    """The ``repro`` subpackage a module belongs to, or None.

    ``repro.optics.units`` -> ``optics``; the package facade
    ``repro`` itself maps to the top layer sentinel ``__main__``-side
    (it imports everything by design).
    """
    if module == "repro":
        return "__main__"
    if not module.startswith("repro."):
        return None
    return module.split(".")[1]


def layer_of(module: str) -> Optional[int]:
    component = component_of(module)
    if component is None:
        return None
    return _COMPONENT_LAYER.get(component)


def _import_edges(index: ProjectIndex, info: ModuleInfo,
                  include_lazy: bool
                  ) -> Iterator[Tuple[ImportedName, str]]:
    """(record, imported repro module) pairs for one module."""
    for record in info.imports:
        if record.type_checking:
            continue
        if record.lazy and not include_lazy:
            continue
        target = record.target if record.target in index.modules \
            else record.module
        if target in index.modules and target.startswith("repro"):
            yield record, target


@register_program_rule
class LayeringRule(ProgramRule):
    """L001: no module may import a higher layer."""

    rule_id = "L001"
    summary = ("imports must follow the layer DAG (foundation -> "
               "device -> core/link -> motion/plan -> simulate/faults "
               "-> devtools/cli); upward imports are findings")

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        for module in sorted(index.modules):
            info = index.modules[module]
            here = layer_of(module)
            if here is None:
                continue
            for record, target in _import_edges(index, info,
                                                include_lazy=True):
                there = layer_of(target)
                if there is None or there <= here:
                    continue
                yield self.finding(
                    info, record.lineno, 0,
                    f"{module} (layer {LAYERS[here][0]}) imports "
                    f"{target} (layer {LAYERS[there][0]}): lower "
                    "layers must not depend on the harnesses above "
                    "them")


@register_program_rule
class ImportCycleRule(ProgramRule):
    """L002: no module-level import cycles."""

    rule_id = "L002"
    summary = ("no cycles among module-level imports; break a "
               "genuine mutual dependency with a lazy (function-"
               "level) import")

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        edges: Dict[str, Set[str]] = {}
        for module in index.modules:
            info = index.modules[module]
            targets = set()
            for record, target in _import_edges(index, info,
                                                include_lazy=False):
                if target != module:
                    targets.add(target)
            edges[module] = targets
        for cycle in _strongly_connected(edges):
            anchor = min(cycle)
            info = index.modules[anchor]
            line = self._import_line(index, info, cycle)
            members = " -> ".join(sorted(cycle))
            yield self.finding(
                info, line, 0,
                f"module-level import cycle: {members}; break it with "
                "a lazy import or by moving the shared piece down a "
                "layer")

    def _import_line(self, index: ProjectIndex, info: ModuleInfo,
                     cycle: Set[str]) -> int:
        for record, target in _import_edges(index, info,
                                            include_lazy=False):
            if target in cycle:
                return record.lineno
        return 1


@register_program_rule
class UnassignedModuleRule(ProgramRule):
    """L003: every repro subpackage must be assigned to a layer."""

    rule_id = "L003"
    summary = ("every repro.* module must belong to a declared layer; "
               "add new subpackages to the LAYERS contract")

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        for module in sorted(index.modules):
            if not module.startswith("repro"):
                continue
            if layer_of(module) is None:
                info = index.modules[module]
                component = component_of(module)
                yield self.finding(
                    info, 1, 0,
                    f"module {module} (subpackage {component!r}) is "
                    "not assigned to any layer in the layering "
                    "contract (repro.devtools.program.rules_layering."
                    "LAYERS)")


def _strongly_connected(edges: Dict[str, Set[str]]
                        ) -> List[Set[str]]:
    """Tarjan SCCs of size > 1 (iterative, deterministic order)."""
    order: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    result: List[Set[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work: List[Tuple[str, Iterator[str]]] = [
            (root, iter(sorted(edges.get(root, ()))))]
        order[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in edges:
                    continue
                if child not in order:
                    order[child] = low[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(edges[child]))))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], order[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == order[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                if len(component) > 1:
                    result.append(component)

    for node in sorted(edges):
        if node not in order:
            strongconnect(node)
    return result
