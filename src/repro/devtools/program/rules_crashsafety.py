"""W-series: crash-safety of every file the repo publishes.

The crash model (DESIGN §11) says a reader observes either the old
complete file or the new complete file — never a torn prefix.  The
sanctioned plumbing lives in ``repro/store/atomic.py`` (write tmp
sibling → flush → fsync → ``os.replace``) and the orchestrator's
journal (append + per-line CRC + fsync).  These rules police everyone
else, consuming the effect table of :mod:`.effects`:

* **W001** — a truncating write (``open(path, "w")`` and the
  ``json.dump`` it feeds, ``np.save``, ``Path.write_text``) lands on a
  *published* path.  Tmp→rename scopes are recognized two ways: a
  path expression carrying a tmp token is safe directly, and a helper
  writing to its own ``path`` parameter is resolved at each call site
  (``_write_meta(tmp_dir, ...)`` is proven safe; ``_write_meta(final,
  ...)`` is a finding at the call site).
* **W002** — a function publishes via rename (``os.replace`` /
  ``os.rename`` / ``Path.replace``) and writes data, but neither it
  nor anything it calls ever ``fsync``\\ s: after a crash the rename
  can survive while the renamed bytes do not.
* **W003** — a journal or manifest file is written, appended to, or
  renamed outside ``repro.orchestrator.journal`` /
  ``repro.orchestrator.manifest`` — every completion record must go
  through the checksummed ``journal.append`` path.
"""

from __future__ import annotations

from typing import Dict, Iterator, Set, Tuple

from ..findings import Finding
from .effects import ATOMIC_MODULE, EffectTable, effect_table
from .index import ProjectIndex
from .model import ModuleInfo
from .registry import ProgramRule, register_program_rule

#: Modules sanctioned to mutate journal / manifest files.
JOURNAL_MODULES = frozenset({
    "repro.orchestrator.journal", "repro.orchestrator.manifest"})


def _by_module(index: ProjectIndex) -> Dict[str, ModuleInfo]:
    return dict(index.modules)


class _EffectRule(ProgramRule):
    """Shared scaffold: build the table once, dispatch per event."""

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        table = effect_table(index)
        yield from self.check_table(index, table)

    def check_table(self, index: ProjectIndex,
                    table: EffectTable) -> Iterator[Finding]:
        raise NotImplementedError


@register_program_rule
class NonAtomicWriteRule(_EffectRule):
    """W001: no truncating write to a published path."""

    rule_id = "W001"
    summary = ("a truncating write (open(path, 'w') / json.dump / "
               "np.save / Path.write_text) to a published path tears "
               "under crash; route it through store.atomic."
               "write_json_atomic or a tmp-sibling → fsync → "
               "os.replace scope")

    def check_table(self, index: ProjectIndex,
                    table: EffectTable) -> Iterator[Finding]:
        modules = _by_module(index)
        for event in table.published_writes:
            if event.module == ATOMIC_MODULE or event.mode != "w":
                continue
            info = modules.get(event.module)
            if info is None:
                continue
            yield self.finding(
                info, event.lineno, event.col,
                f"{event.via} writes {event.detail!r} in place; a "
                "crash mid-write leaves a torn file where readers "
                "expect all-or-nothing — publish through "
                "write_json_atomic or a tmp sibling + fsync + "
                "os.replace")


@register_program_rule
class RenameWithoutFsyncRule(_EffectRule):
    """W002: publish renames must be preceded by an fsync."""

    rule_id = "W002"
    summary = ("a function that publishes via os.replace/rename after "
               "writing data must fsync (directly or via a callee) "
               "before the rename; otherwise the rename can survive a "
               "crash while the renamed bytes do not")

    def check_table(self, index: ProjectIndex,
                    table: EffectTable) -> Iterator[Finding]:
        modules = _by_module(index)
        for key in sorted(table.summaries):
            summary = table.summaries[key]
            if not summary.renames or not summary.writes_any or \
                    summary.fsyncs:
                continue
            for rename in summary.renames:
                if rename.module == ATOMIC_MODULE:
                    continue
                info = modules.get(rename.module)
                if info is None:
                    continue
                yield self.finding(
                    info, rename.lineno, rename.col,
                    f"rename onto {rename.detail!r} publishes data "
                    "that was never fsynced; a crash after the "
                    "rename can surface a file whose bytes were "
                    "lost — fsync the written files (and the tmp "
                    "dir) before os.replace")


@register_program_rule
class JournalDisciplineRule(_EffectRule):
    """W003: journal/manifest files change only via their modules."""

    rule_id = "W003"
    summary = ("journal and manifest files may be mutated only inside "
               "repro.orchestrator.journal / .manifest — the "
               "checksummed journal.append path is what makes a torn "
               "record equal 'not done'; a side-channel write "
               "corrupts resume")

    def check_table(self, index: ProjectIndex,
                    table: EffectTable) -> Iterator[Finding]:
        modules = _by_module(index)
        seen: Set[Tuple[str, int, int]] = set()
        for event in table.journal_events:
            if event.module in JOURNAL_MODULES or \
                    event.module == ATOMIC_MODULE:
                continue
            info = modules.get(event.module)
            if info is None:
                continue
            key: Tuple[str, int, int] = (event.module, event.lineno,
                                         event.col)
            if key in seen:
                continue
            seen.add(key)
            yield self.finding(
                info, event.lineno, event.col,
                f"{event.via} touches a journal/manifest path "
                f"({event.detail!r}) outside the orchestrator's "
                "checksummed append path; torn-write-equals-not-done "
                "only holds when every mutation goes through "
                "journal.append / the manifest writer")
