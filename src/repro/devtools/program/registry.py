"""Whole-program rule base class and registry.

Mirrors :mod:`repro.devtools.registry` but for rules that run over the
:class:`~.index.ProjectIndex` instead of a single file's AST.  The
``--select`` / ``--ignore`` prefix semantics are shared with the
per-file linter via :func:`repro.devtools.registry.apply_selection`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Type

from ..findings import Finding
from ..registry import apply_selection
from .index import ProjectIndex
from .model import ModuleInfo

_PROGRAM_REGISTRY: Dict[str, "ProgramRule"] = {}


class ProgramRule:
    """One interprocedural rule: an id, a rationale, a ``check`` pass.

    ``check`` receives the whole project index and yields findings
    anchored in whichever module they occur; the analyzer applies
    per-line ``# repro: noqa`` suppression afterwards, exactly like the
    per-file engine.
    """

    rule_id: str = ""
    summary: str = ""

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, info: ModuleInfo, line: int, column: int,
                message: str) -> Finding:
        """Build a finding in ``info``'s file (column to 1-based)."""
        return Finding(path=info.path, line=line, column=column + 1,
                       rule_id=self.rule_id, message=message)


def register_program_rule(rule_class: Type[ProgramRule]
                          ) -> Type[ProgramRule]:
    """Class decorator adding a program rule to the registry."""
    rule = rule_class()
    if not rule.rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    if rule.rule_id in _PROGRAM_REGISTRY:
        raise ValueError(f"duplicate program rule id {rule.rule_id}")
    _PROGRAM_REGISTRY[rule.rule_id] = rule
    return rule_class


def _load_program_rules() -> None:
    # Importing the rule modules populates the registry.
    from . import (  # noqa: F401
        rules_concurrency,
        rules_crashsafety,
        rules_dtypes,
        rules_exceptions,
        rules_kernels,
        rules_layering,
        rules_rngflow,
        rules_shapes,
        rules_unitflow,
    )


def all_program_rules() -> List[ProgramRule]:
    """Every registered program rule, ordered by id."""
    _load_program_rules()
    return [_PROGRAM_REGISTRY[rule_id]
            for rule_id in sorted(_PROGRAM_REGISTRY)]


def resolve_program_selection(
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None) -> List[ProgramRule]:
    """``--select`` / ``--ignore`` over the program rules."""
    return apply_selection(all_program_rules(), select=select,
                           ignore=ignore)
