"""Interprocedural array-semantics inference over the call graph.

Every function's raw :class:`~.model.ArrayOp` facts (extracted once
per file in :mod:`.extract`) are abstractly evaluated into a small
shape/dtype lattice: an :class:`ArrayValue` tracks the per-dimension
shape expressions when they are statically concrete, the dtype (with
whether it was *declared* via an explicit ``dtype=`` / annotation or
merely defaulted), and a symbolic *origin* (``param:x`` while a value
is shape-identical to the parameter ``x`` — elementwise ops preserve
it, reductions and constructors clear it).  Return summaries are
propagated to a fixpoint along resolved call edges exactly as
:mod:`.effects` propagates effect summaries, so a call into a helper
that returns its (elementwise-scaled) argument keeps the caller's
shape knowledge alive.

A final emission pass replays every function with the converged return
table and records :class:`ArrayEvent` facts — implicit-dtype
allocations, silent promotions, bool arithmetic, in-loop allocation,
vectorizable Python loops, call-site broadcast conflicts, trace-tensor
axis-order violations, and unit-suffix return-shape breaks — which the
S / Y / P rule families turn into findings.  The finished table is
persisted in the analyzer's content-hash cache behind
``ARRAYS_SCHEMA_VERSION`` so a warm run skips the whole pass.

The K-series helpers also live here: kernel detection (functions
decorated ``@repro.determinism.kernel``), the transitive project-call
closure of each kernel, and the hot-module set (the named batch
engines plus any module defining a kernel) that scopes the Y/P rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .effects import owner_of
from .index import ProjectIndex, ResolvedCallee, file_sha
from .model import (
    INDEX_SCHEMA_VERSION,
    ArrayOp,
    CallSite,
    FunctionInfo,
    ModuleInfo,
)

#: Bump when the lattice shape or inference semantics change.
ARRAYS_SCHEMA_VERSION = 1

#: Allocation leaves that must carry an explicit ``dtype=`` (Y002).
DTYPE_REQUIRED_LEAVES = frozenset({"empty", "zeros", "ones", "full"})

#: The batch engines and stores whose hot path the Y/P rules police.
HOT_MODULES = frozenset({
    "repro.motion.batch", "repro.simulate.batch",
    "repro.store.columnar"})

#: Decorator leaf marking a function as a registered kernel.
KERNEL_DECORATOR_LEAF = "kernel"

#: Arithmetic operators / ufunc leaves (promote dtypes, Y001/Y003).
_ARITH_FUNCS = frozenset({
    "+", "-", "*", "/", "//", "%", "**", "@",
    "add", "subtract", "multiply", "divide", "true_divide",
    "floor_divide", "power", "mod"})

#: Axis-op leaves that preserve the input shape (scans, not reductions).
_SHAPE_PRESERVING_AXIS = frozenset({
    "cumsum", "cumprod", "sort", "lfilter"})

#: Axis-op leaves whose result dtype is always floating.
_FLOAT_RESULT_AXIS = frozenset({
    "mean", "std", "var", "median", "nanmean", "norm", "percentile",
    "quantile"})

_DTYPE_ORDER = {"bool": 0, "int8": 1, "int16": 2, "int32": 3,
                "uint8": 1, "uint16": 2, "uint32": 3, "uint64": 4,
                "int64": 4, "float32": 5, "float64": 6}


def _leaf(dotted: str) -> str:
    return dotted.rsplit(".", 1)[-1]


@dataclass(frozen=True)
class ArrayValue:
    """One point in the shape/dtype lattice.

    ``dims`` is the per-dimension shape expression tuple when
    statically concrete (None = unknown), ``dtype`` the canonical
    dtype token ("?" = unknown).  ``origin`` is ``param:<name>`` while
    the value is provably shape-identical to that parameter;
    ``built`` marks a shape constructed by the function itself
    (allocation, stack, reshape) rather than derived elementwise; and
    ``declared`` marks a dtype the author wrote down explicitly.
    """

    dims: Optional[Tuple[str, ...]] = None
    dtype: str = "?"
    origin: str = ""
    built: bool = False
    declared: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "dims": list(self.dims) if self.dims is not None else None,
            "dtype": self.dtype, "origin": self.origin,
            "built": self.built, "declared": self.declared,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ArrayValue":
        dims = payload["dims"]
        return cls(dims=tuple(dims) if dims is not None else None,
                   dtype=payload["dtype"], origin=payload["origin"],
                   built=payload["built"],
                   declared=payload["declared"])


@dataclass(frozen=True)
class ArrayEvent:
    """One rule-relevant array fact anchored at a source location.

    ``kind`` is one of ``implicit-dtype`` (Y002), ``promotion``
    (Y001), ``bool-arith`` (Y003), ``loop-alloc`` (P001),
    ``python-loop`` (P002), ``broadcast`` (S001), ``axis-order``
    (S002) and ``return-shape`` (S003); ``detail`` carries the
    pre-formatted specifics the finding message embeds.
    """

    kind: str
    module: str
    lineno: int
    col: int
    function: str
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "module": self.module,
                "lineno": self.lineno, "col": self.col,
                "function": self.function, "detail": self.detail}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ArrayEvent":
        return cls(kind=payload["kind"], module=payload["module"],
                   lineno=payload["lineno"], col=payload["col"],
                   function=payload["function"],
                   detail=payload["detail"])


@dataclass
class ArraySummary:
    """Converged array facts of one function."""

    key: str                                # "module.qualname"
    ret: Optional[ArrayValue] = None
    combines: Tuple[Tuple[str, str], ...] = ()
    array_params: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "ret": self.ret.to_dict() if self.ret is not None else None,
            "combines": [list(pair) for pair in self.combines],
            "array_params": list(self.array_params),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ArraySummary":
        ret = payload["ret"]
        return cls(
            key=payload["key"],
            ret=ArrayValue.from_dict(ret) if ret is not None else None,
            combines=tuple((pair[0], pair[1])
                           for pair in payload["combines"]),
            array_params=tuple(payload["array_params"]))


@dataclass
class ArrayTable:
    """The whole program's array summaries plus derived events."""

    summaries: Dict[str, ArraySummary] = field(default_factory=dict)
    events: Tuple[ArrayEvent, ...] = ()
    from_cache: bool = False

    def summary(self, module: str,
                qualname: str) -> Optional[ArraySummary]:
        return self.summaries.get(f"{module}.{qualname}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "summaries": {key: summary.to_dict() for key, summary
                          in sorted(self.summaries.items())},
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ArrayTable":
        return cls(
            summaries={key: ArraySummary.from_dict(s)
                       for key, s in payload["summaries"].items()},
            events=tuple(ArrayEvent.from_dict(e)
                         for e in payload["events"]),
            from_cache=True)


def arrays_key(index: ProjectIndex) -> str:
    """Content hash the cached array table is valid for."""
    shas = sorted((info.path, info.sha)
                  for info in index.modules.values())
    return file_sha(repr((INDEX_SCHEMA_VERSION, ARRAYS_SCHEMA_VERSION,
                          shas)))


# -- kernels and hot modules -------------------------------------------------


def is_kernel_function(function: FunctionInfo) -> bool:
    """Was the function decorated ``@repro.determinism.kernel``?"""
    return any(_leaf(name) == KERNEL_DECORATOR_LEAF
               for name in function.decorators)


def kernel_functions(index: ProjectIndex
                     ) -> List[Tuple[str, str, FunctionInfo]]:
    """Every registered kernel as ``(module, qualname, info)``."""
    found = []
    for module in sorted(index.modules):
        info = index.modules[module]
        for qualname in sorted(info.functions):
            function = info.functions[qualname]
            if is_kernel_function(function):
                found.append((module, qualname, function))
    return found


def hot_modules(index: ProjectIndex) -> Set[str]:
    """Modules whose hot path the Y/P rules police.

    The named batch engines plus any module that defines a registered
    kernel — registering a kernel opts the whole module in.
    """
    hot = set(HOT_MODULES)
    for module, _, _ in kernel_functions(index):
        hot.add(module)
    return hot


def project_callee(index: ProjectIndex, module: str, info: ModuleInfo,
                   call: CallSite) -> Optional[ResolvedCallee]:
    """Resolve a call to a project definition, nested defs included."""
    if not call.func:
        return None
    if "." not in call.func:
        parts = call.in_function.split(".") if call.in_function else []
        while parts:
            qualname = ".".join(parts + [call.func])
            if qualname in info.functions:
                return ResolvedCallee(
                    module=module, name=qualname, kind="function",
                    function=info.functions[qualname])
            parts.pop()
    return index.resolve_call(module, call)


def kernel_closure(index: ProjectIndex, module: str, qualname: str
                   ) -> List[Tuple[str, str, FunctionInfo]]:
    """The kernel plus every project function it transitively calls."""
    start = (module, qualname)
    seen: Set[Tuple[str, str]] = {start}
    queue = [start]
    closure: List[Tuple[str, str, FunctionInfo]] = []
    while queue:
        current_module, current_qualname = queue.pop(0)
        info = index.modules.get(current_module)
        if info is None or current_qualname not in info.functions:
            continue
        function = info.functions[current_qualname]
        closure.append((current_module, current_qualname, function))
        prefix = current_qualname + "."
        for call in info.calls:
            owner = owner_of(info, call.in_function)
            if owner != current_qualname and \
                    not owner.startswith(prefix):
                continue
            callee = project_callee(index, current_module, info, call)
            if callee is None or callee.kind != "function":
                continue
            key = (callee.module, callee.name)
            if key not in seen:
                seen.add(key)
                queue.append(key)
    return closure


# -- the lattice -------------------------------------------------------------


def _promote(*dtypes: str) -> str:
    known = [d for d in dtypes if d in _DTYPE_ORDER]
    if not known:
        return "?"
    return max(known, key=lambda d: _DTYPE_ORDER[d])


def _broadcast_dims(a: Optional[Tuple[str, ...]],
                    b: Optional[Tuple[str, ...]]
                    ) -> Tuple[Optional[Tuple[str, ...]], bool]:
    """(merged dims, conflict) of two operand shapes, right-aligned."""
    if a is None or b is None:
        return (a if b is None else b), False
    merged: List[str] = []
    conflict = False
    for offset in range(max(len(a), len(b))):
        dim_a = a[-1 - offset] if offset < len(a) else "1"
        dim_b = b[-1 - offset] if offset < len(b) else "1"
        if dim_a == dim_b:
            merged.append(dim_a)
        elif dim_a == "1":
            merged.append(dim_b)
        elif dim_b == "1":
            merged.append(dim_a)
        elif dim_a.isdigit() and dim_b.isdigit():
            conflict = True
            merged.append(dim_a)
        else:
            merged.append("?")
    return tuple(reversed(merged)), conflict


def broadcast_conflict(a: Tuple[str, ...], b: Tuple[str, ...]) -> bool:
    """Are two concrete shapes statically broadcast-incompatible?"""
    _, conflict = _broadcast_dims(a, b)
    return conflict


_ANNOTATION_TOKENS = ("ndarray", "ArrayLike", "memmap")


def _param_value(name: str,
                 annotation: Optional[str]) -> Optional[ArrayValue]:
    ann = annotation or ""
    if not any(token in ann for token in _ANNOTATION_TOKENS):
        return None
    dtype = "?"
    for token in ("float64", "float32", "int64", "int32", "bool"):
        if token in ann:
            dtype = token
            break
    return ArrayValue(dims=None, dtype=dtype, origin=f"param:{name}",
                      built=False, declared=dtype != "?")


def _merge_returns(values: Sequence[Optional[ArrayValue]]
                   ) -> Optional[ArrayValue]:
    known = [value for value in values if value is not None]
    if not known or len(known) != len(values):
        return None
    first = known[0]
    if all(value == first for value in known[1:]):
        return first
    dims = first.dims if all(v.dims == first.dims for v in known) \
        else None
    dtype = first.dtype if all(v.dtype == first.dtype for v in known) \
        else "?"
    origin = first.origin \
        if all(v.origin == first.origin for v in known) else ""
    return ArrayValue(dims=dims, dtype=dtype, origin=origin,
                      built=all(v.built for v in known),
                      declared=all(v.declared for v in known))


# -- abstract evaluation -----------------------------------------------------


class _Evaluator:
    """Replay one function's ops + calls in source order."""

    def __init__(self, index: ProjectIndex, module: str,
                 info: ModuleInfo, qualname: str,
                 function: FunctionInfo,
                 rets: Mapping[str, Optional[ArrayValue]],
                 events: Optional[List[ArrayEvent]],
                 combines: Mapping[str, Tuple[Tuple[str, str], ...]]
                 ) -> None:
        self.index = index
        self.module = module
        self.info = info
        self.qualname = qualname
        self.function = function
        self.rets = rets
        self.events = events
        self.combines = combines
        self.env: Dict[str, ArrayValue] = {}
        self.ret_values: List[Optional[ArrayValue]] = []

    def run(self) -> Optional[ArrayValue]:
        for param in self.function.params:
            value = _param_value(param.name, param.annotation)
            if value is not None:
                self.env[param.name] = value
        items: List[Tuple[int, int, int, object]] = [
            (op.lineno, op.col, 0, op)
            for op in self.function.array_ops]
        prefix = self.qualname + "."
        for call in self.info.calls:
            if call.in_function != self.qualname and \
                    not call.in_function.startswith(prefix):
                continue
            if owner_of(self.info, call.in_function) != self.qualname:
                continue
            items.append((call.lineno, call.col, 1, call))
        items.sort(key=lambda item: (item[0], item[1], item[2]))
        for _, _, tag, item in items:
            if tag == 0:
                assert isinstance(item, ArrayOp)
                self._op(item)
            else:
                assert isinstance(item, CallSite)
                self._call(item)
        return _merge_returns(self.ret_values) \
            if self.ret_values else None

    # -- helpers -------------------------------------------------------------

    def _emit(self, kind: str, lineno: int, col: int,
              detail: str) -> None:
        if self.events is not None:
            self.events.append(ArrayEvent(
                kind=kind, module=self.module, lineno=lineno, col=col,
                function=self.qualname, detail=detail))

    def _bind(self, bound: Optional[str],
              value: Optional[ArrayValue]) -> None:
        if bound is None:
            return
        if bound == "<ret>":
            self.ret_values.append(value)
        elif value is None:
            self.env.pop(bound, None)
        else:
            self.env[bound] = value

    def _operand_values(self, op: ArrayOp
                        ) -> Tuple[List[Tuple[str, ArrayValue]],
                                   List[Tuple[str, ArrayValue]]]:
        """(plain operand values, subscripted operand values) known."""
        plain = [(name, self.env[name]) for name in op.operands
                 if name in self.env]
        subs = [(name, self.env[name]) for name in op.subs
                if name in self.env]
        return plain, subs

    # -- op semantics --------------------------------------------------------

    def _op(self, op: ArrayOp) -> None:
        handler = {
            "kill": self._op_kill, "name": self._op_name,
            "alloc": self._op_alloc, "alloc_like": self._op_alloc_like,
            "cast": self._op_cast, "convert": self._op_convert,
            "copy": self._op_copy, "view": self._op_view,
            "concat": self._op_concat, "ufunc": self._op_ufunc,
            "axis": self._op_axis, "iter": self._op_iter,
        }.get(op.kind)
        if handler is not None:
            handler(op)

    def _op_kill(self, op: ArrayOp) -> None:
        self._bind(op.bound_to, None)

    def _op_name(self, op: ArrayOp) -> None:
        value = self.env.get(op.operands[0]) if op.operands else None
        self._bind(op.bound_to, value)

    def _op_alloc(self, op: ArrayOp) -> None:
        leaf = _leaf(op.func)
        implicit_default = leaf in DTYPE_REQUIRED_LEAVES
        needs_dtype = implicit_default or \
            (leaf == "array" and op.detail == "literal")
        if needs_dtype and op.dtype is None:
            target = f" bound to {op.bound_to!r}" if op.bound_to and \
                op.bound_to != "<ret>" else ""
            self._emit("implicit-dtype", op.lineno, op.col,
                       f"{op.func}(...){target}")
        if op.loop_depth > 0:
            self._emit("loop-alloc", op.lineno, op.col,
                       f"{op.func}(...) at loop depth {op.loop_depth}")
        dtype = op.dtype or ("float64" if implicit_default else "?")
        self._bind(op.bound_to, ArrayValue(
            dims=op.dims, dtype=dtype, origin="", built=True,
            declared=op.dtype is not None))

    def _op_alloc_like(self, op: ArrayOp) -> None:
        if op.loop_depth > 0:
            self._emit("loop-alloc", op.lineno, op.col,
                       f"{op.func}(...) at loop depth {op.loop_depth}")
        plain, subs = self._operand_values(op)
        base = plain[0][1] if plain else (subs[0][1] if subs else None)
        dims = plain[0][1].dims if plain else None
        self._bind(op.bound_to, ArrayValue(
            dims=dims,
            dtype=op.dtype or (base.dtype if base else "?"),
            origin=plain[0][1].origin if plain else "", built=False,
            declared=op.dtype is not None or
            (base.declared if base else False)))

    def _op_cast(self, op: ArrayOp) -> None:
        plain, subs = self._operand_values(op)
        base = plain[0][1] if plain else (subs[0][1] if subs else None)
        self._bind(op.bound_to, ArrayValue(
            dims=plain[0][1].dims if plain else None,
            dtype=op.dtype or "?",
            origin=plain[0][1].origin if plain else "",
            built=base.built if base else False, declared=True))

    def _op_convert(self, op: ArrayOp) -> None:
        plain, subs = self._operand_values(op)
        base = plain[0][1] if plain else (subs[0][1] if subs else None)
        if base is None:
            self._bind(op.bound_to, ArrayValue(
                dims=None, dtype=op.dtype or "?", origin="",
                built=False, declared=op.dtype is not None))
            return
        self._bind(op.bound_to, ArrayValue(
            dims=plain[0][1].dims if plain else None,
            dtype=op.dtype or base.dtype,
            origin=plain[0][1].origin if plain else "",
            built=base.built,
            declared=op.dtype is not None or base.declared))

    def _op_copy(self, op: ArrayOp) -> None:
        plain, subs = self._operand_values(op)
        if plain:
            self._bind(op.bound_to, plain[0][1])
        elif subs:
            value = subs[0][1]
            self._bind(op.bound_to, ArrayValue(
                dims=None, dtype=value.dtype, origin="", built=False,
                declared=value.declared))
        else:
            self._bind(op.bound_to, None)

    def _op_view(self, op: ArrayOp) -> None:
        plain, subs = self._operand_values(op)
        base = plain[0][1] if plain else (subs[0][1] if subs else None)
        if base is None:
            self._bind(op.bound_to, None)
            return
        self._bind(op.bound_to, ArrayValue(
            dims=None, dtype=base.dtype, origin="",
            built=op.func != "[]", declared=base.declared))

    def _op_concat(self, op: ArrayOp) -> None:
        if op.loop_depth > 0:
            self._emit("loop-alloc", op.lineno, op.col,
                       f"{op.func}(...) at loop depth {op.loop_depth}")
        plain, subs = self._operand_values(op)
        dtype = _promote(*[value.dtype for _, value in plain + subs])
        self._bind(op.bound_to, ArrayValue(
            dims=None, dtype=dtype, origin="", built=True,
            declared=False))

    def _op_ufunc(self, op: ArrayOp) -> None:
        plain, subs = self._operand_values(op)
        arith = _leaf(op.func) in _ARITH_FUNCS
        const = op.detail.split(",")[0] if op.detail else ""
        known = plain + subs
        if arith and self.events is not None:
            self._check_bool_arith(op, known)
            self._check_promotion(op, known, const)
        dims: Optional[Tuple[str, ...]] = None
        for _, value in plain:
            dims, _ = _broadcast_dims(dims, value.dims)
        dtypes = [value.dtype for _, value in known]
        if const == "float":
            int_side = any(d in ("bool", "int32", "int64")
                           for d in dtypes)
            if int_side:
                dtypes.append("float64")
        dtype = _promote(*dtypes)
        if _leaf(op.func) in ("<", "<=", ">", ">=", "==", "!=",
                              "less", "less_equal", "greater",
                              "greater_equal", "equal", "not_equal",
                              "logical_and", "logical_or",
                              "logical_not"):
            dtype = "bool"
        origin = plain[0][1].origin \
            if len(plain) == 1 and not subs else ""
        self._bind(op.bound_to, ArrayValue(
            dims=dims, dtype=dtype, origin=origin, built=False,
            declared=False))

    def _check_bool_arith(self, op: ArrayOp,
                          known: List[Tuple[str, ArrayValue]]) -> None:
        culprits = [name for name, value in known
                    if value.dtype == "bool"]
        if culprits:
            self._emit("bool-arith", op.lineno, op.col,
                       f"{op.func!r} on bool array "
                       f"{sorted(set(culprits))[0]!r}")

    def _check_promotion(self, op: ArrayOp,
                         known: List[Tuple[str, ArrayValue]],
                         const: str) -> None:
        # bool arithmetic is Y003's finding, not a Y001 promotion.
        declared = [(name, value) for name, value in known
                    if value.declared and value.dtype in
                    ("float32", "int32", "int64")]
        if not declared:
            return
        for name, value in declared:
            others = [v.dtype for n, v in known if n != name]
            promoted = _promote(value.dtype, *others)
            if const == "float" and value.dtype != "float32":
                promoted = _promote(promoted, "float64")
            if promoted != value.dtype and promoted != "?":
                self._emit(
                    "promotion", op.lineno, op.col,
                    f"{name!r} ({value.dtype}) {op.func} operand "
                    f"promotes to {promoted}")
                return

    def _op_axis(self, op: ArrayOp) -> None:
        plain, subs = self._operand_values(op)
        base = plain[0][1] if plain else (subs[0][1] if subs else None)
        if base is None:
            self._bind(op.bound_to, None)
            return
        leaf = _leaf(op.func)
        dtype = base.dtype
        if leaf in _FLOAT_RESULT_AXIS:
            dtype = base.dtype if base.dtype in ("float32", "float64") \
                else "float64"
        elif leaf in ("argmax", "argmin", "count_nonzero"):
            dtype = "int64"
        elif leaf in ("all", "any"):
            dtype = "bool"
        elif leaf in ("sum", "prod") and base.dtype == "bool":
            dtype = "int64"
        if leaf in _SHAPE_PRESERVING_AXIS:
            self._bind(op.bound_to, ArrayValue(
                dims=plain[0][1].dims if plain else None, dtype=dtype,
                origin=plain[0][1].origin if plain else "",
                built=False, declared=base.declared))
            return
        if op.axis is None:
            # A full reduction yields a scalar, not an array.
            self._bind(op.bound_to, None)
            return
        dims: Optional[Tuple[str, ...]] = None
        base_dims = plain[0][1].dims if plain else None
        if base_dims is not None and leaf != "diff":
            try:
                axis = int(op.axis)
                kept = list(base_dims)
                del kept[axis]
                dims = tuple(kept)
            except (ValueError, IndexError):
                dims = None
        self._bind(op.bound_to, ArrayValue(
            dims=dims, dtype=dtype, origin="", built=False,
            declared=False))

    def _op_iter(self, op: ArrayOp) -> None:
        if self.events is None:
            return
        if op.detail == "elementwise":
            arrays = sorted(name for name in op.operands
                            if name in self.env)
            if arrays:
                self._emit(
                    "python-loop", op.lineno, op.col,
                    f"element-wise range loop over "
                    f"{', '.join(repr(a) for a in arrays)}")
        elif op.detail == "name" and op.operands and \
                op.operands[0] in self.env:
            self._emit("python-loop", op.lineno, op.col,
                       f"Python iteration over array "
                       f"{op.operands[0]!r}")

    # -- call semantics ------------------------------------------------------

    def _call(self, call: CallSite) -> None:
        callee = project_callee(self.index, self.module, self.info,
                                call)
        if callee is None:
            return
        params, _ = self.index.constructor_params(callee)
        if self.events is not None:
            self._check_call_shapes(call, callee, params)
        if call.bound_to is None:
            return
        if callee.kind != "function":
            self.env.pop(call.bound_to, None)
            return
        ret = self.rets.get(callee.qualified)
        if ret is None:
            self.env.pop(call.bound_to, None)
            return
        self.env[call.bound_to] = self._substitute(call, params, ret)

    def _substitute(self, call: CallSite, params: Tuple[str, ...],
                    ret: ArrayValue) -> ArrayValue:
        if not ret.origin.startswith("param:"):
            return ret
        desc = self._argument_for(call, params,
                                  ret.origin[len("param:"):])
        if desc is not None and desc.kind == "name" and \
                desc.text in self.env:
            value = self.env[desc.text]
            return ArrayValue(
                dims=value.dims,
                dtype=ret.dtype if ret.dtype != "?" else value.dtype,
                origin=value.origin, built=value.built,
                declared=value.declared)
        return ArrayValue(dims=None, dtype=ret.dtype, origin="",
                          built=False, declared=False)

    @staticmethod
    def _argument_for(call: CallSite, params: Tuple[str, ...],
                      name: str) -> Optional[Any]:
        if name in params:
            position = params.index(name)
            if position < len(call.args):
                return call.args[position]
        for keyword, value in call.keywords:
            if keyword == name:
                return value
        return None

    def _check_call_shapes(self, call: CallSite,
                           callee: ResolvedCallee,
                           params: Tuple[str, ...]) -> None:
        values: Dict[str, ArrayValue] = {}
        for position, param in enumerate(params):
            desc = self._argument_for(call, params, param)
            if desc is not None and desc.kind == "name" and \
                    desc.text in self.env:
                values[param] = self.env[desc.text]
        # S002: trace tensors crossing into motion/simulate must be
        # axis-major (T, 3, n) — a trailing 3 is sample-major.
        if callee.module.startswith(("repro.motion",
                                     "repro.simulate")):
            for param in ("positions", "eulers"):
                value = values.get(param)
                if value is not None and value.dims is not None and \
                        len(value.dims) == 3 and \
                        value.dims[2] == "3" and value.dims[1] != "3":
                    self._emit(
                        "axis-order", call.lineno, call.col,
                        f"argument {param!r} of "
                        f"{callee.qualified} has sample-major shape "
                        f"({', '.join(value.dims)})")
        # S001: arguments the callee combines elementwise must be
        # statically broadcast-compatible.
        for left, right in self.combines.get(callee.qualified, ()):
            value_l = values.get(left)
            value_r = values.get(right)
            if value_l is None or value_r is None or \
                    value_l.dims is None or value_r.dims is None:
                continue
            if broadcast_conflict(value_l.dims, value_r.dims):
                self._emit(
                    "broadcast", call.lineno, call.col,
                    f"{callee.qualified} combines {left!r} "
                    f"({', '.join(value_l.dims)}) with {right!r} "
                    f"({', '.join(value_r.dims)}) elementwise")


# -- table construction ------------------------------------------------------


def _function_inventory(index: ProjectIndex
                        ) -> List[Tuple[str, ModuleInfo, str,
                                        FunctionInfo]]:
    inventory = []
    for module in sorted(index.modules):
        info = index.modules[module]
        for qualname in sorted(info.functions):
            inventory.append((module, info, qualname,
                              info.functions[qualname]))
    return inventory


def _static_combines(inventory: Sequence[Tuple[str, ModuleInfo, str,
                                               FunctionInfo]]
                     ) -> Dict[str, Tuple[Tuple[str, str], ...]]:
    """Param pairs each function combines elementwise (for S001)."""
    combines: Dict[str, Tuple[Tuple[str, str], ...]] = {}
    for module, _, qualname, function in inventory:
        params = [p.name for p in function.params]
        pairs: Set[Tuple[str, str]] = set()
        for op in function.array_ops:
            if op.kind != "ufunc" or \
                    _leaf(op.func) not in _ARITH_FUNCS:
                continue
            hit = sorted({name for name in op.operands
                          if name in params})
            if len(hit) >= 2:
                pairs.add((hit[0], hit[1]))
        if pairs:
            combines[f"{module}.{qualname}"] = tuple(sorted(pairs))
    return combines


def _array_params(function: FunctionInfo) -> Tuple[str, ...]:
    return tuple(p.name for p in function.params
                 if _param_value(p.name, p.annotation) is not None)


def _check_return_shape(module: str, qualname: str,
                        function: FunctionInfo,
                        evaluator: _Evaluator,
                        events: List[ArrayEvent]) -> None:
    """S003: unit-suffixed functions must return their input's shape."""
    from ..visitors import unit_suffix
    if unit_suffix(qualname.rsplit(".", 1)[-1]) is None:
        return
    if not _array_params(function):
        return
    values = evaluator.ret_values
    if not values or any(value is None for value in values):
        return
    built = [value for value in values
             if value is not None and value.built and not value.origin]
    if built:
        events.append(ArrayEvent(
            kind="return-shape", module=module,
            lineno=function.lineno, col=0, function=qualname,
            detail=f"{qualname} constructs a new shape instead of "
                   "preserving its array argument's"))


def _build_table(index: ProjectIndex) -> ArrayTable:
    inventory = _function_inventory(index)
    combines = _static_combines(inventory)
    rets: Dict[str, Optional[ArrayValue]] = {
        f"{module}.{qualname}": None
        for module, _, qualname, _ in inventory}

    # Pass 1: fixpoint over return summaries along call edges.
    for _ in range(10):
        changed = False
        for module, info, qualname, function in inventory:
            key = f"{module}.{qualname}"
            evaluator = _Evaluator(index, module, info, qualname,
                                   function, rets, None, combines)
            ret = evaluator.run()
            if ret != rets[key]:
                rets[key] = ret
                changed = True
        if not changed:
            break

    # Pass 2: replay with the converged table, emitting events.
    events: List[ArrayEvent] = []
    table = ArrayTable()
    for module, info, qualname, function in inventory:
        key = f"{module}.{qualname}"
        evaluator = _Evaluator(index, module, info, qualname, function,
                               rets, events, combines)
        evaluator.run()
        _check_return_shape(module, qualname, function, evaluator,
                            events)
        table.summaries[key] = ArraySummary(
            key=key, ret=rets[key],
            combines=combines.get(key, ()),
            array_params=_array_params(function))
    table.events = tuple(sorted(
        events, key=lambda e: (e.module, e.lineno, e.col, e.kind,
                               e.detail)))
    return table


def array_table(index: ProjectIndex) -> ArrayTable:
    """The (memoized) array-semantics table for an index."""
    cached = getattr(index, "_array_table", None)
    if isinstance(cached, ArrayTable):
        return cached
    table = _build_table(index)
    setattr(index, "_array_table", table)
    return table


def attach_cached_array_table(index: ProjectIndex,
                              payload: Mapping[str, Any]) -> bool:
    """Adopt a cached array table if its key matches this index."""
    if not isinstance(payload, Mapping):
        return False
    if payload.get("key") != arrays_key(index):
        return False
    try:
        table = ArrayTable.from_dict(payload["table"])
    except (KeyError, TypeError, ValueError):
        return False
    setattr(index, "_array_table", table)
    return True


def serialized_array_table(index: ProjectIndex
                           ) -> Optional[Dict[str, Any]]:
    """The cache payload for this index's table (None if not built)."""
    table = getattr(index, "_array_table", None)
    if not isinstance(table, ArrayTable):
        return None
    return {"key": arrays_key(index), "table": table.to_dict()}
