"""The project index's data model.

Everything here is a plain, JSON-round-trippable value object: the
extractor (:mod:`.extract`) produces one :class:`ModuleInfo` per file,
the index (:mod:`.index`) assembles them and resolves names across
modules, and the on-disk cache stores the serialized form keyed by
content hash.  Keeping the model free of live AST nodes is what makes
the cache possible — a warm run never re-parses an unchanged file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Mapping, Optional, Tuple

#: Bump when the extracted shape changes; stale caches are discarded.
INDEX_SCHEMA_VERSION = 4

#: Callee leaves that hand back a fork-unsafe resource when bound.
#: Shared by the effect inference (fork safety) and the exception
#: extractor (cleanup discipline); lives here because both the
#: extractor and the inference layers need it without a cycle.
RESOURCE_PRODUCERS: Mapping[str, str] = {
    "open": "open file handle",
    "memmap": "memmap",
    "open_memmap": "memmap",
    "SharedMemory": "SharedMemory segment",
    "NamedTemporaryFile": "open file handle",
    "TemporaryFile": "open file handle",
    "Pipe": "pipe",
}


@dataclass(frozen=True)
class ImportedName:
    """One name bound by an import statement.

    ``local`` is the binding in the importing module, ``target`` the
    fully qualified symbol it refers to, and ``module`` the imported
    module itself (``target`` and ``module`` coincide for plain
    ``import x`` / ``from .. import pkg`` forms).
    """

    local: str
    target: str
    module: str
    lineno: int
    lazy: bool = False
    type_checking: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "local": self.local, "target": self.target,
            "module": self.module, "lineno": self.lineno,
            "lazy": self.lazy, "type_checking": self.type_checking,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ImportedName":
        return cls(local=payload["local"], target=payload["target"],
                   module=payload["module"], lineno=payload["lineno"],
                   lazy=payload["lazy"],
                   type_checking=payload["type_checking"])


@dataclass(frozen=True)
class ValueDesc:
    """A static description of one argument / assignment expression.

    ``kind`` is one of ``name`` / ``attr`` / ``call`` / ``lambda`` /
    ``const`` / ``other``; ``text`` is the dotted name (for names and
    attributes) or the dotted callee (for calls).  ``suffix`` is the
    unit suffix of the leaf name, if any.  ``names`` collects every
    plain name loaded anywhere inside the expression (minus
    comprehension and lambda-bound targets), ``calls`` every dotted
    callee, and ``consts`` every string literal (how the crash-safety
    rules recognize tmp siblings and journal paths) — the approximation the RNG-taint rules match against.
    """

    kind: str
    text: str = ""
    suffix: Optional[str] = None
    names: Tuple[str, ...] = ()
    calls: Tuple[str, ...] = ()
    consts: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind, "text": self.text, "suffix": self.suffix,
            "names": list(self.names), "calls": list(self.calls),
            "consts": list(self.consts),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ValueDesc":
        return cls(kind=payload["kind"], text=payload["text"],
                   suffix=payload["suffix"],
                   names=tuple(payload["names"]),
                   calls=tuple(payload["calls"]),
                   consts=tuple(payload["consts"]))


@dataclass(frozen=True)
class CallSite:
    """One call expression, with per-argument descriptions.

    ``bound_to`` is the simple assignment target when the call's result
    is bound directly (``power_dbm = mw_to_dbm(x)``), which is what the
    return-unit rule checks.  ``in_function`` is the qualified name of
    the enclosing function ("" at module level).
    """

    func: str
    lineno: int
    col: int
    args: Tuple[ValueDesc, ...] = ()
    keywords: Tuple[Tuple[str, ValueDesc], ...] = ()
    bound_to: Optional[str] = None
    in_function: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "func": self.func, "lineno": self.lineno, "col": self.col,
            "args": [a.to_dict() for a in self.args],
            "keywords": [[name, value.to_dict()]
                         for name, value in self.keywords],
            "bound_to": self.bound_to, "in_function": self.in_function,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CallSite":
        return cls(
            func=payload["func"], lineno=payload["lineno"],
            col=payload["col"],
            args=tuple(ValueDesc.from_dict(a) for a in payload["args"]),
            keywords=tuple((name, ValueDesc.from_dict(value))
                           for name, value in payload["keywords"]),
            bound_to=payload["bound_to"],
            in_function=payload["in_function"])


@dataclass(frozen=True)
class IndexWrite:
    """One subscript store (``target[index] = ...``) inside a function.

    ``target`` is the dotted base being written, ``index_kind`` is
    ``"slice"`` or ``"expr"``, ``index_text`` the unparsed index, and
    ``names`` every plain name loaded inside the index expression —
    what the chunk-overlap rule reasons about symbolically.
    """

    target: str
    index_kind: str
    index_text: str
    names: Tuple[str, ...] = ()
    lineno: int = 0
    col: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "target": self.target, "index_kind": self.index_kind,
            "index_text": self.index_text, "names": list(self.names),
            "lineno": self.lineno, "col": self.col,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "IndexWrite":
        return cls(target=payload["target"],
                   index_kind=payload["index_kind"],
                   index_text=payload["index_text"],
                   names=tuple(payload["names"]),
                   lineno=payload["lineno"], col=payload["col"])


@dataclass(frozen=True)
class ArrayOp:
    """One array-semantics fact inside a function body.

    ``kind`` classifies the operation: ``alloc`` (a constructor with a
    shape expression), ``alloc_like`` (``*_like`` constructors that
    inherit shape and dtype), ``cast`` (``.astype``), ``convert``
    (``asarray`` family — a view-or-copy that preserves both), ``copy``
    / ``view`` (explicit copies and reshapes), ``concat`` (shape-growing
    ``np.concatenate`` family), ``ufunc`` (elementwise arithmetic,
    comparisons, np ufunc calls — ``func`` is the operator symbol or
    callee), ``axis`` (axis-consuming reductions and scans), ``iter``
    (a Python ``for`` loop — ``detail`` marks ``elementwise`` /
    ``scan`` / ``name`` / ``plain``), ``object`` (dict/set construction,
    what the kernel subset forbids), ``name`` (plain aliasing) and
    ``kill`` (the bound name was reassigned to something opaque).

    ``operands`` holds plain-name operands (shape and dtype flow),
    ``subs`` subscripted base names (only dtype flows — a sliced view
    has a different shape).  ``loop_depth`` counts enclosing ``for`` /
    ``while`` statements — comprehensions are deliberately *not* loops.
    ``bound_to`` is the assignment target (``<ret>`` for a returned
    expression).
    """

    kind: str
    func: str
    lineno: int
    col: int
    loop_depth: int = 0
    bound_to: Optional[str] = None
    operands: Tuple[str, ...] = ()
    subs: Tuple[str, ...] = ()
    dims: Optional[Tuple[str, ...]] = None
    dtype: Optional[str] = None
    axis: Optional[str] = None
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind, "func": self.func,
            "lineno": self.lineno, "col": self.col,
            "loop_depth": self.loop_depth, "bound_to": self.bound_to,
            "operands": list(self.operands), "subs": list(self.subs),
            "dims": list(self.dims) if self.dims is not None else None,
            "dtype": self.dtype, "axis": self.axis,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ArrayOp":
        dims = payload["dims"]
        return cls(
            kind=payload["kind"], func=payload["func"],
            lineno=payload["lineno"], col=payload["col"],
            loop_depth=payload["loop_depth"],
            bound_to=payload["bound_to"],
            operands=tuple(payload["operands"]),
            subs=tuple(payload["subs"]),
            dims=tuple(dims) if dims is not None else None,
            dtype=payload["dtype"], axis=payload["axis"],
            detail=payload["detail"])


@dataclass(frozen=True)
class HandlerSpec:
    """One ``except`` clause: what it catches and what it does.

    ``types`` are the caught type tokens (empty for a bare ``except``,
    which catches ``BaseException``).  ``action`` classifies the body:
    ``"reraise"`` (a bare ``raise``), ``"translate"`` (``raise X(...)
    from exc`` where ``exc`` is the bound name), ``"raise"`` (a new
    exception raised without chaining), or ``"swallow"`` (no raise at
    all — the handler absorbs the exception).  ``target`` is the raised
    type token for translate/raise.  ``uses_exc`` records whether the
    bound exception variable is loaded anywhere in the body — a handler
    that logs, records, or inspects the exception is handling it, not
    dropping it on the floor.
    """

    types: Tuple[str, ...] = ()
    action: str = "swallow"
    target: str = ""
    uses_exc: bool = False
    lineno: int = 0
    col: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "types": list(self.types), "action": self.action,
            "target": self.target, "uses_exc": self.uses_exc,
            "lineno": self.lineno, "col": self.col,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "HandlerSpec":
        return cls(types=tuple(payload["types"]),
                   action=payload["action"], target=payload["target"],
                   uses_exc=payload["uses_exc"],
                   lineno=payload["lineno"], col=payload["col"])


@dataclass(frozen=True)
class TryFact:
    """One ``try`` statement inside a function body.

    ``guards`` are the indices (into the same function's ``try_facts``)
    of the *enclosing* try statements whose handlers would intercept an
    exception escaping this one, innermost first.  ``in_loop`` marks a
    try nested under a ``for``/``while`` — the retry-discipline shape.
    """

    lineno: int
    col: int
    handlers: Tuple[HandlerSpec, ...] = ()
    has_finally: bool = False
    in_loop: bool = False
    guards: Tuple[int, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "lineno": self.lineno, "col": self.col,
            "handlers": [h.to_dict() for h in self.handlers],
            "has_finally": self.has_finally, "in_loop": self.in_loop,
            "guards": list(self.guards),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TryFact":
        return cls(lineno=payload["lineno"], col=payload["col"],
                   handlers=tuple(HandlerSpec.from_dict(h)
                                  for h in payload["handlers"]),
                   has_finally=payload["has_finally"],
                   in_loop=payload["in_loop"],
                   guards=tuple(payload["guards"]))


@dataclass(frozen=True)
class RaiseFact:
    """One ``raise`` statement (outside handler bodies).

    ``type_token`` is the dotted name of the raised type ("" for a bare
    re-raise), ``from_name`` the chained cause variable of ``raise X
    from e``, and ``guards`` the enclosing try indices whose handlers
    would intercept it, innermost first.
    """

    type_token: str
    lineno: int
    col: int
    guards: Tuple[int, ...] = ()
    from_name: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type_token": self.type_token, "lineno": self.lineno,
            "col": self.col, "guards": list(self.guards),
            "from_name": self.from_name,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RaiseFact":
        return cls(type_token=payload["type_token"],
                   lineno=payload["lineno"], col=payload["col"],
                   guards=tuple(payload["guards"]),
                   from_name=payload["from_name"])


@dataclass(frozen=True)
class CallGuard:
    """One call site with its exception-handling context.

    The per-call-site ``guards`` (enclosing try indices, innermost
    first) are what lets the escape-set fixpoint subtract caught types
    exactly where a callee is invoked.  ``in_signal_guard`` marks calls
    made inside a ``with SignalGuard()`` region, where a direct
    ``sys.exit`` would bypass the deferred-signal protocol.
    """

    func: str
    lineno: int
    col: int
    guards: Tuple[int, ...] = ()
    in_signal_guard: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "func": self.func, "lineno": self.lineno, "col": self.col,
            "guards": list(self.guards),
            "in_signal_guard": self.in_signal_guard,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CallGuard":
        return cls(func=payload["func"], lineno=payload["lineno"],
                   col=payload["col"], guards=tuple(payload["guards"]),
                   in_signal_guard=payload["in_signal_guard"])


@dataclass(frozen=True)
class ResourceFact:
    """One resource acquisition bound to a local name.

    ``via_with`` marks ``with open(...) as fh`` bindings — already
    cleanup-scoped.  A plain assignment from a resource producer with a
    raise path after it and no ``finally`` anywhere is the R002 leak
    shape.
    """

    name: str
    kind: str
    lineno: int
    col: int
    via_with: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "kind": self.kind,
            "lineno": self.lineno, "col": self.col,
            "via_with": self.via_with,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ResourceFact":
        return cls(name=payload["name"], kind=payload["kind"],
                   lineno=payload["lineno"], col=payload["col"],
                   via_with=payload["via_with"])


@dataclass(frozen=True)
class ParamInfo:
    """One declared parameter (or dataclass field)."""

    name: str
    annotation: Optional[str] = None
    has_default: bool = False
    default_is_none: bool = False

    @property
    def suffix(self) -> Optional[str]:
        from ..visitors import unit_suffix
        return unit_suffix(self.name)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "annotation": self.annotation,
            "has_default": self.has_default,
            "default_is_none": self.default_is_none,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ParamInfo":
        return cls(name=payload["name"], annotation=payload["annotation"],
                   has_default=payload["has_default"],
                   default_is_none=payload["default_is_none"])


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method, with the facts the rules consume.

    ``params`` excludes ``self``/``cls`` for methods.  ``rng_sources``
    lists local names known to hold an RNG (parameters named ``rng`` /
    ``*_rng`` or annotated ``Generator``, and names assigned from
    ``resolve_rng`` / ``spawn`` / ``derive`` / ``default_rng`` calls).
    ``global_writes`` names module-level bindings the body rebinds or
    mutates in place, ``reads`` the free names loaded from enclosing
    scopes, and ``index_writes`` every subscript store — the raw facts
    the effect-inference pass summarizes.  ``array_ops`` are the raw
    array-semantics facts (:class:`ArrayOp`, nested defs excluded) the
    array-inference pass consumes, ``decorators`` the dotted decorator
    names (how ``@repro.determinism.kernel`` registration is seen
    statically), and ``has_varargs`` / ``has_kwargs`` record ``*args``
    / ``**kwargs`` in the signature (forbidden in the kernel subset).

    ``try_facts`` / ``raise_facts`` / ``call_guards`` /
    ``resource_facts`` are the raw exception-flow facts (nested defs
    excluded) the escape-set inference consumes; ``returned_names``
    lists plain names appearing in return expressions (ownership
    transfer exempts a resource from the leak rule).
    """

    qualname: str
    lineno: int
    params: Tuple[ParamInfo, ...] = ()
    is_method: bool = False
    calls_resolve_rng: bool = False
    rng_sources: Tuple[str, ...] = ()
    global_writes: Tuple[str, ...] = ()
    reads: Tuple[str, ...] = ()
    index_writes: Tuple[IndexWrite, ...] = ()
    array_ops: Tuple[ArrayOp, ...] = ()
    decorators: Tuple[str, ...] = ()
    has_varargs: bool = False
    has_kwargs: bool = False
    try_facts: Tuple[TryFact, ...] = ()
    raise_facts: Tuple[RaiseFact, ...] = ()
    call_guards: Tuple[CallGuard, ...] = ()
    resource_facts: Tuple[ResourceFact, ...] = ()
    returned_names: Tuple[str, ...] = ()

    def param(self, name: str) -> Optional[ParamInfo]:
        for info in self.params:
            if info.name == name:
                return info
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname, "lineno": self.lineno,
            "params": [p.to_dict() for p in self.params],
            "is_method": self.is_method,
            "calls_resolve_rng": self.calls_resolve_rng,
            "rng_sources": list(self.rng_sources),
            "global_writes": list(self.global_writes),
            "reads": list(self.reads),
            "index_writes": [w.to_dict() for w in self.index_writes],
            "array_ops": [op.to_dict() for op in self.array_ops],
            "decorators": list(self.decorators),
            "has_varargs": self.has_varargs,
            "has_kwargs": self.has_kwargs,
            "try_facts": [t.to_dict() for t in self.try_facts],
            "raise_facts": [r.to_dict() for r in self.raise_facts],
            "call_guards": [c.to_dict() for c in self.call_guards],
            "resource_facts": [r.to_dict()
                               for r in self.resource_facts],
            "returned_names": list(self.returned_names),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FunctionInfo":
        return cls(
            qualname=payload["qualname"], lineno=payload["lineno"],
            params=tuple(ParamInfo.from_dict(p)
                         for p in payload["params"]),
            is_method=payload["is_method"],
            calls_resolve_rng=payload["calls_resolve_rng"],
            rng_sources=tuple(payload["rng_sources"]),
            global_writes=tuple(payload["global_writes"]),
            reads=tuple(payload["reads"]),
            index_writes=tuple(IndexWrite.from_dict(w)
                               for w in payload["index_writes"]),
            array_ops=tuple(ArrayOp.from_dict(op)
                            for op in payload["array_ops"]),
            decorators=tuple(payload["decorators"]),
            has_varargs=payload["has_varargs"],
            has_kwargs=payload["has_kwargs"],
            try_facts=tuple(TryFact.from_dict(t)
                            for t in payload["try_facts"]),
            raise_facts=tuple(RaiseFact.from_dict(r)
                              for r in payload["raise_facts"]),
            call_guards=tuple(CallGuard.from_dict(c)
                              for c in payload["call_guards"]),
            resource_facts=tuple(ResourceFact.from_dict(r)
                                 for r in payload["resource_facts"]),
            returned_names=tuple(payload["returned_names"]))


@dataclass(frozen=True)
class ClassInfo:
    """One class: constructor shape plus method roster.

    ``fields`` holds the synthesized constructor parameters — dataclass
    fields in declaration order when ``is_dataclass``, else the
    ``__init__`` parameters.  ``bases`` are the dotted base-class
    names as written — what the exception type lattice resolves to
    decide subtype relations between taxonomy errors.
    """

    name: str
    lineno: int
    is_dataclass: bool = False
    fields: Tuple[ParamInfo, ...] = ()
    methods: Tuple[str, ...] = ()
    bases: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "lineno": self.lineno,
            "is_dataclass": self.is_dataclass,
            "fields": [f.to_dict() for f in self.fields],
            "methods": list(self.methods),
            "bases": list(self.bases),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ClassInfo":
        return cls(
            name=payload["name"], lineno=payload["lineno"],
            is_dataclass=payload["is_dataclass"],
            fields=tuple(ParamInfo.from_dict(f)
                         for f in payload["fields"]),
            methods=tuple(payload["methods"]),
            bases=tuple(payload["bases"]))


@dataclass(frozen=True)
class ModuleInfo:
    """Everything the analyzer knows about one source file.

    ``mutable_globals`` names module-level bindings initialized to a
    mutable container (list/dict/set literal or constructor) — the
    shared state the race rules treat as hazardous to capture across a
    worker boundary.
    """

    module: str
    path: str
    sha: str
    imports: Tuple[ImportedName, ...] = ()
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    calls: Tuple[CallSite, ...] = ()
    bindings: Dict[str, str] = field(default_factory=dict)
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    mutable_globals: Tuple[str, ...] = ()

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        rules = self.suppressions.get(line)
        if rules is None:
            return False
        return not rules or rule_id.upper() in rules

    def to_dict(self) -> Dict[str, Any]:
        return {
            "module": self.module, "path": self.path, "sha": self.sha,
            "imports": [i.to_dict() for i in self.imports],
            "functions": {q: f.to_dict()
                          for q, f in sorted(self.functions.items())},
            "classes": {n: c.to_dict()
                        for n, c in sorted(self.classes.items())},
            "calls": [c.to_dict() for c in self.calls],
            "bindings": dict(sorted(self.bindings.items())),
            "suppressions": {str(line): sorted(rules)
                             for line, rules
                             in sorted(self.suppressions.items())},
            "mutable_globals": list(self.mutable_globals),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ModuleInfo":
        return cls(
            module=payload["module"], path=payload["path"],
            sha=payload["sha"],
            imports=tuple(ImportedName.from_dict(i)
                          for i in payload["imports"]),
            functions={q: FunctionInfo.from_dict(f)
                       for q, f in payload["functions"].items()},
            classes={n: ClassInfo.from_dict(c)
                     for n, c in payload["classes"].items()},
            calls=tuple(CallSite.from_dict(c) for c in payload["calls"]),
            bindings=dict(payload["bindings"]),
            suppressions={int(line): frozenset(rules)
                          for line, rules
                          in payload["suppressions"].items()},
            mutable_globals=tuple(payload["mutable_globals"]))
