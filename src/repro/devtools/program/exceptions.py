"""Interprocedural exception-flow inference: escape sets per function.

Every function in the index gets a converged **escape set** — the
exception types that can propagate out of it uncaught.  Direct facts
come from the per-function raise/handler walk in :mod:`.extract`:

* a ``raise X(...)`` contributes ``X`` filtered through the enclosing
  ``try`` handlers at that exact position (a raise inside a handler or
  ``finally`` body is guarded only by *outer* trys, matching Python
  semantics);
* a ``sys.exit(...)`` call contributes ``SystemExit`` the same way;
* a resolved call site inherits the callee's escape set, subtracted
  per call site by the handlers guarding it — ``try: load() except
  ManifestError: ...`` removes exactly what that clause catches, with
  ``reraise`` handlers passing types through and ``translate`` /
  ``raise`` handlers absorbing them (their replacement raise is its
  own direct fact).

Subtype subtraction runs over a leaf-name lattice merging the builtin
exception hierarchy with every class the index defines (``StoreError
→ RuntimeError → Exception``), so ``except SweepError`` provably
catches ``SweepConfigError``.  The inference is deliberately an
*under*-approximation: unresolvable calls (externals, bound methods)
contribute nothing, so every type in an escape set is positively
known to be raisable — the property the E/B/R rule families
(:mod:`.rules_exceptions`) fire on.

The finished table is persisted in the analyzer's content-hash cache
(the fifth tier, keyed by every input file's SHA plus the schema
versions), so a warm run skips the fixpoint entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .index import ProjectIndex, file_sha
from .model import (
    INDEX_SCHEMA_VERSION,
    CallGuard,
    CallSite,
    FunctionInfo,
    HandlerSpec,
    ModuleInfo,
)

#: Bump when the summary shape or inference semantics change.
EXCEPTIONS_SCHEMA_VERSION = 1

#: The builtin exception hierarchy (child leaf -> parent leaf), enough
#: for subtype subtraction over the types real handlers name.
BUILTIN_EXCEPTION_BASES: Mapping[str, str] = {
    "SystemExit": "BaseException",
    "KeyboardInterrupt": "BaseException",
    "GeneratorExit": "BaseException",
    "Exception": "BaseException",
    "ArithmeticError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
    "FloatingPointError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
    "AssertionError": "Exception",
    "AttributeError": "Exception",
    "BufferError": "Exception",
    "EOFError": "Exception",
    "ImportError": "Exception",
    "ModuleNotFoundError": "ImportError",
    "LookupError": "Exception",
    "IndexError": "LookupError",
    "KeyError": "LookupError",
    "MemoryError": "Exception",
    "NameError": "Exception",
    "UnboundLocalError": "NameError",
    "OSError": "Exception",
    "IOError": "OSError",
    "FileNotFoundError": "OSError",
    "FileExistsError": "OSError",
    "PermissionError": "OSError",
    "IsADirectoryError": "OSError",
    "NotADirectoryError": "OSError",
    "InterruptedError": "OSError",
    "BlockingIOError": "OSError",
    "ChildProcessError": "OSError",
    "ProcessLookupError": "OSError",
    "ConnectionError": "OSError",
    "BrokenPipeError": "ConnectionError",
    "ConnectionAbortedError": "ConnectionError",
    "ConnectionRefusedError": "ConnectionError",
    "ConnectionResetError": "ConnectionError",
    "TimeoutError": "OSError",
    "ReferenceError": "Exception",
    "RuntimeError": "Exception",
    "NotImplementedError": "RuntimeError",
    "RecursionError": "RuntimeError",
    "StopIteration": "Exception",
    "StopAsyncIteration": "Exception",
    "SyntaxError": "Exception",
    "IndentationError": "SyntaxError",
    "SystemError": "Exception",
    "TypeError": "Exception",
    "ValueError": "Exception",
    "UnicodeError": "ValueError",
    "UnicodeDecodeError": "UnicodeError",
    "UnicodeEncodeError": "UnicodeError",
    "JSONDecodeError": "ValueError",
    "Warning": "Exception",
    "UserWarning": "Warning",
    "RuntimeWarning": "Warning",
}


def type_token(dotted: str) -> str:
    """Canonical (leaf) type token of a raised/caught expression.

    Returns "" for non-type tokens — a bare re-raise, or a lowercase
    name (a re-raised *variable*, which PEP 8 distinguishes from the
    CapWords class names the lattice reasons about).
    """
    leaf = dotted.rsplit(".", 1)[-1]
    if not leaf or not leaf[:1].isupper():
        return ""
    return leaf


class TypeLattice:
    """Leaf-name subtype relation over builtin + project exceptions.

    ``project`` maps each project-defined exception leaf to its
    qualified name (for messages and taxonomy membership); unknown
    leaves are assumed to subclass ``Exception`` — a broad handler
    provably catches them, a narrow one provably does not.
    """

    def __init__(self, index: ProjectIndex) -> None:
        self.parents: Dict[str, Tuple[str, ...]] = {
            child: (parent,)
            for child, parent in BUILTIN_EXCEPTION_BASES.items()}
        self.parents["BaseException"] = ()
        self.project: Dict[str, str] = {}
        qualified: Dict[str, str] = {}
        for module in sorted(index.modules):
            info = index.modules[module]
            for qualname, cls in sorted(info.classes.items()):
                leaf = qualname.rsplit(".", 1)[-1]
                bases = tuple(t for t in (type_token(b)
                                          for b in cls.bases) if t)
                if not bases:
                    continue
                self.parents.setdefault(leaf, bases)
                qualified.setdefault(leaf, f"{module}.{qualname}")
        for leaf, name in qualified.items():
            if self.is_exception(leaf):
                self.project[leaf] = name

    def _ancestry(self, leaf: str, strict: bool = False) -> Set[str]:
        """All known supertypes of ``leaf``, including itself.

        Non-strict lookups assume an *unknown* leaf subclasses
        ``Exception`` (so ``except Exception`` catches it); strict
        lookups stop at unknown names, which is what positive claims
        like taxonomy membership require.
        """
        seen: Set[str] = set()
        frontier = [leaf]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            fallback: Tuple[str, ...] = ()
            if not strict and current != "BaseException":
                fallback = ("Exception",)
            frontier.extend(self.parents.get(current, fallback))
        return seen

    def is_subtype(self, sub: str, sup: str) -> bool:
        return sup in self._ancestry(sub)

    def is_exception(self, leaf: str) -> bool:
        """Provably reaches BaseException through *known* parents."""
        return "BaseException" in self._ancestry(leaf, strict=True)

    def is_taxonomy(self, leaf: str) -> bool:
        """A project-defined exception type (the hand-built taxonomy)."""
        return leaf in self.project

    def qualified(self, leaf: str) -> str:
        return self.project.get(leaf, leaf)

    def catches(self, spec: HandlerSpec, leaf: str) -> bool:
        """Does one except clause intercept an exception type?"""
        if not spec.types:
            return True  # bare except == except BaseException
        return any(self.is_subtype(leaf, type_token(t) or t)
                   for t in spec.types)


def propagate_types(types: Set[str], guards: Sequence[int],
                    function: FunctionInfo,
                    lattice: TypeLattice) -> Set[str]:
    """Filter raised types through the enclosing handlers of a site.

    ``guards`` are try indices innermost-first.  ``reraise`` handlers
    pass the type through; ``swallow`` / ``translate`` / ``raise``
    handlers absorb it (replacement raises inside handler bodies are
    recorded as their own raise facts, so nothing is lost).
    """
    out = set(types)
    for guard in guards:
        if not out:
            break
        handlers = function.try_facts[guard].handlers
        survivors: Set[str] = set()
        for leaf in out:
            spec = next((h for h in handlers
                         if lattice.catches(h, leaf)), None)
            if spec is None or spec.action == "reraise":
                survivors.add(leaf)
        out = survivors
    return out


@dataclass
class ExceptionSummary:
    """The converged escape set of one function."""

    key: str                          # "module.qualname"
    escapes: Set[str] = field(default_factory=set)

    @property
    def can_exit(self) -> bool:
        return "SystemExit" in self.escapes

    def to_dict(self) -> List[str]:
        return sorted(self.escapes)


@dataclass
class ExceptionTable:
    """Every function's escape set, plus cache provenance."""

    summaries: Dict[str, ExceptionSummary] = field(default_factory=dict)
    from_cache: bool = False

    def escapes(self, module: str, qualname: str) -> Set[str]:
        summary = self.summaries.get(f"{module}.{qualname}")
        return summary.escapes if summary is not None else set()

    def to_dict(self) -> Dict[str, Any]:
        return {"summaries": {key: summary.to_dict() for key, summary
                              in sorted(self.summaries.items())}}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExceptionTable":
        return cls(
            summaries={key: ExceptionSummary(key=key, escapes=set(types))
                       for key, types in payload["summaries"].items()},
            from_cache=True)


def exceptions_key(index: ProjectIndex) -> str:
    """Content hash the cached exception table is valid for."""
    shas = sorted((info.path, info.sha)
                  for info in index.modules.values())
    return file_sha(repr((INDEX_SCHEMA_VERSION,
                          EXCEPTIONS_SCHEMA_VERSION, shas)))


def _is_sys_exit(func: str) -> bool:
    return func in ("sys.exit", "os._exit") or func == "exit"


def resolve_call_guard(index: ProjectIndex, module: str,
                       info: ModuleInfo, qualname: str,
                       call: CallGuard) -> Optional[str]:
    """Summary key of the project function a guarded call resolves to.

    Mirrors the effect pass's callee resolution: local nested defs via
    the enclosing scope chain first, then imported / module-level
    names through the index.
    """
    if not call.func:
        return None
    if "." not in call.func:
        parts = qualname.split(".") if qualname else []
        while parts:
            candidate = ".".join(parts + [call.func])
            if candidate in info.functions:
                return f"{module}.{candidate}"
            parts.pop()
    probe = CallSite(func=call.func, lineno=call.lineno, col=call.col,
                     in_function=qualname)
    callee = index.resolve_call(module, probe)
    if callee is not None and callee.kind == "function":
        return f"{callee.module}.{callee.name}"
    return None


@dataclass(frozen=True)
class _Edge:
    caller: str                       # summary key
    callee: str                       # summary key
    guards: Tuple[int, ...]


def _build_table(index: ProjectIndex) -> ExceptionTable:
    lattice = type_lattice(index)
    table = ExceptionTable()
    functions: Dict[str, FunctionInfo] = {}
    edges: List[_Edge] = []

    for module in sorted(index.modules):
        info = index.modules[module]
        for qualname, function in info.functions.items():
            key = f"{module}.{qualname}"
            functions[key] = function
            summary = ExceptionSummary(key=key)
            for fact in function.raise_facts:
                leaf = type_token(fact.type_token)
                if not leaf:
                    continue
                summary.escapes |= propagate_types(
                    {leaf}, fact.guards, function, lattice)
            for call in function.call_guards:
                if _is_sys_exit(call.func):
                    summary.escapes |= propagate_types(
                        {"SystemExit"}, call.guards, function, lattice)
                    continue
                callee = resolve_call_guard(index, module, info,
                                            qualname, call)
                if callee is not None:
                    edges.append(_Edge(caller=key, callee=callee,
                                       guards=call.guards))
            table.summaries[key] = summary

    changed = True
    while changed:
        changed = False
        for edge in edges:
            caller = table.summaries.get(edge.caller)
            callee = table.summaries.get(edge.callee)
            if caller is None or callee is None or caller is callee:
                continue
            incoming = propagate_types(
                callee.escapes, edge.guards, functions[edge.caller],
                lattice)
            if not incoming <= caller.escapes:
                caller.escapes |= incoming
                changed = True
    return table


def arriving_at(index: ProjectIndex, table: ExceptionTable,
                module: str, info: ModuleInfo, qualname: str,
                try_index: int,
                lattice: TypeLattice) -> Tuple[Set[str], bool]:
    """(types reaching one try's handlers, whether all calls resolved).

    Unions every raise fact and resolved callee escape set anchored
    inside the try body, each filtered through the guards *inner* than
    ``try_index``.  ``all_resolved`` is False when any call in the
    region could not be resolved to a project function — the dead-
    catch rule only trusts a fully-resolved region.
    """
    function = info.functions[qualname]
    arrive: Set[str] = set()
    all_resolved = True
    for fact in function.raise_facts:
        if try_index not in fact.guards:
            continue
        leaf = type_token(fact.type_token)
        if not leaf:
            continue
        inner = fact.guards[:fact.guards.index(try_index)]
        arrive |= propagate_types({leaf}, inner, function, lattice)
    for call in function.call_guards:
        if try_index not in call.guards:
            continue
        inner = call.guards[:call.guards.index(try_index)]
        if _is_sys_exit(call.func):
            arrive |= propagate_types({"SystemExit"}, inner, function,
                                      lattice)
            continue
        callee = resolve_call_guard(index, module, info, qualname, call)
        if callee is None:
            all_resolved = False
            continue
        summary = table.summaries.get(callee)
        if summary is None:
            all_resolved = False
            continue
        arrive |= propagate_types(summary.escapes, inner, function,
                                  lattice)
    return arrive, all_resolved


def type_lattice(index: ProjectIndex) -> TypeLattice:
    """The (memoized) exception-type lattice for an index."""
    cached = getattr(index, "_type_lattice", None)
    if isinstance(cached, TypeLattice):
        return cached
    lattice = TypeLattice(index)
    setattr(index, "_type_lattice", lattice)
    return lattice


def exception_table(index: ProjectIndex) -> ExceptionTable:
    """The (memoized) exception table for an index."""
    cached = getattr(index, "_exception_table", None)
    if isinstance(cached, ExceptionTable):
        return cached
    table = _build_table(index)
    setattr(index, "_exception_table", table)
    return table


def attach_cached_exception_table(index: ProjectIndex,
                                  payload: Mapping[str, Any]) -> bool:
    """Adopt a cached exception table if its key matches this index."""
    if not isinstance(payload, Mapping):
        return False
    if payload.get("key") != exceptions_key(index):
        return False
    try:
        table = ExceptionTable.from_dict(payload["table"])
    except (KeyError, TypeError, ValueError):
        return False
    setattr(index, "_exception_table", table)
    return True


def serialized_exception_table(index: ProjectIndex
                               ) -> Optional[Dict[str, Any]]:
    """The cache payload for this index's table (None if not built)."""
    table = getattr(index, "_exception_table", None)
    if not isinstance(table, ExceptionTable):
        return None
    return {"key": exceptions_key(index), "table": table.to_dict()}
