"""X-series: interprocedural unit flow at call sites.

The per-file ``U001`` rule can only compare a keyword's name against
the variable passed into it.  With the project index the analyzer
knows every *callee's* declared parameter suffixes, so it can check
positional arguments, cross-module calls, the dB-vs-linear domain of
the ``repro.optics.units`` converters, and the unit of the name a
call's result is bound to.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from ..findings import Finding
from ..visitors import unit_suffix
from .index import ProjectIndex, ResolvedCallee
from .model import CallSite, ModuleInfo, ValueDesc
from .registry import ProgramRule, register_program_rule

#: The sanctioned converters and their (input, output) unit domains.
#: ``None`` marks a dimensionless power *ratio* — the one quantity that
#: must never carry a power suffix.
CONVERTER_DOMAINS: Dict[str, Tuple[Optional[str], Optional[str]]] = {
    "repro.optics.units.dbm_to_mw": ("_dbm", "_mw"),
    "repro.optics.units.mw_to_dbm": ("_mw", "_dbm"),
    "repro.optics.units.db_to_linear": ("_db", None),
    "repro.optics.units.linear_to_db": (None, "_db"),
}

#: Suffixes that denote a power quantity (absolute or relative); these
#: are the ones that must not be fed into a ratio slot.
_POWER_SUFFIXES = frozenset({"_dbm", "_mw", "_db"})


def _leaf(dotted: str) -> str:
    return dotted.rsplit(".", 1)[-1]


@register_program_rule
class CallSiteUnitRule(ProgramRule):
    """X001: argument suffixes must match parameter suffixes."""

    rule_id = "X001"
    summary = ("at resolved call sites, a unit-suffixed argument must "
               "match the callee parameter's unit suffix "
               "(positional and keyword)")

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        for module in sorted(index.modules):
            info = index.modules[module]
            for call in info.calls:
                callee = index.resolve_call(module, call)
                if callee is None:
                    continue
                yield from self._check_call(info, call, callee, index)

    def _check_call(self, info: ModuleInfo, call: CallSite,
                    callee: ResolvedCallee,
                    index: ProjectIndex) -> Iterator[Finding]:
        param_names, _ = index.constructor_params(callee)
        for position, value in enumerate(call.args):
            if position >= len(param_names):
                break
            yield from self._compare(info, call, callee,
                                     param_names[position], value)
        for keyword, value in call.keywords:
            if keyword == "**" or keyword not in param_names:
                continue
            yield from self._compare(info, call, callee, keyword,
                                     value)

    def _compare(self, info: ModuleInfo, call: CallSite,
                 callee: ResolvedCallee, param: str,
                 value: ValueDesc) -> Iterator[Finding]:
        expected = unit_suffix(param)
        actual = value.suffix
        if expected is None or actual is None or expected == actual:
            return
        yield self.finding(
            info, call.lineno, call.col,
            f"{value.text or 'argument'} ({actual}) flows into "
            f"parameter {param} ({expected}) of {callee.qualified}; "
            "convert explicitly or rename one side")


@register_program_rule
class ConverterDomainRule(ProgramRule):
    """X002: dB-vs-linear discipline through the units converters."""

    rule_id = "X002"
    summary = ("the repro.optics.units converters must be fed their "
               "declared domain: no dBm/mW into a ratio slot, no "
               "already-converted value back through the same "
               "converter")

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        for module in sorted(index.modules):
            info = index.modules[module]
            for call in info.calls:
                callee = index.resolve_call(module, call)
                if callee is None or \
                        callee.qualified not in CONVERTER_DOMAINS:
                    continue
                expected_in, expected_out = \
                    CONVERTER_DOMAINS[callee.qualified]
                converter = _leaf(callee.qualified)
                value = self._input_value(call)
                if value is not None and value.suffix is not None:
                    yield from self._check_input(
                        info, call, converter, expected_in, value)
                if call.bound_to is not None:
                    yield from self._check_output(
                        info, call, converter, expected_out)

    def _input_value(self, call: CallSite) -> Optional[ValueDesc]:
        if call.args:
            return call.args[0]
        for _, value in call.keywords:
            return value
        return None

    def _check_input(self, info: ModuleInfo, call: CallSite,
                     converter: str, expected: Optional[str],
                     value: ValueDesc) -> Iterator[Finding]:
        actual = value.suffix
        if expected is None:
            # Ratio slot: any power suffix means dB/linear mixing.
            if actual in _POWER_SUFFIXES:
                yield self.finding(
                    info, call.lineno, call.col,
                    f"{value.text} ({actual}) passed into "
                    f"{converter}(), which takes a dimensionless "
                    "linear ratio; use the matching power converter "
                    "or strip the unit explicitly")
        elif actual != expected:
            yield self.finding(
                info, call.lineno, call.col,
                f"{value.text} ({actual}) passed into {converter}(), "
                f"which expects {expected}; this mixes the dB and "
                "linear domains")

    def _check_output(self, info: ModuleInfo, call: CallSite,
                      converter: str,
                      expected: Optional[str]) -> Iterator[Finding]:
        bound = call.bound_to
        if bound is None:
            return
        actual = unit_suffix(bound)
        if actual is None:
            return
        if expected is None and actual in _POWER_SUFFIXES:
            # Suffix-vs-suffix output mismatches (e.g. ``x_db =
            # dbm_to_mw(...)``) are X003's domain; X002 owns only the
            # ratio cases no name suffix can express.
            yield self.finding(
                info, call.lineno, call.col,
                f"{converter}() returns a dimensionless ratio but its "
                f"result is bound to {bound} ({actual}); the name "
                "claims a power unit the value does not have")


@register_program_rule
class ReturnUnitRule(ProgramRule):
    """X003: a call result must be bound to a matching unit name."""

    rule_id = "X003"
    summary = ("a function whose name carries a unit suffix returns "
               "that unit; binding its result to a differently-"
               "suffixed name is a silent conversion")

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        for module in sorted(index.modules):
            info = index.modules[module]
            for call in info.calls:
                if call.bound_to is None or not call.func:
                    continue
                target_suffix = unit_suffix(call.bound_to)
                if target_suffix is None:
                    continue
                callee = index.resolve_call(module, call)
                if callee is not None:
                    source_name = _leaf(callee.name)
                else:
                    source_name = _leaf(call.func)
                source_suffix = unit_suffix(source_name)
                if source_suffix is None or \
                        source_suffix == target_suffix:
                    continue
                yield self.finding(
                    info, call.lineno, call.col,
                    f"result of {source_name}() ({source_suffix}) "
                    f"bound to {call.bound_to} ({target_suffix}); "
                    "convert explicitly or rename the binding")
