"""Y-series: dtype stability on the hot path.

A compiled backend specializes on the dtypes it first sees; an
implicit promotion or a platform-defaulted allocation dtype silently
doubles memory traffic or recompiles the kernel.  These rules are
scoped to the hot modules (the batch engines, the columnar store, and
any module registering a ``@repro.determinism.kernel``) — cold
plumbing may let NumPy default freely.
"""

from __future__ import annotations

from typing import Iterator, Set

from ..findings import Finding
from .arrays import ArrayEvent, array_table, hot_modules
from .index import ProjectIndex
from .registry import ProgramRule, register_program_rule


class _DtypeEventRule(ProgramRule):
    """Shared scaffold: one event kind, hot modules only."""

    event_kind = ""

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        table = array_table(index)
        hot: Set[str] = set(hot_modules(index))
        for event in table.events:
            if event.kind != self.event_kind or \
                    event.module not in hot:
                continue
            info = index.modules.get(event.module)
            if info is None:
                continue
            yield self.finding(info, event.lineno, event.col,
                               self.message(event))

    def message(self, event: ArrayEvent) -> str:
        raise NotImplementedError


@register_program_rule
class ImplicitPromotionRule(_DtypeEventRule):
    """Y001: arithmetic silently widens a declared-dtype array."""

    rule_id = "Y001"
    summary = ("in hot modules, arithmetic on a declared-dtype array "
               "must not silently promote it to a wider dtype")
    event_kind = "promotion"

    def message(self, event: ArrayEvent) -> str:
        return (f"implicit dtype promotion: {event.detail}; cast "
                "explicitly or keep the operands at one dtype")


@register_program_rule
class ImplicitAllocationDtypeRule(_DtypeEventRule):
    """Y002: hot-path allocations carry an explicit dtype."""

    rule_id = "Y002"
    summary = ("in hot modules, np.empty/zeros/ones/full and array "
               "literals must pass an explicit dtype=")
    event_kind = "implicit-dtype"

    def message(self, event: ArrayEvent) -> str:
        return (f"allocation without explicit dtype: {event.detail}; "
                "pass dtype= so the kernel's dtypes are declared, not "
                "defaulted")


@register_program_rule
class BoolArithmeticRule(_DtypeEventRule):
    """Y003: arithmetic on bool arrays upcasts behind your back."""

    rule_id = "Y003"
    summary = ("in hot modules, arithmetic (+ - * /) on a bool array "
               "silently upcasts; use logical ops (& | ~) or an "
               "explicit cast")
    event_kind = "bool-arith"

    def message(self, event: ArrayEvent) -> str:
        return (f"bool-array arithmetic: {event.detail} upcasts to an "
                "integer dtype; use &, |, ~ or cast explicitly")
