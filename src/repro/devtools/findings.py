"""The lint engine's output unit: one finding per rule violation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is the file as given to the engine (kept relative when the
    input was relative, so output is stable across machines); ``line``
    and ``column`` are 1-based, matching editors and compilers.
    """

    path: str
    line: int
    column: int
    rule_id: str
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.rule_id)

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-reporter encoding of this finding."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule_id,
            "message": self.message,
        }

    def render(self) -> str:
        """The text-reporter encoding: ``path:line:col RULE message``."""
        return (f"{self.path}:{self.line}:{self.column} "
                f"{self.rule_id} {self.message}")
