"""Per-file lint context: parsed source, noqa map, and path scoping.

Rules never touch the filesystem; the engine parses each file once and
hands every rule the same :class:`FileContext`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Dict, FrozenSet, Optional, Tuple

#: ``# repro: noqa`` or ``# repro: noqa[D001]`` / ``noqa[D001, U002]``.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?", re.IGNORECASE)


def parse_noqa(source: str) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to the rule ids suppressed there.

    An empty frozenset means a bare ``# repro: noqa``: every rule on
    that line is suppressed.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressions[lineno] = frozenset()
        else:
            suppressions[lineno] = frozenset(
                r.strip().upper() for r in rules.split(",") if r.strip())
    return suppressions


def package_parts(path: str) -> Tuple[str, ...]:
    """Path components used for rule scoping, rooted at ``repro``.

    ``src/repro/core/gma.py`` -> ``("repro", "core", "gma.py")``; a file
    outside the package (benchmarks, examples, fixtures) keeps its own
    components so rules can still scope on directory names.  Fixture
    trees that embed a ``repro/...`` directory scope exactly like the
    real package, which is what the rule tests rely on.
    """
    parts = PurePosixPath(path.replace("\\", "/")).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return parts[index:]
    return parts


@dataclass(frozen=True)
class FileContext:
    """Everything the rules may know about one file."""

    path: str
    source: str
    tree: ast.AST
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    @classmethod
    def from_source(cls, path: str, source: str) -> "FileContext":
        """Parse ``source``; raises ``SyntaxError`` on a broken file."""
        tree = ast.parse(source, filename=path)
        return cls(path=path, source=source, tree=tree,
                   suppressions=parse_noqa(source))

    @property
    def parts(self) -> Tuple[str, ...]:
        return package_parts(self.path)

    def in_package(self, *packages: str) -> bool:
        """True when the file sits under ``repro/<pkg>`` for any given
        package (or directly under ``repro`` when called with no args)."""
        parts = self.parts
        if not parts or parts[0] != "repro":
            return False
        if not packages:
            return True
        return len(parts) >= 2 and parts[1] in packages

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """Whether a ``# repro: noqa`` comment covers this finding."""
        rules: Optional[FrozenSet[str]] = self.suppressions.get(line)
        if rules is None:
            return False
        return not rules or rule_id.upper() in rules
