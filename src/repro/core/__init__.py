"""Cyclops's contribution: the learned tracking-and-pointing pipeline.

Sub-modules map one-to-one onto Section 4 of the paper:

* :mod:`gma` -- the parameterized GMA model ``G`` (4.1-A);
* :mod:`kspace` -- board calibration and the K-space fit (4.1-B);
* :mod:`mapping` -- the 12-parameter VR-space mapping fit (4.2);
* :mod:`inverse` -- the iterative reverse model ``G'`` (4.3);
* :mod:`pointing` -- the real-time pointing mechanism ``P`` (4.3);
* :mod:`alignment` -- the exhaustive power-search training oracle;
* :mod:`lemma` -- numerical Lemma 1 checks;
* :mod:`errors` -- Table 2 accuracy metrics;
* :mod:`system` -- the assembled learned system ``P`` consumes.
"""

from ..galvo import CoverageError
from .alignment import AlignmentResult, search
from .errors import ErrorSummary, beam_error_m, summarize
from .gma import GmaModel, board_hits, trace_batch
from .inverse import (
    DEFAULT_VOLTAGE_STEP_V,
    InverseDivergedError,
    InverseResult,
)
from .inverse import solve as solve_inverse
from .kspace import (
    BOARD_PLANE,
    BoardRig,
    BoardSample,
    evaluate_fit,
    fit_gma,
    interior_grid_points,
)
from .lemma import LemmaCheck, rank_agreement, sweep
from .mapping import (
    AlignedSample,
    coincidence_error_m,
    coincidence_residuals,
    fit_mapping,
    mean_coincidence_error_m,
)
from .pointing import (
    PointingCommand,
    PointingDivergedError,
    cold_start_seed,
    point,
)
from .retraining import DriftMonitor, remap
from .system import LearnedSystem

__all__ = [
    "AlignedSample",
    "AlignmentResult",
    "BOARD_PLANE",
    "BoardRig",
    "BoardSample",
    "CoverageError",
    "DriftMonitor",
    "DEFAULT_VOLTAGE_STEP_V",
    "ErrorSummary",
    "GmaModel",
    "InverseDivergedError",
    "InverseResult",
    "LearnedSystem",
    "LemmaCheck",
    "PointingCommand",
    "PointingDivergedError",
    "beam_error_m",
    "board_hits",
    "coincidence_error_m",
    "coincidence_residuals",
    "cold_start_seed",
    "evaluate_fit",
    "fit_gma",
    "fit_mapping",
    "interior_grid_points",
    "mean_coincidence_error_m",
    "point",
    "rank_agreement",
    "remap",
    "search",
    "solve_inverse",
    "summarize",
    "sweep",
    "trace_batch",
]
