"""The learnable GMA model ``G`` (Section 4.1-A).

``G(v1, v2) -> (p, x)`` maps the two galvo voltages to the output
beam's originating point and direction.  The parameterized expression
itself lives in :func:`repro.galvo.mirror.trace`; this module adds:

* :class:`GmaModel` -- a thin, frame-aware wrapper the pointing
  algorithms use;
* :func:`trace_batch` -- a fully vectorized evaluation of ``G`` over
  many voltage pairs at once, which the least-squares fits call inside
  their residual functions (the scalar path would be ~100x slower);
* :func:`board_hits` -- the ``f(G(v1, v2))`` composition of Section
  4.1-B: where the beams land on the calibration board.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
import numpy.typing as npt

from ..galvo import GmaParams, mirror_planes, trace
from ..geometry import Plane, Ray, RigidTransform


@dataclass(frozen=True)
class GmaModel:
    """A learned (or hypothesized) GMA model in a particular frame."""

    params: GmaParams

    def beam(self, v1: float, v2: float) -> Ray:
        """Evaluate ``G(v1, v2)``: the predicted output beam."""
        return trace(self.params, v1, v2)

    def second_mirror_plane(self, v1: float, v2: float) -> Plane:
        """The predicted second-mirror plane at these voltages."""
        return mirror_planes(self.params, self.params.theta1 * v1,
                             self.params.theta1 * v2)[1]

    def transformed(self, transform: RigidTransform) -> "GmaModel":
        """The same model expressed in another coordinate frame."""
        return GmaModel(self.params.transformed(transform))


def _rotate_about(axis: np.ndarray, angles: np.ndarray,
                  vector: np.ndarray) -> np.ndarray:
    """Rodrigues rotation of one vector by many angles (vectorized).

    ``axis`` and ``vector`` are (3,); ``angles`` is (n,).  Returns
    (n, 3): ``vector`` rotated by each angle about ``axis``.
    """
    cos = np.cos(angles)[:, None]
    sin = np.sin(angles)[:, None]
    axis_cross = np.cross(axis, vector)
    axis_dot = float(np.dot(axis, vector))
    return (cos * vector + sin * axis_cross
            + (1.0 - cos) * axis_dot * axis)


def _reflect_batch(origins: np.ndarray, directions: np.ndarray,
                   normals: np.ndarray, pivot: np.ndarray
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Reflect n beams off n mirror planes sharing one pivot point.

    Returns ``(strike_points, reflected_directions)``, each (n, 3).
    Rays parallel to their mirror produce non-finite strike points,
    which the fit's residuals turn into large errors (as they should).
    """
    denom = np.einsum("ij,ij->i", directions, normals)
    # Avoid a divide-by-zero warning; the result is inf/nan anyway and
    # the caller treats non-finite hits as unusable.
    safe = np.where(np.abs(denom) < 1e-300, np.nan, denom)
    offsets = pivot[None, :] - origins
    t = np.einsum("ij,ij->i", offsets, normals) / safe
    strikes = origins + t[:, None] * directions
    reflected = directions - 2.0 * denom[:, None] * normals
    return strikes, reflected


def trace_batch(vector: npt.ArrayLike, v1: npt.ArrayLike,
                v2: npt.ArrayLike) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized ``G`` over many voltage pairs.

    ``vector`` is the 25-parameter encoding of
    :meth:`repro.galvo.GmaParams.to_vector`; ``v1``/``v2`` are (n,)
    voltage arrays.  Returns ``(origins, directions)``, each (n, 3).
    Unlike the scalar path, no normalization or validation is applied:
    the optimizer is free to wander through slightly non-unit normals,
    and the residuals stay smooth.
    """
    vec = np.asarray(vector, dtype=float)
    v1 = np.asarray(v1, dtype=float)
    v2 = np.asarray(v2, dtype=float)
    p0, x0 = vec[0:3], vec[3:6]
    n1, q1, r1 = vec[6:9], vec[9:12], vec[12:15]
    n2, q2, r2 = vec[15:18], vec[18:21], vec[21:24]
    theta1 = vec[24]

    def unit(vector: np.ndarray) -> np.ndarray:
        return vector / np.linalg.norm(vector)

    x0 = unit(x0)
    normals1 = _rotate_about(unit(r1), theta1 * v1, unit(n1))
    normals2 = _rotate_about(unit(r2), theta1 * v2, unit(n2))
    n = len(v1)
    origins = np.broadcast_to(p0, (n, 3))
    directions = np.broadcast_to(x0, (n, 3))
    mid_points, mid_dirs = _reflect_batch(origins, directions, normals1, q1)
    return _reflect_batch(mid_points, mid_dirs, normals2, q2)


def board_hits(vector: npt.ArrayLike, v1: npt.ArrayLike,
               v2: npt.ArrayLike, board: Plane) -> np.ndarray:
    """Where the modelled beams land on the calibration board.

    Returns (n, 3) world points; beams that never reach the board
    yield non-finite coordinates.
    """
    origins, directions = trace_batch(vector, v1, v2)
    denom = directions @ board.normal
    safe = np.where(np.abs(denom) < 1e-300, np.nan, denom)
    offsets = board.point[None, :] - origins
    t = (offsets @ board.normal) / safe
    return origins + t[:, None] * directions
