"""K-space calibration of a GMA (Section 4.1-B).

The rig: a planar board with grid lines, the GMA fixed 1.5 m in front
of it.  K-space is defined so the board is its x-y plane.  For each
interior grid intersection the experimenter finds the voltage pair that
parks the beam spot on the intersection (reading the spot position by
eye, which is where the measurement noise comes from), producing
4-attribute training samples ``(x, y, v1, v2)``.  Non-linear least
squares then fits the 25 parameters of ``G`` so that the predicted
board hits match the targets.

The fit recovers a *predictively accurate* ``G``, not the literal
construction parameters -- the parameterization has gauge freedoms
(e.g. the input beam origin can slide along its own direction), and
like the paper we only ever evaluate ``G`` by where its beams go.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
import numpy.typing as npt
from scipy.optimize import least_squares

from .. import constants
from ..galvo import GalvoHardware, GmaParams
from ..geometry import Plane
from .gma import GmaModel, board_hits
from .pointing import PointingDivergedError

#: By-eye spot-positioning accuracy on the grid board, one axis (m).
EYE_NOISE_M = 0.7e-3

#: Board imperfection: a foam/wood grid board is not a perfect plane,
#: so the spot's apparent grid position carries a smooth systematic
#: bias of this magnitude (warp height times parallax).
WARP_BIAS_M = 0.9e-3
WARP_PERIOD_M = 0.35

#: The board plane in K-space: the x-y plane, normal +z.
BOARD_PLANE = Plane(point=np.zeros(3), normal=np.array([0.0, 0.0, 1.0]))


@dataclass(frozen=True)
class BoardSample:
    """One training sample: a grid target and the voltages that hit it."""

    x: float
    y: float
    v1: float
    v2: float


def interior_grid_points(columns: int = constants.KSPACE_BOARD_COLUMNS,
                         rows: int = constants.KSPACE_BOARD_ROWS,
                         cell_m: float = constants.KSPACE_CELL_SIZE_M,
                         ) -> np.ndarray:
    """The (columns-1) x (rows-1) interior grid intersections.

    The paper uses only the interior points -- 19 x 14 = 266 of them
    for the 20 x 15 board -- "for high accuracy".  Points are centered
    on the board so the rig's origin is the board center.
    """
    xs = (np.arange(1, columns) - columns / 2.0) * cell_m
    ys = (np.arange(1, rows) - rows / 2.0) * cell_m
    grid = np.array([[x, y] for x in xs for y in ys])
    return grid


@dataclass
class BoardRig:
    """The physical K-space calibration setup around one real GMA.

    ``hardware`` holds its (hidden) true parameters *in K-space*: the
    device physically sits ~1.5 m off the board along +z, firing -z.
    """

    hardware: GalvoHardware
    rng: np.random.Generator
    eye_noise_m: float = EYE_NOISE_M
    warp_bias_m: float = WARP_BIAS_M

    def __post_init__(self) -> None:
        # Random but fixed warp phases: the board's particular bend.
        self._warp_phase = self.rng.uniform(0.0, 2.0 * np.pi, size=2)

    def warp_bias(self, point_xy: npt.ArrayLike) -> np.ndarray:
        """Systematic apparent-position bias from board non-flatness.

        Smooth over the board at roughly the panel's warp wavelength;
        outside the fitted model's expressive class, so it is the
        component of the paper's 1-2 mm stage-1 error that no amount of
        samples removes.
        """
        p = np.asarray(point_xy, dtype=float)
        phase = 2.0 * np.pi * p / WARP_PERIOD_M + self._warp_phase
        return self.warp_bias_m * np.array(
            [np.sin(phase[0]), np.sin(phase[1])])

    def beam_board_hit(self) -> np.ndarray:
        """Where the true beam currently lands on the board (exact)."""
        beam = self.hardware.output_beam()
        return BOARD_PLANE.intersect_ray(beam)

    def observed_board_hit(self) -> np.ndarray:
        """The spot position as *read off the warped grid board*."""
        hit = self.beam_board_hit()[:2]
        return hit + self.warp_bias(hit)

    def voltages_hitting(self, target_xy: npt.ArrayLike,
                         tolerance_m: float = 60e-6,
                         max_iterations: int = 50) -> Tuple[float, float]:
        """Find voltages parking the *observed* spot on a board point.

        Newton iteration with finite differences against the real
        hardware -- the automated stand-in for the experimenter turning
        the voltage knobs until the spot covers the grid point.  The
        default tolerance sits above the GM's own 10 urad jitter floor
        (~15 um on the board) but far below the by-eye reading noise.
        All readings go through :meth:`observed_board_hit`, so the
        board's warp bias flows into the samples, exactly as it would
        on the real bench.
        """
        target = np.asarray(target_xy, dtype=float)
        v1, v2 = self.hardware.voltages
        epsilon = 5e-3  # volts, for the finite-difference Jacobian
        for _ in range(max_iterations):
            self.hardware.apply(v1, v2)
            hit = self.observed_board_hit()
            miss = target - hit
            if float(np.linalg.norm(miss)) <= tolerance_m:
                return v1, v2
            self.hardware.apply(v1 + epsilon, v2)
            hit1 = self.observed_board_hit()
            self.hardware.apply(v1, v2 + epsilon)
            hit2 = self.observed_board_hit()
            jacobian = np.column_stack([(hit1 - hit) / epsilon,
                                        (hit2 - hit) / epsilon])
            step, *_ = np.linalg.lstsq(jacobian, miss, rcond=None)
            # Trust region: a jittery Jacobian must not fling the
            # mirrors across (or beyond) their coverage cone.
            step = np.clip(step, -1.5, 1.5)
            limit = self.hardware.daq.voltage_range_v - 0.05
            v1 = float(np.clip(v1 + step[0], -limit, limit))
            v2 = float(np.clip(v2 + step[1], -limit, limit))
        raise PointingDivergedError(
            f"could not steer the beam onto {target} "
            f"within {max_iterations} iterations")

    def collect_samples(self, grid_points: np.ndarray) -> List[BoardSample]:
        """Gather one (x, y, v1, v2) sample per grid point.

        The recorded voltages park the *observed* (by-eye) spot on the
        target, so the sample carries both the experimenter's random
        positioning noise and the board's systematic warp bias.
        """
        samples = []
        for point in np.asarray(grid_points, dtype=float):
            observed_target = point + self.rng.normal(
                0.0, self.eye_noise_m, size=2)
            v1, v2 = self.voltages_hitting(observed_target)
            samples.append(BoardSample(x=float(point[0]), y=float(point[1]),
                                       v1=v1, v2=v2))
        return samples


#: CAD/manual-measurement confidence used as a weak prior in the fit:
#: how far each parameter class may plausibly sit from the guess.
PRIOR_POINT_SIGMA_M = 5e-3
PRIOR_DIRECTION_SIGMA = 0.03       # ~1.7 degrees on unit vectors
PRIOR_THETA_REL_SIGMA = 0.02
#: Cost (in board-hit meters) of a one-sigma parameter deviation.
PRIOR_WEIGHT_M = 1e-3

_POINT_SLICES = (slice(0, 3), slice(9, 12), slice(18, 21))
_DIRECTION_SLICES = (slice(3, 6), slice(6, 9), slice(12, 15),
                     slice(15, 18), slice(21, 24))


def _prior_sigmas(initial: np.ndarray) -> np.ndarray:
    """Per-parameter prior widths around the initial guess."""
    sigmas = np.empty(25)
    for s in _POINT_SLICES:
        sigmas[s] = PRIOR_POINT_SIGMA_M
    for s in _DIRECTION_SLICES:
        sigmas[s] = PRIOR_DIRECTION_SIGMA
    sigmas[24] = PRIOR_THETA_REL_SIGMA * abs(initial[24])
    return sigmas


def fit_gma(samples: List[BoardSample], initial_guess: GmaParams,
            board: Plane = BOARD_PLANE) -> GmaModel:
    """Least-squares fit of the 25 GMA parameters (Section 4.1-B).

    Minimizes ``sum d((x, y), f(G(v1, v2)))^2`` over the samples, where
    ``f`` intersects the modelled beam with the board plane.  The
    initial guess plays the role of the paper's CAD drawing plus manual
    placement measurement, and doubles as a weak prior: board hits
    alone cannot pin down the full 3D beam geometry (any family of
    lines through the right board points matches), so without the
    prior the optimizer drifts along gauge directions chasing the
    by-eye sample noise and learns a model that is accurate *on the
    board plane only*.  The prior keeps the fit inside the
    manufacturing envelope while the data do all the fine work.
    """
    if not samples:
        raise ValueError("cannot fit a GMA model without samples")
    targets = np.array([[s.x, s.y] for s in samples])
    v1 = np.array([s.v1 for s in samples])
    v2 = np.array([s.v2 for s in samples])
    initial = initial_guess.to_vector()
    sigmas = _prior_sigmas(initial)

    def residuals(vector: np.ndarray) -> np.ndarray:
        hits = board_hits(vector, v1, v2, board)[:, :2]
        res = (hits - targets).ravel()
        # Beams that miss the board entirely are maximally wrong.
        res = np.where(np.isfinite(res), res, 1e3)
        prior = (vector - initial) / sigmas * PRIOR_WEIGHT_M
        return np.concatenate([res, prior])

    solution = least_squares(residuals, initial, method="lm",
                             xtol=1e-15, ftol=1e-15)
    return GmaModel(GmaParams.from_vector(solution.x))


def evaluate_fit(model: GmaModel, rig: BoardRig,
                 test_points: np.ndarray) -> np.ndarray:
    """Per-point board-prediction errors of a fitted model (Table 2).

    For each test target, steer the *real* hardware onto it (fresh
    measurement), then ask the model where those voltages land; the
    distance between prediction and target is the stage-1 error.
    """
    errors = []
    for point in np.asarray(test_points, dtype=float):
        v1, v2 = rig.voltages_hitting(point)
        predicted = BOARD_PLANE.intersect_ray(model.beam(v1, v2))[:2]
        errors.append(float(np.linalg.norm(predicted - point)))
    return np.array(errors)
