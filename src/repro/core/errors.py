"""Model-accuracy metrics (Table 2).

Stage-1 errors compare a fitted K-space model's predicted board hits
against fresh measurements (:func:`repro.core.kspace.evaluate_fit`).
Combined (stage-1 + stage-2) errors compare the learned VR-space
models' predicted beams against the true physical beams: the metric is
the perpendicular miss distance between the predicted beam line and
where the real beam actually is at link range, in millimeters --
exactly the quantity whose 2-4 mm magnitude the paper matches against
the link's movement tolerance (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..geometry import Ray


@dataclass(frozen=True)
class ErrorSummary:
    """Average and maximum of a set of errors, in meters."""

    label: str
    average_m: float
    maximum_m: float
    count: int

    @property
    def average_mm(self) -> float:
        return self.average_m * 1e3

    @property
    def maximum_mm(self) -> float:
        return self.maximum_m * 1e3


def beam_error_m(predicted: Ray, truth: Ray, eval_range_m: float) -> float:
    """Miss distance of a predicted beam at the far end of the link.

    Measures how far the predicted beam line passes from the point the
    *true* beam reaches at ``eval_range_m`` -- i.e. if the pointing
    mechanism trusted the prediction, by how much would it misplace the
    beam at the other terminal.
    """
    if eval_range_m <= 0:
        raise ValueError("evaluation range must be positive")
    target = truth.point_at(eval_range_m)
    return predicted.distance_to_point(target)


def summarize(label: str, errors: Sequence[float]) -> ErrorSummary:
    """Average/max rollup for one Table 2 row."""
    values = np.asarray(list(errors), dtype=float)
    if values.size == 0:
        raise ValueError("no errors to summarize")
    return ErrorSummary(label=label,
                        average_m=float(values.mean()),
                        maximum_m=float(values.max()),
                        count=int(values.size))
