"""Joint learning of the 12 K-space-to-VR-space mapping parameters
(Section 4.2).

Training data: 5-tuples ``(v1, v2, v3, v4, psi)`` where ``psi`` is the
VRH-T-reported headset pose and the four voltages come from an
exhaustive power-maximizing alignment search at that pose.  Lemma 1
says such an alignment makes the TX beam's strike point on the RX
mirror coincide with the RX beam's origin, and vice versa -- so the
error function sums ``d(p_t, tau_r) + d(p_r, tau_t)`` over all samples,
evaluated under the *candidate* mapping parameters, and non-linear
least squares drives it toward zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np
import numpy.typing as npt
from scipy.optimize import least_squares

from ..geometry import NoIntersectionError
from ..vrh import Pose
from .gma import GmaModel
from .system import LearnedSystem

#: Residual assigned when a candidate geometry misses a mirror plane.
MISS_PENALTY_M = 10.0


@dataclass(frozen=True)
class AlignedSample:
    """One Section 4.2 training tuple: aligned voltages + reported pose."""

    v_tx1: float
    v_tx2: float
    v_rx1: float
    v_rx2: float
    reported_pose: Pose


def coincidence_residuals(system: LearnedSystem,
                          sample: AlignedSample) -> np.ndarray:
    """The 6-vector ``(p_t - tau_r, p_r - tau_t)`` for one sample.

    All quantities are evaluated from the candidate *models* in
    VR-space -- nothing physical is consulted; the physics already
    spoke through the aligned voltages.
    """
    tx = system.tx_model_vr
    rx = system.rx_model_vr(sample.reported_pose)
    tx_beam = tx.beam(sample.v_tx1, sample.v_tx2)
    rx_beam = rx.beam(sample.v_rx1, sample.v_rx2)
    try:
        tau_t = rx.second_mirror_plane(
            sample.v_rx1, sample.v_rx2).intersect_ray(tx_beam)
        tau_r = tx.second_mirror_plane(
            sample.v_tx1, sample.v_tx2).intersect_ray(
                rx_beam, forward_only=False)
    except NoIntersectionError:
        return np.full(6, MISS_PENALTY_M)
    return np.concatenate([tx_beam.origin - tau_r, rx_beam.origin - tau_t])


def coincidence_error_m(system: LearnedSystem,
                        sample: AlignedSample) -> float:
    """The paper's scalar error ``d(p_t, tau_r) + d(p_r, tau_t)``."""
    res = coincidence_residuals(system, sample)
    return float(np.linalg.norm(res[:3]) + np.linalg.norm(res[3:]))


def fit_mapping(tx_kspace: GmaModel, rx_kspace: GmaModel,
                samples: List[AlignedSample],
                initial_mapping_params: npt.ArrayLike) -> LearnedSystem:
    """Estimate the 12 mapping parameters by least squares.

    ``initial_mapping_params`` plays the role of the deployer's rough
    tape-measure placement of the TX and of the RX optics relative to
    the headset.
    """
    if len(samples) < 4:
        raise ValueError(
            "need at least 4 aligned samples to constrain 12 parameters")
    initial = np.asarray(initial_mapping_params, dtype=float)
    if initial.shape != (12,):
        raise ValueError("expected 12 initial mapping parameters")

    def residuals(params: np.ndarray) -> np.ndarray:
        system = LearnedSystem.from_mapping_params(
            tx_kspace, rx_kspace, params)
        return np.concatenate([
            coincidence_residuals(system, sample) for sample in samples])

    solution = least_squares(residuals, initial, method="lm",
                             xtol=1e-15, ftol=1e-15)
    return LearnedSystem.from_mapping_params(tx_kspace, rx_kspace,
                                             solution.x)


def mean_coincidence_error_m(system: LearnedSystem,
                             samples: List[AlignedSample]) -> float:
    """Average Section 4.2 error over a sample set (fit diagnostics)."""
    if not samples:
        raise ValueError("no samples to evaluate")
    return float(np.mean([coincidence_error_m(system, s) for s in samples]))
