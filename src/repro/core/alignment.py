"""Exhaustive alignment search: the training-data oracle (Section 4.2).

To gather the 5-tuple mapping samples, the prototype finds "the optimal
combination of the four voltages that maximizes the received power at
the RX" by automated exhaustive search over the four GM voltages,
monitoring power via photodiodes.  One search takes 1-2 minutes on the
real rig, which is tolerable because it only runs at deployment.

We implement the search as multi-resolution coordinate descent: sweep
each voltage at a coarse grid step, keep the best, halve the step,
repeat down to the DAQ's voltage resolution.  It assumes the beam
starts within the photodiodes' capture basin -- on the real rig the
deployer coarse-aligns by eye first, and callers here seed the search
accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

#: Coarse-to-fine step schedule, in volts (final steps near DAQ LSB).
DEFAULT_STEP_SCHEDULE_V = (0.2, 0.05, 0.012, 0.003, 0.0008, 0.0003)


@dataclass(frozen=True)
class AlignmentResult:
    """Outcome of one exhaustive search."""

    voltages: Tuple[float, ...]
    power_dbm: float
    evaluations: int


def search(power_fn: Callable[[float, float, float, float], float],
           seed: Sequence[float],
           step_schedule_v: Sequence[float] = DEFAULT_STEP_SCHEDULE_V,
           sweeps_per_step: int = 4) -> AlignmentResult:
    """Maximize received power over the four GM voltages.

    ``power_fn(v_tx1, v_tx2, v_rx1, v_rx2)`` must return received power
    in dBm; ``seed`` is the by-eye coarse alignment.  Returns the best
    voltages found and the power there.
    """
    voltages = [float(v) for v in seed]
    if len(voltages) != 4:
        raise ValueError("the search runs over exactly four voltages")
    evaluations = 0

    def measure(vs: List[float]) -> float:
        nonlocal evaluations
        evaluations += 1
        return power_fn(*vs)

    best_power = measure(voltages)
    for step in step_schedule_v:
        for _ in range(sweeps_per_step):
            improved = False
            for axis in range(4):
                for direction in (+1.0, -1.0):
                    while True:
                        candidate = list(voltages)
                        candidate[axis] += direction * step
                        power = measure(candidate)
                        if power > best_power:
                            voltages = candidate
                            best_power = power
                            improved = True
                        else:
                            break
            if not improved:
                break
    return AlignmentResult(voltages=tuple(voltages), power_dbm=best_power,
                           evaluations=evaluations)
