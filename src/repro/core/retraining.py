"""Drift detection and mapping-only re-training (Section 4).

"In case of re-deployment or VRH-T drift, the only re-training
(calibration) that needs to be re-done is the mapping step."  That is
one of the design's selling points: the expensive K-space board
calibration is factory work, done once per unit; the cheap 30-sample
mapping fit is all a home deployment ever repeats.

This module provides both halves of that story:

* :class:`DriftMonitor` -- watches post-realignment received power and
  flags when it degrades persistently below a threshold (the signature
  of VRH-T drift or a bumped mount);
* :func:`remap` -- re-runs *only* Section 4.2 against fresh aligned
  samples, reusing the existing K-space models.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .mapping import AlignedSample, fit_mapping
from .system import LearnedSystem


@dataclass
class DriftMonitor:
    """Flags persistent post-TP power degradation.

    Feed it the received power observed right after each realignment;
    it trips when the rolling median falls more than
    ``degradation_db`` below the baseline established at deployment.
    """

    degradation_db: float = 6.0
    window: int = 25
    baseline_samples: int = 25

    def __post_init__(self) -> None:
        if self.degradation_db <= 0:
            raise ValueError("degradation threshold must be positive")
        if self.window < 3 or self.baseline_samples < 3:
            raise ValueError("windows need at least 3 samples")
        self._baseline: List[float] = []
        self._recent = deque(maxlen=self.window)

    @property
    def baseline_dbm(self) -> Optional[float]:
        """Median post-TP power at deployment (None while learning)."""
        if len(self._baseline) < self.baseline_samples:
            return None
        return float(np.median(self._baseline))

    @property
    def recent_dbm(self) -> Optional[float]:
        """Rolling median of the monitored window (None until full)."""
        if len(self._recent) < self.window:
            return None
        return float(np.median(self._recent))

    @property
    def deficit_db(self) -> float:
        """How far the recent median sits below the baseline (>= 0).

        Zero while either median is still being learned; the supervisor
        logs this alongside its escalation events.
        """
        baseline = self.baseline_dbm
        recent = self.recent_dbm
        if baseline is None or recent is None:
            return 0.0
        return max(baseline - recent, 0.0)

    def observe(self, post_tp_power_dbm: float) -> bool:
        """Feed one observation; returns True when drift is flagged."""
        if len(self._baseline) < self.baseline_samples:
            self._baseline.append(float(post_tp_power_dbm))
            return False
        self._recent.append(float(post_tp_power_dbm))
        if len(self._recent) < self.window:
            return False
        recent = float(np.median(self._recent))
        return recent < self.baseline_dbm - self.degradation_db

    def reset(self) -> None:
        """Forget everything (call after a successful re-training)."""
        self._baseline.clear()
        self._recent.clear()


def remap(system: LearnedSystem,
          fresh_samples: List[AlignedSample]) -> LearnedSystem:
    """Section 4.2 only: refit the 12 mapping parameters.

    The existing system's K-space models are reused untouched (they
    describe the physical units, which did not change); its current
    mapping parameters seed the fit, so a small drift converges in a
    few optimizer steps.
    """
    # The TX's previous VR placement is already baked into
    # tx_model_vr, so the refit treats *that* as the base model and
    # fits a correction starting from identity; the RX side seeds from
    # its current mapping.  A small drift therefore converges in a few
    # optimizer steps.
    from ..geometry import RigidTransform
    seed = np.concatenate([
        RigidTransform.identity().to_params(),
        system.rx_mapping.to_params(),
    ])
    return fit_mapping(system.tx_model_vr, system.rx_model_kspace,
                       fresh_samples, seed)
