"""The pointing mechanism ``P`` (Section 4.3).

``P(VRH position) -> (v_tx1, v_tx2, v_rx1, v_rx2)``: from one tracking
report, compute the four GM voltages that re-align the beam.  Per
Lemma 1 the target configuration makes each beam's originating point
coincide with the other beam's strike point, so the algorithm
alternates:

1. evaluate both ``G`` models to get the originating points ``p_t``
   and ``p_r``;
2. aim each GMA at the *other* side's originating point via ``G'``;
3. repeat until the voltages move by less than the minimum GM step.

Converges in 2-5 iterations (matching the paper), because after the
first round each originating point moves only fractions of a
millimeter per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..vrh import Pose
from . import inverse
from .system import LearnedSystem

#: Default cap mirroring the paper's observed 2-5 iterations, padded.
MAX_POINTING_ITERATIONS = 20


class PointingDivergedError(RuntimeError):
    """Raised when the fixed-point iteration fails to settle."""


@dataclass(frozen=True)
class PointingCommand:
    """Output of ``P``: the four voltages plus diagnostics."""

    v_tx1: float
    v_tx2: float
    v_rx1: float
    v_rx2: float
    iterations: int

    @property
    def tx_voltages(self) -> Tuple[float, float]:
        return self.v_tx1, self.v_tx2

    @property
    def rx_voltages(self) -> Tuple[float, float]:
        return self.v_rx1, self.v_rx2


def cold_start_seed(system: LearnedSystem, reported_pose: Pose,
                    voltage_step_v: float = inverse.DEFAULT_VOLTAGE_STEP_V
                    ) -> Tuple[float, float, float, float]:
    """A pose-derived initial guess for ``point`` with no prior command.

    Seeding the fixed-point iteration with all-zero voltages assumes
    the headset sits near both GMAs' rest beams; far from home that
    guess costs extra iterations or diverges outright.  This runs the
    cheap half of one pointing round from rest: aim each GMA at the
    other side's *rest* originating point via one ``G'`` solve each.
    Falls back to the rest voltages if either solve diverges.
    """
    tx = system.tx_model_vr
    rx = system.rx_model_vr(reported_pose)
    p_t = tx.beam(0.0, 0.0).origin
    p_r = rx.beam(0.0, 0.0).origin
    try:
        tx_solution = inverse.solve(tx, p_r, 0.0, 0.0,
                                    voltage_step_v=voltage_step_v)
        rx_solution = inverse.solve(rx, p_t, 0.0, 0.0,
                                    voltage_step_v=voltage_step_v)
    except inverse.InverseDivergedError:
        return (0.0, 0.0, 0.0, 0.0)
    return (tx_solution.v1, tx_solution.v2,
            rx_solution.v1, rx_solution.v2)


def point(system: LearnedSystem, reported_pose: Pose,
          initial: Sequence[float] = (0.0, 0.0, 0.0, 0.0),
          voltage_step_v: float = inverse.DEFAULT_VOLTAGE_STEP_V,
          max_iterations: int = MAX_POINTING_ITERATIONS) -> PointingCommand:
    """Compute the realignment voltages for one tracking report.

    ``initial`` seeds the iteration; in steady-state operation the
    previous command is the natural (and fastest) seed, exactly as the
    prototype operates between consecutive VRH-T reports.
    """
    v_tx1, v_tx2, v_rx1, v_rx2 = (float(v) for v in initial)
    tx = system.tx_model_vr
    rx = system.rx_model_vr(reported_pose)
    for iteration in range(1, max_iterations + 1):
        p_t = tx.beam(v_tx1, v_tx2).origin
        p_r = rx.beam(v_rx1, v_rx2).origin
        tx_solution = inverse.solve(tx, p_r, v_tx1, v_tx2,
                                    voltage_step_v=voltage_step_v)
        rx_solution = inverse.solve(rx, p_t, v_rx1, v_rx2,
                                    voltage_step_v=voltage_step_v)
        moved = max(abs(tx_solution.v1 - v_tx1),
                    abs(tx_solution.v2 - v_tx2),
                    abs(rx_solution.v1 - v_rx1),
                    abs(rx_solution.v2 - v_rx2))
        v_tx1, v_tx2 = tx_solution.v1, tx_solution.v2
        v_rx1, v_rx2 = rx_solution.v1, rx_solution.v2
        if moved < voltage_step_v:
            return PointingCommand(v_tx1=v_tx1, v_tx2=v_tx2,
                                   v_rx1=v_rx1, v_rx2=v_rx2,
                                   iterations=iteration)
    raise PointingDivergedError(
        f"pointing did not settle in {max_iterations} iterations")
