"""The reverse GMA function ``G'`` (Section 4.3).

``G'`` maps a target point ``tau`` to the voltage pair whose beam
passes through ``tau``.  No extra training is needed: the paper's
purely computational iteration linearizes ``G`` around the current
voltages via two finite differences, projects everything onto the plane
``P`` through ``tau`` perpendicular to the current beam, and solves a
2x2 system for the voltage update.  It converges in 2-4 iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from ..geometry import NoIntersectionError, Plane, Ray
from .gma import GmaModel

#: Finite-difference voltage step for the local linearization.
EPSILON_V = 0.01

#: Default convergence threshold: the DAQ's 16-bit voltage step.
DEFAULT_VOLTAGE_STEP_V = 20.0 / 2 ** 16


class InverseDivergedError(RuntimeError):
    """Raised when the G' iteration fails to converge on a target."""


@dataclass(frozen=True)
class InverseResult:
    """Solution of ``G'(tau)``: voltages plus convergence diagnostics."""

    v1: float
    v2: float
    iterations: int
    miss_distance_m: float


def _intersection(beam: Ray, plane: Plane) -> np.ndarray:
    """Beam-plane intersection, tolerant of backwards geometry."""
    return plane.intersect_ray(beam, forward_only=False)


def solve(model: GmaModel, target: npt.ArrayLike,
          v1: float = 0.0, v2: float = 0.0,
          voltage_step_v: float = DEFAULT_VOLTAGE_STEP_V,
          max_iterations: int = 25) -> InverseResult:
    """Find voltages whose modelled beam passes through ``target``.

    Follows Section 4.3's four steps per iteration:

    1. evaluate ``G`` at ``(v1, v2)``, ``(v1 + eps, v2)`` and
       ``(v1, v2 + eps)``;
    2. build the plane ``P`` through ``tau`` perpendicular to the
       current beam, and intersect all three beams with it (``k0``,
       ``k1``, ``k2``);
    3. express the required in-plane displacement ``tau - k0`` in the
       basis of the per-epsilon displacements ``u1 = k1 - k0`` and
       ``u2 = k2 - k0`` by a least-squares 2x2 solve for ``(a, b)``;
    4. update ``v1 += a * eps``, ``v2 += b * eps``; stop once the
       update falls below the GM's minimum voltage step.
    """
    tau = np.asarray(target, dtype=float)
    for iteration in range(1, max_iterations + 1):
        beam0 = model.beam(v1, v2)
        plane = Plane(tau, beam0.direction)
        try:
            k0 = _intersection(beam0, plane)
            k1 = _intersection(model.beam(v1 + EPSILON_V, v2), plane)
            k2 = _intersection(model.beam(v1, v2 + EPSILON_V), plane)
        except NoIntersectionError as exc:
            raise InverseDivergedError(
                f"beam became parallel to the target plane: {exc}") from exc
        u1 = (k1 - k0) / EPSILON_V
        u2 = (k2 - k0) / EPSILON_V
        basis = np.column_stack([u1, u2])
        coeffs, *_ = np.linalg.lstsq(basis, tau - k0, rcond=None)
        a, b = float(coeffs[0]), float(coeffs[1])
        v1 += a
        v2 += b
        if max(abs(a), abs(b)) < voltage_step_v:
            miss = model.beam(v1, v2).distance_to_point(tau)
            return InverseResult(v1=v1, v2=v2, iterations=iteration,
                                 miss_distance_m=miss)
    raise InverseDivergedError(
        f"G' did not converge on {tau} in {max_iterations} iterations")
