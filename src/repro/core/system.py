"""The learned Cyclops system: both GMA models placed in VR-space.

After Section 4.1 (K-space models) and Section 4.2 (mapping
parameters), the pointing mechanism needs exactly three things:

* the TX GMA model expressed directly in VR-space (TX is static, so
  its mapping is a fixed rigid transform);
* the RX GMA model in its own K-space;
* the RX mapping: where the RX GMA sits *relative to the headset
  reference point X* whose pose VRH-T reports.  The RX model's
  VR-space placement is then recomputed from every tracking report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from ..galvo import GmaParams
from ..geometry import RigidTransform
from ..vrh import Pose
from .gma import GmaModel


@dataclass(frozen=True)
class LearnedSystem:
    """Everything the real-time pointing function ``P`` consumes."""

    tx_model_vr: GmaModel
    rx_model_kspace: GmaModel
    rx_mapping: RigidTransform

    @classmethod
    def from_mapping_params(cls, tx_kspace: GmaModel, rx_kspace: GmaModel,
                            mapping_params: npt.ArrayLike
                            ) -> "LearnedSystem":
        """Assemble from the 12 mapping parameters of Section 4.2.

        The first six place TX's K-space in VR-space; the last six
        place RX's K-space relative to the reported headset point.
        """
        params = np.asarray(mapping_params, dtype=float)
        if params.shape != (12,):
            raise ValueError(f"expected 12 mapping parameters, "
                             f"got shape {params.shape}")
        tx_transform = RigidTransform.from_params(params[:6])
        rx_transform = RigidTransform.from_params(params[6:])
        return cls(tx_model_vr=tx_kspace.transformed(tx_transform),
                   rx_model_kspace=rx_kspace,
                   rx_mapping=rx_transform)

    def rx_model_vr(self, reported_pose: Pose) -> GmaModel:
        """The RX GMA model in VR-space for one tracking report."""
        placement = reported_pose.as_transform().compose(self.rx_mapping)
        return self.rx_model_kspace.transformed(placement)

    def tx_params(self) -> GmaParams:
        """Convenience accessor for the TX parameters in VR-space."""
        return self.tx_model_vr.params
