"""Numerical checks of Lemma 1.

Lemma 1 is the keystone of Cyclops: the GM configuration maximizing
received power is the one making ``p_t`` coincide with ``tau_r`` and
``p_r`` with ``tau_t``.  The whole pointing design (Sections 4.2-4.3)
rests on it.  These helpers verify the claim against the simulated
physics and are used by both tests and the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np


@dataclass(frozen=True)
class LemmaCheck:
    """Outcome of one coincidence-vs-power comparison."""

    coincidence_error_m: float
    received_power_dbm: float


def sweep(power_fn: Callable[..., float],
          coincidence_fn: Callable[..., float],
          voltage_sets: Sequence[Sequence[float]]) -> List[LemmaCheck]:
    """Evaluate power and coincidence error over voltage settings.

    ``power_fn`` and ``coincidence_fn`` both take the four voltages.
    Returns a list of :class:`LemmaCheck`; callers assert that the
    power-maximizing entry also (nearly) minimizes the coincidence
    error, and that the relationship is monotone in the small-error
    regime.
    """
    checks = []
    for voltages in voltage_sets:
        checks.append(LemmaCheck(
            coincidence_error_m=coincidence_fn(*voltages),
            received_power_dbm=power_fn(*voltages)))
    return checks


def rank_agreement(checks: Sequence[LemmaCheck]) -> float:
    """Spearman-style agreement between power and -coincidence error.

    Returns a correlation in [-1, 1]; Lemma 1 predicts a value near +1
    (higher power goes with smaller coincidence error).
    """
    if len(checks) < 3:
        raise ValueError("need at least 3 checks to rank")
    errors = np.array([c.coincidence_error_m for c in checks])
    powers = np.array([c.received_power_dbm for c in checks])
    error_ranks = np.argsort(np.argsort(-errors)).astype(float)
    power_ranks = np.argsort(np.argsort(powers)).astype(float)
    error_ranks -= error_ranks.mean()
    power_ranks -= power_ranks.mean()
    denom = float(np.linalg.norm(error_ranks) * np.linalg.norm(power_ranks))
    if denom == 0.0:
        return 0.0
    return float(np.dot(error_ranks, power_ranks) / denom)
