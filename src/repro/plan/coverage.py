"""Ceiling-deployment coverage planning (the Section 3 deployment
story).

"To maintain clear LOS, we envision affixing the TX on the ceiling...
To circumvent occasional occlusions and/or limited field-of-view
coverage of the GMs, we can use multiple TXs on the ceiling."  This
module answers the planning questions that raises: given a room, a GM
coverage cone, and a link-budget range limit, which floor positions
does a TX serve, how many TXs does a room need, and where should they
go?
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np



@dataclass(frozen=True)
class Room:
    """A rectangular play space."""

    width_m: float
    depth_m: float
    ceiling_height_m: float = 2.6
    head_height_m: float = 1.5

    def __post_init__(self):
        if min(self.width_m, self.depth_m) <= 0:
            raise ValueError("room dimensions must be positive")
        if self.ceiling_height_m <= self.head_height_m:
            raise ValueError("ceiling must be above head height")

    @property
    def vertical_gap_m(self) -> float:
        return self.ceiling_height_m - self.head_height_m

    def grid(self, resolution_m: float = 0.1) -> np.ndarray:
        """(n, 2) head positions covering the floor plan."""
        xs = np.arange(resolution_m / 2, self.width_m, resolution_m)
        ys = np.arange(resolution_m / 2, self.depth_m, resolution_m)
        return np.array([[x, y] for x in xs for y in ys])


@dataclass(frozen=True)
class CoverageConstraints:
    """What limits a single TX's service area."""

    # The GM coverage cone: +/-10 V at 2 optical degrees per volt.
    cone_half_angle_rad: float = math.radians(20.0)
    # Link budget bounds on range (Section 5.1's 1.5-2 m prototype
    # stretches a little in deployment; power falls with range).
    max_range_m: float = 2.5
    min_range_m: float = 0.2


def tx_covers(tx_xy, head_xy, room: Room,
              constraints: CoverageConstraints) -> bool:
    """Can a ceiling TX at ``tx_xy`` serve a head at ``head_xy``?

    The TX's rest beam points straight down; the GM must steer to the
    head within its cone, and the range must close the link budget.
    The RX side is symmetric (its own GM re-aims continuously), so the
    TX cone and range are the binding constraints.
    """
    tx = np.asarray(tx_xy, dtype=float)
    head = np.asarray(head_xy, dtype=float)
    lateral = float(np.linalg.norm(head - tx))
    vertical = room.vertical_gap_m
    range_m = math.hypot(lateral, vertical)
    if not constraints.min_range_m <= range_m <= constraints.max_range_m:
        return False
    angle = math.atan2(lateral, vertical)
    return angle <= constraints.cone_half_angle_rad


@dataclass
class CoveragePlan:
    """TX positions and the resulting floor coverage."""

    room: Room
    constraints: CoverageConstraints
    tx_positions: List[Tuple[float, float]] = field(default_factory=list)

    def coverage_mask(self, resolution_m: float = 0.1) -> np.ndarray:
        """Boolean per grid point: served by at least one TX."""
        grid = self.room.grid(resolution_m)
        mask = np.zeros(len(grid), dtype=bool)
        for tx in self.tx_positions:
            mask |= np.array([
                tx_covers(tx, head, self.room, self.constraints)
                for head in grid])
        return mask

    def coverage_fraction(self, resolution_m: float = 0.1) -> float:
        """Fraction of the floor plan served."""
        mask = self.coverage_mask(resolution_m)
        if mask.size == 0:
            return 0.0
        return float(np.mean(mask))

    def redundancy_fraction(self, resolution_m: float = 0.1) -> float:
        """Fraction served by >= 2 TXs (where handover can help)."""
        grid = self.room.grid(resolution_m)
        counts = np.zeros(len(grid), dtype=int)
        for tx in self.tx_positions:
            counts += np.array([
                tx_covers(tx, head, self.room, self.constraints)
                for head in grid], dtype=int)
        if counts.size == 0:
            return 0.0
        return float(np.mean(counts >= 2))


def service_radius_m(room: Room,
                     constraints: CoverageConstraints) -> float:
    """Lateral radius one ceiling TX serves (cone and range bound)."""
    by_cone = room.vertical_gap_m * math.tan(
        constraints.cone_half_angle_rad)
    range_sq = constraints.max_range_m ** 2 - room.vertical_gap_m ** 2
    by_range = math.sqrt(range_sq) if range_sq > 0 else 0.0
    return min(by_cone, by_range)


def plan_greedy(room: Room,
                constraints: CoverageConstraints = CoverageConstraints(),
                target_fraction: float = 0.95,
                resolution_m: float = 0.15,
                max_txs: int = 64) -> CoveragePlan:
    """Greedy TX placement until the target coverage is met.

    Repeatedly places a TX over the grid point that covers the most
    currently-unserved head positions -- the standard greedy set-cover
    heuristic, within a ln(n) factor of optimal.
    """
    if not 0.0 < target_fraction <= 1.0:
        raise ValueError("target fraction must be in (0, 1]")
    grid = room.grid(resolution_m)
    uncovered = np.ones(len(grid), dtype=bool)
    plan = CoveragePlan(room=room, constraints=constraints)
    candidates = grid  # TXs may sit over any head position
    # Precompute pairwise service (candidates x heads).
    radius = service_radius_m(room, constraints)
    deltas = candidates[:, None, :] - grid[None, :, :]
    distances = np.linalg.norm(deltas, axis=2)
    serves = distances <= radius
    while np.mean(~uncovered) < target_fraction:
        gains = serves[:, uncovered].sum(axis=1)
        best = int(np.argmax(gains))
        if gains[best] == 0 or len(plan.tx_positions) >= max_txs:
            break
        plan.tx_positions.append((float(candidates[best, 0]),
                                  float(candidates[best, 1])))
        uncovered &= ~serves[best]
    return plan
