"""Deployment planning: ceiling TX coverage of a play space."""

from .coverage import (
    CoverageConstraints,
    CoveragePlan,
    Room,
    plan_greedy,
    service_radius_m,
    tx_covers,
)

__all__ = [
    "CoverageConstraints",
    "CoveragePlan",
    "Room",
    "plan_greedy",
    "service_radius_m",
    "tx_covers",
]
