"""Columnar on-disk dataset store (trace corpora, slot results).

See :mod:`repro.store.columnar` for the layout and contracts, and
:mod:`repro.store.atomic` for the all-or-nothing sidecar-file writes
that share its crash model.
"""

from .atomic import fsync_path, fsync_tree, read_json, write_json_atomic
from .columnar import ColumnGroup, ColumnStore, GroupWriter, StoreError

__all__ = [
    "ColumnGroup",
    "ColumnStore",
    "GroupWriter",
    "StoreError",
    "fsync_path",
    "fsync_tree",
    "read_json",
    "write_json_atomic",
]
