"""Columnar on-disk dataset store (trace corpora, slot results).

See :mod:`repro.store.columnar` for the layout and contracts.
"""

from .columnar import ColumnGroup, ColumnStore, GroupWriter

__all__ = [
    "ColumnGroup",
    "ColumnStore",
    "GroupWriter",
]
