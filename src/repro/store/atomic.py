"""Atomic publication of small sidecar files (JSON payloads).

Every artifact this repo publishes next to a run — ``BENCH_*.json``
records, sweep manifests, sweep payloads — must obey the same crash
model as the column groups: a reader either sees the previous complete
file or the new complete file, never a torn prefix.  The recipe is the
classic one: write to a same-directory temp file, flush, ``fsync``,
then ``os.replace`` onto the destination (atomic on POSIX within one
filesystem, which a same-directory sibling guarantees).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Union


def write_json_atomic(path: Union[str, Path], payload: object,
                      indent: int = 2,
                      sort_keys: bool = False) -> Path:
    """Publish ``payload`` as JSON at ``path`` all-or-nothing.

    A crash (or SIGKILL) at any point leaves either the old file or
    the new one — the temp sibling is the only casualty, and it is
    overwritten by the next attempt.  The serialized form matches the
    repo's house style: indented, trailing newline.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=indent, sort_keys=sort_keys)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def read_json(path: Union[str, Path]) -> object:
    """Load a JSON sidecar; raises ``OSError``/``ValueError`` as-is."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def fsync_path(path: Union[str, Path]) -> None:
    """``fsync`` one existing file or directory by path."""
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_tree(path: Union[str, Path]) -> None:
    """``fsync`` every regular file under ``path``, then ``path``.

    The durability half of the directory-level tmp→rename recipe: an
    ``os.replace`` of a directory is only crash-safe once the file
    *bytes* and the directory *entries* inside it are on disk —
    otherwise the rename can survive a crash while the renamed
    contents do not.  Call this on the tmp directory immediately
    before publishing it.
    """
    root = Path(path)
    for child in sorted(root.rglob("*")):
        if child.is_file():
            fsync_path(child)
    try:
        fsync_path(root)
    except OSError:  # platforms without directory fsync
        pass
