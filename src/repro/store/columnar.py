"""A columnar, memmap-friendly dataset store.

Million-trace corpora do not fit a pickle, barely fit RAM, and must
never be rematerialized just to read one column.  This module stores
datasets as *column groups*: one directory per group, one ``.npy``
file per column, plus a ``meta.json`` sidecar with the row count,
column catalogue and user attributes::

    <root>/
      traces/
        meta.json
        step_linear_m.npy
        step_angular_rad.npy
        ...
      slots/
        meta.json
        connected.npy
        ...

Design points, in order of importance:

* **Lazy, zero-copy reads.**  :meth:`ColumnStore.read_group` opens
  columns with ``np.load(..., mmap_mode="r")``: nothing is read until
  a column is touched, and touching one pages in only the slices the
  caller indexes.  A million-trace ``connected`` matrix streams from
  disk instead of living in RAM.
* **Preallocated streaming writes.**  :meth:`ColumnStore.open_writer`
  creates the full-size ``.npy`` files up front (numpy's own format,
  via ``open_memmap``) and hands back writable row-addressable
  memmaps.  ``repro.parallel.parallel_map_arrays`` recognizes these
  and lets pool workers write their rows *directly into the store*,
  so a sweep spools results to disk as it runs.  The group only
  becomes visible (``meta.json`` written) at :meth:`GroupWriter.
  finalize`, so a crashed run never leaves a readable half-group.
* **Single-file interchange.**  :meth:`ColumnStore.export_npz` /
  :meth:`ColumnStore.import_npz` round-trip a group through one
  ``.npz`` archive for shipping; the directory layout stays the
  operational format because zip members cannot be memmapped.

The store is deliberately dumb: named arrays plus JSON attributes.
Schema (which columns make a trace corpus) belongs to the callers —
see ``repro.motion.batch.TraceBatch.save`` and
``repro.simulate.batch.BatchTimeslotResult.save``.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import tempfile
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

import numpy as np

from .atomic import fsync_path, fsync_tree

#: Group and column names: filesystem-safe, no separators, no dots.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_\-]*$")

#: meta.json schema version (bump on incompatible layout changes).
_FORMAT_VERSION = 1

_META = "meta.json"


class StoreError(RuntimeError):
    """A group's on-disk state is corrupt, torn, or unreadable.

    Raised instead of whatever ``json`` / ``numpy`` would surface
    (``JSONDecodeError``, a bare ``ValueError`` from a truncated
    ``.npy``, ``FileNotFoundError`` for a missing column) so callers
    can distinguish *corruption* from programming errors and react —
    the sweep orchestrator, for instance, treats a corrupt unit group
    as "not done" and recomputes it.
    """


def _check_name(kind: str, name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"invalid {kind} name {name!r}: use letters, digits, "
            "underscore and dash only")
    return name


class ColumnGroup:
    """One named group of columns, read lazily from disk.

    Mapping-style access (``group["connected"]``) returns the column
    as a (possibly memmapped) array; ``attrs`` carries the JSON
    metadata recorded at write time.
    """

    def __init__(self, name: str, path: Path,
                 columns: List[str], rows: int, attrs: Dict,
                 mmap: bool = True,
                 column_specs: Optional[Dict[str, Dict]] = None) -> None:
        self.name = name
        self.path = path
        self.attrs = attrs
        self.rows = rows
        self._columns = list(columns)
        self._specs = dict(column_specs or {})
        self._mmap = mmap
        self._cache: Dict[str, np.ndarray] = {}

    @property
    def column_names(self) -> List[str]:
        return list(self._columns)

    def __contains__(self, name: object) -> bool:
        return name in self._columns

    def __iter__(self) -> Iterator[str]:
        return iter(self._columns)

    def __len__(self) -> int:
        return self.rows

    def __getitem__(self, name: str) -> np.ndarray:
        if name not in self._columns:
            raise KeyError(
                f"group {self.name!r} has no column {name!r}; "
                f"available: {', '.join(sorted(self._columns))}")
        if name not in self._cache:
            mode = "r" if self._mmap else None
            path = self.path / f"{name}.npy"
            try:
                array = np.load(path, mmap_mode=mode)
            except FileNotFoundError as exc:
                raise StoreError(
                    f"group {self.name!r}: column file {name}.npy is "
                    f"missing from {self.path} (meta.json lists it; "
                    "the group is corrupt)") from exc
            except (ValueError, OSError, EOFError) as exc:
                raise StoreError(
                    f"group {self.name!r}: column file {name}.npy is "
                    f"truncated or corrupt ({exc})") from exc
            spec = self._specs.get(name)
            if spec is not None and (
                    list(array.shape) != list(spec.get("shape", [])) or
                    array.dtype.str != spec.get("dtype")):
                raise StoreError(
                    f"group {self.name!r}: column {name!r} on disk is "
                    f"{array.dtype.str}{list(array.shape)} but "
                    f"meta.json promises {spec.get('dtype')}"
                    f"{spec.get('shape')} (torn or mismatched write)")
            self._cache[name] = array
        return self._cache[name]

    def load(self, name: str) -> np.ndarray:
        """The column fully materialized in RAM (a mutable copy)."""
        return np.array(self[name])

    def as_dict(self) -> Dict[str, np.ndarray]:
        """All columns (lazily opened), keyed by name."""
        return {name: self[name] for name in self._columns}


class GroupWriter:
    """Streaming writer for one group: preallocated column memmaps.

    Obtained from :meth:`ColumnStore.open_writer`.  ``columns[name]``
    is a writable ``np.memmap`` with one row per dataset item; fill
    rows in any order (workers do), then call :meth:`finalize` to
    flush and publish the group.  Until then the group directory is a
    hidden ``.tmp`` sibling, so readers never observe a torn write.
    """

    def __init__(self, store: "ColumnStore", name: str, rows: int,
                 columns: Dict[str, np.memmap], attrs: Dict) -> None:
        self._store = store
        self.name = name
        self.rows = rows
        self.columns = columns
        self.attrs = dict(attrs)
        self._tmp = store.root / f".{name}.tmp"
        self._done = False

    def finalize(self,
                 extra_attrs: Optional[Mapping] = None) -> ColumnGroup:
        """Flush every column, write meta.json, publish the group."""
        if self._done:
            raise RuntimeError(f"group {self.name!r} already finalized")
        if extra_attrs:
            self.attrs.update(extra_attrs)
        for array in self.columns.values():
            array.flush()
        _write_meta(self._tmp, self.rows,
                    {name: array for name, array in self.columns.items()},
                    self.attrs)
        fsync_tree(self._tmp)
        final = self._store.root / self.name
        if final.exists():
            shutil.rmtree(final)
        os.replace(self._tmp, final)
        self._done = True
        return self._store.read_group(self.name)

    def abort(self) -> None:
        """Drop the half-written group (idempotent)."""
        self._done = True
        if self._tmp.exists():
            shutil.rmtree(self._tmp)


def _write_meta(path: Path, rows: int,
                columns: Mapping[str, np.ndarray], attrs: Mapping) -> None:
    meta = {
        "format_version": _FORMAT_VERSION,
        "rows": rows,
        "columns": {
            name: {"shape": list(array.shape),
                   "dtype": array.dtype.str}
            for name, array in columns.items()
        },
        "attrs": dict(attrs),
    }
    with open(path / _META, "w") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
        handle.write("\n")


class ColumnStore:
    """A directory of column groups (see module docstring)."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- writing ---------------------------------------------------------

    def write_group(self, name: str,
                    columns: Mapping[str, np.ndarray],
                    attrs: Optional[Mapping] = None) -> ColumnGroup:
        """Write a complete group in one call (atomic publish).

        Every column must share the same leading dimension (the row
        count).  Overwrites an existing group of the same name.
        """
        _check_name("group", name)
        if not columns:
            raise ValueError("a group needs at least one column")
        for column in columns.keys():
            _check_name("column", column)
        rows = _common_rows(columns)
        tmp = self.root / f".{name}.tmp"
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir(parents=True)
        try:
            for column, array in columns.items():
                np.save(tmp / f"{column}.npy",
                        np.ascontiguousarray(array))
            _write_meta(tmp, rows, columns, attrs or {})
            fsync_tree(tmp)
            final = self.root / name
            if final.exists():
                shutil.rmtree(final)
            os.replace(tmp, final)
        except OSError as exc:
            shutil.rmtree(tmp, ignore_errors=True)
            raise StoreError(
                f"could not publish group {name!r}: {exc}") from exc
        except Exception:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        return self.read_group(name)

    def open_writer(self, name: str,
                    specs: Mapping[str, Tuple[Tuple[int, ...], object]],
                    rows: int,
                    attrs: Optional[Mapping] = None) -> GroupWriter:
        """Preallocate a group for streaming row writes.

        ``specs`` maps column name to ``(trailing_shape, dtype)``; the
        column files are created full-size as ``(rows, *shape)``
        memmaps.  Pass ``writer.columns`` as ``out=`` to
        :func:`repro.parallel.parallel_map_arrays` to have pool
        workers spool rows straight to disk.
        """
        _check_name("group", name)
        if rows < 0:
            raise ValueError("rows must be >= 0")
        if not specs:
            raise ValueError("a group needs at least one column")
        tmp = self.root / f".{name}.tmp"
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir(parents=True)
        columns: Dict[str, np.memmap] = {}
        for column, (shape, dtype) in specs.items():
            _check_name("column", column)
            columns[column] = np.lib.format.open_memmap(
                tmp / f"{column}.npy", mode="w+",
                dtype=np.dtype(dtype), shape=(rows,) + tuple(shape))
        return GroupWriter(self, name, rows, columns, dict(attrs or {}))

    # -- reading ---------------------------------------------------------

    def read_group(self, name: str, mmap: bool = True) -> ColumnGroup:
        """Open a group; columns load lazily (memmapped by default).

        Raises :class:`KeyError` for a group that simply is not there
        and :class:`StoreError` for one that exists but is unreadable
        (mangled ``meta.json``, bad schema) — the distinction callers
        need to tell "not written yet" from "written and torn".
        """
        _check_name("group", name)
        path = self.root / name
        meta_path = path / _META
        if not meta_path.exists():
            raise KeyError(
                f"no group {name!r} in {self.root} "
                f"(available: {', '.join(self.groups()) or 'none'})")
        try:
            with open(meta_path) as handle:
                meta = json.load(handle)
        except (ValueError, OSError) as exc:
            raise StoreError(
                f"group {name!r}: mangled {_META} ({exc})") from exc
        columns = meta.get("columns")
        rows = meta.get("rows")
        if not isinstance(meta, dict) or not isinstance(columns, dict) \
                or not isinstance(rows, int) or rows < 0:
            raise StoreError(
                f"group {name!r}: {_META} does not describe a column "
                f"group (need integer 'rows' and a 'columns' table)")
        return ColumnGroup(name, path, sorted(columns),
                           rows, meta.get("attrs", {}),
                           mmap=mmap, column_specs=columns)

    def groups(self) -> List[str]:
        """Names of the published groups, sorted."""
        if not self.root.exists():
            return []
        return sorted(p.name for p in self.root.iterdir()
                      if p.is_dir() and not p.name.startswith(".")
                      and (p / _META).exists())

    def has_group(self, name: str) -> bool:
        return (self.root / name / _META).exists()

    def delete_group(self, name: str) -> None:
        _check_name("group", name)
        path = self.root / name
        if path.exists():
            shutil.rmtree(path)

    # -- maintenance -----------------------------------------------------

    def vacuum(self) -> List[str]:
        """Reap orphaned ``.{name}.tmp`` dirs left by crashed writers.

        A writer that dies before :meth:`GroupWriter.finalize` leaves
        its hidden tmp directory behind; readers never see it, but the
        garbage accumulates forever.  Call this only when no writer is
        active on the store (it cannot tell a stale tmp dir from a
        live one).  Returns the names of the directories removed.
        """
        removed: List[str] = []
        for path in sorted(self.root.glob(".*.tmp")):
            if path.is_dir():
                shutil.rmtree(path, ignore_errors=True)
                removed.append(path.name)
        return removed

    # -- interchange -----------------------------------------------------

    def export_npz(self, name: str,
                   path: Union[str, Path, None] = None) -> Path:
        """Pack a group into one uncompressed ``.npz`` archive."""
        group = self.read_group(name)
        target = Path(path) if path is not None \
            else self.root / f"{name}.npz"
        payload = {column: np.asarray(group[column]) for column in group}
        payload["__meta__"] = np.frombuffer(
            json.dumps({"rows": group.rows, "attrs": group.attrs},
                       sort_keys=True).encode(), dtype=np.uint8)
        # Tmp sibling already ending in .npz so np.savez appends
        # nothing; fsync + rename keeps the archive all-or-nothing.
        tmp = target.with_name(f".{target.name}.tmp.npz")
        np.savez(tmp, **payload)
        fsync_path(tmp)
        os.replace(tmp, target)
        return target

    def import_npz(self, name: str, path: Union[str, Path]) -> ColumnGroup:
        """Unpack an :meth:`export_npz` archive into a group."""
        with np.load(path) as archive:
            meta = json.loads(bytes(archive["__meta__"]).decode()) \
                if "__meta__" in archive.files else {"attrs": {}}
            columns = {column: archive[column]
                       for column in archive.files
                       if column != "__meta__"}
        return self.write_group(name, columns, attrs=meta.get("attrs", {}))


def _common_rows(columns: Mapping[str, np.ndarray]) -> int:
    rows = {int(np.asarray(array).shape[0]) if np.asarray(array).ndim
            else -1 for array in columns.values()}
    if len(rows) != 1 or -1 in rows:
        raise ValueError(
            "all columns must share the same leading (row) dimension; "
            "got " + ", ".join(
                f"{name}: {np.asarray(a).shape}"
                for name, a in sorted(columns.items())))
    return rows.pop()


def scratch_store(prefix: str = "repro-store-") -> ColumnStore:
    """A throwaway store under the system temp dir (caller cleans up)."""
    return ColumnStore(tempfile.mkdtemp(prefix=prefix))
