"""Evaluation harnesses: the testbed, live sessions, and trace replay."""

from .availability import AvailabilityReport, report, simulate_dataset
from .batch import BatchTimeslotResult, simulate_batch
from .clustering import ClusteringReport, analyze
from .handover import (
    HandoverController,
    HandoverResult,
    MultiTxRig,
    OcclusionEvent,
)
from .montecarlo import MetricSummary, calibration_quality, sweep_seeds
from .rig import CalibrationOutcome, Testbed
from .scenarios import SCENARIOS, Scenario, get_scenario, list_scenarios
from .session import PrototypeSession, SessionResult, surviving_speed_threshold
from .supervisor import Supervisor
from .timeslot import TimeslotParams, TimeslotResult, simulate_trace

__all__ = [
    "AvailabilityReport",
    "BatchTimeslotResult",
    "CalibrationOutcome",
    "ClusteringReport",
    "HandoverController",
    "HandoverResult",
    "MetricSummary",
    "MultiTxRig",
    "OcclusionEvent",
    "PrototypeSession",
    "SCENARIOS",
    "Scenario",
    "SessionResult",
    "Supervisor",
    "Testbed",
    "TimeslotParams",
    "TimeslotResult",
    "analyze",
    "calibration_quality",
    "get_scenario",
    "list_scenarios",
    "report",
    "simulate_batch",
    "simulate_dataset",
    "simulate_trace",
    "sweep_seeds",
    "surviving_speed_threshold",
]
