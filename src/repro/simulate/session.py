"""The live prototype loop (Sections 5.2-5.3).

:class:`PrototypeSession` runs the full closed loop against a
:class:`repro.simulate.rig.Testbed`:

* the true headset pose follows a motion profile;
* VRH-T reports arrive every 12-13 ms (with its noise and its unknown
  frame);
* each report triggers the pointing function ``P``; the resulting
  voltages reach the mirrors after the control + DAC + settle latency;
* the channel is sampled every millisecond, driving the SFP link state
  machine (including the seconds-long re-lock after a loss) and the
  iperf-style windowed throughput meter.

The tolerated-speed thresholds of Figs. 13-15 / Table 3 are *read off*
these runs -- nothing in the loop knows about them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .. import constants
from ..core import (
    InverseDivergedError,
    LearnedSystem,
    PointingCommand,
    PointingDivergedError,
    point,
)
from ..link import LinkStateMachine
from ..net import ThroughputMeter, ThroughputWindow
from .rig import Testbed


@dataclass(frozen=True)
class SessionResult:
    """Everything one run produces."""

    windows: List[ThroughputWindow]
    sample_times_s: np.ndarray
    power_dbm: np.ndarray
    link_up: np.ndarray
    pointing_calls: int
    pointing_failures: int

    @property
    def uptime_fraction(self) -> float:
        if self.link_up.size == 0:
            return 0.0
        return float(np.mean(self.link_up))

    def throughputs_gbps(self) -> np.ndarray:
        return np.array([w.throughput_gbps for w in self.windows])


@dataclass
class PrototypeSession:
    """One testbed + one learned system, ready to run motions."""

    testbed: Testbed
    system: LearnedSystem
    pointing_latency_s: float = constants.DAQ_LATENCY_S
    control_latency_s: float = constants.CONTROL_CHANNEL_LATENCY_S

    def run(self, profile, duration_s: Optional[float] = None,
            dt_s: float = 1e-3, window_s: float = 0.05,
            start_aligned: bool = True) -> SessionResult:
        """Run the closed loop over a motion profile."""
        if duration_s is None:
            duration_s = profile.duration_s
        testbed = self.testbed
        tracker = testbed.tracker
        sfp = testbed.design.sfp
        meter = ThroughputMeter(sfp.optimal_throughput_gbps,
                                window_s=window_s)
        state = LinkStateMachine(sfp, initially_up=start_aligned)

        last_command = self._point(tracker.report(profile.pose_at(0.0)),
                                   seed=(0.0, 0.0, 0.0, 0.0))
        pointing_calls = 1
        pointing_failures = 0
        if start_aligned and last_command is not None:
            testbed.apply_command(last_command)

        next_report_s = tracker.next_period_s()
        pending: Optional[tuple] = None  # (apply_at_s, command)
        times, powers, ups = [], [], []
        steps = int(round(duration_s / dt_s))
        for step in range(1, steps + 1):
            t = step * dt_s
            pose = profile.pose_at(t)

            if pending is not None and t >= pending[0]:
                try:
                    testbed.apply_command(pending[1])
                    last_command = pending[1]
                except ValueError:
                    # Out of the GM coverage cone: mirrors hold still.
                    pointing_failures += 1
                pending = None

            if t >= next_report_s and pending is None:
                report = tracker.report(pose)
                seed = self._command_tuple(last_command)
                command = self._point(report, seed=seed)
                pointing_calls += 1
                if command is None:
                    pointing_failures += 1
                else:
                    apply_at = t + self.control_latency_s \
                        + self.pointing_latency_s
                    pending = (apply_at, command)
                next_report_s = t + tracker.next_period_s()

            sample = testbed.channel.evaluate(pose)
            up = state.observe(t, sample.received_power_dbm)
            meter.record(t, up, dt_s)
            times.append(t)
            powers.append(sample.received_power_dbm)
            ups.append(up)

        return SessionResult(
            windows=meter.finish(),
            sample_times_s=np.array(times),
            power_dbm=np.array(powers),
            link_up=np.array(ups, dtype=bool),
            pointing_calls=pointing_calls,
            pointing_failures=pointing_failures,
        )

    @staticmethod
    def _command_tuple(command: Optional[PointingCommand]) -> tuple:
        if command is None:
            return (0.0, 0.0, 0.0, 0.0)
        return (command.v_tx1, command.v_tx2,
                command.v_rx1, command.v_rx2)

    def _point(self, report, seed) -> Optional[PointingCommand]:
        """Run ``P``; a diverged solve means "no update this report"."""
        try:
            return point(self.system, report, initial=seed)
        except (PointingDivergedError, InverseDivergedError):
            return None


def surviving_speed_threshold(schedule, windows: List[ThroughputWindow],
                              optimal_gbps: float,
                              fraction: float = 0.9) -> float:
    """Largest stroke speed the link survived (Figs. 13/15 readout).

    A stroke "survives" when every throughput window overlapping it
    stays above ``fraction`` of the optimal throughput.  Returns the
    highest speed below the first failure, 0.0 if even the slowest
    stroke failed, and the top scheduled speed if nothing failed.
    """
    if not windows:
        raise ValueError("no throughput windows to analyze")
    threshold = 0.0
    t = 0.0
    for speed in schedule.speeds:
        for _ in range(2):  # out and back strokes at this speed
            start = t
            end = t + schedule.extent / speed
            overlapping = [w for w in windows
                           if start <= w.center_s <= end]
            survived = all(w.throughput_gbps >= fraction * optimal_gbps
                           for w in overlapping)
            if not survived:
                return threshold
            t = end + schedule.rest_s
        threshold = speed
    return threshold
