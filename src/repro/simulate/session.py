"""The live prototype loop (Sections 5.2-5.3).

:class:`PrototypeSession` runs the full closed loop against a
:class:`repro.simulate.rig.Testbed`:

* the true headset pose follows a motion profile;
* VRH-T reports arrive every 12-13 ms (with its noise and its unknown
  frame);
* each report triggers the pointing function ``P``; the resulting
  voltages reach the mirrors after the control + DAC + settle latency;
* the channel is sampled every millisecond, driving the SFP link state
  machine (including the seconds-long re-lock after a loss) and the
  iperf-style windowed throughput meter.

The loop optionally runs under *fault injection* (``faults=``, a list
of :mod:`repro.faults` models applied through wrapper interfaces -- the
core models stay untouched) and under *supervised recovery*
(``supervisor=``, a :class:`repro.simulate.supervisor.Supervisor`
implementing the watchdog / retry / hold-off / remap escalation
ladder).  Every injected fault and every recovery action lands in the
:class:`SessionResult`'s structured event log.

The tolerated-speed thresholds of Figs. 13-15 / Table 3 are *read off*
these runs -- nothing in the loop knows about them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from .. import constants
from ..core import (
    CoverageError,
    InverseDivergedError,
    LearnedSystem,
    PointingCommand,
    PointingDivergedError,
    cold_start_seed,
    point,
)
from ..faults import FaultInjector, NullInjector
from ..faults.events import EventLog, FaultMetrics, derive_metrics
from ..link import LinkStateMachine
from ..net import ThroughputMeter, ThroughputWindow
from .rig import Testbed
from .supervisor import Supervisor


@dataclass(frozen=True)
class SessionResult:
    """Everything one run produces."""

    windows: List[ThroughputWindow]
    sample_times_s: np.ndarray
    power_dbm: np.ndarray
    link_up: np.ndarray
    pointing_calls: int
    pointing_failures: int
    #: Commands rejected for leaving the GM coverage cone -- counted
    #: separately from solve divergences since the cure differs.
    coverage_failures: int = 0
    #: Structured log: every injected fault and recovery action.
    events: tuple = ()

    @property
    def uptime_fraction(self) -> float:
        if self.link_up.size == 0:
            return 0.0
        return float(np.mean(self.link_up))

    def throughputs_gbps(self) -> np.ndarray:
        return np.array([w.throughput_gbps for w in self.windows])

    # -- structured event log ------------------------------------------------

    def event_lines(self) -> List[str]:
        """Canonical one-line-per-event rendering (reproducible)."""
        return [event.line() for event in self.events]

    def event_log_text(self) -> str:
        """The whole event log as one byte-comparable string."""
        return "\n".join(self.event_lines())

    def fault_metrics(self) -> FaultMetrics:
        """Derived MTTR / availability-under-faults numbers."""
        if self.sample_times_s.size >= 2:
            dt_s = float(self.sample_times_s[1] - self.sample_times_s[0])
        else:
            dt_s = 1e-3
        return derive_metrics(self.link_up, dt_s, self.events)


@dataclass
class PrototypeSession:
    """One testbed + one learned system, ready to run motions."""

    testbed: Testbed
    system: LearnedSystem
    pointing_latency_s: float = constants.DAQ_LATENCY_S
    control_latency_s: float = constants.CONTROL_CHANNEL_LATENCY_S

    def run(self, profile, duration_s: Optional[float] = None,
            dt_s: float = 1e-3, window_s: float = 0.05,
            start_aligned: bool = True,
            faults: Union[Sequence, FaultInjector, None] = None,
            fault_seed: int = 0,
            supervisor: Optional[Supervisor] = None) -> SessionResult:
        """Run the closed loop over a motion profile.

        ``faults`` arms fault models (or a prebuilt
        :class:`~repro.faults.inject.FaultInjector`); ``fault_seed``
        seeds their schedules.  ``supervisor`` enables the recovery
        ladder; without it the loop degrades exactly as the bare
        prototype would (single pointing attempt, no hold-off, no
        mid-session remap).
        """
        if duration_s is None:
            duration_s = profile.duration_s
        testbed = self.testbed
        tracker = testbed.tracker
        sfp = testbed.design.sfp
        meter = ThroughputMeter(sfp.optimal_throughput_gbps,
                                window_s=window_s)
        state = LinkStateMachine(sfp, initially_up=start_aligned)

        log = EventLog()
        if faults is None:
            injector = NullInjector(log)
        elif isinstance(faults, (FaultInjector, NullInjector)):
            injector = faults
            log = injector.log
        else:
            injector = FaultInjector(faults, duration_s,
                                     seed=fault_seed, log=log)
        if supervisor is not None:
            supervisor.reset(log)

        system = self.system
        first_report = tracker.report(profile.pose_at(0.0))
        last_command = self._point(system, first_report,
                                   seed=cold_start_seed(system,
                                                        first_report))
        pointing_calls = 1
        pointing_failures = 0
        coverage_failures = 0
        if start_aligned and last_command is not None:
            testbed.apply_command(last_command)

        next_report_s = tracker.next_period_s()
        pending: Optional[tuple] = None  # (apply_at_s, command)
        just_applied = False
        times, powers, ups = [], [], []
        steps = int(round(duration_s / dt_s))
        for step in range(1, steps + 1):
            t = step * dt_s
            pose = profile.pose_at(t)

            if pending is not None and t >= pending[0]:
                try:
                    if injector.apply_command(t, testbed,
                                              pending[1]) is not None:
                        last_command = pending[1]
                        just_applied = True
                except CoverageError:
                    # Out of the GM coverage cone: mirrors hold still.
                    coverage_failures += 1
                pending = None

            if t >= next_report_s and pending is None:
                report = injector.tracker_report(t, tracker, pose)
                if supervisor is not None:
                    wants_pointing = (supervisor.accept_report(t, report)
                                      and not supervisor.holding(t))
                else:
                    wants_pointing = report is not None
                if wants_pointing:
                    pointing_calls += 1
                    command = self._point_with_retries(
                        t, system, report, last_command, supervisor)
                    if command is None:
                        pointing_failures += 1
                    else:
                        apply_at = (t + self.control_latency_s
                                    + self.pointing_latency_s
                                    + injector.command_latency_extra_s(t))
                        pending = (apply_at, command)
                next_report_s = t + tracker.next_period_s()

            sample = injector.channel_sample(t, testbed.channel, pose)
            power = sample.received_power_dbm
            if supervisor is not None:
                supervisor.observe_power(t, power,
                                         sfp.rx_sensitivity_dbm)
                if just_applied and not supervisor.holding(t):
                    refitted = supervisor.observe_post_tp_power(
                        t, power, testbed, injector, system)
                    if refitted is not None:
                        system = refitted
                        last_command = None
                        pending = None
                if sample.connected and last_command is not None:
                    supervisor.note_good_command(last_command)
            just_applied = False
            up = state.observe(t, power)
            meter.record(t, up, dt_s)
            times.append(t)
            powers.append(power)
            ups.append(up)

        return SessionResult(
            windows=meter.finish(),
            sample_times_s=np.array(times),
            power_dbm=np.array(powers),
            link_up=np.array(ups, dtype=bool),
            pointing_calls=pointing_calls,
            pointing_failures=pointing_failures,
            coverage_failures=coverage_failures,
            events=log.events,
        )

    def _point_with_retries(self, t: float, system: LearnedSystem,
                            report, last_command,
                            supervisor: Optional[Supervisor]
                            ) -> Optional[PointingCommand]:
        """One solve, plus the supervisor's fallback-seed ladder."""
        if last_command is not None:
            seed = self._command_tuple(last_command)
        else:
            seed = cold_start_seed(system, report)
        command = self._point(system, report, seed=seed)
        if command is not None or supervisor is None:
            return command
        attempts = 1
        for name, fallback in supervisor.fallback_seeds(
                cold_start_seed(system, report)):
            if fallback == seed:
                continue
            attempts += 1
            supervisor.note_retry(t, attempts, name)
            command = self._point(system, report, seed=fallback)
            if command is not None:
                return command
        supervisor.note_give_up(t, attempts)
        return None

    @staticmethod
    def _command_tuple(command: PointingCommand) -> tuple:
        return (command.v_tx1, command.v_tx2,
                command.v_rx1, command.v_rx2)

    @staticmethod
    def _point(system: LearnedSystem, report,
               seed) -> Optional[PointingCommand]:
        """Run ``P``; a diverged solve means "no update this report"."""
        try:
            return point(system, report, initial=seed)
        except (PointingDivergedError, InverseDivergedError):
            return None


def surviving_speed_threshold(schedule, windows: List[ThroughputWindow],
                              optimal_gbps: float,
                              fraction: float = 0.9) -> float:
    """Largest stroke speed the link survived (Figs. 13/15 readout).

    A stroke "survives" when every throughput window overlapping it
    stays above ``fraction`` of the optimal throughput.  Returns the
    highest speed below the first failure, 0.0 if even the slowest
    stroke failed, and the top scheduled speed if nothing failed.
    """
    if not windows:
        raise ValueError("no throughput windows to analyze")
    threshold = 0.0
    t = 0.0
    for speed in schedule.speeds:
        for _ in range(2):  # out and back strokes at this speed
            start = t
            end = t + schedule.extent / speed
            overlapping = [w for w in windows
                           if start <= w.center_s <= end]
            survived = all(w.throughput_gbps >= fraction * optimal_gbps
                           for w in overlapping)
            if not survived:
                return threshold
            t = end + schedule.rest_s
        threshold = speed
    return threshold
