"""The Section 5.4 trace-driven link simulation.

The paper's methodology, verbatim: time is divided into 1 ms slots; the
link starts aligned; whenever a head position is reported (every 10 ms
in the traces), the TP mechanism realigns in 1-2 ms leaving a residual
lateral error of 4.54 mm and angular error of 4.54/1.75 mrad (Table 2's
combined RX error over the 1.75 m link).  Between reports the beam
drifts at the trace's inter-report rate, and a slot is marked
disconnected when the accumulated lateral or angular error exceeds the
25G link's tolerances (6 mm, 8.73 mrad).

Two implementations coexist: ``simulate_trace`` is a fully vectorized
NumPy formulation (per-report drift ramps via broadcasting, realignment
resets via per-segment ``cumsum``), and ``_simulate_trace_reference``
retains the original slot-by-slot Python loop.  The vectorized model is
bit-compatible with the loop — every floating-point addition happens in
the same order (``np.cumsum`` accumulates sequentially) — and the
property tests in ``tests/test_simulate_timeslot.py`` assert the two
produce element-wise identical ``connected`` arrays across randomized
parameters and traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants
from ..motion import HeadTrace


@dataclass(frozen=True)
class TimeslotParams:
    """The Section 5.4 simulation constants (all overridable).

    ``tp_latency_slots`` is the number of slots after a report before
    the realignment lands.  If it reaches or exceeds the report period
    (``slots_per_report``, i.e. ``trace.dt_s / slot_s``) the
    realignment never lands inside any report interval — the next
    report supersedes it first — so the error drifts without bound.
    That is a deliberately modelled "TP too slow" regime (see
    ``simulate_trace``), not a configuration error, so it is allowed
    and covered by regression tests rather than rejected here.
    """

    slot_s: float = constants.TRACE_SLOT_S
    tp_latency_slots: int = 2
    residual_lateral_m: float = constants.TRACE_TP_LATERAL_ERROR_M
    residual_angular_rad: float = constants.TRACE_TP_ANGULAR_ERROR_RAD
    lateral_tolerance_m: float = constants.LINK_25G_LINEAR_TOLERANCE_M
    angular_tolerance_rad: float = (
        constants.LINK_25G_RX_ANGULAR_TOLERANCE_MRAD * 1e-3)

    def __post_init__(self):
        if self.slot_s <= 0:
            raise ValueError("slot length must be positive")
        if self.tp_latency_slots < 0:
            raise ValueError("TP latency cannot be negative")
        if (self.lateral_tolerance_m <= self.residual_lateral_m
                or self.angular_tolerance_rad <= self.residual_angular_rad):
            raise ValueError(
                "tolerances must exceed the TP residual errors")


@dataclass(frozen=True)
class TimeslotResult:
    """Slot-level connectivity of one trace replay."""

    connected: np.ndarray  # (n_slots,) bool
    viewer: int
    video: int

    @property
    def slots(self) -> int:
        return int(self.connected.size)

    @property
    def off_slots(self) -> int:
        return int(np.sum(~self.connected))

    @property
    def availability(self) -> float:
        """Fraction of slots with the link operational."""
        if self.connected.size == 0:
            return 0.0
        return float(np.mean(self.connected))


def _slots_per_report(trace: HeadTrace, params: TimeslotParams) -> int:
    slots_per_report = int(round(trace.dt_s / params.slot_s))
    if slots_per_report < 1:
        raise ValueError("slots must be finer than the report period")
    return slots_per_report


def _drift_errors(rates: np.ndarray, residual: float,
                  slots_per_report: int, latency: int) -> np.ndarray:
    """Per-slot accumulated error for one channel, shape (S, n_steps).

    Replicates the reference loop's arithmetic exactly: the error is a
    running sum (``residual`` at the start of the replay, ``+= rate``
    once per slot) that snaps back to ``residual`` at slot ``latency``
    of every report interval after the first.  The additions happen in
    the same left-to-right order the loop performs them — the short
    slot dimension (``slots_per_report``, typically 10) is walked
    sequentially while each position is one vector add across all
    reports — so the result is bit-identical, not merely close.  The
    array is slot-major (one contiguous row per slot position); callers
    transpose to recover the replay's chronological order.
    """
    n = rates.size
    slots = slots_per_report
    if n == 0:
        return np.empty((slots, 0))
    if latency >= slots:
        # The realignment never lands: one uninterrupted running sum
        # across the whole replay, carried over every report boundary
        # (np.cumsum accumulates sequentially, matching the loop).
        inc = np.repeat(rates, slots)
        inc[0] += residual
        return np.cumsum(inc).reshape(n, slots).T

    err = np.empty((slots, n))
    # Report 0 has no realignment (the link starts aligned): a single
    # ramp from the residual across the full interval.
    acc0 = residual
    rate0 = rates[0]
    for sub in range(slots):
        acc0 = acc0 + rate0
        err[sub, 0] = acc0
    if n == 1:
        return err

    # Reports >= 1, slots [latency, S): each interval restarts from the
    # residual, so every report ramps independently.
    sub_rates = rates[1:]
    acc = residual + sub_rates
    err[latency, 1:] = acc
    for sub in range(latency + 1, slots):
        acc = acc + sub_rates
        err[sub, 1:] = acc

    if latency > 0:
        # Reports >= 1, slots [0, latency): the previous interval's
        # final error carries across the report boundary until the
        # realignment lands.
        carry = np.empty(n - 1)
        carry[0] = err[slots - 1, 0]
        carry[1:] = acc[:-1]
        acc = carry + sub_rates
        err[0, 1:] = acc
        for sub in range(1, latency):
            acc = acc + sub_rates
            err[sub, 1:] = acc
    return err


def simulate_trace(trace: HeadTrace,
                   params: TimeslotParams = TimeslotParams()
                   ) -> TimeslotResult:
    """Replay one trace through the 1 ms-slot model (vectorized).

    Element-wise identical to ``_simulate_trace_reference`` (the
    retained loop), including the ``tp_latency_slots >=
    slots_per_report`` edge case where the realignment never lands and
    the error drifts monotonically for the rest of the trace.
    """
    slots_per_report = _slots_per_report(trace, params)
    rates_lat = np.asarray(trace.step_linear_m, dtype=float) \
        / slots_per_report
    rates_ang = np.asarray(trace.step_angular_rad, dtype=float) \
        / slots_per_report
    lateral = _drift_errors(rates_lat, params.residual_lateral_m,
                            slots_per_report, params.tp_latency_slots)
    angular = _drift_errors(rates_ang, params.residual_angular_rad,
                            slots_per_report, params.tp_latency_slots)
    # The drift matrices are slot-major; transpose back to the replay's
    # chronological (report, slot) order before flattening.
    connected = ((lateral <= params.lateral_tolerance_m)
                 & (angular <= params.angular_tolerance_rad)).T.reshape(-1)
    return TimeslotResult(connected=connected, viewer=trace.viewer,
                          video=trace.video)


def _simulate_trace_reference(trace: HeadTrace,
                              params: TimeslotParams = TimeslotParams()
                              ) -> TimeslotResult:
    """The original slot-by-slot loop, kept as the correctness oracle.

    ``simulate_trace`` must produce an identical ``connected`` array;
    the bench (``python -m repro bench``) also times this loop to
    report the vectorized model's speedup.
    """
    slots_per_report = _slots_per_report(trace, params)
    n_steps = len(trace.step_linear_m)
    connected = np.empty(n_steps * slots_per_report, dtype=bool)

    # Errors at the start of the replay: the link begins aligned, so
    # only the TP residual is present.
    lateral_err = params.residual_lateral_m
    angular_err = params.residual_angular_rad
    slot_index = 0
    for step in range(n_steps):
        lateral_rate = trace.step_linear_m[step] / slots_per_report
        angular_rate = trace.step_angular_rad[step] / slots_per_report
        for sub in range(slots_per_report):
            # A new report arrived at the start of this interval; the
            # realignment lands tp_latency_slots later, snapping the
            # accumulated error back to the TP residual.  When
            # tp_latency_slots >= slots_per_report this branch never
            # fires and the link drifts forever (the modelled "TP too
            # slow" regime).
            if sub == params.tp_latency_slots and step > 0:
                lateral_err = params.residual_lateral_m
                angular_err = params.residual_angular_rad
            lateral_err += lateral_rate
            angular_err += angular_rate
            connected[slot_index] = (
                lateral_err <= params.lateral_tolerance_m
                and angular_err <= params.angular_tolerance_rad)
            slot_index += 1
    return TimeslotResult(connected=connected, viewer=trace.viewer,
                          video=trace.video)
