"""The Section 5.4 trace-driven link simulation.

The paper's methodology, verbatim: time is divided into 1 ms slots; the
link starts aligned; whenever a head position is reported (every 10 ms
in the traces), the TP mechanism realigns in 1-2 ms leaving a residual
lateral error of 4.54 mm and angular error of 4.54/1.75 mrad (Table 2's
combined RX error over the 1.75 m link).  Between reports the beam
drifts at the trace's inter-report rate, and a slot is marked
disconnected when the accumulated lateral or angular error exceeds the
25G link's tolerances (6 mm, 8.73 mrad).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants
from ..motion import HeadTrace


@dataclass(frozen=True)
class TimeslotParams:
    """The Section 5.4 simulation constants (all overridable)."""

    slot_s: float = constants.TRACE_SLOT_S
    tp_latency_slots: int = 2
    residual_lateral_m: float = constants.TRACE_TP_LATERAL_ERROR_M
    residual_angular_rad: float = constants.TRACE_TP_ANGULAR_ERROR_RAD
    lateral_tolerance_m: float = constants.LINK_25G_LINEAR_TOLERANCE_M
    angular_tolerance_rad: float = (
        constants.LINK_25G_RX_ANGULAR_TOLERANCE_MRAD * 1e-3)

    def __post_init__(self):
        if self.slot_s <= 0:
            raise ValueError("slot length must be positive")
        if self.tp_latency_slots < 0:
            raise ValueError("TP latency cannot be negative")
        if (self.lateral_tolerance_m <= self.residual_lateral_m
                or self.angular_tolerance_rad <= self.residual_angular_rad):
            raise ValueError(
                "tolerances must exceed the TP residual errors")


@dataclass(frozen=True)
class TimeslotResult:
    """Slot-level connectivity of one trace replay."""

    connected: np.ndarray  # (n_slots,) bool
    viewer: int
    video: int

    @property
    def slots(self) -> int:
        return int(self.connected.size)

    @property
    def off_slots(self) -> int:
        return int(np.sum(~self.connected))

    @property
    def availability(self) -> float:
        """Fraction of slots with the link operational."""
        if self.connected.size == 0:
            return 0.0
        return float(np.mean(self.connected))


def simulate_trace(trace: HeadTrace,
                   params: TimeslotParams = TimeslotParams()
                   ) -> TimeslotResult:
    """Replay one trace through the 1 ms-slot model."""
    slots_per_report = int(round(trace.dt_s / params.slot_s))
    if slots_per_report < 1:
        raise ValueError("slots must be finer than the report period")
    n_steps = len(trace.step_linear_m)
    connected = np.empty(n_steps * slots_per_report, dtype=bool)

    # Errors at the start of the replay: the link begins aligned, so
    # only the TP residual is present.
    lateral_err = params.residual_lateral_m
    angular_err = params.residual_angular_rad
    slot_index = 0
    for step in range(n_steps):
        lateral_rate = trace.step_linear_m[step] / slots_per_report
        angular_rate = trace.step_angular_rad[step] / slots_per_report
        for sub in range(slots_per_report):
            # A new report arrived at the start of this interval; the
            # realignment lands tp_latency_slots later, snapping the
            # accumulated error back to the TP residual.
            if sub == params.tp_latency_slots and step > 0:
                lateral_err = params.residual_lateral_m
                angular_err = params.residual_angular_rad
            lateral_err += lateral_rate
            angular_err += angular_rate
            connected[slot_index] = (
                lateral_err <= params.lateral_tolerance_m
                and angular_err <= params.angular_tolerance_rad)
            slot_index += 1
    return TimeslotResult(connected=connected, viewer=trace.viewer,
                          video=trace.video)
