"""Supervised recovery for the live session loop.

The paper's machinery -- remap-only retraining (§4), the SFP re-lock
state machine (§5.3), occlusion handover (§3) -- only pays off if
something in the loop *decides* when to use it.  :class:`Supervisor`
is that layer.  It implements a small escalation ladder:

1. **Watchdog** -- detect stale (missing) and frozen (stalled) tracker
   reports; hold pointing instead of chasing a dead pose.
2. **Bounded retries** -- a diverged pointing solve gets up to
   ``retry_budget`` fallback seeds (last-known-good command, then a
   pose-derived cold-start seed) instead of a single silent give-up.
3. **Blockage hold-off** -- a healthy link that goes dark *in one
   sample step* is a blockage, not a tracking failure; freeze the
   mirrors so the beam is still aligned when the LOS returns, and keep
   the drift monitor unpolluted, instead of thrashing re-locks.
4. **Escalation to remap** -- persistent post-TP power degradation
   trips a :class:`~repro.core.retraining.DriftMonitor`, which triggers
   a mid-session mapping-only re-training (:func:`repro.core.remap`).

Every decision is recorded in the session's event log, so a run can be
audited action by action.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core import AlignedSample, DriftMonitor, remap
from ..faults.events import EventLog, fmt
from ..link.design import NOISE_FLOOR_DBM


@dataclass
class Supervisor:
    """Recovery policy + per-run state for one supervised session.

    Construct one per :meth:`PrototypeSession.run` call (``run`` resets
    it defensively).  All thresholds are policy, not physics: they are
    deliberately conservative defaults tuned for the 80 Hz report rate
    and millisecond channel sampling of the prototype loop.
    """

    #: No fresh report for this long means the tracker is stale.
    watchdog_timeout_s: float = 0.05
    #: Reports implying faster motion than this are outliers: a head
    #: cannot cross 0.3 m between 80 Hz reports, so do not chase it.
    outlier_speed_m_s: float = 5.0
    #: The plausibility radius grows with time since the last accepted
    #: report, but only up to this horizon -- otherwise a long outlier
    #: burst "dilutes" its own implied speed below the gate.
    outlier_horizon_s: float = 0.04
    #: After this many consecutive rejects, believe the tracker anyway
    #: (the pose really can jump, e.g. a re-localization).
    outlier_streak_max: int = 8
    #: Extra pointing attempts (fallback seeds) after a diverged solve.
    retry_budget: int = 2
    #: Power within this many dB of the noise floor counts as "dark".
    blockage_margin_db: float = 1.0
    #: Longest the mirrors are held still waiting out a blockage.
    blockage_hold_max_s: float = 3.0
    #: DriftMonitor policy for the escalation ladder's last rung.
    drift_degradation_db: float = 6.0
    drift_baseline_samples: int = 40
    drift_window: int = 20
    #: A tripped monitor only escalates once power is within this many
    #: dB of RX sensitivity.  Degradation with margin to spare (an
    #: attenuation ramp that never threatens the budget) is cheaper to
    #: ride out than a remap's re-lock outage.
    escalate_margin_db: float = 3.0
    #: Mapping samples collected per mid-session remap.
    remap_samples: int = 6
    #: More than one rung: a drift still ramping when the first remap
    #: fires will trip the monitor again and earn another.
    max_remaps: int = 2
    #: Sim-time charged for a remap (pointing holds while it runs).
    remap_cost_s: float = 0.25

    log: EventLog = field(default_factory=EventLog, repr=False)

    def __post_init__(self):
        self.reset(self.log)

    # -- lifecycle -----------------------------------------------------------

    def reset(self, log: EventLog) -> None:
        """Fresh per-run state (called by ``PrototypeSession.run``)."""
        self.log = log
        self._monitor = DriftMonitor(
            degradation_db=self.drift_degradation_db,
            window=self.drift_window,
            baseline_samples=self.drift_baseline_samples)
        self._last_fresh_t: float = 0.0
        self._last_position: Optional[np.ndarray] = None
        self._stale_logged = False
        self._frozen_logged = False
        self._outlier_streak = 0
        self._blocked = False
        self._blocked_since = 0.0
        self._hold_until = -np.inf
        self._last_power: Optional[float] = None
        self._last_good_command = None
        self._remaps_done = 0
        self.retries = 0
        self.remaps = 0
        self.holds = 0

    # -- watchdog ------------------------------------------------------------

    def accept_report(self, t_s: float, report) -> bool:
        """Gate one tracker report; False means "hold, do not point".

        A missing report past the watchdog timeout is logged as a
        stall; a report whose position is bit-identical to the previous
        one is a frozen tracker, and re-pointing at a dead pose is
        skipped (the mirrors already aim there).
        """
        if report is None:
            if (t_s - self._last_fresh_t > self.watchdog_timeout_s
                    and not self._stale_logged):
                self._stale_logged = True
                self.log.recovery(t_s, "watchdog-stale",
                                  f"since={fmt(self._last_fresh_t)}")
            return False
        frozen = (self._last_position is not None
                  and np.array_equal(report.position, self._last_position))
        if frozen:
            if not self._frozen_logged:
                self._frozen_logged = True
                self.log.recovery(t_s, "freeze-hold")
            return False
        if self._last_position is not None:
            elapsed = max(t_s - self._last_fresh_t, 1e-6)
            dist = float(np.linalg.norm(
                np.asarray(report.position) - self._last_position))
            radius = (self.outlier_speed_m_s
                      * min(elapsed, self.outlier_horizon_s))
            if dist > radius:
                speed = dist / elapsed
                self._outlier_streak += 1
                if self._outlier_streak <= self.outlier_streak_max:
                    if self._outlier_streak == 1:
                        self.log.recovery(t_s, "outlier-reject",
                                          f"speed={fmt(speed)}")
                    return False
                self.log.recovery(t_s, "outlier-accept",
                                  f"streak={self._outlier_streak}")
        self._outlier_streak = 0
        if self._stale_logged:
            self.log.recovery(t_s, "watchdog-recover",
                              f"stalled={fmt(t_s - self._last_fresh_t)}")
        self._stale_logged = False
        self._frozen_logged = False
        self._last_fresh_t = t_s
        self._last_position = np.array(report.position, copy=True)
        return True

    # -- retry ladder --------------------------------------------------------

    def fallback_seeds(self, cold_seed) -> list:
        """Seeds to retry a diverged solve with, in escalation order."""
        seeds = []
        if self._last_good_command is not None:
            cmd = self._last_good_command
            seeds.append(("last-good", (cmd.v_tx1, cmd.v_tx2,
                                        cmd.v_rx1, cmd.v_rx2)))
        seeds.append(("cold-start", tuple(cold_seed)))
        return seeds[:self.retry_budget]

    def note_retry(self, t_s: float, attempt: int, seed_name: str) -> None:
        self.retries += 1
        self.log.recovery(t_s, "retry",
                          f"attempt={attempt} seed={seed_name}")

    def note_give_up(self, t_s: float, attempts: int) -> None:
        self.log.recovery(t_s, "give-up", f"attempts={attempts}")

    def note_good_command(self, command) -> None:
        """Remember the last command that produced a connected link."""
        self._last_good_command = command

    # -- blockage hold-off ---------------------------------------------------

    def observe_power(self, t_s: float, power_dbm: float,
                      sensitivity_dbm: float) -> None:
        """Track the power trace; drives blockage detection."""
        dark = power_dbm <= NOISE_FLOOR_DBM + self.blockage_margin_db
        if t_s < self._hold_until:
            # Inside a remap's cost window the mirrors are wherever the
            # calibration left them; a dark sample here is self-made,
            # not a blockage.
            self._last_power = power_dbm
            return
        if not self._blocked:
            was_healthy = (self._last_power is not None
                           and self._last_power >= sensitivity_dbm)
            if dark and was_healthy:
                # Healthy to pitch-dark in one millisecond step: that
                # is an object in the beam, not a tracking failure.
                self._blocked = True
                self._blocked_since = t_s
                self.holds += 1
                self.log.recovery(t_s, "blockage-hold",
                                  f"power={fmt(power_dbm)}")
        else:
            if not dark:
                self._blocked = False
                self.log.recovery(
                    t_s, "blockage-clear",
                    f"held={fmt(t_s - self._blocked_since)}")
            elif t_s - self._blocked_since > self.blockage_hold_max_s:
                self._blocked = False
                self.log.recovery(t_s, "blockage-hold-timeout")
        self._last_power = power_dbm

    def holding(self, t_s: float) -> bool:
        """Whether pointing updates are currently suppressed."""
        return self._blocked or t_s < self._hold_until

    # -- escalation to remap -------------------------------------------------

    def observe_post_tp_power(self, t_s: float, power_dbm: float,
                              testbed, injector, system):
        """Feed the drift monitor; returns a new system after a remap.

        Returns None when nothing escalated.  Never called while
        holding (the session gates it), so blockage floors cannot trip
        the monitor.
        """
        if not self._monitor.observe(power_dbm):
            return None
        if self._remaps_done >= self.max_remaps:
            return None
        if power_dbm <= NOISE_FLOOR_DBM + self.blockage_margin_db:
            # Cannot calibrate in the dark; leave the monitor tripped
            # and try again when light returns.
            return None
        sensitivity = testbed.design.sfp.rx_sensitivity_dbm
        if power_dbm > sensitivity + self.escalate_margin_db:
            # Degraded, but the link budget is not in danger: a remap
            # costs a guaranteed re-lock outage, the deficit costs
            # nothing yet.  Keep watching.
            return None
        self.log.recovery(t_s, "escalate",
                          f"deficit={fmt(self._monitor.deficit_db)}")
        return self._remap(t_s, testbed, injector, system)

    def _remap(self, t_s: float, testbed, injector, system):
        """Mid-session mapping-only re-training (§4.2)."""
        samples = []
        for pose in testbed.training_poses(self.remap_samples):
            result = testbed.align_exhaustively(pose)
            report = injector.calibration_report(t_s, testbed.tracker, pose)
            samples.append(AlignedSample(
                v_tx1=result.voltages[0], v_tx2=result.voltages[1],
                v_rx1=result.voltages[2], v_rx2=result.voltages[3],
                reported_pose=report))
        refitted = remap(system, samples)
        self._monitor.reset()
        self._remaps_done += 1
        self.remaps += 1
        self._hold_until = t_s + self.remap_cost_s
        self._last_good_command = None
        self.log.recovery(t_s, "remap",
                          f"samples={len(samples)} "
                          f"cost={fmt(self.remap_cost_s)}")
        return refitted

    @property
    def drift_monitor(self) -> DriftMonitor:
        """The escalation monitor (tests and metrics)."""
        return self._monitor
