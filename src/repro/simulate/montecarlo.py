"""Multi-seed experiment sweeps.

A single calibrated testbed is one lab; the paper's numbers come from
one prototype.  To know which digits of a result are *stable*, rerun
the pipeline across independently seeded worlds and aggregate.  Used
by tests (is 10/10 realignment a fluke of seed 3?) and available to
users studying the calibration's robustness.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core import point
from ..parallel import parallel_map
from .rig import Testbed


@dataclass(frozen=True)
class MetricSummary:
    """Across-seed statistics of one scalar metric."""

    name: str
    values: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.values.mean())

    @property
    def std(self) -> float:
        return float(self.values.std(ddof=1)) if len(self.values) > 1 \
            else 0.0

    @property
    def worst(self) -> float:
        return float(self.values.min())

    @property
    def best(self) -> float:
        return float(self.values.max())


def _eval_seed(metric_fn: Callable[[int], Dict[str, float]],
               seed: int) -> Dict[str, float]:
    """Evaluate one seed (module-level so the pair pickles)."""
    return metric_fn(int(seed))


def _seed_unit(metric_fn: Callable[[int], Dict[str, float]],
               params: Dict[str, Any]) -> Dict[str, float]:
    """One orchestrator work unit: a seed's metrics as one corpus row."""
    seed = int(params["seed"])
    row: Dict[str, float] = {"seed": float(seed)}
    for name, value in metric_fn(seed).items():
        row[name] = float(value)
    return row


def sweep_seeds(metric_fn: Callable[[int], Dict[str, float]],
                seeds: Sequence[int],
                workers: Optional[int] = 1,
                store=None,
                group: str = "sweep",
                checkpoint_dir=None,
                resume: bool = False,
                timeout_s: Optional[float] = None,
                retries: int = 2) -> Dict[str, MetricSummary]:
    """Evaluate a per-seed metric dictionary across seeds.

    ``workers>1`` fans the seeds out over a process pool (``metric_fn``
    must then be picklable — a lambda degrades to the serial path); the
    per-seed dictionaries are merged in seed order either way, so the
    summaries are identical for any worker count.

    Passing ``store=`` (a :class:`repro.store.ColumnStore`) persists
    the sweep as column group ``group``: one ``seeds`` column plus one
    per-seed value column per metric, so long sweeps are queryable
    without rerunning the pipeline.

    Passing ``checkpoint_dir=`` routes the sweep through
    :class:`repro.orchestrator.SweepRunner` instead of the plain pool:
    each seed runs in a supervised, killable worker (``timeout_s``,
    ``retries``), finished seeds spool to the checkpoint as they
    complete, and an interrupted sweep continues with ``resume=True``
    — the summaries (and any ``store=`` output) are identical to an
    uninterrupted run.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    if checkpoint_dir is not None:
        return _sweep_seeds_checkpointed(
            metric_fn, seeds, workers=workers, store=store, group=group,
            checkpoint_dir=checkpoint_dir, resume=resume,
            timeout_s=timeout_s, retries=retries)
    per_seed = parallel_map(partial(_eval_seed, metric_fn),
                            list(seeds), workers=workers)
    collected: Dict[str, List[float]] = {}
    for metrics in per_seed:
        for name, value in metrics.items():
            collected.setdefault(name, []).append(float(value))
    summaries = {name: MetricSummary(name=name, values=np.array(values))
                 for name, values in collected.items()}
    if store is not None:
        columns = {"seeds": np.asarray(list(seeds))}
        columns.update({name: summary.values
                        for name, summary in summaries.items()})
        store.write_group(group, columns, attrs={
            "kind": "seed-sweep",
            "metrics": sorted(collected),
        })
    return summaries


def _sweep_seeds_checkpointed(metric_fn, seeds, workers, store, group,
                              checkpoint_dir, resume, timeout_s: Optional[float],
                              retries: int) -> Dict[str, MetricSummary]:
    """The crash-safe :func:`sweep_seeds` path (checkpoint_dir given).

    Imported lazily: ``orchestrator`` sits in the same layer as
    ``simulate`` and its sweep catalogue imports this module, so the
    module-level dependency must stay one-directional.
    """
    from ..orchestrator.runner import SweepRunner, SweepSpec

    metric_name = getattr(metric_fn, "__name__",
                          type(metric_fn).__name__)
    spec = SweepSpec(
        name=f"seed-sweep:{metric_name}",
        unit_fn=partial(_seed_unit, metric_fn),
        unit_params=tuple({"seed": int(seed)} for seed in seeds),
        common={"metric": metric_name})
    runner = SweepRunner(spec, checkpoint_dir, workers=workers,
                         timeout_s=timeout_s, retries=retries)
    runner.prepare(resume=resume)
    runner.run()
    corpus, _payload = runner.finalize()
    summaries = {
        name: MetricSummary(name=name,
                            values=np.asarray(corpus[name], dtype=float))
        for name in corpus if name != "seed"
    }
    if store is not None:
        # Same group layout (and bytes) as the un-checkpointed path.
        columns = {"seeds": np.asarray(list(seeds))}
        columns.update({name: summary.values
                        for name, summary in summaries.items()})
        store.write_group(group, columns, attrs={
            "kind": "seed-sweep",
            "metrics": sorted(summaries),
        })
    return summaries


def calibration_quality(seed: int, trials: int = 10) -> Dict[str, float]:
    """One world's headline TP quality numbers (Section 5.2's test).

    Returns the fraction of realignment trials that kept the link
    connected, and the mean power excess below the aligned peak.
    """
    testbed = Testbed(seed=seed)
    outcome = testbed.calibrate()
    connected = 0
    excesses = []
    for pose in testbed.evaluation_poses(trials):
        command = point(outcome.system, testbed.tracker.report(pose))
        testbed.apply_command(command)
        state = testbed.channel.evaluate(pose)
        connected += state.connected
        excesses.append(testbed.design.peak_power_dbm(state.range_m)
                        - state.received_power_dbm)
    return {
        "connected_fraction": connected / trials,
        "excess_db_mean": float(np.mean(excesses)),
        "excess_db_max": float(np.max(excesses)),
    }
