"""Multi-seed experiment sweeps.

A single calibrated testbed is one lab; the paper's numbers come from
one prototype.  To know which digits of a result are *stable*, rerun
the pipeline across independently seeded worlds and aggregate.  Used
by tests (is 10/10 realignment a fluke of seed 3?) and available to
users studying the calibration's robustness.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core import point
from ..parallel import parallel_map
from .rig import Testbed


@dataclass(frozen=True)
class MetricSummary:
    """Across-seed statistics of one scalar metric."""

    name: str
    values: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.values.mean())

    @property
    def std(self) -> float:
        return float(self.values.std(ddof=1)) if len(self.values) > 1 \
            else 0.0

    @property
    def worst(self) -> float:
        return float(self.values.min())

    @property
    def best(self) -> float:
        return float(self.values.max())


def _eval_seed(metric_fn: Callable[[int], Dict[str, float]],
               seed: int) -> Dict[str, float]:
    """Evaluate one seed (module-level so the pair pickles)."""
    return metric_fn(int(seed))


def sweep_seeds(metric_fn: Callable[[int], Dict[str, float]],
                seeds: Sequence[int],
                workers: Optional[int] = 1,
                store=None,
                group: str = "sweep") -> Dict[str, MetricSummary]:
    """Evaluate a per-seed metric dictionary across seeds.

    ``workers>1`` fans the seeds out over a process pool (``metric_fn``
    must then be picklable — a lambda degrades to the serial path); the
    per-seed dictionaries are merged in seed order either way, so the
    summaries are identical for any worker count.

    Passing ``store=`` (a :class:`repro.store.ColumnStore`) persists
    the sweep as column group ``group``: one ``seeds`` column plus one
    per-seed value column per metric, so long sweeps are queryable
    without rerunning the pipeline.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    per_seed = parallel_map(partial(_eval_seed, metric_fn),
                            list(seeds), workers=workers)
    collected: Dict[str, List[float]] = {}
    for metrics in per_seed:
        for name, value in metrics.items():
            collected.setdefault(name, []).append(float(value))
    summaries = {name: MetricSummary(name=name, values=np.array(values))
                 for name, values in collected.items()}
    if store is not None:
        columns = {"seeds": np.asarray(list(seeds))}
        columns.update({name: summary.values
                        for name, summary in summaries.items()})
        store.write_group(group, columns, attrs={
            "kind": "seed-sweep",
            "metrics": sorted(collected),
        })
    return summaries


def calibration_quality(seed: int, trials: int = 10) -> Dict[str, float]:
    """One world's headline TP quality numbers (Section 5.2's test).

    Returns the fraction of realignment trials that kept the link
    connected, and the mean power excess below the aligned peak.
    """
    testbed = Testbed(seed=seed)
    outcome = testbed.calibrate()
    connected = 0
    excesses = []
    for pose in testbed.evaluation_poses(trials):
        command = point(outcome.system, testbed.tracker.report(pose))
        testbed.apply_command(command)
        state = testbed.channel.evaluate(pose)
        connected += state.connected
        excesses.append(testbed.design.peak_power_dbm(state.range_m)
                        - state.received_power_dbm)
    return {
        "connected_fraction": connected / trials,
        "excess_db_mean": float(np.mean(excesses)),
        "excess_db_max": float(np.max(excesses)),
    }
