"""Multi-TX handover (the Section 3 extension).

"To circumvent occasional occlusions and/or limited field-of-view
coverage of the GMs, we can use multiple TXs on the ceiling with
appropriate handover techniques."  The paper does not build this; we
do, as the natural extension of the simulated prototype:

* several ceiling-mounted TX assemblies, each aimed at the play area;
* an occlusion schedule (someone walks through a beam, a raised arm
  blocks the LOS);
* a power-triggered handover controller: when the active link's power
  drops below a switch threshold, re-point to the TX currently
  offering the most power, paying a handover latency.

Pointing uses the per-TX oracle systems (true parameters): the study
isolates *coverage*, not learning accuracy, exactly as Section 3
frames it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..core import LearnedSystem, point
from ..core.gma import GmaModel
from ..core.inverse import InverseDivergedError
from ..core.pointing import PointingDivergedError
from ..determinism import resolve_rng, spawn
from ..galvo import GalvoHardware
from ..geometry import rotation_between
from ..link import NOISE_FLOOR_DBM, FsoChannel
from ..vrh import Pose, TxAssembly
from .rig import (
    HOME_POSITION,
    RX_MIRROR_BODY,
    Testbed,
    _perturbed_params,
    _placement_to,
)
from ..galvo.mirror import trace as trace_gma


@dataclass(frozen=True)
class OcclusionEvent:
    """One LOS blockage: a TX index and the interval it is dark."""

    tx_index: int
    start_s: float
    end_s: float

    def active_at(self, t_s: float) -> bool:
        return self.start_s <= t_s < self.end_s


@dataclass(frozen=True)
class HandoverResult:
    """Connectivity of one run."""

    sample_times_s: np.ndarray
    connected: np.ndarray
    active_tx: np.ndarray
    handovers: int

    @property
    def uptime_fraction(self) -> float:
        if self.connected.size == 0:
            return 0.0
        return float(np.mean(self.connected))


class MultiTxRig:
    """A Testbed extended with additional ceiling transmitters."""

    def __init__(self, tx_count: int = 2, seed: int = 7,
                 spacing_m: float = 0.5):
        if tx_count < 1:
            raise ValueError("need at least one TX")
        self.testbed = Testbed(seed=seed, geometry="ceiling")
        self.tx_assemblies: List[TxAssembly] = [
            self.testbed.tx_assembly]
        rng = resolve_rng(seed=seed + 1000, owner="MultiTxRig")
        rx_mirror_home = HOME_POSITION + RX_MIRROR_BODY
        for i in range(1, tx_count):
            # Extra units around the first, aimed at the play area.
            angle = 2.0 * np.pi * i / max(tx_count - 1, 1)
            position = (self.testbed.tx_mirror_world
                        + spacing_m * np.array([np.cos(angle),
                                                np.sin(angle), 0.0]))
            params = _perturbed_params(
                self.testbed.tx_hardware.params, rng, 1e-3,
                np.radians(0.5), 0.01)
            rest_dir = trace_gma(params, 0.0, 0.0).direction
            aim = rotation_between(rest_dir, rx_mirror_home - position)
            placement = _placement_to(aim, params.q2, position)
            hardware = GalvoHardware(
                params, nonlinearity=self.testbed.nonlinearity,
                rng=spawn(rng))
            self.tx_assemblies.append(TxAssembly(hardware, placement))
        self.channels = [
            FsoChannel(self.testbed.design, tx, self.testbed.rx_assembly)
            for tx in self.tx_assemblies]
        base_oracle = self.testbed.oracle_system()
        self.oracles = [
            LearnedSystem(
                tx_model_vr=GmaModel(tx.hardware.params).transformed(
                    self.testbed.vr_from_world.compose(
                        tx.kspace_to_world)),
                rx_model_kspace=base_oracle.rx_model_kspace,
                rx_mapping=base_oracle.rx_mapping)
            for tx in self.tx_assemblies]

    @property
    def tx_count(self) -> int:
        return len(self.tx_assemblies)

    def point_at(self, tx_index: int, report: Pose) -> Optional[tuple]:
        """Voltages aligning TX ``tx_index`` with the RX.

        Returns None when the solve diverges *or* the solution falls
        outside the GM coverage cone -- the field-of-view limit that
        bounds how far apart the ceiling TXs may sit (Section 3).
        """
        try:
            command = point(self.oracles[tx_index], report)
        except (PointingDivergedError, InverseDivergedError):
            return None
        voltages = (command.v_tx1, command.v_tx2,
                    command.v_rx1, command.v_rx2)
        limit = self.testbed.rx_hardware.daq.voltage_range_v
        if any(abs(v) > limit for v in voltages):
            return None
        return voltages

    def apply(self, tx_index: int, voltages: tuple) -> None:
        self.tx_assemblies[tx_index].hardware.apply(*voltages[:2])
        self.testbed.rx_hardware.apply(*voltages[2:])

    def power_dbm(self, tx_index: int, pose: Pose,
                  occluded: bool) -> float:
        if occluded:
            return NOISE_FLOOR_DBM
        return self.channels[tx_index].received_power_dbm(pose)


@dataclass
class HandoverController:
    """Power-triggered TX selection."""

    rig: MultiTxRig
    switch_margin_db: float = 3.0
    handover_latency_s: float = 0.05
    use_handover: bool = True

    def run(self, profile, occlusions: Sequence[OcclusionEvent],
            duration_s: float = None, dt_s: float = 1e-3
            ) -> HandoverResult:
        """Replay a motion with occlusions, switching TXs as needed.

        Pointing updates occur at the tracker rate; every update also
        refreshes each candidate TX's aim so a handover lands on an
        already-pointed transmitter (real deployments would keep
        standby TXs tracking).
        """
        if duration_s is None:
            duration_s = profile.duration_s
        rig = self.rig
        testbed = rig.testbed
        sensitivity = testbed.design.sfp.rx_sensitivity_dbm
        active = 0
        handovers = 0
        blocked_until = -1.0
        next_report = 0.0
        commands = [None] * rig.tx_count
        steps = int(round(duration_s / dt_s))
        times = np.arange(1, steps + 1) * dt_s
        connected = np.zeros(steps, dtype=bool)
        active_history = np.zeros(steps, dtype=int)

        for i, t in enumerate(times):
            t = float(t)
            pose = profile.pose_at(t)
            if t >= next_report:
                report = testbed.tracker.report(pose)
                commands = [rig.point_at(k, report)
                            for k in range(rig.tx_count)]
                next_report = t + testbed.tracker.next_period_s()

            def occluded(k):
                return any(ev.tx_index == k and ev.active_at(t)
                           for ev in occlusions)

            if commands[active] is not None:
                rig.apply(active, commands[active])
            power = rig.power_dbm(active, pose, occluded(active))

            if (self.use_handover and rig.tx_count > 1
                    and power < sensitivity + self.switch_margin_db
                    and t >= blocked_until):
                best, best_power = active, power
                for k in range(rig.tx_count):
                    if k == active or commands[k] is None:
                        continue
                    rig.apply(k, commands[k])
                    candidate = rig.power_dbm(k, pose, occluded(k))
                    if candidate > best_power:
                        best, best_power = k, candidate
                if best != active:
                    active = best
                    handovers += 1
                    blocked_until = t + self.handover_latency_s
                # Restore the (possibly unchanged) active steering.
                if commands[active] is not None:
                    rig.apply(active, commands[active])
                power = rig.power_dbm(active, pose, occluded(active))

            in_handover = t < blocked_until
            connected[i] = (power >= sensitivity) and not in_handover
            active_history[i] = active

        return HandoverResult(sample_times_s=times, connected=connected,
                              active_tx=active_history,
                              handovers=handovers)
