"""Executable experiment registry: DESIGN.md's index as code.

Each scenario names one of the paper's evaluation artifacts and can
produce a quick headline summary (a dictionary of metrics).  The full
regeneration lives in ``benchmarks/``; scenarios give programs (and
the CLI's ``scenario`` command) a uniform way to run the cheap
version of any experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np


@dataclass(frozen=True)
class Scenario:
    """One named experiment."""

    scenario_id: str
    paper_ref: str
    description: str
    bench: str
    quick: Callable[[], Dict[str, float]]

    def run_quick(self) -> Dict[str, float]:
        """Headline metrics, computed in seconds not minutes."""
        return self.quick()


def _table1_quick() -> Dict[str, float]:
    from ..link import evaluate, link_10g_collimated, link_10g_diverging
    collimated = evaluate(link_10g_collimated(20e-3))
    diverging = evaluate(link_10g_diverging(20e-3))
    return {
        "collimated_rx_tol_mrad":
            collimated.rx_angular_tolerance_rad * 1e3,
        "diverging_rx_tol_mrad":
            diverging.rx_angular_tolerance_rad * 1e3,
        "power_gap_db": (collimated.peak_power_dbm
                         - diverging.peak_power_dbm),
    }


def _fig11_quick() -> Dict[str, float]:
    from ..link import diameter_sweep, link_10g_diverging
    diameters = np.arange(8e-3, 33e-3, 2e-3)
    reports = diameter_sweep(link_10g_diverging, diameters, 1.75)
    tolerances = [r.rx_angular_tolerance_rad for r in reports]
    best = int(np.argmax(tolerances))
    return {
        "peak_diameter_mm": diameters[best] * 1e3,
        "peak_rx_tol_mrad": tolerances[best] * 1e3,
    }


def _table2_quick(seed: int = 55) -> Dict[str, float]:
    from ..core import BoardRig, evaluate_fit, interior_grid_points
    from ..determinism import resolve_rng
    from .rig import Testbed
    testbed = Testbed(seed=3)
    outcome = testbed.calibrate()
    rig = BoardRig(testbed.tx_hardware,
                   rng=resolve_rng(seed=seed, owner="_table2_quick"))
    holdout = interior_grid_points()[:30] + np.array([0.0127, 0.0127])
    errors = evaluate_fit(outcome.tx_kspace_model, rig, holdout)
    return {
        "stage1_tx_avg_mm": float(errors.mean() * 1e3),
        "stage1_tx_max_mm": float(errors.max() * 1e3),
    }


def _sec52_quick() -> Dict[str, float]:
    from .montecarlo import calibration_quality
    return calibration_quality(seed=3, trials=5)


def _fig16_quick() -> Dict[str, float]:
    from ..motion import generate_dataset
    from .availability import report, simulate_dataset
    traces = generate_dataset(viewers=10, videos=5)
    availability = report(simulate_dataset(traces))
    return {
        "overall_availability": availability.overall_availability,
        "worst_trace": availability.worst,
    }


def _thresholds_quick() -> Dict[str, float]:
    from ..analysis import (
        angular_speed_limit_rad_s,
        inputs_for,
        linear_speed_limit_m_s,
    )
    from ..link import link_10g_diverging
    inputs = inputs_for(link_10g_diverging())
    return {
        "linear_limit_cm_s": linear_speed_limit_m_s(inputs) * 100,
        "angular_limit_deg_s": float(np.degrees(
            angular_speed_limit_rad_s(inputs))),
    }


SCENARIOS: Dict[str, Scenario] = {
    scenario.scenario_id: scenario for scenario in (
        Scenario("table1", "Table 1",
                 "collimated vs diverging link tolerances",
                 "benchmarks/bench_table1_link_tolerance.py",
                 _table1_quick),
        Scenario("fig11", "Fig. 11",
                 "RX angular tolerance vs beam diameter at RX",
                 "benchmarks/bench_fig11_divergence_sweep.py",
                 _fig11_quick),
        Scenario("table2", "Table 2",
                 "GMA model estimation errors",
                 "benchmarks/bench_table2_gma_errors.py",
                 _table2_quick),
        Scenario("sec52", "Section 5.2",
                 "TP realignment accuracy trials",
                 "benchmarks/bench_sec52_tp_accuracy.py",
                 _sec52_quick),
        Scenario("fig16", "Fig. 16",
                 "trace-driven availability of the 25G link",
                 "benchmarks/bench_fig16_trace_availability.py",
                 _fig16_quick),
        Scenario("thresholds", "Figs. 13/15 (closed form)",
                 "tolerated speeds from the analytic budget",
                 "benchmarks/bench_analysis_validation.py",
                 _thresholds_quick),
    )
}


def list_scenarios() -> List[Scenario]:
    """All registered scenarios, in id order."""
    return [SCENARIOS[key] for key in sorted(SCENARIOS)]


def get_scenario(scenario_id: str) -> Scenario:
    """Look up one scenario; raises ``KeyError`` with suggestions."""
    if scenario_id not in SCENARIOS:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(
            f"unknown scenario {scenario_id!r}; available: {known}")
    return SCENARIOS[scenario_id]
