"""Off-slot clustering analysis (Section 5.4's user-experience metric).

"To measure user experience, we can measure how clustered/scattered the
off-timeslots are, since widely scattered off-timeslots should have
minimal impact" -- the paper reports that most (>60 %) off-slots occur
in frames (30 contiguous slots) with fewer than 10 off-slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .. import constants
from .timeslot import TimeslotResult


@dataclass(frozen=True)
class ClusteringReport:
    """How off-slots distribute over fixed-size frames."""

    frame_slots: int
    off_slot_total: int
    off_per_frame_histogram: np.ndarray  # index = off-slots in frame

    def fraction_in_frames_below(self, threshold: int) -> float:
        """Fraction of off-slots living in frames with < threshold offs.

        The paper's headline: >60 % of off-slots are in frames with
        fewer than 10 off-slots.
        """
        if self.off_slot_total == 0:
            return 1.0
        counts = np.arange(self.off_per_frame_histogram.size)
        weighted = counts * self.off_per_frame_histogram
        return float(weighted[:threshold].sum() / self.off_slot_total)


def analyze(results: Sequence[TimeslotResult],
            frame_slots: int = constants.TRACE_FRAME_SLOTS
            ) -> ClusteringReport:
    """Histogram off-slots by how many share their frame."""
    if frame_slots <= 0:
        raise ValueError("frame size must be positive")
    histogram = np.zeros(frame_slots + 1, dtype=np.int64)
    total_off = 0
    for result in results:
        off = ~result.connected
        n_frames = off.size // frame_slots
        if n_frames == 0:
            continue
        frames = off[:n_frames * frame_slots].reshape(n_frames, frame_slots)
        per_frame = frames.sum(axis=1)
        total_off += int(per_frame.sum())
        histogram += np.bincount(per_frame, minlength=frame_slots + 1)
    return ClusteringReport(frame_slots=frame_slots,
                            off_slot_total=total_off,
                            off_per_frame_histogram=histogram)
