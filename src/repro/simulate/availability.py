"""Dataset-level availability analysis (Fig. 16 and the 98.6 % claim)."""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import List, Optional, Sequence

import numpy as np

from ..motion import HeadTrace
from ..parallel import parallel_map
from .timeslot import TimeslotParams, TimeslotResult, simulate_trace


@dataclass(frozen=True)
class AvailabilityReport:
    """Aggregate connectivity over a trace dataset."""

    per_trace_availability: np.ndarray
    overall_availability: float
    best: float
    worst: float

    def disconnection_cdf(self) -> tuple:
        """CDF of per-trace disconnected percentage (Fig. 16's axes).

        Returns ``(disconnected_percent_sorted, cumulative_fraction)``.
        """
        disconnected = np.sort(
            (1.0 - self.per_trace_availability) * 100.0)
        fractions = np.arange(1, disconnected.size + 1) / disconnected.size
        return disconnected, fractions

    def effective_bandwidth_gbps(self, optimal_gbps: float) -> float:
        """The paper's "effective bandwidth" readout.

        A 1 ms slot carries many packets on a 25G link, so a protocol
        sees roughly availability x optimal throughput.
        """
        return self.overall_availability * optimal_gbps


def _uniform(traces: Sequence[HeadTrace]) -> bool:
    first = traces[0]
    return all(t.dt_s == first.dt_s and t.samples == first.samples
               for t in traces)


def simulate_dataset(traces: Sequence[HeadTrace],
                     params: TimeslotParams = TimeslotParams(),
                     workers: Optional[int] = 1,
                     engine: str = "auto",
                     store=None, group: str = "slots"
                     ) -> List[TimeslotResult]:
    """Replay every trace through the Section 5.4 model.

    Results come back in trace order for any ``workers`` setting (see
    ``repro.parallel``), so downstream aggregation is deterministic.

    ``engine="auto"`` uses the batched tensor kernel
    (:func:`repro.simulate.batch.simulate_batch`) whenever the corpus
    is rectangular (uniform ``dt_s`` / length — the generated datasets
    always are), falling back to the per-trace loop otherwise; the two
    produce element-wise identical ``connected`` arrays.  Passing
    ``store=`` persists the slot tensor as column group ``group``
    (batch engine only).
    """
    if not traces:
        raise ValueError("no traces to simulate")
    if engine not in ("auto", "batch", "loop"):
        raise ValueError("engine must be 'auto', 'batch' or 'loop'")
    if engine == "batch" or (engine == "auto" and _uniform(traces)):
        from .batch import simulate_batch  # local: avoids module cycle
        return simulate_batch(traces, params=params, workers=workers,
                              store=store, group=group).results()
    if store is not None:
        raise ValueError("store= requires the batch engine "
                         "(rectangular corpus)")
    return parallel_map(partial(simulate_trace, params=params),
                        traces, workers=workers)


def report(results: Sequence[TimeslotResult]) -> AvailabilityReport:
    """Aggregate slot connectivity into the Fig. 16 quantities."""
    if not results:
        raise ValueError("no results to aggregate")
    per_trace = np.array([r.availability for r in results])
    # Totals come straight from the connected arrays: one size read and
    # one popcount per trace, instead of rescanning via the off_slots
    # property.
    total_slots = sum(r.connected.size for r in results)
    total_on = sum(int(np.count_nonzero(r.connected)) for r in results)
    if total_slots == 0:
        raise ValueError("results contain no slots")
    return AvailabilityReport(
        per_trace_availability=per_trace,
        overall_availability=total_on / total_slots,
        best=float(per_trace.max()),
        worst=float(per_trace.min()),
    )
