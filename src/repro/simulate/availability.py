"""Dataset-level availability analysis (Fig. 16 and the 98.6 % claim)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..motion import HeadTrace
from .timeslot import TimeslotParams, TimeslotResult, simulate_trace


@dataclass(frozen=True)
class AvailabilityReport:
    """Aggregate connectivity over a trace dataset."""

    per_trace_availability: np.ndarray
    overall_availability: float
    best: float
    worst: float

    def disconnection_cdf(self) -> tuple:
        """CDF of per-trace disconnected percentage (Fig. 16's axes).

        Returns ``(disconnected_percent_sorted, cumulative_fraction)``.
        """
        disconnected = np.sort(
            (1.0 - self.per_trace_availability) * 100.0)
        fractions = np.arange(1, disconnected.size + 1) / disconnected.size
        return disconnected, fractions

    def effective_bandwidth_gbps(self, optimal_gbps: float) -> float:
        """The paper's "effective bandwidth" readout.

        A 1 ms slot carries many packets on a 25G link, so a protocol
        sees roughly availability x optimal throughput.
        """
        return self.overall_availability * optimal_gbps


def simulate_dataset(traces: Sequence[HeadTrace],
                     params: TimeslotParams = TimeslotParams()
                     ) -> List[TimeslotResult]:
    """Replay every trace through the Section 5.4 model."""
    if not traces:
        raise ValueError("no traces to simulate")
    return [simulate_trace(trace, params) for trace in traces]


def report(results: Sequence[TimeslotResult]) -> AvailabilityReport:
    """Aggregate slot connectivity into the Fig. 16 quantities."""
    if not results:
        raise ValueError("no results to aggregate")
    per_trace = np.array([r.availability for r in results])
    total_slots = sum(r.slots for r in results)
    total_on = sum(r.slots - r.off_slots for r in results)
    return AvailabilityReport(
        per_trace_availability=per_trace,
        overall_availability=total_on / total_slots,
        best=float(per_trace.max()),
        worst=float(per_trace.min()),
    )
