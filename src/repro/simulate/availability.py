"""Dataset-level availability analysis (Fig. 16 and the 98.6 % claim)."""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import List, Optional, Sequence

import numpy as np

from ..motion import HeadTrace
from ..parallel import parallel_map
from .timeslot import TimeslotParams, TimeslotResult, simulate_trace


@dataclass(frozen=True)
class AvailabilityReport:
    """Aggregate connectivity over a trace dataset."""

    per_trace_availability: np.ndarray
    overall_availability: float
    best: float
    worst: float

    def disconnection_cdf(self) -> tuple:
        """CDF of per-trace disconnected percentage (Fig. 16's axes).

        Returns ``(disconnected_percent_sorted, cumulative_fraction)``.
        """
        disconnected = np.sort(
            (1.0 - self.per_trace_availability) * 100.0)
        fractions = np.arange(1, disconnected.size + 1) / disconnected.size
        return disconnected, fractions

    def effective_bandwidth_gbps(self, optimal_gbps: float) -> float:
        """The paper's "effective bandwidth" readout.

        A 1 ms slot carries many packets on a 25G link, so a protocol
        sees roughly availability x optimal throughput.
        """
        return self.overall_availability * optimal_gbps


def simulate_dataset(traces: Sequence[HeadTrace],
                     params: TimeslotParams = TimeslotParams(),
                     workers: Optional[int] = 1) -> List[TimeslotResult]:
    """Replay every trace through the Section 5.4 model.

    Results come back in trace order for any ``workers`` setting (see
    ``repro.parallel``), so downstream aggregation is deterministic.
    """
    if not traces:
        raise ValueError("no traces to simulate")
    return parallel_map(partial(simulate_trace, params=params),
                        traces, workers=workers)


def report(results: Sequence[TimeslotResult]) -> AvailabilityReport:
    """Aggregate slot connectivity into the Fig. 16 quantities."""
    if not results:
        raise ValueError("no results to aggregate")
    per_trace = np.array([r.availability for r in results])
    # Totals come straight from the connected arrays: one size read and
    # one popcount per trace, instead of rescanning via the off_slots
    # property.
    total_slots = sum(r.connected.size for r in results)
    total_on = sum(int(np.count_nonzero(r.connected)) for r in results)
    if total_slots == 0:
        raise ValueError("results contain no slots")
    return AvailabilityReport(
        per_trace_availability=per_trace,
        overall_availability=total_on / total_slots,
        best=float(per_trace.max()),
        worst=float(per_trace.min()),
    )
