"""Batched Section 5.4 slot simulation: the whole corpus at once.

``simulate_trace`` vectorizes one trace; at dataset scale the per-trace
Python overhead (a dozen NumPy dispatches per trace) still dominates.
This module runs the identical drift/realign/compare arithmetic with a
leading *trace* axis: the short sub-slot dimension (``slots_per_report``,
typically 10) is walked sequentially exactly as the loop walks it, but
each step is one vector operation across *every report of every trace*.

Bit-compatibility is a hard contract, not an aspiration: the per-trace
engine is the oracle, and the property tests assert the batched
``connected`` tensor matches it element for element.  The batched
kernel keeps only running accumulator rows (``(traces, reports)``)
instead of materializing the full per-channel error tensor, writing
each sub-slot's comparison result straight into the boolean output —
same floats, same comparisons, a fraction of the memory traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..determinism import kernel
from ..motion import HeadTrace
from ..motion.batch import TraceBatch
from ..parallel import parallel_map_arrays
from ..store import ColumnGroup, ColumnStore
from .timeslot import TimeslotParams, TimeslotResult


@dataclass(frozen=True)
class BatchTimeslotResult:
    """Slot-level connectivity for a whole corpus, one row per trace."""

    connected: np.ndarray   # (T, slots) bool
    viewer_ids: np.ndarray  # (T,)
    video_ids: np.ndarray   # (T,)

    def __post_init__(self) -> None:
        if (self.connected.shape[0] != len(self.viewer_ids)
                or len(self.viewer_ids) != len(self.video_ids)):
            raise ValueError("batch result rows are inconsistent")

    def __len__(self) -> int:
        return int(self.connected.shape[0])

    @property
    def slots(self) -> int:
        return int(self.connected.shape[1])

    def result(self, index: int) -> TimeslotResult:
        """One trace's result as a zero-copy view."""
        return TimeslotResult(connected=self.connected[index],
                              viewer=int(self.viewer_ids[index]),
                              video=int(self.video_ids[index]))

    def results(self) -> List[TimeslotResult]:
        """Per-trace results (views), in corpus order."""
        return [self.result(index) for index in range(len(self))]

    def per_trace_availability(self) -> np.ndarray:
        """Connected fraction per trace (0.0 for empty replays)."""
        if self.slots == 0:
            return np.zeros(len(self), dtype=np.float64)
        return np.mean(self.connected, axis=1)

    # -- columnar store integration --------------------------------------

    def columns(self) -> Dict[str, np.ndarray]:
        return {
            "connected": self.connected,
            "viewer_ids": np.asarray(self.viewer_ids),
            "video_ids": np.asarray(self.video_ids),
        }

    def save(self, store: ColumnStore, group: str = "slots",
             attrs: Optional[dict] = None) -> ColumnGroup:
        merged = {"kind": "slot-batch"}
        merged.update(attrs or {})
        return store.write_group(group, self.columns(), attrs=merged)

    @classmethod
    def load(cls, store: ColumnStore, group: str = "slots",
             mmap: bool = True) -> "BatchTimeslotResult":
        g = store.read_group(group, mmap=mmap)
        return cls(connected=g["connected"], viewer_ids=g["viewer_ids"],
                   video_ids=g["video_ids"])


def _drift_no_realign(rates: np.ndarray, residual: float,
                      slots: int) -> np.ndarray:
    """Per-slot error when realignment never lands, (T, N * S) floats.

    One uninterrupted running sum per trace across the whole replay
    (``np.cumsum`` accumulates sequentially, matching the loop); the
    result is chronological already.
    """
    inc = np.repeat(rates, slots, axis=1)
    inc[:, 0] += residual
    return np.cumsum(inc, axis=1, out=inc)


@kernel
def _connected_rows(step_linear: np.ndarray, step_angular: np.ndarray,
                    params: TimeslotParams,
                    slots_per_report: int) -> np.ndarray:
    """The (T, N * S) connected tensor for stacked step columns.

    The batched twin of ``timeslot._drift_errors``: identical running
    sums in the identical left-to-right order, with the trace axis in
    front.  Both channels advance together through the short sub-slot
    loop; only the current accumulator rows ``(T, reports)`` are kept
    in floats, and each sub-slot's fused comparison ``(lat <= tol) &
    (ang <= tol)`` lands directly in the boolean output — same floats,
    same comparisons, a fraction of the memory traffic.
    """
    t_count, n = step_linear.shape
    slots = slots_per_report
    latency = params.tp_latency_slots
    lat_tol = params.lateral_tolerance_m
    ang_tol = params.angular_tolerance_rad
    rates_lat = np.asarray(step_linear, dtype=float) / slots
    rates_ang = np.asarray(step_angular, dtype=float) / slots
    ok = np.empty((t_count, n, slots), dtype=bool)
    if n == 0:
        return ok.reshape(t_count, 0)

    if latency >= slots:
        # The modelled "TP too slow" regime (see TimeslotParams).
        err_lat = _drift_no_realign(rates_lat,
                                    params.residual_lateral_m, slots)
        err_ang = _drift_no_realign(rates_ang,
                                    params.residual_angular_rad, slots)
        flat = ok.reshape(t_count, n * slots)
        np.less_equal(err_lat, lat_tol, out=flat)
        flat &= err_ang <= ang_tol
        return flat

    # Report 0: no realignment (the link starts aligned), one ramp
    # from the residual across the full interval.
    acc0_lat = np.full(t_count, params.residual_lateral_m,
                       dtype=np.float64)
    acc0_ang = np.full(t_count, params.residual_angular_rad,
                       dtype=np.float64)
    for sub in range(slots):
        acc0_lat += rates_lat[:, 0]
        acc0_ang += rates_ang[:, 0]
        np.logical_and(acc0_lat <= lat_tol, acc0_ang <= ang_tol,
                       out=ok[:, 0, sub])
    if n == 1:
        return ok.reshape(t_count, slots)

    # Reports >= 1, slots [latency, S): every interval restarts from
    # the residual and ramps independently.
    sub_lat = rates_lat[:, 1:]
    sub_ang = rates_ang[:, 1:]
    lat_ok = np.empty((t_count, n - 1), dtype=bool)
    acc_lat = params.residual_lateral_m + sub_lat
    acc_ang = params.residual_angular_rad + sub_ang
    for sub in range(latency, slots):
        if sub > latency:
            acc_lat += sub_lat
            acc_ang += sub_ang
        np.less_equal(acc_lat, lat_tol, out=lat_ok)
        np.logical_and(lat_ok, acc_ang <= ang_tol, out=ok[:, 1:, sub])

    if latency > 0:
        # Reports >= 1, slots [0, latency): the previous interval's
        # final error carries across the boundary until realignment.
        carry_lat = np.empty((t_count, n - 1), dtype=np.float64)
        carry_ang = np.empty((t_count, n - 1), dtype=np.float64)
        carry_lat[:, 0] = acc0_lat
        carry_ang[:, 0] = acc0_ang
        carry_lat[:, 1:] = acc_lat[:, :-1]
        carry_ang[:, 1:] = acc_ang[:, :-1]
        acc_lat = carry_lat
        acc_lat += sub_lat
        acc_ang = carry_ang
        acc_ang += sub_ang
        for sub in range(latency):
            if sub > 0:
                acc_lat += sub_lat
                acc_ang += sub_ang
            np.less_equal(acc_lat, lat_tol, out=lat_ok)
            np.logical_and(lat_ok, acc_ang <= ang_tol,
                           out=ok[:, 1:, sub])
    return ok.reshape(t_count, n * slots)


def _connected_chunk(items: Sequence[tuple], params: TimeslotParams,
                     slots_per_report: int) -> Dict[str, np.ndarray]:
    """Worker-side chunk body (module-level: picklable)."""
    step_linear = np.stack([lin for lin, _ in items])
    step_angular = np.stack([ang for _, ang in items])
    return {"connected": _connected_rows(step_linear, step_angular,
                                         params, slots_per_report)}


def _batch_slots_per_report(dt_s: float, params: TimeslotParams) -> int:
    slots_per_report = int(round(dt_s / params.slot_s))
    if slots_per_report < 1:
        raise ValueError("slots must be finer than the report period")
    return slots_per_report


#: Traces per kernel pass: keeps the accumulator rows cache-resident
#: and the chunk working set allocator-warm (see motion.batch).
_SIM_CHUNK = 64


def simulate_batch(batch: Union[TraceBatch, Sequence[HeadTrace]],
                   params: TimeslotParams = TimeslotParams(),
                   workers: Optional[int] = 1,
                   chunk_size: Optional[int] = _SIM_CHUNK,
                   store: Optional[ColumnStore] = None,
                   group: str = "slots") -> BatchTimeslotResult:
    """Replay a whole corpus through the 1 ms-slot model in one pass.

    Accepts a :class:`~repro.motion.batch.TraceBatch` (preferred; a
    steps-only batch suffices) or any uniform sequence of
    :class:`HeadTrace`.  Element-wise identical to running
    ``simulate_trace`` per trace — the property tests enforce it.

    With ``workers > 1`` the trace axis is chunked over a process pool
    and workers write their ``connected`` rows into shared memory (no
    result pickling; see :func:`repro.parallel.parallel_map_arrays`).
    Passing ``store=`` persists the result as column group ``group``.
    """
    if not isinstance(batch, TraceBatch):
        traces = list(batch)
        if not traces:
            raise ValueError("no traces to simulate")
        # Steps-only: the slot kernel never reads the pose tensors, so
        # skip copying them.
        batch = TraceBatch.from_traces(traces, columns="steps")
    slots_per_report = _batch_slots_per_report(batch.dt_s, params)
    t_count, n = batch.step_linear_m.shape

    items = [(batch.step_linear_m[i], batch.step_angular_rad[i])
             for i in range(t_count)]
    cols = parallel_map_arrays(
        partial(_connected_chunk, params=params,
                slots_per_report=slots_per_report),
        items,
        specs={"connected": ((n * slots_per_report,), np.bool_)},
        workers=workers, chunk_size=chunk_size, batched=True)
    connected = cols["connected"]

    result = BatchTimeslotResult(connected=connected,
                                 viewer_ids=np.asarray(batch.viewer_ids),
                                 video_ids=np.asarray(batch.video_ids))
    if store is not None:
        result.save(store, group, attrs={
            "slots_per_report": slots_per_report,
            "tp_latency_slots": params.tp_latency_slots,
        })
    return result
