"""The full Cyclops testbed: every physical truth in one place.

:class:`Testbed` builds the complete simulated prototype:

* two real (imperfect) galvo assemblies with *hidden* true parameters,
  each expressed in its own K-space exactly as it sat on the
  calibration bench;
* the rigid placements: TX's K-space onto the ceiling
  (``tx_kspace_to_world``) and RX's K-space onto the headset body
  (``rx_kspace_to_body``);
* the hidden VRH-T frames: world-to-VR-space ``V`` and the headset
  reference-point offset ``X``;
* the FSO channel for a chosen link design.

The learning pipeline (:meth:`calibrate`) only ever touches the testbed
through the same interfaces the real prototype offers: steer voltages,
read received power, read tracker reports, read board-spot positions.
Tests may inspect the hidden truth; the pipeline must not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from .. import constants
from ..core import (
    AlignedSample,
    BoardRig,
    GmaModel,
    LearnedSystem,
    alignment,
    fit_gma,
    fit_mapping,
    interior_grid_points,
    point,
)
from ..determinism import resolve_rng, spawn
from ..galvo import GalvoHardware, GmaParams, canonical_gma
from ..geometry import (
    RigidTransform,
    euler_to_matrix,
    normalize,
    rotation_between,
)
from ..galvo.mirror import trace as trace_gma
from ..link import FsoChannel, LinkDesign, link_10g_diverging
from ..vrh import Pose, RxAssembly, TxAssembly, VrhTracker

#: True voltage-to-angle quadratic term (rad / V^2): the hidden
#: hardware imperfection that gives the learned linear model its
#: irreducible, Table-2-magnitude error.
TRUE_NONLINEARITY = 1.2e-5

#: Nominal head position in the world frame (meters).
HOME_POSITION = np.array([0.0, 0.15, 1.0])

#: TX second-mirror positions for the two supported geometries.
#: "bench": the paper's evaluation prototype (Fig. 12) -- both
#: terminals at table height, a near-horizontal 1.5-2 m link.
#: "ceiling": the envisioned deployment (Fig. 5) -- TX overhead.
TX_MIRROR_BENCH = np.array([0.0, -1.55, 1.15])
TX_MIRROR_CEILING = np.array([0.0, 0.0, 2.6])

#: RX second-mirror position in the headset body frame.
RX_MIRROR_BODY = np.array([0.05, 0.03, 0.10])


def _perturbed_params(params: GmaParams, rng: np.random.Generator,
                      point_sigma_m: float, angle_sigma_rad: float,
                      theta_rel_sigma: float) -> GmaParams:
    """A GMA parameter set wiggled by assembly/measurement tolerances."""

    def wiggle_point(p):
        return p + rng.normal(0.0, point_sigma_m, size=3)

    def wiggle_direction(d):
        return normalize(d + rng.normal(0.0, angle_sigma_rad, size=3))

    return GmaParams(
        p0=wiggle_point(params.p0),
        x0=wiggle_direction(params.x0),
        n1=wiggle_direction(params.n1),
        q1=wiggle_point(params.q1),
        r1=wiggle_direction(params.r1),
        n2=wiggle_direction(params.n2),
        q2=wiggle_point(params.q2),
        r2=wiggle_direction(params.r2),
        theta1=params.theta1 * float(1.0 + rng.normal(0.0, theta_rel_sigma)),
    )


def _placement_to(rotation: np.ndarray, kspace_mirror: np.ndarray,
                  target_mirror: np.ndarray) -> RigidTransform:
    """The transform rotating by ``rotation`` and landing the GMA's
    second mirror (K-space position ``kspace_mirror``) on
    ``target_mirror``."""
    translation = target_mirror - rotation @ kspace_mirror
    return RigidTransform(rotation, translation)


@dataclass(frozen=True)
class CalibrationOutcome:
    """Everything :meth:`Testbed.calibrate` produces."""

    system: LearnedSystem
    tx_kspace_model: GmaModel
    rx_kspace_model: GmaModel
    mapping_samples: List[AlignedSample]


@dataclass
class Testbed:
    """One fully wired simulated prototype."""

    design: LinkDesign = field(default_factory=link_10g_diverging)
    seed: int = 7
    nonlinearity: float = TRUE_NONLINEARITY
    geometry: str = "bench"

    def __post_init__(self):
        if self.geometry == "bench":
            tx_mirror_world = TX_MIRROR_BENCH
        elif self.geometry == "ceiling":
            tx_mirror_world = TX_MIRROR_CEILING
        else:
            raise ValueError(f"unknown geometry {self.geometry!r}; "
                             f"use 'bench' or 'ceiling'")
        self.tx_mirror_world = tx_mirror_world
        rng = resolve_rng(seed=self.seed, owner="Testbed")
        self.rng = rng
        theta1 = np.radians(1.0)  # 1 deg mechanical per volt (GVS102)

        # True K-space geometry of both units: canonical design, placed
        # facing the calibration board (firing -z from z ~ 1.5 m), with
        # per-unit manual-assembly wiggle.
        board_facing = _placement_to(
            euler_to_matrix(np.pi, 0.0, 0.0),
            canonical_gma(theta1).q2,
            np.array([0.0, 0.0, constants.KSPACE_BOARD_DISTANCE_M]))
        base = canonical_gma(theta1, board_facing)
        tx_truth = _perturbed_params(base, rng, 1e-3, np.radians(0.5), 0.01)
        rx_truth = _perturbed_params(base, rng, 1e-3, np.radians(0.5), 0.01)
        self.tx_hardware = GalvoHardware(
            tx_truth, nonlinearity=self.nonlinearity, rng=spawn(rng))
        self.rx_hardware = GalvoHardware(
            rx_truth, nonlinearity=self.nonlinearity, rng=spawn(rng))

        # Deployment placements.  Each mount is oriented so the GMA's
        # rest beam (zero volts) points at the other terminal's nominal
        # position -- the installer "roughly aims" both units -- which
        # keeps the working voltages comfortably inside the +/-10 V
        # coverage cone.  A small mounting-tilt error is added on top.
        rx_mirror_home = HOME_POSITION + RX_MIRROR_BODY
        tx_rest_dir = trace_gma(tx_truth, 0.0, 0.0).direction
        tx_aim = rotation_between(tx_rest_dir,
                                  rx_mirror_home - tx_mirror_world)
        tx_tilt = euler_to_matrix(*rng.normal(0.0, np.radians(1.0), size=3))
        self.tx_kspace_to_world = _placement_to(
            tx_tilt @ tx_aim, tx_truth.q2, tx_mirror_world)
        rx_rest_dir = trace_gma(rx_truth, 0.0, 0.0).direction
        rx_aim = rotation_between(rx_rest_dir,
                                  tx_mirror_world - rx_mirror_home)
        rx_tilt = euler_to_matrix(*rng.normal(0.0, np.radians(1.0), size=3))
        self.rx_kspace_to_body = _placement_to(
            rx_tilt @ rx_aim, rx_truth.q2, RX_MIRROR_BODY)

        self.tx_assembly = TxAssembly(self.tx_hardware,
                                      self.tx_kspace_to_world)
        self.rx_assembly = RxAssembly(self.rx_hardware,
                                      self.rx_kspace_to_body)
        self.channel = FsoChannel(self.design, self.tx_assembly,
                                  self.rx_assembly)

        # Hidden VRH-T frames: VR-space is gravity-aligned but has an
        # arbitrary origin and yaw; the reference point X sits somewhere
        # inside the headset.
        self.vr_from_world = RigidTransform(
            euler_to_matrix(0.0, 0.0, float(rng.uniform(-np.pi, np.pi))),
            rng.uniform(-1.5, 1.5, size=3))
        self.x_offset = RigidTransform(
            euler_to_matrix(*rng.normal(0.0, 0.08, size=3)),
            rng.normal(0.0, 0.04, size=3))
        self.tracker = VrhTracker(
            self.vr_from_world, self.x_offset, rng=spawn(rng))

        self.home_pose = Pose(HOME_POSITION.copy(), np.eye(3))

    # -- physical interfaces the pipeline is allowed to use -----------------

    def apply_command(self, command) -> float:
        """Steer both GMs; returns the slower of the two settle times."""
        tx_settle = self.tx_hardware.apply(*command.tx_voltages)
        rx_settle = self.rx_hardware.apply(*command.rx_voltages)
        return max(tx_settle, rx_settle)

    def received_power_dbm(self, body_pose: Pose) -> float:
        """Measure received power at the current voltages."""
        return self.channel.received_power_dbm(body_pose)

    def power_function(self, body_pose: Pose):
        """4-voltage power probe for the exhaustive alignment search."""

        def probe(v_tx1, v_tx2, v_rx1, v_rx2):
            self.tx_hardware.apply(v_tx1, v_tx2)
            self.rx_hardware.apply(v_rx1, v_rx2)
            return self.channel.received_power_dbm(body_pose)

        return probe

    # -- hidden-truth accessors (tests and oracle seeding only) -------------

    def oracle_system(self) -> LearnedSystem:
        """A ``LearnedSystem`` built from the *true* parameters.

        Used only to seed the exhaustive search (the stand-in for the
        deployer's by-eye coarse alignment) and by tests; the learning
        pipeline never sees it.
        """
        tx_vr = self.vr_from_world.compose(self.tx_kspace_to_world)
        rx_mapping = self.x_offset.inverse().compose(self.rx_kspace_to_body)
        return LearnedSystem(
            tx_model_vr=GmaModel(self.tx_hardware.params).transformed(tx_vr),
            rx_model_kspace=GmaModel(self.rx_hardware.params),
            rx_mapping=rx_mapping,
        )

    def world_to_vr(self) -> RigidTransform:
        """The hidden world-to-VR-space transform (tests only)."""
        return self.vr_from_world

    # -- deployment-time procedures ------------------------------------------

    def align_exhaustively(self, body_pose: Pose) -> alignment.AlignmentResult:
        """Run the exhaustive power search at one (locked) pose."""
        seed_command = point(self.oracle_system(),
                             self.tracker.report(body_pose))
        return alignment.search(
            self.power_function(body_pose),
            seed=(seed_command.v_tx1, seed_command.v_tx2,
                  seed_command.v_rx1, seed_command.v_rx2))

    def training_poses(self, count: int) -> List[Pose]:
        """Random headset poses for mapping training (around home)."""
        return self.random_poses(count, position_range_m=0.2,
                                 angle_range_rad=np.radians(8))

    def evaluation_poses(self, count: int) -> List[Pose]:
        """Random poses for TP-accuracy tests (Section 5.2's trials).

        Slightly tighter than the training envelope, matching the
        hand-held "move randomly then lock" procedure of the paper.
        """
        return self.random_poses(count, position_range_m=0.15,
                                 angle_range_rad=np.radians(6))

    def random_poses(self, count: int, position_range_m: float,
                     angle_range_rad: float) -> List[Pose]:
        """Uniform random poses in a box/cone around the home pose."""
        poses = []
        for _ in range(count):
            position = HOME_POSITION + self.rng.uniform(
                -position_range_m, position_range_m, size=3)
            orientation = euler_to_matrix(*self.rng.uniform(
                -angle_range_rad, angle_range_rad, size=3))
            poses.append(Pose(position, orientation))
        return poses

    def collect_mapping_samples(
            self, count: int = constants.MAPPING_TRAINING_SAMPLES,
            ) -> List[AlignedSample]:
        """Gather Section 4.2's 5-tuples: align, then read the tracker."""
        samples = []
        for pose in self.training_poses(count):
            result = self.align_exhaustively(pose)
            samples.append(AlignedSample(
                v_tx1=result.voltages[0], v_tx2=result.voltages[1],
                v_rx1=result.voltages[2], v_rx2=result.voltages[3],
                reported_pose=self.tracker.report(pose)))
        return samples

    def calibrate(self,
                  mapping_samples: int = constants.MAPPING_TRAINING_SAMPLES,
                  ) -> CalibrationOutcome:
        """Run the full Section 4 pipeline against the hidden hardware.

        1. Board-calibrate each GMA in its K-space (Section 4.1),
           starting from a CAD-quality initial guess.
        2. Collect aligned 5-tuples at random poses (Section 4.2).
        3. Jointly fit the 12 mapping parameters, starting from a
           tape-measure-quality placement guess.
        """
        grid = interior_grid_points()
        models = {}
        for name, hardware in (("tx", self.tx_hardware),
                               ("rx", self.rx_hardware)):
            rig = BoardRig(hardware, rng=spawn(self.rng))
            guess = _perturbed_params(hardware.params, self.rng,
                                      3e-3, np.radians(1.0), 0.01)
            models[name] = fit_gma(rig.collect_samples(grid), guess)

        samples = self.collect_mapping_samples(mapping_samples)

        oracle = self.oracle_system()
        true_tx_map = self.vr_from_world.compose(self.tx_kspace_to_world)
        initial = np.concatenate([
            self._perturbed_transform(true_tx_map, 0.02,
                                      np.radians(3.0)).to_params(),
            self._perturbed_transform(oracle.rx_mapping, 0.02,
                                      np.radians(3.0)).to_params(),
        ])
        system = fit_mapping(models["tx"], models["rx"], samples, initial)
        return CalibrationOutcome(system=system,
                                  tx_kspace_model=models["tx"],
                                  rx_kspace_model=models["rx"],
                                  mapping_samples=samples)

    def apply_tracker_drift(self,
                            translation_m: Sequence[float] = (0.0, 0.0, 0.0),
                            yaw_rad: float = 0.0) -> None:
        """Simulate VRH-T drift: the VR-space frame shifts.

        Inside-out trackers slowly re-anchor their world origin; after
        enough drift the learned mapping parameters are stale and the
        only re-training needed is the Section 4.2 mapping step
        (see :mod:`repro.core.retraining`).
        """
        drift = RigidTransform(
            euler_to_matrix(0.0, 0.0, float(yaw_rad)),
            np.asarray(translation_m, dtype=float))
        self.vr_from_world = drift.compose(self.vr_from_world)
        self.tracker.vr_from_world = self.vr_from_world

    def _perturbed_transform(self, transform: RigidTransform,
                             translation_sigma_m: float,
                             angle_sigma_rad: float) -> RigidTransform:
        """A rigid transform wiggled by deployment-measurement error."""
        params = transform.to_params()
        params[:3] += self.rng.normal(0.0, translation_sigma_m, size=3)
        params[3:] += self.rng.normal(0.0, angle_sigma_rad, size=3)
        return RigidTransform.from_params(params)
